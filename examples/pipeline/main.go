// pipeline: a transactional producer/consumer pipeline with exactly-once
// processing — the intruder-style pattern from the paper's STAMP evaluation.
//
// Producers enqueue jobs into a shared transactional queue; workers claim a
// job and mark it processed in a dedup table within one atomic step, so a
// job can never be processed twice even though multiple workers race on the
// queue head. A final reconciliation proves exactly-once semantics.
//
//	go run ./examples/pipeline -algo rinval-v3 -jobs 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// node is one queue cell.
type node struct {
	job  int
	next *stm.Var[*node]
}

// Queue is a minimal transactional FIFO on the public API.
type Queue struct {
	head, tail *stm.Var[*node]
}

// NewQueue returns an empty queue.
func NewQueue() *Queue {
	return &Queue{head: stm.NewVar[*node](nil), tail: stm.NewVar[*node](nil)}
}

// Push appends a job.
func (q *Queue) Push(tx *stm.Tx, job int) {
	n := &node{job: job, next: stm.NewVar[*node](nil)}
	if t := q.tail.Load(tx); t != nil {
		t.next.Store(tx, n)
	} else {
		q.head.Store(tx, n)
	}
	q.tail.Store(tx, n)
}

// Pop removes the oldest job.
func (q *Queue) Pop(tx *stm.Tx) (int, bool) {
	h := q.head.Load(tx)
	if h == nil {
		return 0, false
	}
	next := h.next.Load(tx)
	q.head.Store(tx, next)
	if next == nil {
		q.tail.Store(tx, nil)
	}
	return h.job, true
}

func main() {
	algoName := flag.String("algo", "rinval-v2", "STM engine")
	jobs := flag.Int("jobs", 1000, "jobs to process")
	workers := flag.Int("workers", 4, "consumer goroutines")
	flag.Parse()
	algo, err := stm.ParseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := stm.New(stm.Config{Algo: algo, MaxThreads: *workers + 3, InvalServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	queue := NewQueue()
	processed := make([]*stm.Var[int], *jobs) // per-job processing count
	for i := range processed {
		processed[i] = stm.NewVar(0)
	}
	remaining := stm.NewVar(*jobs)

	var wg sync.WaitGroup

	// Two producers split the job range.
	for p := 0; p < 2; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for j := p; j < *jobs; j += 2 {
				j := j
				if err := th.Atomically(func(tx *stm.Tx) error {
					queue.Push(tx, j)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}

	// Workers: claim + mark in one transaction.
	results := make([]int, *workers)
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for {
				var job int
				var got, done bool
				if err := th.Atomically(func(tx *stm.Tx) error {
					job, got = queue.Pop(tx)
					if !got {
						done = remaining.Load(tx) == 0
						return nil
					}
					processed[job].Store(tx, processed[job].Load(tx)+1)
					remaining.Store(tx, remaining.Load(tx)-1)
					return nil
				}); err != nil {
					log.Fatal(err)
				}
				if got {
					results[w]++
				} else if done {
					return
				} else {
					// Queue momentarily empty: let producers run instead of
					// burning cycles on empty polls.
					time.Sleep(50 * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	// Reconcile: every job processed exactly once.
	for i, p := range processed {
		if n := p.Peek(); n != 1 {
			log.Fatalf("job %d processed %d times (exactly-once violated!)", i, n)
		}
	}
	st := sys.Stats()
	fmt.Printf("engine   %s\n", algo)
	fmt.Printf("jobs     %d, all processed exactly once\n", *jobs)
	fmt.Printf("workers  %v jobs each\n", results)
	fmt.Printf("commits  %d, aborts %d (%.1f%% abort rate)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
}
