// scheduler: a transactional deadline scheduler built from the public
// container packages.
//
// Producers submit jobs with deadlines into a shared priority queue while a
// directory map tracks each job's state. Workers atomically claim the most
// urgent job AND flip its state in one transaction, so a job can never be
// double-claimed, and a cancelling client can atomically remove a job from
// the directory so that any worker claiming it afterwards observes the
// cancellation. A final reconciliation proves exactly-once execution.
//
//	go run ./examples/scheduler -algo rinval-v2 -jobs 500
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/stm"
)

// Job states in the directory.
const (
	statePending = iota
	stateRunning
	stateDone
	stateCancelled
)

func main() {
	algoName := flag.String("algo", "rinval-v2", "STM engine")
	jobs := flag.Int("jobs", 400, "jobs to schedule")
	workers := flag.Int("workers", 3, "worker goroutines")
	flag.Parse()

	algo, err := stm.ParseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := stm.New(stm.Config{Algo: algo, MaxThreads: *workers + 4, InvalServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	queue := ds.NewPQueue()                          // deadline -> job id
	directory := ds.NewMap[int, int](32, ds.HashInt) // job id -> state
	executed := make([]int, *jobs)                   // worker observations (post-run)
	var execMu sync.Mutex

	var wg sync.WaitGroup

	// Producer: submit every job with a pseudo-random deadline; every third
	// job is cancelled shortly after submission (the cancellation races the
	// workers, and either side winning is correct).
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.MustRegister()
		defer th.Close()
		rng := uint64(7)
		for j := 0; j < *jobs; j++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			deadline := int(rng >> 40)
			j := j
			_ = th.Atomically(func(tx *stm.Tx) error {
				directory.Put(tx, j, statePending)
				queue.Insert(tx, deadline, j)
				return nil
			})
			if j%3 == 2 {
				_ = th.Atomically(func(tx *stm.Tx) error {
					if st, ok := directory.Get(tx, j); ok && st == statePending {
						directory.Put(tx, j, stateCancelled)
					}
					return nil
				})
			}
		}
	}()

	// Workers: claim the most urgent pending job and run it.
	remaining := stm.NewVar(*jobs)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for {
				var job int
				var claimed, done bool
				_ = th.Atomically(func(tx *stm.Tx) error {
					claimed = false
					_, id, ok := queue.PopMin(tx)
					if !ok {
						done = remaining.Load(tx) == 0
						return nil
					}
					remaining.Store(tx, remaining.Load(tx)-1)
					st, ok := directory.Get(tx, id)
					if !ok || st != statePending {
						return nil // cancelled (or missing): skip atomically
					}
					directory.Put(tx, id, stateRunning)
					job = id
					claimed = true
					return nil
				})
				if claimed {
					// "Execute" the job outside the transaction.
					execMu.Lock()
					executed[job]++
					execMu.Unlock()
					_ = th.Atomically(func(tx *stm.Tx) error {
						directory.Put(tx, job, stateDone)
						return nil
					})
				} else if done {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Reconcile: every non-cancelled job ran exactly once; cancelled jobs
	// (whose cancellation won the race) never ran.
	ran, skipped := 0, 0
	directory.ForEachQuiescent(func(id, st int) {
		switch st {
		case stateDone:
			if executed[id] != 1 {
				log.Fatalf("job %d done but executed %d times", id, executed[id])
			}
			ran++
		case stateCancelled:
			if executed[id] != 0 {
				log.Fatalf("cancelled job %d was executed", id)
			}
			skipped++
		default:
			log.Fatalf("job %d left in state %d", id, st)
		}
	})
	if ran+skipped != *jobs {
		log.Fatalf("accounting mismatch: %d + %d != %d", ran, skipped, *jobs)
	}
	st := sys.Stats()
	fmt.Printf("engine    %s\n", algo)
	fmt.Printf("jobs      %d (%d executed exactly once, %d cancelled in time)\n", *jobs, ran, skipped)
	fmt.Printf("commits   %d, aborts %d\n", st.Commits, st.Aborts)
}
