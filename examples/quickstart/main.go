// Quickstart: concurrent bank transfers under Remote Invalidation.
//
// Ten goroutines move money between accounts while two auditors
// transactionally sum every balance; opacity guarantees each audit sees a
// consistent total. Run it with any engine:
//
//	go run ./examples/quickstart            # RInval-V2 (default)
//	go run ./examples/quickstart -algo norec
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

func main() {
	algoName := flag.String("algo", "rinval-v2", "STM engine")
	flag.Parse()

	algo, err := stm.ParseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := stm.New(stm.Config{Algo: algo, MaxThreads: 16, InvalServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const accounts = 8
	const initial = 1000
	bank := make([]*stm.Var[int], accounts)
	for i := range bank {
		bank[i] = stm.NewVar(initial)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var transfers, audits atomic.Int64

	// Transfer workers.
	for w := 0; w < 10; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			rng := uint64(w + 1)
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				from := int(rng>>33) % accounts
				to := int(rng>>13) % accounts
				amount := int(rng>>53) % 50
				_ = th.Atomically(func(tx *stm.Tx) error {
					bank[from].Store(tx, bank[from].Load(tx)-amount)
					bank[to].Store(tx, bank[to].Load(tx)+amount)
					return nil
				})
				transfers.Add(1)
			}
		}()
	}

	// Auditors: a consistent snapshot must always total accounts*initial.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for !stop.Load() {
				var total int
				_ = th.Atomically(func(tx *stm.Tx) error {
					total = 0
					for _, acct := range bank {
						total += acct.Load(tx)
					}
					return nil
				})
				if total != accounts*initial {
					log.Fatalf("audit saw inconsistent total %d (opacity violated!)", total)
				}
				audits.Add(1)
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	final := 0
	for _, acct := range bank {
		final += acct.Peek()
	}
	st := sys.Stats()
	fmt.Printf("engine      %s\n", algo)
	fmt.Printf("transfers   %d\n", transfers.Load())
	fmt.Printf("audits      %d (all consistent)\n", audits.Load())
	fmt.Printf("commits     %d, aborts %d (%.1f%% abort rate)\n",
		st.Commits, st.Aborts, 100*st.AbortRate())
	fmt.Printf("final total %d (expected %d)\n", final, accounts*initial)
	if final != accounts*initial {
		log.Fatal("money was not conserved")
	}
}
