// kvstore: a transactional key-value store with multi-key operations.
//
// Demonstrates composing stm.Var into a bucketed hash map that supports
// atomic cross-key transactions — the kind of operation a lock-per-bucket
// design cannot express without deadlock-prone lock ordering. Writers run
// atomic "rename" (move value between keys) and "increment-pair" operations;
// a checker thread verifies cross-key invariants transactionally.
//
//	go run ./examples/kvstore -algo rinval-v1
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// Store is a fixed-bucket transactional map built purely on the public API.
type Store struct {
	buckets []*stm.Var[map[string]int] // immutable maps, copy-on-write
}

// NewStore returns a store with n buckets.
func NewStore(n int) *Store {
	s := &Store{buckets: make([]*stm.Var[map[string]int], n)}
	for i := range s.buckets {
		s.buckets[i] = stm.NewVar(map[string]int{})
	}
	return s
}

func (s *Store) bucket(key string) *stm.Var[map[string]int] {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return s.buckets[h%uint64(len(s.buckets))]
}

// Get returns the value for key.
func (s *Store) Get(tx *stm.Tx, key string) (int, bool) {
	v, ok := s.bucket(key).Load(tx)[key]
	return v, ok
}

// Set stores key=value (copy-on-write on the bucket).
func (s *Store) Set(tx *stm.Tx, key string, value int) {
	b := s.bucket(key)
	old := b.Load(tx)
	next := make(map[string]int, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = value
	b.Store(tx, next)
}

// Delete removes key.
func (s *Store) Delete(tx *stm.Tx, key string) {
	b := s.bucket(key)
	old := b.Load(tx)
	if _, ok := old[key]; !ok {
		return
	}
	next := make(map[string]int, len(old))
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	b.Store(tx, next)
}

func main() {
	algoName := flag.String("algo", "rinval-v2", "STM engine")
	flag.Parse()
	algo, err := stm.ParseAlgo(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := stm.New(stm.Config{Algo: algo, MaxThreads: 12, InvalServers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	store := NewStore(16)

	// Seed: each pair (a<i>, b<i>) sums to 100 — the invariant writers
	// preserve and the checker asserts.
	const pairs = 20
	seedTh := sys.MustRegister()
	for i := 0; i < pairs; i++ {
		i := i
		_ = seedTh.Atomically(func(tx *stm.Tx) error {
			store.Set(tx, fmt.Sprintf("a%d", i), 60)
			store.Set(tx, fmt.Sprintf("b%d", i), 40)
			return nil
		})
	}
	seedTh.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	var moves, checks atomic.Int64

	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			rng := uint64(w*7 + 1)
			for !stop.Load() {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := int(rng>>33) % pairs
				d := int(rng>>53)%21 - 10
				ka, kb := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
				_ = th.Atomically(func(tx *stm.Tx) error {
					a, _ := store.Get(tx, ka)
					b, _ := store.Get(tx, kb)
					store.Set(tx, ka, a+d)
					store.Set(tx, kb, b-d)
					return nil
				})
				moves.Add(1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.MustRegister()
		defer th.Close()
		for !stop.Load() {
			for i := 0; i < pairs && !stop.Load(); i++ {
				ka, kb := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
				var sum int
				_ = th.Atomically(func(tx *stm.Tx) error {
					a, _ := store.Get(tx, ka)
					b, _ := store.Get(tx, kb)
					sum = a + b
					return nil
				})
				if sum != 100 {
					log.Fatalf("pair %d sums to %d (atomicity violated!)", i, sum)
				}
				checks.Add(1)
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	st := sys.Stats()
	fmt.Printf("engine  %s\n", algo)
	fmt.Printf("moves   %d cross-key transactions\n", moves.Load())
	fmt.Printf("checks  %d invariant reads (all passed)\n", checks.Load())
	fmt.Printf("commits %d, aborts %d\n", st.Commits, st.Aborts)
}
