package stm_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ssrg-vt/rinval/stm"
)

func newSys(t *testing.T, algo stm.Algo) *stm.System {
	t.Helper()
	s, err := stm.New(stm.Config{Algo: algo, MaxThreads: 16, InvalServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestTypedVarsAcrossEngines(t *testing.T) {
	type point struct{ X, Y int }
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo)
			th := s.MustRegister()
			defer th.Close()

			i := stm.NewVar(7)
			str := stm.NewVar("a")
			p := stm.NewVar(point{1, 2})
			sl := stm.NewVar([]int{1, 2, 3})

			err := th.Atomically(func(tx *stm.Tx) error {
				i.Store(tx, i.Load(tx)+1)
				str.Store(tx, str.Load(tx)+"b")
				pt := p.Load(tx)
				pt.X++
				p.Store(tx, pt)
				old := sl.Load(tx)
				next := make([]int, len(old)+1)
				copy(next, old)
				next[len(old)] = 4
				sl.Store(tx, next)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if i.Peek() != 8 || str.Peek() != "ab" {
				t.Fatalf("i=%d str=%q", i.Peek(), str.Peek())
			}
			if p.Peek() != (point{2, 2}) {
				t.Fatalf("p=%+v", p.Peek())
			}
			if got := sl.Peek(); len(got) != 4 || got[3] != 4 {
				t.Fatalf("sl=%v", got)
			}
		})
	}
}

func TestModify(t *testing.T) {
	s := newSys(t, stm.NOrec)
	th := s.MustRegister()
	defer th.Close()
	v := stm.NewVar(10)
	if err := th.Atomically(func(tx *stm.Tx) error {
		v.Modify(tx, func(x int) int { return x * 3 })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 30 {
		t.Fatalf("got %d", v.Peek())
	}
}

func TestUserAbortReturnsError(t *testing.T) {
	s := newSys(t, stm.RInvalV2)
	th := s.MustRegister()
	defer th.Close()
	v := stm.NewVar(1)
	sentinel := errors.New("nope")
	err := th.Atomically(func(tx *stm.Tx) error {
		v.Store(tx, 2)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v", err)
	}
	if v.Peek() != 1 {
		t.Fatal("write leaked")
	}
}

func TestPeekSetID(t *testing.T) {
	v := stm.NewVar("x")
	if v.Peek() != "x" {
		t.Fatal("Peek")
	}
	v.Set("y")
	if v.Peek() != "y" {
		t.Fatal("Set")
	}
	w := stm.NewVar("z")
	if v.ID() == 0 || v.ID() == w.ID() {
		t.Fatal("IDs must be nonzero and unique")
	}
}

func TestParseAlgoNames(t *testing.T) {
	for _, a := range stm.Algos {
		got, err := stm.ParseAlgo(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: %v %v", a, got, err)
		}
	}
}

func TestConcurrentTypedCounter(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo)
			c := stm.NewVar(uint64(0))
			const workers, per = 6, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						_ = th.Atomically(func(tx *stm.Tx) error {
							c.Modify(tx, func(x uint64) uint64 { return x + 1 })
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if c.Peek() != workers*per {
				t.Fatalf("got %d want %d", c.Peek(), workers*per)
			}
			st := s.Stats()
			if st.Commits < workers*per {
				t.Fatalf("stats commits %d", st.Commits)
			}
		})
	}
}

func TestQuickTypedRoundTrip(t *testing.T) {
	s := newSys(t, stm.RInvalV1)
	th := s.MustRegister()
	defer th.Close()
	f := func(vals []int64) bool {
		v := stm.NewVar(int64(0))
		for _, x := range vals {
			if err := th.Atomically(func(tx *stm.Tx) error {
				v.Store(tx, x)
				return nil
			}); err != nil {
				return false
			}
			if v.Peek() != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func ExampleSystem() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 4, InvalServers: 2})
	defer sys.Close()

	account := stm.NewVar(100)
	th := sys.MustRegister()
	defer th.Close()

	_ = th.Atomically(func(tx *stm.Tx) error {
		account.Store(tx, account.Load(tx)-30)
		return nil
	})
	fmt.Println(account.Peek())
	// Output: 70
}

// TestAtomicallyRO exercises the typed read-only wrapper: snapshot reads see
// committed state, Store panics inside a read-only transaction, and the
// snapshot counters surface through the typed Stats alias.
func TestAtomicallyRO(t *testing.T) {
	s, err := stm.New(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2, Versions: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	th := s.MustRegister()
	defer th.Close()

	a, b := stm.NewVar(40), stm.NewVar(2)
	if err := th.Atomically(func(tx *stm.Tx) error {
		a.Store(tx, a.Load(tx)+b.Load(tx))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var got int
	if err := th.AtomicallyRO(func(tx *stm.Tx) error {
		got = a.Load(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("snapshot read %d, want 42", got)
	}
	if st := th.Stats(); st.ROCommits != 1 || st.ROFallbacks != 0 {
		t.Fatalf("stats %+v: want one snapshot commit, no fallbacks", st)
	}

	roErr := errors.New("user abort")
	if err := th.AtomicallyRO(func(tx *stm.Tx) error { return roErr }); !errors.Is(err, roErr) {
		t.Fatalf("user abort not returned: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("Store inside AtomicallyRO did not panic")
		}
	}()
	_ = th.AtomicallyRO(func(tx *stm.Tx) error {
		a.Store(tx, 0)
		return nil
	})
}
