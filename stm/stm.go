// Package stm is the public API of the RInval software transactional memory
// library — a Go reproduction of "Remote Invalidation: Optimizing the
// Critical Path of Memory Transactions" (Hassan, Palmieri, Ravindran,
// IPDPS 2014).
//
// # Quick start
//
//	sys, _ := stm.New(stm.Config{Algo: stm.RInvalV2})
//	defer sys.Close()
//
//	acct := stm.NewVar(100)
//
//	th, _ := sys.Register()
//	defer th.Close()
//	_ = th.Atomically(func(tx *stm.Tx) error {
//		balance := acct.Load(tx)
//		acct.Store(tx, balance-30)
//		return nil
//	})
//
// Six engines share this API (see Algo): a global-mutex baseline, NOrec
// (validation-based), InvalSTM (commit-time invalidation), and the paper's
// three Remote Invalidation variants, which execute commit and invalidation
// on dedicated server goroutines with cache-aligned client/server mailboxes.
//
// # Concurrency model
//
// A System may serve any number of goroutines; each goroutine claims a
// Thread (a slot in the cache-aligned requests array) and runs transactions
// through it. Transaction bodies may be re-executed after conflicts, so they
// must confine side effects to Var operations. All engines guarantee opacity:
// a transaction body never observes an inconsistent snapshot, even on
// attempts that later abort.
package stm

import (
	"github.com/ssrg-vt/rinval/internal/core"
	"github.com/ssrg-vt/rinval/internal/obs"
)

// Config parameterizes a System. The zero value selects NOrec with 64
// threads; see the field documentation on the aliased type.
type Config = core.Config

// Algo selects the concurrency-control engine.
type Algo = core.Algo

// Engine selections (see the package documentation for their semantics).
const (
	Mutex    = core.Mutex
	NOrec    = core.NOrec
	InvalSTM = core.InvalSTM
	RInvalV1 = core.RInvalV1
	RInvalV2 = core.RInvalV2
	RInvalV3 = core.RInvalV3
	TL2      = core.TL2
)

// Algos lists every engine in presentation order.
var Algos = core.Algos

// ParseAlgo converts an engine name ("norec", "rinval-v2", ...) to an Algo.
func ParseAlgo(s string) (Algo, error) { return core.ParseAlgo(s) }

// CMPolicy selects the contention manager.
type CMPolicy = core.CMPolicy

// Contention-manager policies.
const (
	CMCommitterWins = core.CMCommitterWins
	CMBackoff       = core.CMBackoff
	CMReaderBiased  = core.CMReaderBiased
)

// Stats aggregates transactional activity; see the field documentation on
// the aliased type.
type Stats = core.Stats

// AbortReason classifies why a transaction attempt aborted; see
// Stats.AbortReasons.
type AbortReason = core.AbortReason

// Abort reasons. The conflict reasons (the first four) sum to Stats.Aborts;
// AbortExplicit counts user aborts, which Stats.Aborts excludes.
const (
	AbortInvalidated = core.AbortInvalidated
	AbortValidation  = core.AbortValidation
	AbortSelf        = core.AbortSelf
	AbortLocked      = core.AbortLocked
	AbortExplicit    = core.AbortExplicit
	NumAbortReasons  = core.NumAbortReasons
)

// Tracer is the lifecycle-event trace collected when Config.Trace is set;
// see System.Tracer.
type Tracer = obs.Tracer

// ConflictReport is the conflict-attribution snapshot collected when
// Config.Attribution is set: the who-aborted-whom matrix, wasted work per
// abort reason, the bloom false-positive estimate, and the top-K hot-var
// table. See System.ConflictReport.
type ConflictReport = obs.ConflictReport

// HotVar is one entry of ConflictReport's contended-variable table.
type HotVar = obs.HotVar

// LatencyReport is the critical-path latency decomposition collected when
// Config.Latency is set: per-phase histograms and quantiles for sampled
// client transactions (app work, retry, commit-wait, end-to-end) and for
// every commit/invalidation-server epoch (collect, scan, inval-wait,
// write-back, reply, plus the cross-shard lock-wait and drain phases).
// See System.LatencyReport.
type LatencyReport = obs.LatencyReport

// LatencyPhase is one phase row of a LatencyReport.
type LatencyPhase = obs.LatencyPhase

// NamedHistogram is one exported histogram family child (name + label set +
// data); see System.ServerPhaseHistograms.
type NamedHistogram = obs.NamedHistogram

// TimeSeriesReport is the windowed-telemetry view collected when
// Config.TimeSeries is set: rates and moving quantiles over trailing
// windows, sparkline-ready recent windows, and the SLO burn-rate/alert
// state. See System.TimeSeriesReport.
type TimeSeriesReport = obs.TimeSeriesReport

// TSWindowReport is one window of a TimeSeriesReport; SLOAlert and
// SLOStatus are the objective evaluation entries it carries.
type (
	TSWindowReport = obs.TSWindowReport
	SLOAlert       = obs.SLOAlert
	SLOStatus      = obs.SLOStatus
)

// SLO declares one service-level objective for Config.SLOs; SLOKind selects
// what it constrains.
type (
	SLO     = obs.SLO
	SLOKind = obs.SLOKind
)

// SLO kinds (see the obs package for the burn-rate semantics).
const (
	SLOAbortRate  = obs.SLOAbortRate
	SLOLatencyP99 = obs.SLOLatencyP99
)

// DefaultTimeSeriesWindows is the ring capacity Config.TimeSeries defaults
// to when SLOs are declared without an explicit window count.
const DefaultTimeSeriesWindows = core.DefaultTimeSeriesWindows

// System is one STM instance: a global timestamp domain, a cache-aligned
// requests array, and (for the RInval engines) the commit/invalidation
// server goroutines.
type System struct {
	sys *core.System
}

// New constructs a System and starts its server goroutines (if the selected
// engine uses any). Close it when done.
func New(cfg Config) (*System, error) {
	sys, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{sys: sys}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Register claims a request slot for the calling goroutine's use. Fails when
// Config.MaxThreads threads are already registered.
func (s *System) Register() (*Thread, error) {
	th, err := s.sys.Register()
	if err != nil {
		return nil, err
	}
	return &Thread{th: th}, nil
}

// MustRegister is Register that panics on error.
func (s *System) MustRegister() *Thread {
	th, err := s.Register()
	if err != nil {
		panic(err)
	}
	return th
}

// Close stops the server goroutines. All Threads must be closed first.
func (s *System) Close() error { return s.sys.Close() }

// Stats aggregates statistics across all threads (and, after Close, the
// servers). Call while quiescent.
func (s *System) Stats() Stats { return s.sys.Stats() }

// Algo returns the engine this system runs.
func (s *System) Algo() Algo { return s.sys.Algo() }

// Tracer returns the lifecycle-event trace, or nil when Config.Trace is
// unset. Export it (WriteChromeTrace, Summary) only after the system has
// quiesced — after Close, or with all threads idle.
func (s *System) Tracer() *Tracer { return s.sys.Tracer() }

// ConflictReport returns the conflict-attribution snapshot. Safe to call
// while transactions run; with Config.Attribution unset the report carries
// only the Stats totals and Enabled=false.
func (s *System) ConflictReport() ConflictReport { return s.sys.ConflictReport() }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.sys.Config() }

// Shards returns the effective commit-stream count (Config.Shards after
// validation; 1 unless sharding was requested).
func (s *System) Shards() int { return s.sys.Shards() }

// ShardServerStats returns one Stats per commit stream — shard j's
// commit-server counters folded with its invalidation-servers', including
// per-shard phase histograms and the cross-shard-commit count. Nil for
// engines without shard servers (everything but RInval). Call after Close.
func (s *System) ShardServerStats() []Stats { return s.sys.ShardServerStats() }

// LatencyReport returns the critical-path latency decomposition. Safe to
// call while transactions run (the recorder's cells are single-writer
// atomics); with Config.Latency unset the report carries Enabled=false and
// empty phases.
func (s *System) LatencyReport() LatencyReport { return s.sys.LatencyReport() }

// ServerPhaseHistograms returns the commit-server phase histograms
// (Stats.Server) as exportable OpenMetrics histogram children, one per
// phase (and per shard when sharding). The underlying histograms are folded
// at Close, so call after Close; for a live view use
// LatencyReport's server phases instead.
func (s *System) ServerPhaseHistograms() []NamedHistogram {
	return s.sys.ServerPhaseHistograms()
}

// TimeSeriesReport returns the windowed-telemetry view. Safe to call while
// transactions run; Enabled=false when Config.TimeSeries is off.
func (s *System) TimeSeriesReport() TimeSeriesReport { return s.sys.TimeSeriesReport() }

// DumpFlightBundle writes a flight-recorder bundle (latency report, conflict
// report, trace-ring snapshots, goroutine stacks) to Config.FlightDir and
// returns the file path. Safe while transactions run; this is the same dump
// the anomaly detector triggers, exposed for operator-initiated snapshots.
func (s *System) DumpFlightBundle(reason string) (string, error) {
	return s.sys.DumpFlightBundle(reason)
}

// ShardOf returns the index of the commit stream that owns v under s —
// which commit-server serializes writes to it (always 0 when Shards == 1).
// A package-level function rather than a Var method because methods cannot
// introduce type parameters.
func ShardOf[T any](s *System, v *Var[T]) int { return s.sys.VarShard(v.v) }

// Thread is a registered participant: one entry of the cache-aligned
// requests array. Use from a single goroutine at a time.
type Thread struct {
	th *core.Thread
}

// Atomically executes fn as a transaction, retrying until it commits. A
// non-nil error from fn aborts the transaction (discarding its writes) and
// is returned.
//
// The wrapper Tx is a local of this call, not Thread state: parking the
// *core.Tx in a long-lived struct would let it outlive the atomic block it
// is only valid inside (stmlint's tx-escape check rejects exactly that).
// Retries reuse the same local, so the cost is one stack slot per
// Atomically call, not per attempt.
func (t *Thread) Atomically(fn func(*Tx) error) error {
	var tx Tx
	return t.th.Atomically(func(inner *core.Tx) error {
		tx.inner = inner
		return fn(&tx)
	})
}

// AtomicallyRO executes fn as a read-only transaction. With Config.Versions
// set, fn reads a consistent multi-version snapshot and can never abort or
// appear in an invalidation scan (a reader the writers lap re-runs once on
// the regular path — see Stats.ROFallbacks); with Versions unset it behaves
// like Atomically. fn must not Store (it panics); a non-nil error from fn is
// returned as a user abort, as in Atomically.
func (t *Thread) AtomicallyRO(fn func(*Tx) error) error {
	var tx Tx
	return t.th.AtomicallyRO(func(inner *core.Tx) error {
		tx.inner = inner
		return fn(&tx)
	})
}

// Close releases the thread's slot.
func (t *Thread) Close() { t.th.Close() }

// ID returns the thread's slot index.
func (t *Thread) ID() int { return t.th.ID() }

// Stats returns this thread's counters.
func (t *Thread) Stats() Stats { return t.th.Stats() }

// Tx is a transaction handle, valid only inside the Atomically callback that
// received it. Access Vars through their Load/Store methods.
type Tx struct {
	inner *core.Tx
}

// Attempt returns the 1-based attempt number of the current execution.
func (tx *Tx) Attempt() int { return tx.inner.Attempt() }

// Var is a transactional memory cell holding a T. Values stored in a Var
// should be immutable or treated as such: a transaction that mutates a
// loaded pointer/slice in place bypasses conflict detection.
type Var[T any] struct {
	v *core.Var
}

// NewVar returns a Var initialized to initial.
func NewVar[T any](initial T) *Var[T] {
	return &Var[T]{v: core.NewVar(initial)}
}

// NewVarNamed returns a Var labeled for conflict attribution: the name
// appears in ConflictReport's hot-var table and on the stmtop dashboard in
// place of the raw Var id. The label costs one registry insert at
// construction and nothing on any hot path.
func NewVarNamed[T any](initial T, name string) *Var[T] {
	return &Var[T]{v: core.NewVarNamed(initial, name)}
}

// VarName returns the label a Var id was given via NewVarNamed, or "".
func VarName(id uint64) string { return core.VarName(id) }

// Load returns the transaction's view of the Var.
func (v *Var[T]) Load(tx *Tx) T {
	return tx.inner.Load(v.v).(T)
}

// Store buffers a write; it becomes visible atomically when tx commits.
func (v *Var[T]) Store(tx *Tx, val T) {
	tx.inner.Store(v.v, val)
}

// Peek returns the committed value without transactional protection — for
// quiescent inspection (setup, teardown, assertions) only.
func (v *Var[T]) Peek() T { return v.v.Peek().(T) }

// Set replaces the committed value without transactional protection — for
// quiescent setup only.
func (v *Var[T]) Set(val T) { v.v.Set(val) }

// ID returns the Var's stable identity (used by bloom signatures).
func (v *Var[T]) ID() uint64 { return v.v.ID() }

// Modify applies f to the Var's current value inside tx and stores the
// result — the read-modify-write idiom in one call.
func (v *Var[T]) Modify(tx *Tx, f func(T) T) {
	v.Store(tx, f(v.Load(tx)))
}
