package stm_test

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ssrg-vt/rinval/stm"
)

// Transfers between two accounts are atomic: no interleaving can observe or
// produce a state where money is created or destroyed.
func ExampleThread_Atomically() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV1, MaxThreads: 4})
	defer sys.Close()

	checking := stm.NewVar(100)
	savings := stm.NewVar(0)

	th := sys.MustRegister()
	defer th.Close()
	_ = th.Atomically(func(tx *stm.Tx) error {
		amount := 40
		checking.Store(tx, checking.Load(tx)-amount)
		savings.Store(tx, savings.Load(tx)+amount)
		return nil
	})
	fmt.Println(checking.Peek(), savings.Peek())
	// Output: 60 40
}

// Returning an error aborts the transaction: buffered writes are discarded
// and the error is handed back to the caller.
func ExampleThread_Atomically_abort() {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 2, InvalServers: 1})
	defer sys.Close()

	balance := stm.NewVar(10)
	errInsufficient := errors.New("insufficient funds")

	th := sys.MustRegister()
	defer th.Close()
	err := th.Atomically(func(tx *stm.Tx) error {
		b := balance.Load(tx)
		if b < 50 {
			return errInsufficient
		}
		balance.Store(tx, b-50)
		return nil
	})
	fmt.Println(err, balance.Peek())
	// Output: insufficient funds 10
}

// Modify is the read-modify-write idiom in one call; under contention the
// whole transaction retries until the update applies atomically.
func ExampleVar_Modify() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2})
	defer sys.Close()

	hits := stm.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for i := 0; i < 250; i++ {
				_ = th.Atomically(func(tx *stm.Tx) error {
					hits.Modify(tx, func(h int) int { return h + 1 })
					return nil
				})
			}
		}()
	}
	wg.Wait()
	fmt.Println(hits.Peek())
	// Output: 1000
}

// Engines are interchangeable behind one API; pick by name at runtime.
func ExampleParseAlgo() {
	algo, err := stm.ParseAlgo("rinval-v2")
	if err != nil {
		panic(err)
	}
	sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 4})
	defer sys.Close()
	fmt.Println(sys.Algo())
	// Output: rinval-v2
}
