// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark prints (or reports as metrics) the same series the paper
// plots; run them all with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks come in two flavours: *Sim runs the deterministic
// 64-core discrete-event model (paper-shape results on any host), *Live runs
// the real engines on this machine. EXPERIMENTS.md records paper-vs-measured
// for every entry.
package rinval_test

import (
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/bench"
	"github.com/ssrg-vt/rinval/internal/sim"
	"github.com/ssrg-vt/rinval/stm"
)

// paperThreads is the thread axis the paper sweeps.
var paperThreads = []int{2, 4, 8, 16, 24, 32, 48, 64}

// reportSeries publishes one throughput metric per (algo, threads) cell.
func reportSeries(b *testing.B, t *bench.Table) {
	b.Helper()
	for _, r := range t.Rows {
		b.ReportMetric(r.KTxPerSec, r.Algo+"/"+itoa(r.Threads)+"_ktx/s")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Figure 2: red-black tree critical-path breakdown ---

func BenchmarkFigure2Sim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimFigure2([]int{8, 16, 32, 48}, 1)
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(100*r.CommitFrac, r.Algo+"/"+itoa(r.Threads)+"_commit%")
			}
		}
	}
}

func BenchmarkFigure2Live(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveFigure2([]int{2, 4}, 50*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(100*r.CommitFrac, r.Algo+"/"+itoa(r.Threads)+"_commit%")
			}
		}
	}
}

// --- Figure 3: STAMP breakdown ---

func BenchmarkFigure3Sim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimFigure3(32, 1)
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(100*r.CommitFrac, r.Algo+"_commit%")
			}
		}
	}
}

// --- Figure 7: red-black tree throughput ---

func BenchmarkFigure7aSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimFigure7(50, paperThreads, 1)
		if i == 0 {
			reportSeries(b, t)
		}
	}
}

func BenchmarkFigure7bSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimFigure7(80, paperThreads, 1)
		if i == 0 {
			reportSeries(b, t)
		}
	}
}

func BenchmarkFigure7aLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveFigure7(50, []int{2, 4}, 50*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, t)
		}
	}
}

func BenchmarkFigure7bLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveFigure7(80, []int{2, 4}, 50*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportSeries(b, t)
		}
	}
}

// --- Figure 8: STAMP execution times (one benchmark per panel) ---

func benchFig8Sim(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := bench.SimFigure8(app, paperThreads, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(r.Elapsed.Seconds()*1e3, r.Algo+"/"+itoa(r.Threads)+"_ms")
			}
		}
	}
}

func BenchmarkFigure8KmeansSim(b *testing.B)    { benchFig8Sim(b, "kmeans") }
func BenchmarkFigure8Ssca2Sim(b *testing.B)     { benchFig8Sim(b, "ssca2") }
func BenchmarkFigure8LabyrinthSim(b *testing.B) { benchFig8Sim(b, "labyrinth") }
func BenchmarkFigure8IntruderSim(b *testing.B)  { benchFig8Sim(b, "intruder") }
func BenchmarkFigure8GenomeSim(b *testing.B)    { benchFig8Sim(b, "genome") }
func BenchmarkFigure8VacationSim(b *testing.B)  { benchFig8Sim(b, "vacation") }

func benchFig8Live(b *testing.B, app string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveFigure8(app, []int{2, 4}, bench.ScaleSmall, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(r.Elapsed.Seconds()*1e3, r.Algo+"/"+itoa(r.Threads)+"_ms")
			}
		}
	}
}

func BenchmarkFigure8KmeansLive(b *testing.B)    { benchFig8Live(b, "kmeans") }
func BenchmarkFigure8Ssca2Live(b *testing.B)     { benchFig8Live(b, "ssca2") }
func BenchmarkFigure8LabyrinthLive(b *testing.B) { benchFig8Live(b, "labyrinth") }
func BenchmarkFigure8IntruderLive(b *testing.B)  { benchFig8Live(b, "intruder") }
func BenchmarkFigure8GenomeLive(b *testing.B)    { benchFig8Live(b, "genome") }
func BenchmarkFigure8VacationLive(b *testing.B)  { benchFig8Live(b, "vacation") }
func BenchmarkFigure3BayesLive(b *testing.B)     { benchFig8Live(b, "bayes") }

// --- Ablations (DESIGN.md A1-A4) ---

// BenchmarkAblationInvalServers sweeps RInval-V2's invalidation-server
// count (paper §IV-B: 4-8 suffice on 64 cores).
func BenchmarkAblationInvalServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimAblationInvalServers([]int{1, 2, 4, 8, 16}, 48, 1)
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(r.KTxPerSec, r.Algo+"_ktx/s")
			}
		}
	}
}

// BenchmarkAblationStepsAhead sweeps RInval-V3's step-ahead window under
// injected invalidation-server delay (paper §IV-C: V3 tolerates a lagging
// server; without lag V3 ~= V2).
func BenchmarkAblationStepsAhead(b *testing.B) {
	p := sim.DefaultParams()
	w := sim.RBTree(50)
	for i := 0; i < b.N; i++ {
		for _, steps := range []int{1, 2, 4, 8} {
			c := sim.DefaultConfig(sim.RInvalV3, 48)
			c.StepsAhead = steps
			c.Duration = 10_000_000
			r := sim.MustRun(p, w, c)
			if i == 0 {
				b.ReportMetric(r.ThroughputKTxPerSec(p), "steps"+itoa(steps)+"_ktx/s")
			}
		}
	}
}

// BenchmarkAblationBloomBits runs the live false-conflict sweep: smaller
// read/write signatures doom more readers spuriously.
func BenchmarkAblationBloomBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveAblationBloomBits([]int{64, 1024}, 2, 40*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(float64(r.Aborts), r.Algo+"_aborts")
			}
		}
	}
}

// BenchmarkAblationCM compares contention managers on the live tree: the
// paper's committer-wins base rule, its backoff CM, and the future-work
// reader-biased CM (§V).
func BenchmarkAblationCM(b *testing.B) {
	for _, cm := range []stm.CMPolicy{stm.CMCommitterWins, stm.CMBackoff, stm.CMReaderBiased} {
		cm := cm
		b.Run(cm.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := stm.New(stm.Config{
					Algo: stm.RInvalV2, MaxThreads: 4, InvalServers: 2, CM: cm,
				})
				if err != nil {
					b.Fatal(err)
				}
				counter := stm.NewVar(0)
				th := sys.MustRegister()
				for j := 0; j < 200; j++ {
					_ = th.Atomically(func(tx *stm.Tx) error {
						counter.Store(tx, counter.Load(tx)+1)
						return nil
					})
				}
				th.Close()
				if err := sys.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReadSetSize sweeps transaction read-set size — the
// paper's §II validation-vs-invalidation cost argument.
func BenchmarkAblationReadSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimAblationReadSetSize([]int{8, 128}, 16, 1)
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(r.KTxPerSec, r.Algo+"_ktx/s")
			}
		}
	}
}

// BenchmarkAblationCoarseVsFine compares the coarse family against the
// TL2-style fine-grained baseline (§III granularity trade-off).
func BenchmarkAblationCoarseVsFine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.SimAblationCoarseVsFine([]int{4, 48}, 1)
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(r.KTxPerSec, r.Algo+"/"+itoa(r.Threads)+"_ktx/s")
			}
		}
	}
}

// BenchmarkLatencyProfile reports live per-transaction latency percentiles.
func BenchmarkLatencyProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.LiveLatencyProfile([]stm.Algo{stm.NOrec, stm.RInvalV2}, 2, 40*time.Millisecond, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range t.Rows {
				b.ReportMetric(float64(r.P99.Nanoseconds()), r.Algo+"_p99ns")
			}
		}
	}
}

// BenchmarkEngineSingleThreadOverhead measures the per-transaction cost of
// each engine with no contention — the "price of generality" the paper's
// Figure 1 discusses.
func BenchmarkEngineSingleThreadOverhead(b *testing.B) {
	for _, a := range stm.Algos {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			sys, err := stm.New(stm.Config{Algo: a, MaxThreads: 2, InvalServers: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			th := sys.MustRegister()
			defer th.Close()
			v := stm.NewVar(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomically(func(tx *stm.Tx) error {
					v.Store(tx, v.Load(tx)+1)
					return nil
				})
			}
		})
	}
}
