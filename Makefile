GO ?= go

.PHONY: verify build test vet lint race bench-groupcommit

## verify: the full pre-merge gate — vet, the invariant linter, build, tests,
## and the race detector over the packages with real concurrency.
verify: vet lint build test race

vet:
	$(GO) vet ./...

## lint: machine-check the STM's concurrency invariants (mixed atomic/plain
## access, cache-line padding, *Tx escape, abort taxonomy, hot-path hygiene).
lint:
	$(GO) run ./cmd/stmlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -count=1 ./internal/core/ ./stm/ ./internal/obs/ ./internal/bloom/ ./internal/padded/

## bench-groupcommit: regenerate results/BENCH_group_commit.json (live mode).
bench-groupcommit:
	$(GO) run ./cmd/rinval-bench -exp groupcommit -mode live
