GO ?= go

.PHONY: verify build test vet race bench-groupcommit

## verify: the full pre-merge gate — vet, build, tests, and the race
## detector over the packages with real concurrency.
verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/core/ ./stm/

## bench-groupcommit: regenerate results/BENCH_group_commit.json (live mode).
bench-groupcommit:
	$(GO) run ./cmd/rinval-bench -exp groupcommit -mode live
