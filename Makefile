GO ?= go

.PHONY: verify build test vet lint lint-github race bench-groupcommit bench-scan bench-conflict bench-shard bench-latency bench-mvro bench-tsdb

## verify: the full pre-merge gate — vet, the invariant linter, build, tests,
## and the race detector over the packages with real concurrency.
verify: vet lint build test race

vet:
	$(GO) vet ./...

## lint: machine-check the STM's concurrency invariants (mixed atomic/plain
## access, cache-line padding, *Tx escape, abort taxonomy, hot-path hygiene,
## and the CFG/dataflow suite: lock-order, atomic-publish, hot-path-deep,
## taxonomy-path).
lint:
	$(GO) run ./cmd/stmlint ./...

## lint-github: same checks, emitted as GitHub Actions ::error annotations so
## CI runs attach diagnostics to the offending lines in the diff view.
lint-github:
	$(GO) run ./cmd/stmlint -github ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -count=1 ./internal/core/ ./stm/ ./internal/obs/ ./internal/bloom/ ./internal/padded/ ./internal/analysis/

## bench-groupcommit: regenerate results/BENCH_group_commit.json (live mode).
bench-groupcommit:
	$(GO) run ./cmd/rinval-bench -exp groupcommit -mode live

## bench-scan: short-mode invalidation-scan sweep (flat vs two-level) into
## results/BENCH_inval_scan.json. The checked-in report uses -iters 3000;
## this target trades stability for speed so CI can smoke-run it.
bench-scan:
	$(GO) run ./cmd/rinval-bench -exp invalscan -mode live -iters 300

## bench-conflict: short-mode conflict-attribution sweep (FP rate, hot-var
## skew, wasted work) into results/BENCH_conflict_attr.json. The checked-in
## report uses -iters 400; this target is sized for a CI smoke run.
bench-conflict:
	$(GO) run ./cmd/rinval-bench -exp conflict -mode live -iters 100

## bench-shard: short-mode sharded-commit-stream sweep (sim scaling + live
## parity/handshake points) into results/BENCH_shard_sweep.json. The
## checked-in report uses -iters 400; this target is sized for a CI smoke run.
bench-shard:
	$(GO) run ./cmd/rinval-bench -exp shardsweep -iters 100

## bench-latency: short-mode critical-path latency decomposition sweep
## (phase p50/p99 per engine x threads x shards) into
## results/BENCH_latency_slo.json. The checked-in report uses -iters 2000;
## this target is sized for a CI smoke run.
bench-latency:
	$(GO) run ./cmd/rinval-bench -exp latencyslo -mode live -iters 300

## bench-mvro: short-mode multi-version read-only sweep (read-ratio x clients
## x Config.Versions) into results/BENCH_mv_readonly.json. The checked-in
## report uses -duration 150ms; this target is sized for a CI smoke run.
bench-mvro:
	$(GO) run ./cmd/rinval-bench -exp mvreadonly -mode live -duration 40ms

## bench-tsdb: SLO burn-rate monitor smoke into results/BENCH_slo_burn.json —
## a steady control run must record zero alerts, a planted phase change must
## trip the abort-rate objective's fast and slow burn windows — plus the
## hot-path overhead proof (TimeSeries off vs on, allocs must match).
bench-tsdb:
	$(GO) run ./cmd/rinval-bench -exp sloburn -mode live
	$(GO) test ./internal/core/ -run TestTimeSeriesOffZeroAllocs -count=1 -v
	$(GO) test ./internal/core/ -run none -bench BenchmarkTimeSeriesOverhead -benchmem -benchtime 20000x
