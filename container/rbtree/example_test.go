package rbtree_test

import (
	"fmt"

	"github.com/ssrg-vt/rinval/container/rbtree"
	"github.com/ssrg-vt/rinval/stm"
)

// The tree is an ordered transactional map; lookups, inserts, and deletes
// compose into larger atomic operations.
func ExampleTree() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 4, InvalServers: 2})
	defer sys.Close()
	th := sys.MustRegister()
	defer th.Close()

	prices := rbtree.New()
	_ = th.Atomically(func(tx *stm.Tx) error {
		prices.Insert(tx, 100, 5)
		prices.Insert(tx, 200, 7)
		prices.Insert(tx, 150, 6)
		return nil
	})
	// Atomic read-modify across keys: move quantity from one price level to
	// another, observing a consistent book throughout.
	_ = th.Atomically(func(tx *stm.Tx) error {
		q, _ := prices.Get(tx, 100)
		prices.Delete(tx, 100)
		old, _ := prices.Get(tx, 150)
		prices.Insert(tx, 150, old+q)
		return nil
	})
	fmt.Println(prices.Keys())
	v, _ := prices.GetQuiescent(150)
	fmt.Println(v)
	// Output:
	// [150 200]
	// 11
}
