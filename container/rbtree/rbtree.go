// Package rbtree implements a transactional red-black tree set/map — the
// micro-benchmark of the paper's Figures 2 and 7 (64K-element tree, 50%/80%
// lookup mixes).
//
// Every node field (key, value, links, color) is its own transactional Var,
// so a lookup's read set is ~2 Vars per level and an insert/delete writes
// only the rebalancing path — the access pattern that makes the tree a good
// STM stressor: long read chains (quadratic incremental validation hurts)
// and small, conflict-prone writes near the root.
//
// The algorithm is the classic parent-pointer red-black tree with nil-safe
// helpers (colorOf(nil) = black) rather than a shared sentinel node: a
// sentinel's mutable parent field would be written by every structural
// delete, manufacturing false conflicts between otherwise disjoint
// transactions.
package rbtree

import (
	"fmt"

	"github.com/ssrg-vt/rinval/stm"
)

// node is one tree entry. Key is mutable (a Var) because deletion of a
// two-child node copies the successor's key/value into it, as in the
// textbook algorithm.
type node struct {
	key    *stm.Var[int]
	value  *stm.Var[int]
	left   *stm.Var[*node]
	right  *stm.Var[*node]
	parent *stm.Var[*node]
	red    *stm.Var[bool]
}

func newNode(key, value int, parent *node) *node {
	return &node{
		key:    stm.NewVar(key),
		value:  stm.NewVar(value),
		left:   stm.NewVar[*node](nil),
		right:  stm.NewVar[*node](nil),
		parent: stm.NewVar(parent),
		red:    stm.NewVar(false),
	}
}

// Tree is a transactional ordered map from int keys to int values. All
// operations must run inside a transaction; Check* and Keys are quiescent
// helpers for tests and validation.
type Tree struct {
	root *stm.Var[*node]
	size *stm.Var[int]
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{
		root: stm.NewVar[*node](nil),
		size: stm.NewVar(0),
	}
}

// nil-safe accessors. A nil node reads as a black leaf with no links, which
// collapses the textbook's sentinel special cases.

func leftOf(tx *stm.Tx, n *node) *node {
	if n == nil {
		return nil
	}
	return n.left.Load(tx)
}

func rightOf(tx *stm.Tx, n *node) *node {
	if n == nil {
		return nil
	}
	return n.right.Load(tx)
}

func parentOf(tx *stm.Tx, n *node) *node {
	if n == nil {
		return nil
	}
	return n.parent.Load(tx)
}

func isRed(tx *stm.Tx, n *node) bool {
	return n != nil && n.red.Load(tx)
}

func setRed(tx *stm.Tx, n *node, red bool) {
	if n != nil {
		n.red.Store(tx, red)
	}
}

// lookup returns the node with the given key, or nil.
func (t *Tree) lookup(tx *stm.Tx, key int) *node {
	n := t.root.Load(tx)
	for n != nil {
		k := n.key.Load(tx)
		switch {
		case key < k:
			n = n.left.Load(tx)
		case key > k:
			n = n.right.Load(tx)
		default:
			return n
		}
	}
	return nil
}

// Contains reports whether key is present.
func (t *Tree) Contains(tx *stm.Tx, key int) bool {
	return t.lookup(tx, key) != nil
}

// Get returns the value stored for key.
func (t *Tree) Get(tx *stm.Tx, key int) (int, bool) {
	n := t.lookup(tx, key)
	if n == nil {
		return 0, false
	}
	return n.value.Load(tx), true
}

// Size returns the number of keys.
func (t *Tree) Size(tx *stm.Tx) int { return t.size.Load(tx) }

// Insert adds key->value, returning true if the key was absent. An existing
// key has its value replaced (and Insert returns false).
func (t *Tree) Insert(tx *stm.Tx, key, value int) bool {
	cur := t.root.Load(tx)
	if cur == nil {
		t.root.Store(tx, newNode(key, value, nil))
		t.size.Store(tx, 1)
		return true
	}
	var parent *node
	var wentLeft bool
	for cur != nil {
		parent = cur
		k := cur.key.Load(tx)
		switch {
		case key < k:
			cur = cur.left.Load(tx)
			wentLeft = true
		case key > k:
			cur = cur.right.Load(tx)
			wentLeft = false
		default:
			cur.value.Store(tx, value)
			return false
		}
	}
	n := newNode(key, value, parent)
	n.red.Set(true) // freshly allocated, not yet visible: Set is safe
	if wentLeft {
		parent.left.Store(tx, n)
	} else {
		parent.right.Store(tx, n)
	}
	t.fixAfterInsertion(tx, n)
	t.size.Store(tx, t.size.Load(tx)+1)
	return true
}

func (t *Tree) rotateLeft(tx *stm.Tx, p *node) {
	r := p.right.Load(tx)
	rl := r.left.Load(tx)
	p.right.Store(tx, rl)
	if rl != nil {
		rl.parent.Store(tx, p)
	}
	pp := p.parent.Load(tx)
	r.parent.Store(tx, pp)
	if pp == nil {
		t.root.Store(tx, r)
	} else if pp.left.Load(tx) == p {
		pp.left.Store(tx, r)
	} else {
		pp.right.Store(tx, r)
	}
	r.left.Store(tx, p)
	p.parent.Store(tx, r)
}

func (t *Tree) rotateRight(tx *stm.Tx, p *node) {
	l := p.left.Load(tx)
	lr := l.right.Load(tx)
	p.left.Store(tx, lr)
	if lr != nil {
		lr.parent.Store(tx, p)
	}
	pp := p.parent.Load(tx)
	l.parent.Store(tx, pp)
	if pp == nil {
		t.root.Store(tx, l)
	} else if pp.right.Load(tx) == p {
		pp.right.Store(tx, l)
	} else {
		pp.left.Store(tx, l)
	}
	l.right.Store(tx, p)
	p.parent.Store(tx, l)
}

func (t *Tree) fixAfterInsertion(tx *stm.Tx, x *node) {
	for x != nil && x != t.root.Load(tx) && isRed(tx, parentOf(tx, x)) {
		p := parentOf(tx, x)
		g := parentOf(tx, p)
		if p == leftOf(tx, g) {
			u := rightOf(tx, g)
			if isRed(tx, u) {
				setRed(tx, p, false)
				setRed(tx, u, false)
				setRed(tx, g, true)
				x = g
			} else {
				if x == rightOf(tx, p) {
					x = p
					t.rotateLeft(tx, x)
					p = parentOf(tx, x)
					g = parentOf(tx, p)
				}
				setRed(tx, p, false)
				setRed(tx, g, true)
				if g != nil {
					t.rotateRight(tx, g)
				}
			}
		} else {
			u := leftOf(tx, g)
			if isRed(tx, u) {
				setRed(tx, p, false)
				setRed(tx, u, false)
				setRed(tx, g, true)
				x = g
			} else {
				if x == leftOf(tx, p) {
					x = p
					t.rotateRight(tx, x)
					p = parentOf(tx, x)
					g = parentOf(tx, p)
				}
				setRed(tx, p, false)
				setRed(tx, g, true)
				if g != nil {
					t.rotateLeft(tx, g)
				}
			}
		}
	}
	setRed(tx, t.root.Load(tx), false)
}

// successor returns the node with the smallest key greater than n's.
func successor(tx *stm.Tx, n *node) *node {
	if r := rightOf(tx, n); r != nil {
		for l := leftOf(tx, r); l != nil; l = leftOf(tx, r) {
			r = l
		}
		return r
	}
	p := parentOf(tx, n)
	ch := n
	for p != nil && ch == rightOf(tx, p) {
		ch = p
		p = parentOf(tx, p)
	}
	return p
}

// Delete removes key, returning true if it was present.
func (t *Tree) Delete(tx *stm.Tx, key int) bool {
	p := t.lookup(tx, key)
	if p == nil {
		return false
	}
	t.deleteNode(tx, p)
	t.size.Store(tx, t.size.Load(tx)-1)
	return true
}

func (t *Tree) deleteNode(tx *stm.Tx, p *node) {
	// Two children: copy successor's key/value into p, then delete the
	// successor (which has at most one child).
	if leftOf(tx, p) != nil && rightOf(tx, p) != nil {
		s := successor(tx, p)
		p.key.Store(tx, s.key.Load(tx))
		p.value.Store(tx, s.value.Load(tx))
		p = s
	}
	repl := leftOf(tx, p)
	if repl == nil {
		repl = rightOf(tx, p)
	}
	pp := parentOf(tx, p)
	if repl != nil {
		// Splice out p, linking repl in its place.
		repl.parent.Store(tx, pp)
		if pp == nil {
			t.root.Store(tx, repl)
		} else if p == leftOf(tx, pp) {
			pp.left.Store(tx, repl)
		} else {
			pp.right.Store(tx, repl)
		}
		p.left.Store(tx, nil)
		p.right.Store(tx, nil)
		p.parent.Store(tx, nil)
		if !isRed(tx, p) {
			t.fixAfterDeletion(tx, repl)
		}
	} else if pp == nil {
		// p was the only node.
		t.root.Store(tx, nil)
	} else {
		// p is a leaf: fix up first (using p as the doubly black phantom),
		// then unlink.
		if !isRed(tx, p) {
			t.fixAfterDeletion(tx, p)
		}
		pp2 := parentOf(tx, p)
		if pp2 != nil {
			if p == leftOf(tx, pp2) {
				pp2.left.Store(tx, nil)
			} else {
				pp2.right.Store(tx, nil)
			}
			p.parent.Store(tx, nil)
		}
	}
}

func (t *Tree) fixAfterDeletion(tx *stm.Tx, x *node) {
	for x != t.root.Load(tx) && !isRed(tx, x) {
		p := parentOf(tx, x)
		if x == leftOf(tx, p) {
			sib := rightOf(tx, p)
			if isRed(tx, sib) {
				setRed(tx, sib, false)
				setRed(tx, p, true)
				t.rotateLeft(tx, p)
				p = parentOf(tx, x)
				sib = rightOf(tx, p)
			}
			if !isRed(tx, leftOf(tx, sib)) && !isRed(tx, rightOf(tx, sib)) {
				setRed(tx, sib, true)
				x = p
			} else {
				if !isRed(tx, rightOf(tx, sib)) {
					setRed(tx, leftOf(tx, sib), false)
					setRed(tx, sib, true)
					t.rotateRight(tx, sib)
					p = parentOf(tx, x)
					sib = rightOf(tx, p)
				}
				setRed(tx, sib, isRed(tx, p))
				setRed(tx, p, false)
				setRed(tx, rightOf(tx, sib), false)
				t.rotateLeft(tx, p)
				x = t.root.Load(tx)
			}
		} else {
			sib := leftOf(tx, p)
			if isRed(tx, sib) {
				setRed(tx, sib, false)
				setRed(tx, p, true)
				t.rotateRight(tx, p)
				p = parentOf(tx, x)
				sib = leftOf(tx, p)
			}
			if !isRed(tx, rightOf(tx, sib)) && !isRed(tx, leftOf(tx, sib)) {
				setRed(tx, sib, true)
				x = p
			} else {
				if !isRed(tx, leftOf(tx, sib)) {
					setRed(tx, rightOf(tx, sib), false)
					setRed(tx, sib, true)
					t.rotateLeft(tx, sib)
					p = parentOf(tx, x)
					sib = leftOf(tx, p)
				}
				setRed(tx, sib, isRed(tx, p))
				setRed(tx, p, false)
				setRed(tx, leftOf(tx, sib), false)
				t.rotateRight(tx, p)
				x = t.root.Load(tx)
			}
		}
	}
	setRed(tx, x, false)
}

// --- Quiescent helpers (no transaction; for setup, tests, validation) ---

// Keys returns the keys in order. Quiescent only.
func (t *Tree) Keys() []int {
	var out []int
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left.Peek())
		out = append(out, n.key.Peek())
		walk(n.right.Peek())
	}
	walk(t.root.Peek())
	return out
}

// SizeQuiescent returns the size counter without a transaction.
func (t *Tree) SizeQuiescent() int { return t.size.Peek() }

// GetQuiescent returns the value stored for key without a transaction.
// Quiescent only.
func (t *Tree) GetQuiescent(key int) (int, bool) {
	n := t.root.Peek()
	for n != nil {
		k := n.key.Peek()
		switch {
		case key < k:
			n = n.left.Peek()
		case key > k:
			n = n.right.Peek()
		default:
			return n.value.Peek(), true
		}
	}
	return 0, false
}

// CheckInvariants verifies, quiescently, every red-black property plus BST
// order, parent-link integrity, and the size counter. It returns the first
// violation found.
func (t *Tree) CheckInvariants() error {
	root := t.root.Peek()
	if root == nil {
		if n := t.size.Peek(); n != 0 {
			return fmt.Errorf("empty tree but size=%d", n)
		}
		return nil
	}
	if root.red.Peek() {
		return fmt.Errorf("root is red")
	}
	if root.parent.Peek() != nil {
		return fmt.Errorf("root has a parent")
	}
	count := 0
	var check func(n *node, min, max int, haveMin, haveMax bool) (blackHeight int, err error)
	check = func(n *node, min, max int, haveMin, haveMax bool) (int, error) {
		if n == nil {
			return 1, nil
		}
		count++
		k := n.key.Peek()
		if haveMin && k <= min {
			return 0, fmt.Errorf("BST violation: key %d <= bound %d", k, min)
		}
		if haveMax && k >= max {
			return 0, fmt.Errorf("BST violation: key %d >= bound %d", k, max)
		}
		l, r := n.left.Peek(), n.right.Peek()
		if l != nil && l.parent.Peek() != n {
			return 0, fmt.Errorf("parent link broken at key %d (left child)", k)
		}
		if r != nil && r.parent.Peek() != n {
			return 0, fmt.Errorf("parent link broken at key %d (right child)", k)
		}
		if n.red.Peek() {
			if l != nil && l.red.Peek() || r != nil && r.red.Peek() {
				return 0, fmt.Errorf("red node %d has a red child", k)
			}
		}
		lb, err := check(l, min, k, haveMin, true)
		if err != nil {
			return 0, err
		}
		rb, err := check(r, k, max, true, haveMax)
		if err != nil {
			return 0, err
		}
		if lb != rb {
			return 0, fmt.Errorf("black-height mismatch at key %d: %d vs %d", k, lb, rb)
		}
		if n.red.Peek() {
			return lb, nil
		}
		return lb + 1, nil
	}
	if _, err := check(root, 0, 0, false, false); err != nil {
		return err
	}
	if got := t.size.Peek(); got != count {
		return fmt.Errorf("size counter %d != node count %d", got, count)
	}
	return nil
}
