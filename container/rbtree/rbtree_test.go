package rbtree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ssrg-vt/rinval/stm"
)

func newSys(t *testing.T, algo stm.Algo) *stm.System {
	t.Helper()
	s, err := stm.New(stm.Config{Algo: algo, MaxThreads: 16, InvalServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// seed populates a tree quiescently through single-threaded transactions.
func seed(t *testing.T, s *stm.System, tree *Tree, keys []int) {
	t.Helper()
	th := s.MustRegister()
	defer th.Close()
	for _, k := range keys {
		k := k
		if err := th.Atomically(func(tx *stm.Tx) error {
			tree.Insert(tx, k, k*10)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	s := newSys(t, stm.NOrec)
	tree := New()
	th := s.MustRegister()
	defer th.Close()
	if err := th.Atomically(func(tx *stm.Tx) error {
		if tree.Contains(tx, 1) {
			t.Error("empty tree contains 1")
		}
		if tree.Delete(tx, 1) {
			t.Error("deleted from empty tree")
		}
		if tree.Size(tx) != 0 {
			t.Error("empty size != 0")
		}
		if _, ok := tree.Get(tx, 5); ok {
			t.Error("Get on empty")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookupDelete(t *testing.T) {
	s := newSys(t, stm.NOrec)
	tree := New()
	th := s.MustRegister()
	defer th.Close()
	keys := []int{50, 20, 80, 10, 30, 70, 90, 25, 35, 5, 1, 99, 60, 65}
	for _, k := range keys {
		k := k
		if err := th.Atomically(func(tx *stm.Tx) error {
			if !tree.Insert(tx, k, k*2) {
				t.Errorf("Insert(%d) said duplicate", k)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	_ = th.Atomically(func(tx *stm.Tx) error {
		for _, k := range keys {
			v, ok := tree.Get(tx, k)
			if !ok || v != k*2 {
				t.Errorf("Get(%d) = %d,%v", k, v, ok)
			}
		}
		if tree.Size(tx) != len(keys) {
			t.Errorf("size %d", tree.Size(tx))
		}
		return nil
	})
	// Duplicate insert updates value.
	_ = th.Atomically(func(tx *stm.Tx) error {
		if tree.Insert(tx, 50, 555) {
			t.Error("duplicate insert returned true")
		}
		if v, _ := tree.Get(tx, 50); v != 555 {
			t.Errorf("update lost: %d", v)
		}
		return nil
	})
	// Delete in a scrambled order, checking invariants at each step.
	order := append([]int(nil), keys...)
	rand.New(rand.NewSource(7)).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for i, k := range order {
		k := k
		_ = th.Atomically(func(tx *stm.Tx) error {
			if !tree.Delete(tx, k) {
				t.Errorf("Delete(%d) missed", k)
			}
			if tree.Delete(tx, k) {
				t.Errorf("double Delete(%d) succeeded", k)
			}
			return nil
		})
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d (#%d): %v", k, i, err)
		}
	}
	if tree.SizeQuiescent() != 0 {
		t.Fatalf("size %d after deleting all", tree.SizeQuiescent())
	}
}

func TestGetQuiescent(t *testing.T) {
	s := newSys(t, stm.NOrec)
	tree := New()
	seed(t, s, tree, []int{5, 2, 8, 1, 9})
	for _, k := range []int{5, 2, 8, 1, 9} {
		if v, ok := tree.GetQuiescent(k); !ok || v != k*10 {
			t.Fatalf("GetQuiescent(%d) = %d,%v", k, v, ok)
		}
	}
	if _, ok := tree.GetQuiescent(77); ok {
		t.Fatal("found phantom key")
	}
	empty := New()
	if _, ok := empty.GetQuiescent(1); ok {
		t.Fatal("found key in empty tree")
	}
}

func TestKeysSorted(t *testing.T) {
	s := newSys(t, stm.NOrec)
	tree := New()
	keys := rand.New(rand.NewSource(3)).Perm(200)
	seed(t, s, tree, keys)
	got := tree.Keys()
	if len(got) != len(keys) {
		t.Fatalf("got %d keys want %d", len(got), len(keys))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("Keys not sorted")
	}
}

// TestQuickMatchesModel drives random op sequences against both the tree
// and a map model, comparing results and checking RB invariants.
func TestQuickMatchesModel(t *testing.T) {
	s := newSys(t, stm.NOrec)
	th := s.MustRegister()
	defer th.Close()
	type op struct {
		Key   uint8
		Kind  uint8 // 0 insert, 1 delete, 2 contains
		Value int16
	}
	f := func(ops []op) bool {
		tree := New()
		model := map[int]int{}
		for _, o := range ops {
			k := int(o.Key) % 64
			var ok bool
			err := th.Atomically(func(tx *stm.Tx) error {
				switch o.Kind % 3 {
				case 0:
					ok = tree.Insert(tx, k, int(o.Value))
				case 1:
					ok = tree.Delete(tx, k)
				case 2:
					ok = tree.Contains(tx, k)
				}
				return nil
			})
			if err != nil {
				return false
			}
			switch o.Kind % 3 {
			case 0:
				_, existed := model[k]
				model[k] = int(o.Value)
				if ok == existed {
					return false
				}
			case 1:
				_, existed := model[k]
				delete(model, k)
				if ok != existed {
					return false
				}
			case 2:
				_, existed := model[k]
				if ok != existed {
					return false
				}
			}
			if tree.CheckInvariants() != nil {
				return false
			}
		}
		if tree.SizeQuiescent() != len(model) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedWorkload is the paper's micro-benchmark shape: a
// pre-populated tree under a lookup/insert/delete mix, across every engine,
// with full invariant validation afterwards.
func TestConcurrentMixedWorkload(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo)
			tree := New()
			const keyRange = 256
			initial := rand.New(rand.NewSource(11)).Perm(keyRange)[:keyRange/2]
			seed(t, s, tree, initial)

			const workers, opsEach = 6, 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					rng := rand.New(rand.NewSource(int64(100 + w)))
					for i := 0; i < opsEach; i++ {
						k := rng.Intn(keyRange)
						switch rng.Intn(4) {
						case 0:
							_ = th.Atomically(func(tx *stm.Tx) error {
								tree.Insert(tx, k, k)
								return nil
							})
						case 1:
							_ = th.Atomically(func(tx *stm.Tx) error {
								tree.Delete(tx, k)
								return nil
							})
						default:
							_ = th.Atomically(func(tx *stm.Tx) error {
								tree.Contains(tx, k)
								return nil
							})
						}
					}
				}()
			}
			wg.Wait()
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("invariants after concurrent run: %v", err)
			}
			keys := tree.Keys()
			if !sort.IntsAreSorted(keys) {
				t.Fatal("keys unsorted after concurrent run")
			}
		})
	}
}

// TestConcurrentSizeConsistency: inserts and deletes of disjoint key sets by
// concurrent threads must leave exactly the surviving keys.
func TestConcurrentSizeConsistency(t *testing.T) {
	for _, algo := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo)
			tree := New()
			const perWorker = 100
			const workers = 4
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					base := w * perWorker
					for i := 0; i < perWorker; i++ {
						k := base + i
						_ = th.Atomically(func(tx *stm.Tx) error {
							tree.Insert(tx, k, k)
							return nil
						})
					}
					// Delete the odd keys we inserted.
					for i := 1; i < perWorker; i += 2 {
						k := base + i
						_ = th.Atomically(func(tx *stm.Tx) error {
							if !tree.Delete(tx, k) {
								t.Errorf("lost key %d", k)
							}
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			want := workers * perWorker / 2
			if got := tree.SizeQuiescent(); got != want {
				t.Fatalf("size %d want %d", got, want)
			}
			for _, k := range tree.Keys() {
				if k%2 != 0 {
					t.Fatalf("odd key %d survived", k)
				}
			}
		})
	}
}

func BenchmarkLookupHit(b *testing.B) {
	s := stm.MustNew(stm.Config{Algo: stm.NOrec})
	defer s.Close()
	tree := New()
	th := s.MustRegister()
	defer th.Close()
	const n = 4096
	for i := 0; i < n; i++ {
		i := i
		_ = th.Atomically(func(tx *stm.Tx) error { tree.Insert(tx, i, i); return nil })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % n
		_ = th.Atomically(func(tx *stm.Tx) error { tree.Contains(tx, k); return nil })
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	s := stm.MustNew(stm.Config{Algo: stm.NOrec})
	defer s.Close()
	tree := New()
	th := s.MustRegister()
	defer th.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 8192
		_ = th.Atomically(func(tx *stm.Tx) error { tree.Insert(tx, k, k); return nil })
		_ = th.Atomically(func(tx *stm.Tx) error { tree.Delete(tx, k); return nil })
	}
}
