package rbtree

import (
	"testing"

	"github.com/ssrg-vt/rinval/stm"
)

// FuzzTreeVsModel drives the transactional tree from an arbitrary byte
// program (2 bytes per op: opcode, key) against a map model, checking
// results and red-black invariants after every operation.
func FuzzTreeVsModel(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 1, 10, 2, 20})
	f.Add([]byte{0, 1, 0, 1, 1, 1, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 400 {
			program = program[:400]
		}
		sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 2, InvalServers: 1})
		defer sys.Close()
		th := sys.MustRegister()
		defer th.Close()

		tree := New()
		model := map[int]int{}
		for i := 0; i+1 < len(program); i += 2 {
			op := program[i] % 3
			k := int(program[i+1])
			var got bool
			err := th.Atomically(func(tx *stm.Tx) error {
				switch op {
				case 0:
					got = tree.Insert(tx, k, k*3)
				case 1:
					got = tree.Delete(tx, k)
				case 2:
					got = tree.Contains(tx, k)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			_, existed := model[k]
			switch op {
			case 0:
				if got == existed {
					t.Fatalf("op %d Insert(%d): got %v, existed %v", i, k, got, existed)
				}
				model[k] = k * 3
			case 1:
				if got != existed {
					t.Fatalf("op %d Delete(%d): got %v, existed %v", i, k, got, existed)
				}
				delete(model, k)
			case 2:
				if got != existed {
					t.Fatalf("op %d Contains(%d): got %v, existed %v", i, k, got, existed)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if tree.SizeQuiescent() != len(model) {
			t.Fatalf("size %d != model %d", tree.SizeQuiescent(), len(model))
		}
	})
}
