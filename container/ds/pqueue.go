package ds

import "github.com/ssrg-vt/rinval/stm"

// pqNode is one node of the skew heap. key is immutable; children are
// transactional.
type pqNode struct {
	key   int
	val   int
	left  *stm.Var[*pqNode]
	right *stm.Var[*pqNode]
}

// PQueue is a transactional min-priority queue implemented as a skew heap:
// all structural updates are expressed through the self-adjusting merge, so
// the transactional footprint of an insert or pop is one root-to-leaf path
// (O(log n) amortized). Concurrent inserts near the root conflict — the
// structure is intentionally "generic STM" like the rest of this package.
type PQueue struct {
	root *stm.Var[*pqNode]
	size *stm.Var[int]
}

// NewPQueue returns an empty priority queue.
func NewPQueue() *PQueue {
	return &PQueue{
		root: stm.NewVar[*pqNode](nil),
		size: stm.NewVar(0),
	}
}

// merge combines two skew heaps, returning the new root. It writes the
// child links along the merge path (the skew swap).
func merge(tx *stm.Tx, a, b *pqNode) *pqNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.key < a.key {
		a, b = b, a
	}
	// Merge b into a's right child, then swap children (skew step).
	merged := merge(tx, a.right.Load(tx), b)
	l := a.left.Load(tx)
	a.left.Store(tx, merged)
	a.right.Store(tx, l)
	return a
}

// Insert adds key with an associated value.
func (q *PQueue) Insert(tx *stm.Tx, key, val int) {
	n := &pqNode{
		key:   key,
		val:   val,
		left:  stm.NewVar[*pqNode](nil),
		right: stm.NewVar[*pqNode](nil),
	}
	q.root.Store(tx, merge(tx, q.root.Load(tx), n))
	q.size.Store(tx, q.size.Load(tx)+1)
}

// Min returns the smallest key and its value without removing it.
func (q *PQueue) Min(tx *stm.Tx) (key, val int, ok bool) {
	r := q.root.Load(tx)
	if r == nil {
		return 0, 0, false
	}
	return r.key, r.val, true
}

// PopMin removes and returns the smallest key and its value.
func (q *PQueue) PopMin(tx *stm.Tx) (key, val int, ok bool) {
	r := q.root.Load(tx)
	if r == nil {
		return 0, 0, false
	}
	q.root.Store(tx, merge(tx, r.left.Load(tx), r.right.Load(tx)))
	q.size.Store(tx, q.size.Load(tx)-1)
	return r.key, r.val, true
}

// Size returns the element count.
func (q *PQueue) Size(tx *stm.Tx) int { return q.size.Load(tx) }

// CheckInvariants verifies, quiescently, the heap order property and that
// the size counter matches the node count.
func (q *PQueue) CheckInvariants() error {
	count := 0
	var walk func(n *pqNode, bound int, haveBound bool) error
	walk = func(n *pqNode, bound int, haveBound bool) error {
		if n == nil {
			return nil
		}
		count++
		if haveBound && n.key < bound {
			return skiplistError("pqueue: heap violation: child " + itoa(n.key) + " < parent " + itoa(bound))
		}
		if err := walk(n.left.Peek(), n.key, true); err != nil {
			return err
		}
		return walk(n.right.Peek(), n.key, true)
	}
	if err := walk(q.root.Peek(), 0, false); err != nil {
		return err
	}
	if got := q.size.Peek(); got != count {
		return skiplistError("pqueue: size " + itoa(got) + " != node count " + itoa(count))
	}
	return nil
}
