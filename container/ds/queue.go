package ds

import "github.com/ssrg-vt/rinval/stm"

// Queue is a transactional FIFO of T values, implemented as a linked list
// with separate head and tail Vars so enqueuers and dequeuers conflict only
// when the queue is near-empty — intruder's packet and decode queues.
type Queue[T any] struct {
	head *stm.Var[*qnode[T]] // next to dequeue
	tail *stm.Var[*qnode[T]] // last enqueued
	size *stm.Var[int]
}

type qnode[T any] struct {
	val  T
	next *stm.Var[*qnode[T]]
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] {
	return &Queue[T]{
		head: stm.NewVar[*qnode[T]](nil),
		tail: stm.NewVar[*qnode[T]](nil),
		size: stm.NewVar(0),
	}
}

// Enqueue appends v.
func (q *Queue[T]) Enqueue(tx *stm.Tx, v T) {
	n := &qnode[T]{val: v, next: stm.NewVar[*qnode[T]](nil)}
	t := q.tail.Load(tx)
	if t == nil {
		q.head.Store(tx, n)
	} else {
		t.next.Store(tx, n)
	}
	q.tail.Store(tx, n)
	q.size.Store(tx, q.size.Load(tx)+1)
}

// Dequeue removes and returns the oldest element; ok=false when empty.
func (q *Queue[T]) Dequeue(tx *stm.Tx) (v T, ok bool) {
	h := q.head.Load(tx)
	if h == nil {
		var zero T
		return zero, false
	}
	next := h.next.Load(tx)
	q.head.Store(tx, next)
	if next == nil {
		q.tail.Store(tx, nil)
	}
	q.size.Store(tx, q.size.Load(tx)-1)
	return h.val, true
}

// Peek returns the oldest element without removing it.
func (q *Queue[T]) Peek(tx *stm.Tx) (v T, ok bool) {
	h := q.head.Load(tx)
	if h == nil {
		var zero T
		return zero, false
	}
	return h.val, true
}

// Size returns the element count.
func (q *Queue[T]) Size(tx *stm.Tx) int { return q.size.Load(tx) }

// DrainQuiescent pops everything without a transaction (tests and post-run
// validation only).
func (q *Queue[T]) DrainQuiescent() []T {
	var out []T
	for n := q.head.Peek(); n != nil; n = n.next.Peek() {
		out = append(out, n.val)
	}
	q.head.Set(nil)
	q.tail.Set(nil)
	q.size.Set(0)
	return out
}
