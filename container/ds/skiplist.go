package ds

import (
	"math/bits"

	"github.com/ssrg-vt/rinval/stm"
)

// slMaxLevel bounds skiplist towers; 2^16 expected elements is far beyond
// any workload in this repository.
const slMaxLevel = 16

// slNode is one skiplist tower. key is immutable; the forward pointers are
// transactional.
type slNode struct {
	key  int
	val  *stm.Var[int]
	next []*stm.Var[*slNode]
}

// SkipList is a transactional sorted map with O(log n) expected searches —
// the logarithmic counterpart to List for workloads where O(n) chains
// dominate transaction length. Tower heights are derived deterministically
// from the key's hash, so structure (and therefore conflict patterns) are
// identical across runs and engines.
type SkipList struct {
	head *slNode // sentinel, full height, key irrelevant
	size *stm.Var[int]
}

// NewSkipList returns an empty skiplist.
func NewSkipList() *SkipList {
	head := &slNode{key: -1 << 62, next: make([]*stm.Var[*slNode], slMaxLevel)}
	for i := range head.next {
		head.next[i] = stm.NewVar[*slNode](nil)
	}
	return &SkipList{head: head, size: stm.NewVar(0)}
}

// levelFor derives a geometric(1/2) tower height from the key.
func levelFor(key int) int {
	h := HashInt(key ^ 0x5b1f)
	lvl := 1 + bits.TrailingZeros64(h|1<<(slMaxLevel-1))
	if lvl > slMaxLevel {
		lvl = slMaxLevel
	}
	return lvl
}

// findPredecessors fills pred[i] with the rightmost node at level i whose
// key precedes k, and returns the node at level 0 after pred[0] (the
// candidate match).
func (s *SkipList) findPredecessors(tx *stm.Tx, k int, pred *[slMaxLevel]*slNode) *slNode {
	cur := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			nxt := cur.next[lvl].Load(tx)
			if nxt == nil || nxt.key >= k {
				break
			}
			cur = nxt
		}
		pred[lvl] = cur
	}
	return pred[0].next[0].Load(tx)
}

// Contains reports whether k is present.
func (s *SkipList) Contains(tx *stm.Tx, k int) bool {
	var pred [slMaxLevel]*slNode
	n := s.findPredecessors(tx, k, &pred)
	return n != nil && n.key == k
}

// Get returns the value stored for k.
func (s *SkipList) Get(tx *stm.Tx, k int) (int, bool) {
	var pred [slMaxLevel]*slNode
	n := s.findPredecessors(tx, k, &pred)
	if n == nil || n.key != k {
		return 0, false
	}
	return n.val.Load(tx), true
}

// Insert adds k->v, returning true if k was absent; an existing key has its
// value replaced.
func (s *SkipList) Insert(tx *stm.Tx, k, v int) bool {
	var pred [slMaxLevel]*slNode
	n := s.findPredecessors(tx, k, &pred)
	if n != nil && n.key == k {
		n.val.Store(tx, v)
		return false
	}
	lvl := levelFor(k)
	node := &slNode{key: k, val: stm.NewVar(v), next: make([]*stm.Var[*slNode], lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = stm.NewVar(pred[i].next[i].Load(tx))
		pred[i].next[i].Store(tx, node)
	}
	s.size.Store(tx, s.size.Load(tx)+1)
	return true
}

// Delete removes k, returning true if it was present.
func (s *SkipList) Delete(tx *stm.Tx, k int) bool {
	var pred [slMaxLevel]*slNode
	n := s.findPredecessors(tx, k, &pred)
	if n == nil || n.key != k {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if pred[i].next[i].Load(tx) == n {
			pred[i].next[i].Store(tx, n.next[i].Load(tx))
		}
	}
	s.size.Store(tx, s.size.Load(tx)-1)
	return true
}

// Size returns the element count.
func (s *SkipList) Size(tx *stm.Tx) int { return s.size.Load(tx) }

// RangeCount counts keys in [lo, hi) — a multi-node read exercising long
// read sets at the bottom level.
func (s *SkipList) RangeCount(tx *stm.Tx, lo, hi int) int {
	var pred [slMaxLevel]*slNode
	n := s.findPredecessors(tx, lo, &pred)
	count := 0
	for n != nil && n.key < hi {
		count++
		n = n.next[0].Load(tx)
	}
	return count
}

// KeysQuiescent returns all keys in order without a transaction (tests and
// post-run validation only).
func (s *SkipList) KeysQuiescent() []int {
	var out []int
	for n := s.head.next[0].Peek(); n != nil; n = n.next[0].Peek() {
		out = append(out, n.key)
	}
	return out
}

// CheckInvariants verifies, quiescently, per-level ordering and that every
// level's chain is a subsequence of level 0.
func (s *SkipList) CheckInvariants() error {
	base := map[int]bool{}
	prev := s.head.key
	for n := s.head.next[0].Peek(); n != nil; n = n.next[0].Peek() {
		if n.key <= prev {
			return errOrder(0, prev, n.key)
		}
		prev = n.key
		base[n.key] = true
	}
	for lvl := 1; lvl < slMaxLevel; lvl++ {
		prev := s.head.key
		for n := s.head.next[lvl].Peek(); n != nil; {
			if n.key <= prev {
				return errOrder(lvl, prev, n.key)
			}
			if !base[n.key] {
				return errOrphan(lvl, n.key)
			}
			prev = n.key
			if lvl >= len(n.next) {
				return errHeight(lvl, n.key)
			}
			n = n.next[lvl].Peek()
		}
	}
	if got, want := s.size.Peek(), len(base); got != want {
		return errSize(got, want)
	}
	return nil
}

type skiplistError string

func (e skiplistError) Error() string { return string(e) }

func errOrder(lvl, prev, key int) error {
	return skiplistError("skiplist: order violation at level " + itoa(lvl) + ": " + itoa(prev) + " before " + itoa(key))
}
func errOrphan(lvl, key int) error {
	return skiplistError("skiplist: level " + itoa(lvl) + " node " + itoa(key) + " missing from level 0")
}
func errHeight(lvl, key int) error {
	return skiplistError("skiplist: node " + itoa(key) + " linked above its height at level " + itoa(lvl))
}
func errSize(got, want int) error {
	return skiplistError("skiplist: size counter " + itoa(got) + " != node count " + itoa(want))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
