package ds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ssrg-vt/rinval/stm"
)

func TestSkipListBasics(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	s := NewSkipList()
	_ = th.Atomically(func(tx *stm.Tx) error {
		if s.Contains(tx, 5) || s.Size(tx) != 0 {
			t.Error("empty list wrong")
		}
		if !s.Insert(tx, 5, 50) || !s.Insert(tx, 1, 10) || !s.Insert(tx, 9, 90) {
			t.Error("insert failed")
		}
		if s.Insert(tx, 5, 55) {
			t.Error("duplicate insert returned true")
		}
		if v, ok := s.Get(tx, 5); !ok || v != 55 {
			t.Errorf("Get(5)=%d,%v", v, ok)
		}
		if _, ok := s.Get(tx, 4); ok {
			t.Error("Get(4) found phantom")
		}
		if s.RangeCount(tx, 1, 9) != 2 || s.RangeCount(tx, 0, 100) != 3 {
			t.Error("RangeCount wrong")
		}
		if !s.Delete(tx, 5) || s.Delete(tx, 5) {
			t.Error("delete semantics wrong")
		}
		if s.Size(tx) != 2 {
			t.Errorf("size %d", s.Size(tx))
		}
		return nil
	})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := s.KeysQuiescent()
	if len(keys) != 2 || keys[0] != 1 || keys[1] != 9 {
		t.Fatalf("keys %v", keys)
	}
}

func TestSkipListLevelForDeterministicBounded(t *testing.T) {
	for k := -500; k < 500; k++ {
		l1, l2 := levelFor(k), levelFor(k)
		if l1 != l2 {
			t.Fatal("levelFor not deterministic")
		}
		if l1 < 1 || l1 > slMaxLevel {
			t.Fatalf("levelFor(%d) = %d out of range", k, l1)
		}
	}
	// Heights should look geometric: most nodes at level 1-2, few tall.
	tall := 0
	for k := 0; k < 4096; k++ {
		if levelFor(k) > 6 {
			tall++
		}
	}
	if tall == 0 || tall > 512 {
		t.Fatalf("suspicious height distribution: %d/4096 above level 6", tall)
	}
}

func TestSkipListMatchesModel(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	type op struct {
		Key  int16
		Val  int16
		Kind uint8
	}
	f := func(ops []op) bool {
		s := NewSkipList()
		model := map[int]int{}
		for _, o := range ops {
			k := int(o.Key) % 128
			var bad bool
			err := th.Atomically(func(tx *stm.Tx) error {
				switch o.Kind % 3 {
				case 0:
					_, existed := model[k]
					if s.Insert(tx, k, int(o.Val)) == existed {
						bad = true
					}
				case 1:
					_, existed := model[k]
					if s.Delete(tx, k) != existed {
						bad = true
					}
				case 2:
					v, ok := s.Get(tx, k)
					mv, existed := model[k]
					if ok != existed || (ok && v != mv) {
						bad = true
					}
				}
				return nil
			})
			if err != nil || bad {
				return false
			}
			switch o.Kind % 3 {
			case 0:
				model[k] = int(o.Val)
			case 1:
				delete(model, k)
			}
			if s.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListSortedAfterRandomInserts(t *testing.T) {
	_, th := newSys(t, stm.RInvalV2)
	s := NewSkipList()
	keys := rand.New(rand.NewSource(5)).Perm(300)
	for _, k := range keys {
		k := k
		_ = th.Atomically(func(tx *stm.Tx) error {
			s.Insert(tx, k, k)
			return nil
		})
	}
	got := s.KeysQuiescent()
	if len(got) != 300 || !sort.IntsAreSorted(got) {
		t.Fatalf("len=%d sorted=%v", len(got), sort.IntsAreSorted(got))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSkipListConcurrentMixed(t *testing.T) {
	for _, algo := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2, stm.TL2} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys, _ := newSys(t, algo)
			s := NewSkipList()
			const workers, per = 4, 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := sys.MustRegister()
					defer th.Close()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < per; i++ {
						k := rng.Intn(256)
						switch rng.Intn(3) {
						case 0:
							_ = th.Atomically(func(tx *stm.Tx) error { s.Insert(tx, k, k); return nil })
						case 1:
							_ = th.Atomically(func(tx *stm.Tx) error { s.Delete(tx, k); return nil })
						default:
							_ = th.Atomically(func(tx *stm.Tx) error { s.Contains(tx, k); return nil })
						}
					}
				}()
			}
			wg.Wait()
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSkipListErrorsDescriptive(t *testing.T) {
	for _, e := range []error{errOrder(1, 2, 3), errOrphan(1, 2), errHeight(1, 2), errSize(1, 2)} {
		if e.Error() == "" {
			t.Fatal("empty error text")
		}
	}
	if itoa(-42) != "-42" || itoa(0) != "0" || itoa(1234) != "1234" {
		t.Fatal("itoa broken")
	}
}

func BenchmarkSkipListContains(b *testing.B) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec})
	defer sys.Close()
	th := sys.MustRegister()
	defer th.Close()
	s := NewSkipList()
	for i := 0; i < 4096; i++ {
		i := i
		_ = th.Atomically(func(tx *stm.Tx) error { s.Insert(tx, i, i); return nil })
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % 4096
		_ = th.Atomically(func(tx *stm.Tx) error { s.Contains(tx, k); return nil })
	}
}
