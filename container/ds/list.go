// Package ds provides transactional data structures built on the stm public
// API: a sorted linked-list set, a fixed-bucket hash map, and a FIFO queue.
// They are the substrates for the STAMP workload ports (genome's segment
// table, intruder's fragment map and work queues, vacation's relations).
//
// The structures follow the paper's framing: they are *generic* STM
// structures, so every traversed node is monitored (§I's linked-list
// example) — exactly the read-set shapes whose validation/invalidation cost
// the algorithms under study trade against each other.
package ds

import "github.com/ssrg-vt/rinval/stm"

// listNode is one cell of the sorted list. next is transactional; key is
// immutable after insertion.
type listNode struct {
	key  int
	val  *stm.Var[int]
	next *stm.Var[*listNode]
}

// List is a transactional sorted set/map with int keys. Operations are
// O(n) traversals with every hop in the read set — the canonical
// long-read-chain STM workload.
type List struct {
	head *stm.Var[*listNode] // smallest key first
	size *stm.Var[int]
}

// NewList returns an empty list.
func NewList() *List {
	return &List{
		head: stm.NewVar[*listNode](nil),
		size: stm.NewVar(0),
	}
}

// search returns the first node with key >= k and its predecessor (nil when
// the match is at the head).
func (l *List) search(tx *stm.Tx, k int) (prev, cur *listNode) {
	cur = l.head.Load(tx)
	for cur != nil && cur.key < k {
		prev = cur
		cur = cur.next.Load(tx)
	}
	return prev, cur
}

// Insert adds k->v, returning true if k was absent; an existing key has its
// value replaced.
func (l *List) Insert(tx *stm.Tx, k, v int) bool {
	prev, cur := l.search(tx, k)
	if cur != nil && cur.key == k {
		cur.val.Store(tx, v)
		return false
	}
	n := &listNode{key: k, val: stm.NewVar(v), next: stm.NewVar(cur)}
	if prev == nil {
		l.head.Store(tx, n)
	} else {
		prev.next.Store(tx, n)
	}
	l.size.Store(tx, l.size.Load(tx)+1)
	return true
}

// Delete removes k, returning true if present.
func (l *List) Delete(tx *stm.Tx, k int) bool {
	prev, cur := l.search(tx, k)
	if cur == nil || cur.key != k {
		return false
	}
	next := cur.next.Load(tx)
	if prev == nil {
		l.head.Store(tx, next)
	} else {
		prev.next.Store(tx, next)
	}
	l.size.Store(tx, l.size.Load(tx)-1)
	return true
}

// Contains reports whether k is present.
func (l *List) Contains(tx *stm.Tx, k int) bool {
	_, cur := l.search(tx, k)
	return cur != nil && cur.key == k
}

// Get returns the value stored for k.
func (l *List) Get(tx *stm.Tx, k int) (int, bool) {
	_, cur := l.search(tx, k)
	if cur == nil || cur.key != k {
		return 0, false
	}
	return cur.val.Load(tx), true
}

// Size returns the element count.
func (l *List) Size(tx *stm.Tx) int { return l.size.Load(tx) }

// Sum folds all values — a whole-structure read, used to stress read-set
// growth and as an auditing primitive in tests.
func (l *List) Sum(tx *stm.Tx) int {
	total := 0
	for cur := l.head.Load(tx); cur != nil; cur = cur.next.Load(tx) {
		total += cur.val.Load(tx)
	}
	return total
}

// KeysQuiescent returns the keys in order without a transaction (tests and
// post-run validation only).
func (l *List) KeysQuiescent() []int {
	var out []int
	for cur := l.head.Peek(); cur != nil; cur = cur.next.Peek() {
		out = append(out, cur.key)
	}
	return out
}
