package ds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ssrg-vt/rinval/stm"
)

func newSys(t *testing.T, algo stm.Algo) (*stm.System, *stm.Thread) {
	t.Helper()
	s, err := stm.New(stm.Config{Algo: algo, MaxThreads: 16, InvalServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	th := s.MustRegister()
	t.Cleanup(func() {
		th.Close()
		_ = s.Close()
	})
	return s, th
}

// ---- List ----

func TestListBasics(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	l := NewList()
	_ = th.Atomically(func(tx *stm.Tx) error {
		if l.Contains(tx, 1) || l.Size(tx) != 0 {
			t.Error("empty list wrong")
		}
		if !l.Insert(tx, 5, 50) || !l.Insert(tx, 1, 10) || !l.Insert(tx, 9, 90) {
			t.Error("insert failed")
		}
		if l.Insert(tx, 5, 55) {
			t.Error("duplicate insert returned true")
		}
		if v, ok := l.Get(tx, 5); !ok || v != 55 {
			t.Errorf("Get(5) = %d,%v", v, ok)
		}
		if l.Size(tx) != 3 || l.Sum(tx) != 10+55+90 {
			t.Errorf("size=%d sum=%d", l.Size(tx), l.Sum(tx))
		}
		if !l.Delete(tx, 1) || l.Delete(tx, 1) {
			t.Error("delete semantics wrong")
		}
		if l.Delete(tx, 777) {
			t.Error("deleted missing key")
		}
		return nil
	})
	keys := l.KeysQuiescent()
	if len(keys) != 2 || keys[0] != 5 || keys[1] != 9 {
		t.Fatalf("keys %v", keys)
	}
}

func TestListSortedProperty(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	f := func(keys []uint8) bool {
		l := NewList()
		model := map[int]bool{}
		for _, k := range keys {
			k := int(k)
			model[k] = true
			if err := th.Atomically(func(tx *stm.Tx) error {
				l.Insert(tx, k, k)
				return nil
			}); err != nil {
				return false
			}
		}
		got := l.KeysQuiescent()
		if len(got) != len(model) {
			return false
		}
		if !sort.IntsAreSorted(got) {
			return false
		}
		for _, k := range got {
			if !model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestListConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s, _ := newSys(t, algo)
			l := NewList()
			const workers, per = 4, 60
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						k := w*per + i
						_ = th.Atomically(func(tx *stm.Tx) error {
							l.Insert(tx, k, 1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			keys := l.KeysQuiescent()
			if len(keys) != workers*per {
				t.Fatalf("len %d want %d", len(keys), workers*per)
			}
			if !sort.IntsAreSorted(keys) {
				t.Fatal("unsorted after concurrent inserts")
			}
		})
	}
}

// ---- Map ----

func TestMapBasics(t *testing.T) {
	_, th := newSys(t, stm.RInvalV1)
	m := NewMap[string, int](8, HashString)
	_ = th.Atomically(func(tx *stm.Tx) error {
		if m.Contains(tx, "a") || m.Size(tx) != 0 {
			t.Error("empty map wrong")
		}
		if !m.Put(tx, "a", 1) || !m.Put(tx, "b", 2) {
			t.Error("fresh Put returned false")
		}
		if m.Put(tx, "a", 10) {
			t.Error("update Put returned true")
		}
		if v, ok := m.Get(tx, "a"); !ok || v != 10 {
			t.Errorf("Get(a)=%d,%v", v, ok)
		}
		if v, inserted := m.PutIfAbsent(tx, "a", 99); inserted || v != 10 {
			t.Errorf("PutIfAbsent existing: %d %v", v, inserted)
		}
		if v, inserted := m.PutIfAbsent(tx, "c", 3); !inserted || v != 3 {
			t.Errorf("PutIfAbsent new: %d %v", v, inserted)
		}
		if m.Size(tx) != 3 {
			t.Errorf("size %d", m.Size(tx))
		}
		if !m.Delete(tx, "b") || m.Delete(tx, "b") {
			t.Error("delete semantics wrong")
		}
		return nil
	})
	seen := map[string]int{}
	m.ForEachQuiescent(func(k string, v int) { seen[k] = v })
	if len(seen) != 2 || seen["a"] != 10 || seen["c"] != 3 {
		t.Fatalf("final contents %v", seen)
	}
}

func TestMapMatchesModel(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	type op struct {
		Key  uint8
		Val  int16
		Kind uint8
	}
	f := func(ops []op) bool {
		m := NewMap[int, int](4, HashInt) // few buckets: force chains
		model := map[int]int{}
		for _, o := range ops {
			k := int(o.Key) % 32
			var badOutcome bool
			err := th.Atomically(func(tx *stm.Tx) error {
				switch o.Kind % 3 {
				case 0:
					_, existed := model[k]
					if m.Put(tx, k, int(o.Val)) == existed {
						badOutcome = true
					}
				case 1:
					_, existed := model[k]
					if m.Delete(tx, k) != existed {
						badOutcome = true
					}
				case 2:
					v, ok := m.Get(tx, k)
					mv, existed := model[k]
					if ok != existed || (ok && v != mv) {
						badOutcome = true
					}
				}
				return nil
			})
			if err != nil || badOutcome {
				return false
			}
			switch o.Kind % 3 {
			case 0:
				model[k] = int(o.Val)
			case 1:
				delete(model, k)
			}
		}
		count := 0
		m.ForEachQuiescent(func(k, v int) {
			count++
			if model[k] != v {
				count = -1 << 30
			}
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMapConcurrentDisjoint(t *testing.T) {
	for _, algo := range []stm.Algo{stm.InvalSTM, stm.RInvalV2, stm.RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s, _ := newSys(t, algo)
			m := NewMap[int, int](16, HashInt)
			const workers, per = 4, 80
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						k := w*per + i
						_ = th.Atomically(func(tx *stm.Tx) error {
							m.Put(tx, k, k*2)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			count := 0
			ok := true
			m.ForEachQuiescent(func(k, v int) {
				count++
				if v != k*2 {
					ok = false
				}
			})
			if count != workers*per || !ok {
				t.Fatalf("count=%d ok=%v", count, ok)
			}
		})
	}
}

func TestMapZeroBucketsClamped(t *testing.T) {
	m := NewMap[int, int](0, HashInt)
	if len(m.buckets) != 1 {
		t.Fatalf("buckets %d", len(m.buckets))
	}
}

// ---- Queue ----

func TestQueueFIFO(t *testing.T) {
	_, th := newSys(t, stm.RInvalV2)
	q := NewQueue[int]()
	_ = th.Atomically(func(tx *stm.Tx) error {
		if _, ok := q.Dequeue(tx); ok {
			t.Error("dequeue from empty succeeded")
		}
		if _, ok := q.Peek(tx); ok {
			t.Error("peek on empty succeeded")
		}
		for i := 1; i <= 5; i++ {
			q.Enqueue(tx, i)
		}
		if q.Size(tx) != 5 {
			t.Errorf("size %d", q.Size(tx))
		}
		if v, ok := q.Peek(tx); !ok || v != 1 {
			t.Errorf("peek %d %v", v, ok)
		}
		for i := 1; i <= 5; i++ {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Errorf("dequeue %d got %d,%v", i, v, ok)
			}
		}
		if q.Size(tx) != 0 {
			t.Error("not empty after drain")
		}
		// Refill after empty: tail handling after drain.
		q.Enqueue(tx, 42)
		if v, ok := q.Dequeue(tx); !ok || v != 42 {
			t.Error("refill broken")
		}
		return nil
	})
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s, _ := newSys(t, algo)
			q := NewQueue[int]()
			const producers, per = 3, 50
			var wg sync.WaitGroup
			var consumed sync.Map
			var consumedCount int64
			var mu sync.Mutex
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						v := p*per + i
						_ = th.Atomically(func(tx *stm.Tx) error {
							q.Enqueue(tx, v)
							return nil
						})
					}
				}()
			}
			for c := 0; c < 2; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for {
						var v int
						var got bool
						_ = th.Atomically(func(tx *stm.Tx) error {
							v, got = q.Dequeue(tx)
							return nil
						})
						if !got {
							mu.Lock()
							done := consumedCount >= producers*per
							mu.Unlock()
							if done {
								return
							}
							continue
						}
						if _, dup := consumed.LoadOrStore(v, true); dup {
							t.Errorf("value %d consumed twice", v)
							return
						}
						mu.Lock()
						consumedCount++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			mu.Lock()
			n := consumedCount
			mu.Unlock()
			if n != producers*per {
				t.Fatalf("consumed %d want %d", n, producers*per)
			}
		})
	}
}

func TestQueueDrainQuiescent(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	q := NewQueue[string]()
	_ = th.Atomically(func(tx *stm.Tx) error {
		q.Enqueue(tx, "a")
		q.Enqueue(tx, "b")
		return nil
	})
	got := q.DrainQuiescent()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("drained %v", got)
	}
	if q.size.Peek() != 0 {
		t.Fatal("size not reset")
	}
}

func TestHashFunctions(t *testing.T) {
	if HashInt(1) == HashInt(2) {
		t.Fatal("HashInt collides on 1,2")
	}
	if HashString("abc") == HashString("abd") {
		t.Fatal("HashString collides on abc/abd")
	}
	if HashString("") == 0 {
		t.Fatal("empty string hash is zero (FNV offset expected)")
	}
	// Interleaved ops from random keys stay deterministic.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		k := rng.Int()
		if HashInt(k) != HashInt(k) {
			t.Fatal("HashInt not deterministic")
		}
	}
}
