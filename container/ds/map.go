package ds

import "github.com/ssrg-vt/rinval/stm"

// Map is a transactional hash map with a fixed bucket array. Each bucket is
// one Var holding an immutable slice of entries, updated copy-on-write: a
// write replaces the whole (small) bucket, so intra-bucket conflicts are
// coarse but cross-bucket operations are perfectly disjoint. This mirrors
// the chained hash tables used throughout STAMP (genome's segment table,
// intruder's fragment map, vacation's customer directory).
type Map[K comparable, V any] struct {
	buckets []*stm.Var[[]mapEntry[K, V]]
	size    *stm.Var[int]
	hash    func(K) uint64
}

type mapEntry[K comparable, V any] struct {
	key K
	val V
}

// NewMap returns a map with nbuckets chains. hash must be deterministic; use
// HashInt / HashString for common key types.
func NewMap[K comparable, V any](nbuckets int, hash func(K) uint64) *Map[K, V] {
	if nbuckets < 1 {
		nbuckets = 1
	}
	m := &Map[K, V]{
		buckets: make([]*stm.Var[[]mapEntry[K, V]], nbuckets),
		size:    stm.NewVar(0),
		hash:    hash,
	}
	for i := range m.buckets {
		m.buckets[i] = stm.NewVar[[]mapEntry[K, V]](nil)
	}
	return m
}

func (m *Map[K, V]) bucket(k K) *stm.Var[[]mapEntry[K, V]] {
	return m.buckets[m.hash(k)%uint64(len(m.buckets))]
}

// Get returns the value stored for k.
func (m *Map[K, V]) Get(tx *stm.Tx, k K) (V, bool) {
	for _, e := range m.bucket(k).Load(tx) {
		if e.key == k {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *Map[K, V]) Contains(tx *stm.Tx, k K) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// Put stores k->v, returning true if k was absent.
func (m *Map[K, V]) Put(tx *stm.Tx, k K, v V) bool {
	b := m.bucket(k)
	old := b.Load(tx)
	for i, e := range old {
		if e.key == k {
			next := make([]mapEntry[K, V], len(old))
			copy(next, old)
			next[i].val = v
			b.Store(tx, next)
			return false
		}
	}
	next := make([]mapEntry[K, V], len(old)+1)
	copy(next, old)
	next[len(old)] = mapEntry[K, V]{key: k, val: v}
	b.Store(tx, next)
	m.size.Store(tx, m.size.Load(tx)+1)
	return true
}

// PutIfAbsent stores k->v only when k is absent; it returns the value now
// mapped and whether this call inserted it. This is genome's dedup
// primitive.
func (m *Map[K, V]) PutIfAbsent(tx *stm.Tx, k K, v V) (V, bool) {
	if cur, ok := m.Get(tx, k); ok {
		return cur, false
	}
	m.Put(tx, k, v)
	return v, true
}

// Delete removes k, returning true if present.
func (m *Map[K, V]) Delete(tx *stm.Tx, k K) bool {
	b := m.bucket(k)
	old := b.Load(tx)
	for i, e := range old {
		if e.key == k {
			next := make([]mapEntry[K, V], 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			b.Store(tx, next)
			m.size.Store(tx, m.size.Load(tx)-1)
			return true
		}
	}
	return false
}

// Size returns the element count.
func (m *Map[K, V]) Size(tx *stm.Tx) int { return m.size.Load(tx) }

// ForEachQuiescent visits every entry without a transaction (tests and
// post-run validation only).
func (m *Map[K, V]) ForEachQuiescent(f func(K, V)) {
	for _, b := range m.buckets {
		for _, e := range b.Peek() {
			f(e.key, e.val)
		}
	}
}

// HashInt hashes an int key (SplitMix64 finalizer).
func HashInt(k int) uint64 {
	x := uint64(k)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashString hashes a string key (FNV-1a).
func HashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
