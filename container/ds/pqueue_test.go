package ds

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ssrg-vt/rinval/stm"
)

func TestPQueueBasics(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	q := NewPQueue()
	_ = th.Atomically(func(tx *stm.Tx) error {
		if _, _, ok := q.Min(tx); ok {
			t.Error("Min on empty succeeded")
		}
		if _, _, ok := q.PopMin(tx); ok {
			t.Error("PopMin on empty succeeded")
		}
		q.Insert(tx, 5, 50)
		q.Insert(tx, 1, 10)
		q.Insert(tx, 9, 90)
		q.Insert(tx, 1, 11) // duplicate keys allowed
		if q.Size(tx) != 4 {
			t.Errorf("size %d", q.Size(tx))
		}
		k, _, ok := q.Min(tx)
		if !ok || k != 1 {
			t.Errorf("min %d", k)
		}
		var popped []int
		for {
			k, _, ok := q.PopMin(tx)
			if !ok {
				break
			}
			popped = append(popped, k)
		}
		if !sort.IntsAreSorted(popped) || len(popped) != 4 {
			t.Errorf("popped %v", popped)
		}
		return nil
	})
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPQueueHeapSortMatchesSort(t *testing.T) {
	_, th := newSys(t, stm.NOrec)
	f := func(keys []int16) bool {
		q := NewPQueue()
		want := make([]int, len(keys))
		err := th.Atomically(func(tx *stm.Tx) error {
			for i, k := range keys {
				q.Insert(tx, int(k), i)
				want[i] = int(k)
			}
			return nil
		})
		if err != nil || q.CheckInvariants() != nil {
			return false
		}
		sort.Ints(want)
		var got []int
		err = th.Atomically(func(tx *stm.Tx) error {
			for {
				k, _, ok := q.PopMin(tx)
				if !ok {
					return nil
				}
				got = append(got, k)
			}
		})
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPQueueValuesTravelWithKeys(t *testing.T) {
	_, th := newSys(t, stm.RInvalV1)
	q := NewPQueue()
	_ = th.Atomically(func(tx *stm.Tx) error {
		for i := 10; i >= 1; i-- {
			q.Insert(tx, i, i*100)
		}
		for want := 1; want <= 10; want++ {
			k, v, ok := q.PopMin(tx)
			if !ok || k != want || v != want*100 {
				t.Errorf("pop %d: got (%d,%d,%v)", want, k, v, ok)
			}
		}
		return nil
	})
}

func TestPQueueConcurrentMultisetConservation(t *testing.T) {
	for _, algo := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2, stm.TL2} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys, _ := newSys(t, algo)
			q := NewPQueue()
			const producers, per = 3, 50
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := sys.MustRegister()
					defer th.Close()
					rng := rand.New(rand.NewSource(int64(p)))
					for i := 0; i < per; i++ {
						k := rng.Intn(1000)
						_ = th.Atomically(func(tx *stm.Tx) error {
							q.Insert(tx, k, p*per+i)
							return nil
						})
					}
				}()
			}
			// Concurrent consumer drains half.
			var drained []int
			var mu sync.Mutex
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := sys.MustRegister()
				defer th.Close()
				got := 0
				for got < producers*per/2 {
					var k int
					var ok bool
					_ = th.Atomically(func(tx *stm.Tx) error {
						k, _, ok = q.PopMin(tx)
						return nil
					})
					if ok {
						mu.Lock()
						drained = append(drained, k)
						mu.Unlock()
						got++
					}
				}
			}()
			wg.Wait()
			if err := q.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Drain the rest single-threaded; total must be conserved.
			th := sys.MustRegister()
			defer th.Close()
			rest := 0
			_ = th.Atomically(func(tx *stm.Tx) error {
				for {
					if _, _, ok := q.PopMin(tx); !ok {
						return nil
					}
					rest++
				}
			})
			if len(drained)+rest != producers*per {
				t.Fatalf("lost elements: %d + %d != %d", len(drained), rest, producers*per)
			}
		})
	}
}
