package ds_test

import (
	"fmt"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/stm"
)

// A transactional map supports atomic multi-key updates that a sharded
// mutex map cannot express without deadlock-prone lock ordering.
func ExampleMap() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 4, InvalServers: 2})
	defer sys.Close()
	th := sys.MustRegister()
	defer th.Close()

	inventory := ds.NewMap[string, int](16, ds.HashString)
	_ = th.Atomically(func(tx *stm.Tx) error {
		inventory.Put(tx, "apples", 10)
		inventory.Put(tx, "oranges", 5)
		return nil
	})
	// Atomically move stock between keys.
	_ = th.Atomically(func(tx *stm.Tx) error {
		a, _ := inventory.Get(tx, "apples")
		o, _ := inventory.Get(tx, "oranges")
		inventory.Put(tx, "apples", a-3)
		inventory.Put(tx, "oranges", o+3)
		return nil
	})
	var apples, oranges int
	_ = th.Atomically(func(tx *stm.Tx) error {
		apples, _ = inventory.Get(tx, "apples")
		oranges, _ = inventory.Get(tx, "oranges")
		return nil
	})
	fmt.Println(apples, oranges)
	// Output: 7 8
}

// The queue composes with other structures: dequeue + record in one atomic
// step gives exactly-once hand-off.
func ExampleQueue() {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 2, InvalServers: 1})
	defer sys.Close()
	th := sys.MustRegister()
	defer th.Close()

	q := ds.NewQueue[string]()
	seen := ds.NewMap[string, bool](8, ds.HashString)
	_ = th.Atomically(func(tx *stm.Tx) error {
		q.Enqueue(tx, "a")
		q.Enqueue(tx, "b")
		return nil
	})
	for {
		var v string
		var ok bool
		_ = th.Atomically(func(tx *stm.Tx) error {
			v, ok = q.Dequeue(tx)
			if ok {
				seen.Put(tx, v, true)
			}
			return nil
		})
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// a
	// b
}

// The priority queue orders work by key; PopMin inside a transaction makes
// claim-and-mark atomic.
func ExamplePQueue() {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV1, MaxThreads: 2})
	defer sys.Close()
	th := sys.MustRegister()
	defer th.Close()

	pq := ds.NewPQueue()
	_ = th.Atomically(func(tx *stm.Tx) error {
		pq.Insert(tx, 30, 300)
		pq.Insert(tx, 10, 100)
		pq.Insert(tx, 20, 200)
		return nil
	})
	_ = th.Atomically(func(tx *stm.Tx) error {
		for {
			k, v, ok := pq.PopMin(tx)
			if !ok {
				return nil
			}
			fmt.Println(k, v)
		}
	})
	// Output:
	// 10 100
	// 20 200
	// 30 300
}
