// Command stmlint machine-checks the repository's concurrency invariants.
//
// It loads the module rooted at the nearest go.mod (from -C or the working
// directory), type-checks every package with the standard library's go/ast +
// go/types toolchain, and runs the invariant checks from internal/analysis:
//
//	mixed-access    sync/atomic fields never read or written plainly
//	padding         cache-padded cells and per-slot structs fill whole lines
//	tx-escape       *Tx handles confined to their atomic block
//	abort-taxonomy  every engine conflict path records an AbortReason
//	taxonomy-path   ...on every CFG path into the conflict exit
//	hot-path        //stm:hotpath functions free of slow calls
//	hot-path-deep   ...and every function they transitively call
//	lock-order      stream locks: ascending acquire, descending release,
//	                released on every exit path, no blocking while held
//	atomic-publish  no plain access to atomic state after the publishing store
//
// Usage:
//
//	stmlint [-C dir] [-checks name,name] [-json] [-github] [-list] [packages]
//
// Package pattern arguments are accepted for command-line symmetry with go
// vet (`go run ./cmd/stmlint ./...`) but the analyzer always loads the whole
// module: the invariants are module-global properties (an atomic access in
// one package forbids plain accesses in another), so partial loads would
// silently weaken them.
//
// Output is one file:line:col diagnostic per violation by default; -json
// emits the same diagnostics as a JSON array on stdout for tooling, and
// -github emits GitHub Actions ::error workflow commands so CI annotates the
// offending lines in the diff view.
//
// Exit status: 0 when the module is clean, 1 when diagnostics were
// reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/ssrg-vt/rinval/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic. File is module-relative
// with forward slashes, so output is stable across checkouts.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// run is the whole command, parameterized for tests: args are the CLI
// arguments (no program name), and all output goes to the given writers.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", ".", "directory inside the module to lint")
		checks   = fs.String("checks", "all", "comma-separated checks to run")
		list     = fs.Bool("list", false, "list registered checks and exit")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		ghannots = fs.Bool("github", false, "emit GitHub Actions ::error annotations")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Fprintf(stdout, "%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	selected, err := analysis.SelectChecks(*checks)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	diags := analysis.Run(m, selected)
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiag{
			File: file, Line: d.Pos.Line, Col: d.Pos.Column,
			Check: d.Check, Message: d.Message,
		})
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *ghannots:
		for _, d := range out {
			// https://docs.github.com/actions/reference/workflow-commands:
			// property values must escape %, CR, LF (and the message too).
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=stmlint/%s::%s\n",
				ghEscape(d.File), d.Line, d.Col, ghEscape(d.Check), ghEscape(d.Message))
		}
	default:
		for _, d := range out {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Check, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "stmlint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// ghEscape escapes a value for a GitHub Actions workflow command.
func ghEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("stmlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
