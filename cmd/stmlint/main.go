// Command stmlint machine-checks the repository's concurrency invariants.
//
// It loads the module rooted at the nearest go.mod (from -C or the working
// directory), type-checks every package with the standard library's go/ast +
// go/types toolchain, and runs the invariant checks from internal/analysis:
//
//	mixed-access    sync/atomic fields never read or written plainly
//	padding         cache-padded cells and per-slot structs fill whole lines
//	tx-escape       *Tx handles confined to their atomic block
//	abort-taxonomy  every engine conflict path records an AbortReason
//	hot-path        //stm:hotpath functions free of slow calls
//
// Usage:
//
//	stmlint [-C dir] [-checks name,name] [-list] [packages]
//
// Package pattern arguments are accepted for command-line symmetry with go
// vet (`go run ./cmd/stmlint ./...`) but the analyzer always loads the whole
// module: the invariants are module-global properties (an atomic access in
// one package forbids plain accesses in another), so partial loads would
// silently weaken them.
//
// Exit status: 0 when the module is clean, 1 when diagnostics were
// reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/ssrg-vt/rinval/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir    = flag.String("C", ".", "directory inside the module to lint")
		checks = flag.String("checks", "all", "comma-separated checks to run")
		list   = flag.Bool("list", false, "list registered checks and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range analysis.AllChecks() {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	selected, err := analysis.SelectChecks(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	diags := analysis.Run(m, selected)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stmlint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks upward from dir to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("stmlint: no go.mod found above %s", dir)
		}
		d = parent
	}
}
