package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixture resolves a mini-module from the analysis package's golden corpus.
func fixture(t *testing.T, elem ...string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join(append([]string{"..", "..", "internal", "analysis", "testdata"}, elem...)...))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the documented exit-status contract: 0 clean, 1 when
// diagnostics were reported, 2 on load/usage errors.
func TestExitCodes(t *testing.T) {
	var out, errOut strings.Builder

	if code := run([]string{"-C", fixture(t, "lock-order", "clean")}, &out, &errOut); code != 0 {
		t.Fatalf("clean module: exit %d, stderr %q", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	code := run([]string{"-C", fixture(t, "lock-order", "descending"), "-checks", "lock-order"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("violating module: exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[lock-order]") {
		t.Fatalf("diagnostic output missing check tag:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "invariant violation") {
		t.Fatalf("summary missing from stderr: %q", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", t.TempDir()}, &out, &errOut); code != 2 {
		t.Fatalf("module-less dir: exit %d, want 2", code)
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-checks", "no-such-check"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown check: exit %d, want 2", code)
	}
}

// TestJSONOutput checks the -json wire form: a parseable array with
// module-relative slash paths and the expected fields.
func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture(t, "hot-path-deep", "deepnow"), "-checks", "hot-path-deep", "-json"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.File != "hot.go" || d.Line == 0 || d.Check != "hot-path-deep" || d.Message == "" {
		t.Fatalf("malformed diagnostic: %+v", d)
	}
	if strings.Contains(d.File, "\\") {
		t.Fatalf("file path not slash-normalized: %q", d.File)
	}
}

// TestGitHubAnnotations checks the ::error workflow-command form CI uses to
// annotate the diff view.
func TestGitHubAnnotations(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-C", fixture(t, "taxonomy-path", "siblingbranch"), "-checks", "taxonomy-path", "-github"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr %q)", code, errOut.String())
	}
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, "::error file=eng.go,line=") {
		t.Fatalf("not a workflow command: %q", line)
	}
	if !strings.Contains(line, "title=stmlint/taxonomy-path::") {
		t.Fatalf("annotation missing title: %q", line)
	}
}

// TestListChecks ensures -list names every registered check, including the
// CFG-based suite.
func TestListChecks(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range []string{"abort-taxonomy", "atomic-publish", "hot-path", "hot-path-deep",
		"lock-order", "mixed-access", "padding", "taxonomy-path", "tx-escape"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %s:\n%s", name, out.String())
		}
	}
}
