// Command stmtop is a live terminal dashboard for a running STM system. It
// polls the expvar endpoint a benchmark exposes via -metrics (rinval-bench
// -metrics :8080, or any process calling obs.ServeMetrics) and renders the
// conflict-attribution view: commit/abort rates, the hottest who-aborted-whom
// matrix cells, the top-K contended Vars, bloom false-positive rate, and
// wasted-work totals per abort reason.
//
// Usage:
//
//	stmtop -addr localhost:8080              # refresh every second
//	stmtop -addr localhost:8080 -interval 250ms
//	stmtop -addr localhost:8080 -once        # one snapshot, no screen control
//	stmtop -addr localhost:8080 -json        # one machine-readable snapshot
//	stmtop -addr localhost:8080 -width 60    # clip panels for a narrow terminal
//
// The data source is /debug/vars: the "stm" var carries the base counters,
// "stm_conflict" the ConflictReport snapshot, "stm_latency" the sampled
// critical-path decomposition, and "stm_timeseries" the windowed telemetry
// ring (all published by the benchmark harness; attribution detail needs
// Config.Attribution, latency Config.Latency, sparklines Config.TimeSeries).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "host:port of the -metrics endpoint to poll")
		interval = flag.Duration("interval", time.Second, "poll period")
		once     = flag.Bool("once", false, "render a single snapshot and exit (no screen clearing)")
		jsonOut  = flag.Bool("json", false, "emit one snapshot as JSON and exit (implies -once)")
		topK     = flag.Int("k", 8, "rows in the hot-var and matrix tables")
		width    = flag.Int("width", 0, "clip panel lines to this many columns (0: $COLUMNS, else no clipping)")
	)
	flag.Parse()

	url := "http://" + *addr + "/debug/vars"
	cols := termWidth(*width)
	var prev *snapshot
	for {
		cur, err := fetch(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmtop: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := writeJSON(os.Stdout, cur); err != nil {
				fmt.Fprintf(os.Stderr, "stmtop: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		renderClipped(os.Stdout, prev, cur, *topK, cols)
		if *once {
			return
		}
		prev = cur
		time.Sleep(*interval)
	}
}

// termWidth resolves the clipping width: an explicit -width wins, otherwise
// $COLUMNS (the shell convention; stmtop avoids cgo/ioctl for portability),
// otherwise 0 — no clipping.
func termWidth(flagWidth int) int {
	if flagWidth > 0 {
		return flagWidth
	}
	if c, err := strconv.Atoi(os.Getenv("COLUMNS")); err == nil && c > 0 {
		return c
	}
	return 0
}

// renderClipped renders the dashboard and clips every line to cols columns,
// so fixed-width panels degrade on narrow terminals instead of wrapping into
// an unreadable mess. cols <= 0 disables clipping.
func renderClipped(w io.Writer, prev, cur *snapshot, k, cols int) {
	if cols <= 0 {
		render(w, prev, cur, k)
		return
	}
	var buf bytes.Buffer
	render(&buf, prev, cur, k)
	for _, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		r := []rune(string(line))
		if len(r) > cols {
			r = r[:cols]
		}
		fmt.Fprintln(w, string(r))
	}
}

// jsonSnapshot is the -json output shape: the three published vars under
// stable keys, plus the poll timestamp.
type jsonSnapshot struct {
	At         time.Time             `json:"at"`
	STM        *stmVars              `json:"stm,omitempty"`
	Conflict   *obs.ConflictReport   `json:"conflict,omitempty"`
	Latency    *obs.LatencyReport    `json:"latency,omitempty"`
	TimeSeries *obs.TimeSeriesReport `json:"timeseries,omitempty"`
}

// writeJSON emits one machine-readable snapshot.
func writeJSON(w io.Writer, cur *snapshot) error {
	out := jsonSnapshot{At: cur.at}
	if cur.hasSTM {
		out.STM = &cur.stm
		out.Conflict = &cur.conflict
		out.Latency = &cur.latency
		if cur.tseries.Enabled {
			out.TimeSeries = &cur.tseries
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// snapshot is one poll of /debug/vars, reduced to the published STM vars.
type snapshot struct {
	at       time.Time
	stm      stmVars
	conflict obs.ConflictReport
	latency  obs.LatencyReport
	tseries  obs.TimeSeriesReport
	hasSTM   bool
}

// stmVars mirrors the "stm" expvar the benchmark harness publishes.
type stmVars struct {
	Algo         string            `json:"algo"`
	Commits      uint64            `json:"commits"`
	Aborts       uint64            `json:"aborts"`
	AbortReasons map[string]uint64 `json:"abort_reasons"`
}

// fetch polls the expvar endpoint and decodes the STM view.
func fetch(url string) (*snapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return decode(resp.Body)
}

// decode parses an expvar JSON document. The "stm" and "stm_conflict" vars
// are null until a benchmark point is running; that decodes to zero values,
// which render as an idle dashboard rather than an error.
func decode(r io.Reader) (*snapshot, error) {
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(r).Decode(&vars); err != nil {
		return nil, fmt.Errorf("parsing expvar JSON: %w", err)
	}
	s := &snapshot{at: time.Now()}
	if raw, ok := vars["stm"]; ok && string(raw) != "null" {
		if err := json.Unmarshal(raw, &s.stm); err != nil {
			return nil, fmt.Errorf("parsing stm var: %w", err)
		}
		s.hasSTM = true
	}
	if raw, ok := vars["stm_conflict"]; ok && string(raw) != "null" {
		if err := json.Unmarshal(raw, &s.conflict); err != nil {
			return nil, fmt.Errorf("parsing stm_conflict var: %w", err)
		}
	}
	if raw, ok := vars["stm_latency"]; ok && string(raw) != "null" {
		if err := json.Unmarshal(raw, &s.latency); err != nil {
			return nil, fmt.Errorf("parsing stm_latency var: %w", err)
		}
	}
	if raw, ok := vars["stm_timeseries"]; ok && string(raw) != "null" {
		if err := json.Unmarshal(raw, &s.tseries); err != nil {
			return nil, fmt.Errorf("parsing stm_timeseries var: %w", err)
		}
	}
	return s, nil
}

// matrixCell is one nonzero who-aborted-whom entry, for ranking.
type matrixCell struct {
	committer, victim int // committer == slots means unknown
	n                 uint64
}

// render writes the dashboard. prev, when non-nil, supplies the delta window
// for the rate line; cur alone renders totals only.
func render(w io.Writer, prev, cur *snapshot, k int) {
	fmt.Fprintf(w, "stmtop — %s\n", time.Now().Format("15:04:05"))
	if !cur.hasSTM {
		fmt.Fprintln(w, "no STM system is currently running (stm expvar is null); waiting for a benchmark point")
		return
	}
	st := cur.stm
	fmt.Fprintf(w, "engine %-12s commits %-12d aborts %-12d", st.Algo, st.Commits, st.Aborts)
	if attempts := st.Commits + st.Aborts; attempts > 0 {
		fmt.Fprintf(w, "abort-rate %5.1f%%", 100*float64(st.Aborts)/float64(attempts))
	}
	fmt.Fprintln(w)
	if prev != nil && prev.hasSTM {
		dt := cur.at.Sub(prev.at).Seconds()
		if dt > 0 {
			dc, okc := counterDelta(st.Commits, prev.stm.Commits)
			da, oka := counterDelta(st.Aborts, prev.stm.Aborts)
			if okc && oka {
				fmt.Fprintf(w, "rates  %.0f commits/s  %.0f aborts/s (over %.2fs)\n",
					float64(dc)/dt, float64(da)/dt, dt)
			} else {
				fmt.Fprintln(w, "rates  -- counter reset detected (source restarted); re-syncing")
			}
		}
	}
	if len(st.AbortReasons) > 0 {
		reasons := make([]string, 0, len(st.AbortReasons))
		for r := range st.AbortReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		fmt.Fprint(w, "aborts ")
		for _, r := range reasons {
			fmt.Fprintf(w, " %s=%d", r, st.AbortReasons[r])
		}
		fmt.Fprintln(w)
	}
	if ro := cur.conflict; ro.ReadOnly > 0 || ro.ROFallbacks > 0 {
		fmt.Fprintf(w, "read-only %-10d ro-snapshot %-10d ro-fallbacks %-8d", ro.ReadOnly, ro.ROCommits, ro.ROFallbacks)
		if st.Commits > 0 {
			fmt.Fprintf(w, "ro-share %5.1f%%", 100*float64(ro.ReadOnly)/float64(st.Commits))
		}
		fmt.Fprintln(w)
	}

	if lr := cur.latency; lr.Enabled {
		fmt.Fprintf(w, "\nlatency (1-in-%d sampled, %d sampled commits)\n", lr.SampleEvery, lr.SampledCommits)
		fmt.Fprintf(w, "  %-6s %-12s %10s %10s %10s %10s\n", "", "phase", "count", "p50", "p99", "max")
		renderPhases(w, "client", lr.Client)
		renderPhases(w, "server", lr.Server)
	}

	renderTimeSeries(w, cur.tseries)

	cr := cur.conflict
	if !cr.Enabled {
		fmt.Fprintln(w, "\nattribution off (run with Config.Attribution / the conflict experiment for the full view)")
		return
	}
	fmt.Fprintf(w, "\nconflict attribution (%d slots, %d-bit filters)\n", cr.Slots, cr.FilterBits)
	fmt.Fprintf(w, "invalidation aborts %-10d bloom FP rate %.4f (%d/%d sampled)\n",
		cr.InvalidationAborts, cr.FP.Rate, cr.FP.FalsePositive, cr.FP.Sampled)

	if cells := topCells(cr, k); len(cells) > 0 {
		fmt.Fprintln(w, "\nwho aborted whom (top cells)")
		for _, c := range cells {
			committer := fmt.Sprintf("%d", c.committer)
			if c.committer == cr.Slots {
				committer = "?"
			}
			fmt.Fprintf(w, "  slot %3s -> slot %3d  %8d\n", committer, c.victim, c.n)
		}
	}
	if len(cr.HotVars) > 0 {
		fmt.Fprintln(w, "\nhot vars (reservoir sample share)")
		n := min(k, len(cr.HotVars))
		for _, hv := range cr.HotVars[:n] {
			name := hv.Name
			if name == "" {
				name = fmt.Sprintf("var-%d", hv.ID)
			}
			fmt.Fprintf(w, "  %-24s %6.2f%%  (%d samples)\n", name, 100*hv.Share, hv.Samples)
		}
	}
	if len(cr.WastedNs) > 0 {
		fmt.Fprintln(w, "\nwasted work (aborted attempts)")
		reasons := make([]string, 0, len(cr.WastedNs))
		for r := range cr.WastedNs {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			if cr.WastedNs[r] == 0 && cr.WastedOps[r] == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-12s %12s  %8d ops\n", r,
				time.Duration(cr.WastedNs[r]).Round(time.Microsecond), cr.WastedOps[r])
		}
	}
}

// counterDelta computes a monotonic-counter delta, detecting resets: when the
// current reading is below the previous one the scraped process restarted (or
// a new benchmark point replaced the System), and the raw uint64 subtraction
// would wrap to an absurd positive rate. It reports ok=false instead; the
// caller shows a reset note for one frame and re-syncs on the next poll.
func counterDelta(cur, prev uint64) (uint64, bool) {
	if cur < prev {
		return 0, false
	}
	return cur - prev, true
}

// sparkRunes is the 8-level block ramp used for sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders vals as a fixed-height sparkline, scaled to the series max.
// An all-zero series renders as a flat baseline.
func spark(vals []float64) string {
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := 0
		if max > 0 && v > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// renderTimeSeries prints the windowed-telemetry panel: sparklines over the
// recent windows for throughput, abort rate and p99, then one status line per
// declared SLO with its multi-window burn rates.
func renderTimeSeries(w io.Writer, ts obs.TimeSeriesReport) {
	if !ts.Enabled || len(ts.Recent) == 0 {
		return
	}
	n := len(ts.Recent)
	commits := make([]float64, n)
	abortPct := make([]float64, n)
	p99 := make([]float64, n)
	for i, win := range ts.Recent {
		if win.DurNs > 0 {
			commits[i] = float64(win.Counters["commits"]) / (float64(win.DurNs) / 1e9)
		}
		abortPct[i] = 100 * win.AbortRate
		p99[i] = float64(win.P99TotalNs)
	}
	last := ts.Recent[n-1]
	fmt.Fprintf(w, "\ntimeseries (%v windows, %d held, seq %d)\n",
		time.Duration(ts.IntervalNs), ts.Windows, ts.Seq)
	fmt.Fprintf(w, "  commits/s  %s  %8.0f\n", spark(commits), commits[n-1])
	fmt.Fprintf(w, "  abort %%    %s  %7.1f%%\n", spark(abortPct), abortPct[n-1])
	fmt.Fprintf(w, "  p99 total  %s  %8s\n", spark(p99), fmtLatNs(last.P99TotalNs))
	for _, s := range ts.SLOs {
		status := "ok"
		if s.Firing {
			status = "FIRING"
		}
		fmt.Fprintf(w, "  slo %-18s %-6s fast %5.2fx  slow %5.2fx  alerts %d  (%s, burn>=%.1fx)\n",
			s.Name, status, s.FastBurn, s.SlowBurn, s.Alerts, s.Objective, s.Burn)
	}
	if ts.AlertsTotal > 0 {
		fmt.Fprintf(w, "  alerts total %d", ts.AlertsTotal)
		if len(ts.Alerts) > 0 {
			a := ts.Alerts[len(ts.Alerts)-1]
			fmt.Fprintf(w, "  last: %s at seq %d (fast %.1fx slow %.1fx)", a.SLO, a.Seq, a.FastBurn, a.SlowBurn)
		}
		fmt.Fprintln(w)
	}
}

// renderPhases prints one side (client or server) of the latency panel,
// labelling only the first row of the group.
func renderPhases(w io.Writer, side string, phases []obs.LatencyPhase) {
	for i, ph := range phases {
		label := ""
		if i == 0 {
			label = side
		}
		fmt.Fprintf(w, "  %-6s %-12s %10d %10s %10s %10s\n",
			label, ph.Phase, ph.Count, fmtLatNs(ph.P50), fmtLatNs(ph.P99), fmtLatNs(ph.MaxNs))
	}
}

// fmtLatNs renders a nanosecond figure compactly (ns/µs/ms).
func fmtLatNs(ns uint64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// topCells ranks the nonzero matrix cells by count, descending.
func topCells(cr obs.ConflictReport, k int) []matrixCell {
	var cells []matrixCell
	for c, row := range cr.Matrix {
		for v, n := range row {
			if n > 0 {
				cells = append(cells, matrixCell{committer: c, victim: v, n: n})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].n != cells[j].n {
			return cells[i].n > cells[j].n
		}
		if cells[i].committer != cells[j].committer {
			return cells[i].committer < cells[j].committer
		}
		return cells[i].victim < cells[j].victim
	})
	if len(cells) > k {
		cells = cells[:k]
	}
	return cells
}
