package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// cannedVars is a minimal /debug/vars document with both STM vars populated,
// shaped exactly as the benchmark harness publishes them.
const cannedVars = `{
  "cmdline": ["rinval-bench"],
  "stm": {
    "algo": "rinval-v2",
    "commits": 3200,
    "aborts": 800,
    "abort_reasons": {"invalidated": 700, "validation": 0, "self": 40, "locked": 60, "explicit": 0}
  },
  "stm_conflict": {
    "enabled": true,
    "slots": 2,
    "matrix": [[0, 5], [600, 0], [95, 0]],
    "invalidation_aborts": 700,
    "commits": 3200,
    "aborts": 800,
    "fp": {"sampled": 100, "false_positive": 7, "rate": 0.07},
    "filter_bits": 1024,
    "hot_vars": [{"id": 9, "name": "hot-0", "samples": 50, "share": 0.5}],
    "hot_var_samples": 100,
    "wasted_ns": {"invalidated": 120000, "validation": 0, "self": 100, "locked": 200, "explicit": 0},
    "wasted_ops": {"invalidated": 900, "validation": 0, "self": 3, "locked": 6, "explicit": 0}
  },
  "stm_latency": {
    "enabled": true,
    "sample_every": 64,
    "sampled_commits": 50,
    "client": [
      {"phase": "app", "count": 50, "p50_ns": 210, "p99_ns": 900, "max_ns": 1200},
      {"phase": "total", "count": 50, "p50_ns": 800, "p99_ns": 2500000, "max_ns": 4000000}
    ],
    "server": [
      {"phase": "collect", "count": 30, "p50_ns": 1100, "p99_ns": 5200, "max_ns": 9000}
    ]
  },
  "stm_timeseries": {
    "enabled": true,
    "interval_ns": 25000000,
    "capacity": 64,
    "windows": 3,
    "seq": 3,
    "recent": [
      {"unix_nanos": 1, "dur_ns": 25000000, "counters": {"commits": 250}, "abort_rate": 0, "p50_total_ns": 400, "p99_total_ns": 900},
      {"unix_nanos": 2, "dur_ns": 25000000, "counters": {"commits": 100, "aborts": 300}, "abort_rate": 0.75, "p50_total_ns": 900, "p99_total_ns": 52000},
      {"unix_nanos": 3, "dur_ns": 25000000, "counters": {"commits": 90, "aborts": 310}, "abort_rate": 0.775, "p50_total_ns": 1000, "p99_total_ns": 61000}
    ],
    "slos": [
      {"name": "abort-rate", "kind": "abort-rate", "objective": "abort-rate<=0.15", "fast": "200ms", "slow": "600ms", "burn_threshold": 2, "fast_burn": 5.1, "slow_burn": 2.2, "firing": true, "alerts": 1}
    ],
    "alerts": [
      {"slo": "abort-rate", "unix_nanos": 3, "seq": 3, "fast_burn": 5.1, "slow_burn": 2.2, "burn_threshold": 2,
       "window": {"unix_nanos": 3, "dur_ns": 25000000, "abort_rate": 0.775, "p50_total_ns": 1000, "p99_total_ns": 61000}}
    ],
    "alerts_total": 1
  }
}`

func TestDecodeAndRender(t *testing.T) {
	cur, err := decode(strings.NewReader(cannedVars))
	if err != nil {
		t.Fatal(err)
	}
	if !cur.hasSTM || cur.stm.Algo != "rinval-v2" || cur.conflict.InvalidationAborts != 700 {
		t.Fatalf("decode: %+v", cur)
	}
	if !cur.latency.Enabled || cur.latency.SampledCommits != 50 {
		t.Fatalf("decode latency: %+v", cur.latency)
	}
	prev := &snapshot{at: cur.at.Add(-time.Second), hasSTM: true}
	prev.stm.Commits, prev.stm.Aborts = 3000, 700

	var b strings.Builder
	render(&b, prev, cur, 8)
	out := b.String()
	for _, want := range []string{
		"rinval-v2",
		"abort-rate  20.0%",              // 800 / 4000
		"commits/s",                      // delta line rendered
		"invalidation aborts 700",        // attribution section
		"bloom FP rate 0.0700",           // FPStats
		"slot   1 -> slot   0       600", // top matrix cell
		"slot   ? -> slot   0        95", // unknown committer row
		"hot-0",                          // named hot var
		"50.00%",                         // its share
		"invalidated",                    // wasted-work row
		"latency (1-in-64 sampled, 50 sampled commits)",
		"client", // phase-group label
		"app",    // client phase row
		"2.5ms",  // total p99, ms formatting
		"server",
		"collect", // server phase row
		"5.2µs",   // its p99, µs formatting
		"timeseries (25ms windows, 3 held, seq 3)",
		"commits/s",
		"abort %",
		"p99 total",
		"slo abort-rate",
		"FIRING",
		"alerts total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestCounterReset fabricates a scrape pair where the source restarted
// between polls (current counters below the previous ones). The raw uint64
// subtraction would wrap to a ~1.8e19 "rate"; the dashboard must instead show
// a reset note and carry no bogus rate, then re-sync on the next frame.
func TestCounterReset(t *testing.T) {
	if d, ok := counterDelta(500, 200); !ok || d != 300 {
		t.Errorf("monotonic delta: got (%d, %v)", d, ok)
	}
	if d, ok := counterDelta(200, 500); ok || d != 0 {
		t.Errorf("reset delta should clamp to (0, false): got (%d, %v)", d, ok)
	}

	cur, err := decode(strings.NewReader(cannedVars))
	if err != nil {
		t.Fatal(err)
	}
	prev := &snapshot{at: cur.at.Add(-time.Second), hasSTM: true}
	prev.stm.Commits, prev.stm.Aborts = 1_000_000, 50_000 // restart: prev > cur

	var b strings.Builder
	render(&b, prev, cur, 8)
	out := b.String()
	if !strings.Contains(out, "counter reset detected") {
		t.Errorf("render missing reset note:\n%s", out)
	}
	if strings.Contains(out, "aborts/s") { // the rate line's suffix; the sparkline label is "commits/s" alone
		t.Errorf("render emitted a rate line across a reset:\n%s", out)
	}

	// Next frame: prev re-synced to the post-restart snapshot, rates resume.
	resynced := &snapshot{at: cur.at.Add(-time.Second), hasSTM: true}
	resynced.stm.Commits, resynced.stm.Aborts = 3000, 700
	b.Reset()
	render(&b, resynced, cur, 8)
	if !strings.Contains(b.String(), "200 commits/s") {
		t.Errorf("render did not resume rates after re-sync:\n%s", b.String())
	}
}

// TestSpark pins the sparkline scaling: max maps to the tallest block, zero
// to the baseline, and an all-zero series stays flat.
func TestSpark(t *testing.T) {
	if got := spark([]float64{0, 25, 50, 100}); got != "▁▂▄█" {
		t.Errorf("spark ramp: got %q", got)
	}
	if got := spark([]float64{0, 0, 0}); got != "▁▁▁" {
		t.Errorf("all-zero spark: got %q", got)
	}
}

func TestRenderIdle(t *testing.T) {
	cur, err := decode(strings.NewReader(`{"stm": null, "stm_conflict": null}`))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, nil, cur, 8)
	if !strings.Contains(b.String(), "no STM system is currently running") {
		t.Errorf("idle render: %q", b.String())
	}
}

func TestRenderAttributionOff(t *testing.T) {
	cur, err := decode(strings.NewReader(
		`{"stm": {"algo": "norec", "commits": 10, "aborts": 0}, "stm_conflict": {"enabled": false}}`))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, nil, cur, 8)
	if !strings.Contains(b.String(), "attribution off") {
		t.Errorf("off render: %q", b.String())
	}
}

func TestFetchAgainstHTTPServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/vars" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write([]byte(cannedVars))
	}))
	defer srv.Close()
	s, err := fetch(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	if s.stm.Commits != 3200 || s.conflict.FP.Sampled != 100 {
		t.Fatalf("fetch: %+v", s)
	}
	if _, err := fetch(srv.URL + "/nope"); err == nil {
		t.Error("fetch accepted a 404")
	}
}

// TestRenderClipped checks the narrow-terminal path: every rendered line is
// cut to the column budget (by runes, so the µs sign doesn't split), and a
// non-positive width leaves the output untouched.
func TestRenderClipped(t *testing.T) {
	cur, err := decode(strings.NewReader(cannedVars))
	if err != nil {
		t.Fatal(err)
	}
	var clipped strings.Builder
	renderClipped(&clipped, nil, cur, 8, 40)
	for i, line := range strings.Split(strings.TrimRight(clipped.String(), "\n"), "\n") {
		if n := len([]rune(line)); n > 40 {
			t.Errorf("line %d is %d runes wide: %q", i, n, line)
		}
	}
	if !strings.Contains(clipped.String(), "latency (1-in-64 sampled") {
		t.Errorf("clipped render lost the latency panel:\n%s", clipped.String())
	}

	var full, unclipped strings.Builder
	render(&full, nil, cur, 8)
	renderClipped(&unclipped, nil, cur, 8, 0)
	if full.String() != unclipped.String() {
		t.Error("cols <= 0 should render unclipped")
	}
}

func TestTermWidth(t *testing.T) {
	if got := termWidth(72); got != 72 {
		t.Errorf("explicit width: got %d", got)
	}
	t.Setenv("COLUMNS", "61")
	if got := termWidth(0); got != 61 {
		t.Errorf("$COLUMNS width: got %d", got)
	}
	t.Setenv("COLUMNS", "not-a-number")
	if got := termWidth(0); got != 0 {
		t.Errorf("bad $COLUMNS should disable clipping: got %d", got)
	}
}

// TestWriteJSON checks the -json one-shot shape: the three vars under stable
// keys when a system is running, and only the timestamp when idle.
func TestWriteJSON(t *testing.T) {
	cur, err := decode(strings.NewReader(cannedVars))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := writeJSON(&b, cur); err != nil {
		t.Fatal(err)
	}
	var got jsonSnapshot
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if got.STM == nil || got.STM.Commits != 3200 {
		t.Errorf("stm section: %+v", got.STM)
	}
	if got.Conflict == nil || !got.Conflict.Enabled {
		t.Errorf("conflict section: %+v", got.Conflict)
	}
	if got.Latency == nil || got.Latency.SampledCommits != 50 {
		t.Errorf("latency section: %+v", got.Latency)
	}

	idle, err := decode(strings.NewReader(`{"stm": null}`))
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := writeJSON(&b, idle); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"stm"`) {
		t.Errorf("idle JSON should omit the stm section: %s", b.String())
	}
}

// TestLiveEndToEnd drives the real pipeline: obs.ServeMetrics serving the
// vars a live attribution-enabled report feeds, polled by fetch and rendered.
func TestLiveEndToEnd(t *testing.T) {
	rep := obs.ConflictReport{
		Enabled: true, Slots: 1,
		Matrix:             [][]uint64{{3}, {0}},
		InvalidationAborts: 3,
		Commits:            42,
	}
	obs.Publish("stm", func() any {
		return map[string]any{"algo": "invalstm", "commits": 42, "aborts": 3}
	})
	obs.PublishOpenMetrics(func() obs.MetricsPage { return obs.MetricsPage{Conflict: rep} })
	obs.Publish("stm_conflict", func() any { return rep })
	addr, shutdown, err := obs.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	s, err := fetch("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, nil, s, 4)
	out := b.String()
	for _, want := range []string{"invalstm", "invalidation aborts 3", "slot   0 -> slot   0"} {
		if !strings.Contains(out, want) {
			t.Errorf("live render missing %q:\n%s", want, out)
		}
	}
}
