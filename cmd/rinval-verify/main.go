// Command rinval-verify stress-checks an engine's safety properties on this
// machine: opacity (no transaction body ever observes an inconsistent
// snapshot), atomicity (conserved quantities stay conserved), and
// structural integrity of the transactional red-black tree under a mixed
// workload. It is the tool to run when porting the library to a new
// platform or after modifying an engine.
//
// Usage:
//
//	rinval-verify                      # all engines, 2s each
//	rinval-verify -algo rinval-v2 -duration 10s -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/ssrg-vt/rinval/internal/verify"
	"github.com/ssrg-vt/rinval/stm"
)

func main() {
	var (
		algoName = flag.String("algo", "", "engine to verify (default: all)")
		threads  = flag.Int("threads", 6, "concurrent worker goroutines")
		duration = flag.Duration("duration", 2*time.Second, "stress duration per check")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	algos := stm.Algos
	if *algoName != "" {
		a, err := stm.ParseAlgo(*algoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rinval-verify:", err)
			os.Exit(1)
		}
		algos = []stm.Algo{a}
	}

	failed := false
	for _, a := range algos {
		fmt.Printf("%-12s ", a)
		rep, err := verify.Engine(a, verify.Options{
			Threads:  *threads,
			Duration: *duration,
			Seed:     *seed,
		})
		if err != nil {
			failed = true
			fmt.Printf("FAIL: %v\n", err)
			continue
		}
		fmt.Printf("ok   snapshots=%d audits=%d treeOps=%d commits=%d aborts=%d\n",
			rep.Snapshots, rep.Audits, rep.TreeOps, rep.Commits, rep.Aborts)
	}
	if failed {
		os.Exit(1)
	}
}
