package main

import (
	"slices"
	"strings"
	"testing"
	"time"
)

func TestRunDispatchSim(t *testing.T) {
	ths := []int{2, 4}
	cases := []struct {
		exp    string
		tables int
	}{
		{"fig7a", 1},
		{"fig7b", 1},
		{"fig2", 1},
		{"fig3", 1},
		{"ablK", 1},
		{"ablJitter", 1},
		{"ablSteps", 1},
		{"ablReadSet", 1},
		{"ablTL2", 1},
		{"fig8", 6},
	}
	for _, c := range cases {
		got, err := run(c.exp, "sim", ths, "", 20*time.Millisecond, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.exp, err)
		}
		if len(got) != c.tables {
			t.Fatalf("%s: %d tables, want %d", c.exp, len(got), c.tables)
		}
		for _, tb := range got {
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table %q", c.exp, tb.Title)
			}
		}
	}
}

func TestRunFig8SingleApp(t *testing.T) {
	got, err := run("fig8", "sim", []int{2}, "genome", time.Millisecond, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d tables, err %v", len(got), err)
	}
}

func TestRunDispatchErrors(t *testing.T) {
	ths := []int{2}
	for _, c := range []struct{ exp, mode string }{
		{"nope", "sim"},
		{"fig7a", "warp"},
		{"fig3", "live"},
		{"ablK", "live"},
		{"ablJitter", "live"},
		{"ablSteps", "live"},
		{"ablTL2", "live"},
		{"ablBloom", "sim"},
		{"fig8", "sim"}, // with bogus app below
	} {
		app := ""
		if c.exp == "fig8" {
			app = "bogus"
		}
		if _, err := run(c.exp, c.mode, ths, app, time.Millisecond, 1); err == nil {
			t.Errorf("run(%s,%s) accepted", c.exp, c.mode)
		}
	}
}

func TestConflictDispatch(t *testing.T) {
	if err := runConflict("sim", "", 1, 1); err == nil {
		t.Error("conflict accepted sim mode")
	}
	if testing.Short() {
		t.Skip("live run")
	}
	out := t.TempDir() + "/conflict.json"
	if err := runConflict("live", out, 30, 1); err != nil {
		t.Fatalf("conflict live: %v", err)
	}
}

// TestExpHelpAndNames pins the --help and error-message contracts: one line
// per experiment in the help text, and a sorted name list (with conflict
// present) in the unknown-experiment message.
func TestExpHelpAndNames(t *testing.T) {
	help := expHelp()
	for _, e := range validExps {
		if !strings.Contains(help, e.name) || !strings.Contains(help, e.what) {
			t.Errorf("help text missing %q line", e.name)
		}
	}
	if lines := strings.Count(help, "\n"); lines != len(validExps) {
		t.Errorf("help text has %d experiment lines, want %d", lines, len(validExps))
	}
	names := expNamesSorted()
	if !slices.IsSorted(names) {
		t.Errorf("experiment names not sorted: %v", names)
	}
	if !slices.Contains(names, "conflict") {
		t.Errorf("conflict missing from %v", names)
	}
	if !slices.Contains(names, "shardsweep") {
		t.Errorf("shardsweep missing from %v", names)
	}
}

func TestRunLiveQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("live run")
	}
	got, err := run("fig7a", "live", []int{2}, "", 15*time.Millisecond, 1)
	if err != nil || len(got) != 1 || len(got[0].Rows) != 4 {
		t.Fatalf("live fig7a: %v", err)
	}
}
