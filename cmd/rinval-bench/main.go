// Command rinval-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	rinval-bench -exp fig7a            # Figure 7(a): RBT throughput, 50% reads
//	rinval-bench -exp fig7b            # Figure 7(b): RBT throughput, 80% reads
//	rinval-bench -exp fig2             # Figure 2: RBT critical-path breakdown
//	rinval-bench -exp fig3             # Figure 3: STAMP breakdown (sim only)
//	rinval-bench -exp fig8             # Figure 8: all STAMP execution times
//	rinval-bench -exp fig8 -app kmeans # Figure 8(a) only
//	rinval-bench -exp ablK             # ablation: invalidation-server count
//	rinval-bench -exp ablSteps         # ablation: V3 window under server lag
//	rinval-bench -exp ablJitter        # ablation: OS jitter sensitivity
//	rinval-bench -exp ablBloom         # ablation: bloom filter size (live)
//	rinval-bench -exp ablReadSet       # ablation: validation vs read-set size
//	rinval-bench -exp ablTL2           # ablation: coarse family vs TL2
//	rinval-bench -exp latency -mode live  # per-transaction latency percentiles
//	rinval-bench -exp latencyslo -mode live -out results/BENCH_latency_slo.json
//	rinval-bench -exp groupcommit -mode live -out results/BENCH_group_commit.json
//	rinval-bench -exp invalscan -mode live -out results/BENCH_inval_scan.json
//	rinval-bench -exp conflict -mode live -out results/BENCH_conflict_attr.json
//	rinval-bench -exp shardsweep -out results/BENCH_shard_sweep.json
//	rinval-bench -exp mvreadonly -mode live -out results/BENCH_mv_readonly.json
//	rinval-bench -exp fig7a -mode live -trace out.json   # Perfetto lifecycle trace
//	rinval-bench -exp fig7a -mode live -metrics :8080    # expvar + pprof endpoint
//
// -mode sim (default) runs the deterministic 64-core discrete-event model,
// which reproduces the paper's shapes on any host. -mode live runs the real
// engines on this machine (results depend on GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"github.com/ssrg-vt/rinval/internal/bench"
	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/stm"
)

// validExps maps every experiment name to its one-line description, in the
// order the package doc documents them. Keep the doc comment in sync; the
// -exp help text and the unknown-experiment message derive from this table.
var validExps = []expDesc{
	{"fig7a", "Figure 7(a): RBT throughput, 50% reads"},
	{"fig7b", "Figure 7(b): RBT throughput, 80% reads"},
	{"fig2", "Figure 2: RBT critical-path breakdown"},
	{"fig3", "Figure 3: STAMP breakdown (sim only)"},
	{"fig8", "Figure 8: STAMP execution times"},
	{"ablK", "ablation: invalidation-server count (sim only)"},
	{"ablSteps", "ablation: V3 window under server lag (sim only)"},
	{"ablJitter", "ablation: OS jitter sensitivity (sim only)"},
	{"ablBloom", "ablation: bloom filter size (live only)"},
	{"ablReadSet", "ablation: validation vs read-set size"},
	{"ablTL2", "ablation: coarse family vs TL2 (sim only)"},
	{"latency", "per-transaction latency percentiles (live only)"},
	{"latencyslo", "critical-path latency decomposition: phase p50/p99 per engine x threads x shards (live only)"},
	{"sloburn", "SLO burn-rate monitor: planted phase change must alert, steady control must stay silent (live only)"},
	{"groupcommit", "group-commit batching sweep (live only)"},
	{"invalscan", "invalidation-scan sweep: flat vs two-level (live only)"},
	{"conflict", "conflict attribution: FP rate, hot-var skew, wasted work (live only)"},
	{"shardsweep", "sharded commit streams: throughput vs Config.Shards (sim scaling + live parity)"},
	{"mvreadonly", "multi-version read-only sweep: read-ratio x clients x Config.Versions (live only)"},
}

type expDesc struct{ name, what string }

// expHelp renders one line per experiment for --help.
func expHelp() string {
	var b strings.Builder
	b.WriteString("experiment to run; one of:\n")
	for _, e := range validExps {
		fmt.Fprintf(&b, "  %-12s %s\n", e.name, e.what)
	}
	return strings.TrimRight(b.String(), "\n")
}

// expNamesSorted returns the experiment names in lexical order, for the
// unknown-experiment message.
func expNamesSorted() []string {
	names := make([]string, len(validExps))
	for i, e := range validExps {
		names[i] = e.name
	}
	slices.Sort(names)
	return names
}

func main() {
	var (
		exp      = flag.String("exp", "fig7a", expHelp())
		mode     = flag.String("mode", "sim", "execution mode: sim (64-core model) or live (this machine)")
		threads  = flag.String("threads", "2,4,8,16,24,32,48,64", "comma-separated thread counts")
		app      = flag.String("app", "", "restrict fig8 to one STAMP app")
		duration = flag.Duration("duration", 150*time.Millisecond, "live mode: measurement window per point")
		seed     = flag.Uint64("seed", 1, "workload seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		svgDir   = flag.String("svg", "", "also render each table as an SVG chart into this directory")
		out      = flag.String("out", "", "groupcommit/invalscan/conflict/shardsweep: JSON output path (default results/BENCH_<exp>.json)")
		iters    = flag.Int("iters", 400, "groupcommit/invalscan/conflict/shardsweep: committed transactions per client")
		trace    = flag.String("trace", "", "live mode: write a Chrome trace-event JSON of the last benchmark point to this path (open in Perfetto)")
		metrics  = flag.String("metrics", "", "serve expvar and pprof on this address (e.g. :8080) for the duration of the run")
	)
	flag.Parse()

	if !slices.ContainsFunc(validExps, func(e expDesc) bool { return e.name == *exp }) {
		fatal(fmt.Errorf("unknown experiment %q (valid: %s)", *exp, strings.Join(expNamesSorted(), ", ")))
	}
	if *trace != "" {
		if *mode != "live" {
			fatal(fmt.Errorf("-trace requires -mode live (sim runs record no lifecycle events)"))
		}
		bench.TraceTo(*trace)
	}
	if *metrics != "" {
		addr, shutdown, err := obs.ServeMetrics(*metrics)
		if err != nil {
			fatal(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/debug/vars (pprof under /debug/pprof/)\n", addr)
	}

	if *exp == "groupcommit" {
		if err := runGroupCommit(*mode, *out, *iters); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "invalscan" {
		if err := runInvalScan(*mode, *out, *iters); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "conflict" {
		if err := runConflict(*mode, *out, *iters, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "latencyslo" {
		if err := runLatencySLO(*mode, *out, *iters, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "sloburn" {
		if err := runSLOBurn(*mode, *out, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "shardsweep" {
		if err := runShardSweep(*out, *iters, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *exp == "mvreadonly" {
		if err := runMVReadOnly(*mode, *out, *duration, *seed); err != nil {
			fatal(err)
		}
		return
	}

	ths, err := bench.ParseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	if *exp == "latency" {
		t, err := runLatency(*mode, ths[0], *duration, *seed)
		if err != nil {
			fatal(err)
		}
		t.Format(os.Stdout)
		return
	}
	tables, err := run(*exp, *mode, ths, *app, *duration, *seed)
	if err != nil {
		fatal(err)
	}
	for _, t := range tables {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.CSV(os.Stdout)
		} else {
			t.Format(os.Stdout)
		}
		if *svgDir != "" {
			if err := writeSVG(*svgDir, t, *exp); err != nil {
				fatal(err)
			}
		}
	}
	// The trace file holds the last benchmark point that ran through the
	// live rbtree harness; experiments that never touch it write nothing.
	if *trace != "" {
		if _, err := os.Stat(*trace); err == nil {
			fmt.Printf("wrote %s\n", *trace)
		}
	}
}

// writeSVG renders one table as an SVG chart in dir. Figure 8 plots
// execution time (as the paper does); everything else plots throughput.
func writeSVG(dir string, t *bench.Table, exp string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	kind := bench.ChartThroughput
	if exp == "fig8" {
		kind = bench.ChartElapsed
	}
	path := dir + "/" + t.SVGFileName()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.RenderSVG(f, kind); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func run(exp, mode string, ths []int, app string, dur time.Duration, seed uint64) ([]*bench.Table, error) {
	live := mode == "live"
	if !live && mode != "sim" {
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	switch exp {
	case "fig7a", "fig7b":
		pct := 50
		if exp == "fig7b" {
			pct = 80
		}
		if live {
			t, err := bench.LiveFigure7(pct, ths, dur, seed)
			return []*bench.Table{t}, err
		}
		return []*bench.Table{bench.SimFigure7(pct, ths, seed)}, nil
	case "fig2":
		if live {
			t, err := bench.LiveFigure2(ths, dur, seed)
			return []*bench.Table{t}, err
		}
		return []*bench.Table{bench.SimFigure2(ths, seed)}, nil
	case "fig3":
		if live {
			return nil, fmt.Errorf("fig3 breakdown is sim-only; run -exp fig8 -mode live for live STAMP numbers")
		}
		return []*bench.Table{bench.SimFigure3(32, seed)}, nil
	case "fig8":
		apps := bench.STAMPApps[:6] // bayes is breakdown-only, as in the paper
		if app != "" {
			apps = []string{app}
		}
		var out []*bench.Table
		for _, a := range apps {
			var t *bench.Table
			var err error
			if live {
				t, err = bench.LiveFigure8(a, ths, bench.ScaleDefault, seed)
			} else {
				t, err = bench.SimFigure8(a, ths, seed)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	case "ablK":
		if live {
			return nil, fmt.Errorf("ablK is sim-only (needs 64 modeled cores)")
		}
		return []*bench.Table{bench.SimAblationInvalServers([]int{1, 2, 4, 8, 16}, 48, seed)}, nil
	case "ablJitter":
		if live {
			return nil, fmt.Errorf("ablJitter is sim-only")
		}
		return []*bench.Table{bench.SimAblationJitter(48, seed)}, nil
	case "ablSteps":
		if live {
			return nil, fmt.Errorf("ablSteps is sim-only")
		}
		return []*bench.Table{bench.SimAblationStepsAhead([]int{1, 2, 4, 8}, 48, seed)}, nil
	case "ablBloom":
		if !live {
			return nil, fmt.Errorf("ablBloom is live-only (exercises the real filters)")
		}
		t, err := bench.LiveAblationBloomBits([]int{64, 256, 1024, 4096}, 4, dur, seed)
		return []*bench.Table{t}, err
	case "ablReadSet":
		if live {
			t, err := bench.LiveAblationReadSetSize([]int{64, 256, 1024}, 2, dur, seed)
			return []*bench.Table{t}, err
		}
		return []*bench.Table{bench.SimAblationReadSetSize([]int{8, 32, 128, 512}, 16, seed)}, nil
	case "ablTL2":
		if live {
			return nil, fmt.Errorf("ablTL2 is sim-only; run the live tl2 engine via cmd/stamp -algo tl2")
		}
		return []*bench.Table{bench.SimAblationCoarseVsFine(ths, seed)}, nil
	}
	return nil, fmt.Errorf("unknown experiment %q (valid: %s)", exp, strings.Join(expNamesSorted(), ", "))
}

// runGroupCommit sweeps the group-commit batching knob on the live RInval
// engines and writes the JSON report consumed by the acceptance checks.
func runGroupCommit(mode, out string, iters int) error {
	if mode != "live" {
		return fmt.Errorf("groupcommit is live-only (it measures the real commit-server)")
	}
	if out == "" {
		out = "results/BENCH_group_commit.json"
	}
	rep, err := bench.RunGroupCommit(
		[]stm.Algo{stm.RInvalV1, stm.RInvalV2},
		bench.GroupCommitOpts{
			Clients: []int{1, 4, 16, 64},
			Batches: []int{1, 4, 16},
			Iters:   iters,
		})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runInvalScan sweeps MaxThreads at a fixed in-flight client count, once
// under the seed flat scan and once under the two-level scan, and writes the
// JSON report consumed by the acceptance checks: two-level scan-phase time
// must stay flat as the slot array grows while the flat scan grows linearly.
func runInvalScan(mode, out string, iters int) error {
	if mode != "live" {
		return fmt.Errorf("invalscan is live-only (it measures the real commit-server scan)")
	}
	if out == "" {
		out = "results/BENCH_inval_scan.json"
	}
	rep, err := bench.RunInvalScan(bench.InvalScanOpts{
		MaxThreads: []int{8, 16, 32, 64},
		Clients:    4,
		Iters:      iters,
	})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runConflict sweeps the contention knob across the invalidation engines with
// conflict attribution on and writes the JSON report consumed by the
// acceptance checks: bloom false-positive rate, hot-var skew (top-4 sample
// share), and wasted-work fraction per (engine, pool-size) point.
func runConflict(mode, out string, iters int, seed uint64) error {
	if mode != "live" {
		return fmt.Errorf("conflict is live-only (it measures the real attribution layer)")
	}
	if out == "" {
		out = "results/BENCH_conflict_attr.json"
	}
	rep, err := bench.RunConflict(bench.ConflictOpts{
		Iters: iters,
		Seed:  seed,
	})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runLatencySLO sweeps the sampled critical-path latency decomposition
// across engines, thread counts, and shard counts, and writes the JSON
// report consumed by the acceptance checks: the per-phase p99s an SLO would
// be written against, with the commit path decomposed on both the client
// side (app/retry/commit-wait) and the server side (collect through reply).
func runLatencySLO(mode, out string, iters int, seed uint64) error {
	if mode != "live" {
		return fmt.Errorf("latencyslo is live-only (it measures the real instrumented hot path)")
	}
	if out == "" {
		out = "results/BENCH_latency_slo.json"
	}
	rep, err := bench.RunLatencySLO(bench.LatencySLOOpts{
		Iters: iters,
		Seed:  seed,
	})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runSLOBurn runs the SLO burn-rate experiment: a steady control run that
// must record zero alerts and a planted phase-change run whose abort-rate
// objective must trip both burn windows.
func runSLOBurn(mode, out string, seed uint64) error {
	if mode != "live" {
		return fmt.Errorf("sloburn is live-only (it exercises the real sampler and alert pipeline)")
	}
	if out == "" {
		out = "results/BENCH_slo_burn.json"
	}
	rep, err := bench.RunSLOBurn(bench.SLOBurnOpts{Seed: seed})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runShardSweep sweeps Config.Shards and writes the JSON report consumed by
// the acceptance checks. It always runs both phases regardless of -mode: the
// deterministic 64-core model carries the scaling claim (S independent
// commit-server pipelines need S cores the live CI host does not have), and
// the live phase anchors S=1 parity with the group-commit baseline plus the
// cross-shard handshake accounting.
func runShardSweep(out string, iters int, seed uint64) error {
	if out == "" {
		out = "results/BENCH_shard_sweep.json"
	}
	rep, err := bench.RunShardSweep(
		[]stm.Algo{stm.RInvalV1, stm.RInvalV2},
		bench.ShardSweepOpts{
			Iters: iters,
			Seed:  seed,
		})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runMVReadOnly sweeps read-ratio x clients x Config.Versions with dedicated
// reader and writer clients and writes the JSON report consumed by the
// acceptance checks: at every Versions>0 point the reader threads' abort
// count and the conflict matrix's read-victim rows must be zero, and at
// 90% reads / 64 clients the snapshot path must at least double the
// Versions=0 read-only throughput.
func runMVReadOnly(mode, out string, dur time.Duration, seed uint64) error {
	if mode != "live" {
		return fmt.Errorf("mvreadonly is live-only (it measures the real snapshot path; use the sim's Versions knob for modeled curves)")
	}
	if out == "" {
		out = "results/BENCH_mv_readonly.json"
	}
	rep, err := bench.RunMVReadOnly(
		[]stm.Algo{stm.InvalSTM, stm.RInvalV2},
		bench.MVReadOnlyOpts{
			Duration: dur,
			Seed:     seed,
		})
	if err != nil {
		return err
	}
	rep.Format(os.Stdout)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runLatency handles the latency experiment, which uses its own table shape.
func runLatency(mode string, threads int, dur time.Duration, seed uint64) (*bench.LatencyTable, error) {
	if mode != "live" {
		return nil, fmt.Errorf("latency is live-only (it measures real clock distributions)")
	}
	algos := []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV1, stm.RInvalV2, stm.TL2}
	return bench.LiveLatencyProfile(algos, threads, dur, seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rinval-bench:", err)
	os.Exit(1)
}
