// Command rinval-sim explores the discrete-event model of the paper's
// 64-core testbed directly: pick an engine, a workload, and a scale, and
// inspect throughput, abort rate, and the critical-path breakdown.
//
// Usage:
//
//	rinval-sim -engine rinval-v2 -workload rbtree50 -threads 48
//	rinval-sim -engine norec -workload genome -threads 64 -duration 100000000
//	rinval-sim -sweep -workload rbtree80        # all engines x thread curve
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ssrg-vt/rinval/internal/sim"
)

func main() {
	var (
		engine   = flag.String("engine", "rinval-v2", "engine: mutex|norec|invalstm|rinval-v1|rinval-v2|rinval-v3")
		workload = flag.String("workload", "rbtree50", "rbtree<readpct> or a STAMP app name")
		threads  = flag.Int("threads", 48, "application threads")
		servers  = flag.Int("servers", 4, "invalidation servers (v2/v3)")
		steps    = flag.Int("steps", 2, "steps ahead (v3)")
		cores    = flag.Int("cores", 64, "modeled cores")
		duration = flag.Uint64("duration", 50_000_000, "simulated cycles")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		sweep    = flag.Bool("sweep", false, "run every engine across a thread sweep")
	)
	flag.Parse()

	w, err := parseWorkload(*workload)
	if err != nil {
		fatal(err)
	}
	p := sim.DefaultParams()

	if *sweep {
		fmt.Printf("workload %s on %d modeled cores (%d cycles)\n", w.Name, *cores, *duration)
		fmt.Printf("%-12s", "threads")
		for _, e := range sim.Engines {
			fmt.Printf("%12s", e)
		}
		fmt.Println(" (K tx/s)")
		for _, n := range []int{2, 4, 8, 16, 24, 32, 48, 64} {
			fmt.Printf("%-12d", n)
			for _, e := range sim.Engines {
				r := runOne(p, w, e, n, *servers, *steps, *cores, *duration, *seed)
				fmt.Printf("%12.0f", r.ThroughputKTxPerSec(p))
			}
			fmt.Println()
		}
		return
	}

	e, err := sim.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	r := runOne(p, w, e, *threads, *servers, *steps, *cores, *duration, *seed)
	read, commit, abort, other := r.Breakdown()
	fmt.Printf("engine      %s\n", e)
	fmt.Printf("workload    %s\n", w.Name)
	fmt.Printf("threads     %d on %d modeled cores\n", *threads, *cores)
	fmt.Printf("commits     %d\n", r.Commits)
	fmt.Printf("aborts      %d (%.1f%%)\n", r.Aborts, 100*r.AbortRate())
	fmt.Printf("throughput  %.0f K tx/s\n", r.ThroughputKTxPerSec(p))
	fmt.Printf("breakdown   read %.1f%%  commit %.1f%%  abort %.1f%%  other %.1f%%\n",
		100*read, 100*commit, 100*abort, 100*other)
}

func runOne(p sim.Params, w sim.Workload, e sim.Engine, threads, servers, steps, cores int, dur, seed uint64) sim.Result {
	c := sim.Config{
		Engine:       e,
		Threads:      threads,
		InvalServers: servers,
		StepsAhead:   steps,
		Cores:        cores,
		Duration:     dur,
		Seed:         seed,
	}
	r, err := sim.Run(p, w, c)
	if err != nil {
		fatal(err)
	}
	return r
}

func parseWorkload(s string) (sim.Workload, error) {
	if strings.HasPrefix(s, "rbtree") {
		pct := 50
		if rest := strings.TrimPrefix(s, "rbtree"); rest != "" {
			if _, err := fmt.Sscanf(rest, "%d", &pct); err != nil || pct < 0 || pct > 100 {
				return sim.Workload{}, fmt.Errorf("bad rbtree read percentage in %q", s)
			}
		}
		return sim.RBTree(pct), nil
	}
	if w, ok := sim.STAMP(s); ok {
		return w, nil
	}
	return sim.Workload{}, fmt.Errorf("unknown workload %q (rbtree<pct> or %s)", s, strings.Join(sim.STAMPNames, "|"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rinval-sim:", err)
	os.Exit(1)
}
