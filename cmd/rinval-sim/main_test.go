package main

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/sim"
)

func TestParseWorkload(t *testing.T) {
	w, err := parseWorkload("rbtree")
	if err != nil || w.Name != "rbtree" || w.ReadOnlyFrac != 0.5 {
		t.Fatalf("rbtree default: %+v %v", w, err)
	}
	w, err = parseWorkload("rbtree80")
	if err != nil || w.ReadOnlyFrac != 0.8 {
		t.Fatalf("rbtree80: %+v %v", w, err)
	}
	for _, name := range sim.STAMPNames {
		w, err := parseWorkload(name)
		if err != nil || w.Name != name {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, bad := range []string{"rbtree-5", "rbtree101", "rbtreex", "zork"} {
		if _, err := parseWorkload(bad); err == nil {
			t.Errorf("parseWorkload(%q) accepted", bad)
		}
	}
}

func TestRunOne(t *testing.T) {
	p := sim.DefaultParams()
	w := sim.RBTree(50)
	r := runOne(p, w, sim.RInvalV2, 8, 2, 2, 64, 1_000_000, 1)
	if r.Commits == 0 || r.Threads != 8 {
		t.Fatalf("result %+v", r)
	}
}
