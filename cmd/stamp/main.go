// Command stamp runs one live STAMP application port under a chosen STM
// engine and reports execution time and transaction statistics.
//
// Usage:
//
//	stamp -app kmeans -algo rinval-v2 -threads 4
//	stamp -app genome -algo norec -threads 8 -scale small
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ssrg-vt/rinval/internal/bench"
	"github.com/ssrg-vt/rinval/stm"
)

func main() {
	var (
		app     = flag.String("app", "kmeans", "kmeans|ssca2|labyrinth|intruder|genome|vacation|bayes")
		algo    = flag.String("algo", "rinval-v2", "mutex|norec|invalstm|rinval-v1|rinval-v2|rinval-v3")
		threads = flag.Int("threads", 4, "worker threads")
		scale   = flag.String("scale", "default", "workload scale: small|default|large")
		seed    = flag.Uint64("seed", 1, "input generation seed")
	)
	flag.Parse()

	a, err := stm.ParseAlgo(*algo)
	if err != nil {
		fatal(err)
	}
	sc := bench.ScaleDefault
	switch *scale {
	case "small":
		sc = bench.ScaleSmall
	case "default":
	case "large":
		sc = bench.ScaleLarge
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	row, err := bench.RunSTAMP(a, *app, *threads, sc, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("app        %s (validated)\n", *app)
	fmt.Printf("engine     %s\n", row.Algo)
	fmt.Printf("threads    %d\n", row.Threads)
	fmt.Printf("elapsed    %s\n", row.Elapsed)
	fmt.Printf("commits    %d\n", row.Commits)
	fmt.Printf("aborts     %d\n", row.Aborts)
	fmt.Printf("throughput %.1f K tx/s\n", row.KTxPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stamp:", err)
	os.Exit(1)
}
