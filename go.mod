module github.com/ssrg-vt/rinval

go 1.24
