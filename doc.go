// Package rinval is a Go reproduction of "Remote Invalidation: Optimizing
// the Critical Path of Memory Transactions" (Hassan, Palmieri, Ravindran,
// IPDPS 2014): a software transactional memory whose commit and invalidation
// routines execute on dedicated server goroutines communicating with
// application threads through cache-aligned request slots.
//
// The public API lives in the stm subpackage; see README.md for the
// architecture and EXPERIMENTS.md for the paper-figure reproductions. The
// root package intentionally exports nothing.
package rinval
