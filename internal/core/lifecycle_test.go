package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterExhaustion(t *testing.T) {
	s, err := New(Config{Algo: NOrec, MaxThreads: 2, InvalServers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := s.MustRegister()
	b := s.MustRegister()
	if _, err := s.Register(); err == nil {
		t.Fatal("third Register succeeded with MaxThreads=2")
	}
	a.Close()
	c, err := s.Register()
	if err != nil {
		t.Fatalf("Register after release: %v", err)
	}
	c.Close()
	b.Close()
}

func TestCloseWithLiveThreadFails(t *testing.T) {
	s, err := New(Config{Algo: RInvalV2})
	if err != nil {
		t.Fatal(err)
	}
	th := s.MustRegister()
	if err := s.Close(); err == nil {
		t.Fatal("Close succeeded with live thread")
	}
	th.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	if _, err := s.Register(); err == nil {
		t.Fatal("Register succeeded on closed system")
	}
}

func TestThreadCloseIdempotent(t *testing.T) {
	s := newSys(t, RInvalV1, nil)
	th := s.MustRegister()
	th.Close()
	th.Close() // must not panic or corrupt the free list
	th2 := s.MustRegister()
	defer th2.Close()
}

func TestNestedAtomicallyPanics(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	defer th.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Atomically did not panic")
		}
	}()
	_ = th.Atomically(func(tx *Tx) error {
		return th.Atomically(func(tx *Tx) error { return nil })
	})
}

func TestCloseInsideTxPanics(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	defer func() {
		if recover() == nil {
			t.Fatal("Close inside tx did not panic")
		}
		th.Close()
	}()
	_ = th.Atomically(func(tx *Tx) error {
		th.Close()
		return nil
	})
}

func TestAtomicallyOnClosedThreadPanics(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	th.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Atomically on closed thread did not panic")
		}
	}()
	_ = th.Atomically(func(tx *Tx) error { return nil })
}

func TestPinnedServers(t *testing.T) {
	// Pinned servers must behave identically (the pin is a scheduling hint).
	s, err := New(Config{Algo: RInvalV2, MaxThreads: 8, InvalServers: 2, PinServers: true})
	if err != nil {
		t.Fatal(err)
	}
	x := NewVar(0)
	th := s.MustRegister()
	for i := 0; i < 50; i++ {
		if err := th.Atomically(func(tx *Tx) error {
			tx.Store(x, tx.Load(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if x.Peek().(int) != 50 {
		t.Fatalf("got %v", x.Peek())
	}
}

func TestServerStartStopAllRemoteEngines(t *testing.T) {
	// Systems with server goroutines must start and stop cleanly even when
	// no transaction ever runs.
	for _, algo := range []Algo{RInvalV1, RInvalV2, RInvalV3} {
		for i := 0; i < 3; i++ {
			s, err := New(Config{Algo: algo, MaxThreads: 8, InvalServers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestStatsAggregationAcrossRetiredThreads(t *testing.T) {
	s := newSys(t, NOrec, nil)
	x := NewVar(0)
	for round := 0; round < 3; round++ {
		th := s.MustRegister()
		for i := 0; i < 5; i++ {
			if err := th.Atomically(func(tx *Tx) error {
				tx.Store(x, tx.Load(x).(int)+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		th.Close()
	}
	st := s.Stats()
	if st.Commits != 15 {
		t.Fatalf("aggregated commits %d want 15", st.Commits)
	}
	if x.Peek().(int) != 15 {
		t.Fatal("final value wrong")
	}
}

// TestQuickSequentialEquivalence: a random batch of read-modify-write ops
// applied through any engine by a single thread must produce exactly the
// state a plain sequential interpreter produces.
func TestQuickSequentialEquivalence(t *testing.T) {
	type op struct {
		VarIdx uint8
		Delta  int8
	}
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		f := func(ops []op) bool {
			const nvars = 8
			vars := make([]*Var, nvars)
			model := make([]int, nvars)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			for _, o := range ops {
				i := int(o.VarIdx) % nvars
				model[i] += int(o.Delta)
				if err := th.Atomically(func(tx *Tx) error {
					tx.Store(vars[i], tx.Load(vars[i]).(int)+int(o.Delta))
					return nil
				}); err != nil {
					return false
				}
			}
			for i := range vars {
				if vars[i].Peek().(int) != model[i] {
					return false
				}
			}
			return true
		}
		cfg := &quick.Config{MaxCount: 20}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatal(err)
		}
	})
}

// TestQuickConcurrentConservation: random transfer batches executed by
// concurrent threads conserve the total across engines.
func TestQuickConcurrentConservation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		f := func(seeds [4]uint16) bool {
			const nvars = 6
			vars := make([]*Var, nvars)
			for i := range vars {
				vars[i] = NewVar(50)
			}
			var wg sync.WaitGroup
			for w := 0; w < len(seeds); w++ {
				seed := uint64(seeds[w]) + 1
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					rng := seed
					next := func() int {
						rng = rng*6364136223846793005 + 1442695040888963407
						return int(rng >> 33)
					}
					for i := 0; i < 30; i++ {
						from, to, amt := next()%nvars, next()%nvars, next()%9
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(vars[from], tx.Load(vars[from]).(int)-amt)
							tx.Store(vars[to], tx.Load(vars[to]).(int)+amt)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			total := 0
			for _, v := range vars {
				total += v.Peek().(int)
			}
			return total == nvars*50
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMustNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted bad config")
		}
	}()
	MustNew(Config{MaxThreads: -5})
}

func TestAccessors(t *testing.T) {
	s := newSys(t, RInvalV2, nil)
	if s.Algo() != RInvalV2 {
		t.Fatal("Algo accessor")
	}
	if s.Config().MaxThreads != 16 {
		t.Fatalf("Config accessor: %+v", s.Config())
	}
	th := s.MustRegister()
	defer th.Close()
	if th.ID() < 0 || th.ID() >= 16 {
		t.Fatalf("thread id %d", th.ID())
	}
	_ = s.Timestamp()
}
