package core

import (
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/internal/obs"
)

// AbortReason classifies why a transaction attempt failed; it aliases the
// observability taxonomy so Stats consumers can index AbortReasons without
// importing internal/obs.
type AbortReason = obs.AbortReason

// Abort reasons (see the obs package for semantics).
const (
	AbortInvalidated = obs.AbortInvalidated
	AbortValidation  = obs.AbortValidation
	AbortSelf        = obs.AbortSelf
	AbortLocked      = obs.AbortLocked
	AbortExplicit    = obs.AbortExplicit
	NumAbortReasons  = obs.NumAbortReasons
)

// Stats aggregates a thread's transactional activity. With Config.Stats
// enabled the *Ns fields attribute wall time to the paper's critical-path
// phases (Figures 2-3): ReadNs covers reads including validation/consistency
// waits, CommitNs covers the commit routine including lock acquisition or
// server round-trip, AbortNs covers rollback and contention-manager backoff.
// Everything else (transaction bodies, non-transactional work) is the paper's
// "other" block, computed by the harness as wallTime - Read - Commit - Abort.
//
// A live thread updates its counters with atomic adds, so System.Stats and
// Thread.Stats may be called while transactions run: each counter is read
// atomically (the snapshot as a whole is not a single instant, but every
// counter is monotonic, so the result is always a state the thread passed
// through field-by-field).
type Stats struct {
	Commits  uint64 // committed transactions
	Aborts   uint64 // conflict aborts (user aborts are not counted)
	ReadOnly uint64 // committed transactions that wrote nothing
	Reads    uint64 // transactional loads (all attempts)
	Writes   uint64 // transactional stores (all attempts)

	// ROCommits counts AtomicallyRO transactions that finished on the
	// multi-version snapshot path (Config.Versions > 0): zero aborts, zero
	// invalidation-scan work by construction. A subset of both Commits and
	// ReadOnly. ROFallbacks counts snapshot attempts abandoned because the
	// writers lapped the version ring (or the epoch vector never stabilized);
	// each one re-ran once on the regular path.
	ROCommits   uint64
	ROFallbacks uint64

	ReadNs   uint64 // time in Tx.Load: value load + validation/invalidation checks
	CommitNs uint64 // time in commit: acquisition/invalidation/write-back or server wait
	AbortNs  uint64 // time rolling back + contention-manager backoff

	Validations   uint64 // NOrec full read-set revalidations
	ValidationOps uint64 // read-set entries compared during revalidations
	Invalidations uint64 // transactions this thread doomed (InvalSTM commits)
	SelfAborts    uint64 // CMReaderBiased writer self-aborts

	// AbortReasons breaks aborts down by cause, indexed by AbortReason. The
	// conflict reasons (invalidated, validation, self, locked) sum exactly
	// to Aborts; the trailing AbortExplicit entry counts user aborts (fn
	// returned an error), which Aborts excludes.
	AbortReasons [NumAbortReasons]uint64

	// Epochs counts odd/even timestamp transitions the RInval commit-server
	// executed. With group commit one epoch can retire a whole batch, so
	// Epochs <= the server's Commits; the ratio is the batching win.
	Epochs uint64
	// CrossShardCommits counts commits retired through the two-phase stream
	// handshake (Config.Shards > 1 only): requests whose touched-shard mask
	// spanned more than one commit stream.
	CrossShardCommits uint64
	// BatchSizes is the distribution of group-commit batch sizes (one sample
	// per epoch). Only the commit-server records into it.
	BatchSizes histo.Histogram

	// Server holds the commit-server's per-epoch phase histograms. Only the
	// RInval commit-server records into it (read after Close); queue-depth
	// and step-ahead samples are always collected, the *Ns phases require
	// Config.Stats (they cost clock reads).
	Server ServerPhases
}

// ServerPhases is the commit-server's critical-path breakdown, one histogram
// sample per group-commit epoch. The phases correspond to the paper's
// Algorithm 2-4 steps: collect the batch (scan), wait out invalidation-server
// lag, publish the write sets, reply to the members.
type ServerPhases struct {
	// QueueDepth is the number of pending commit requests the epoch's
	// collection scan observed (including ones it deferred).
	QueueDepth histo.Histogram
	// ScanNs is the batch-collection scan duration.
	ScanNs histo.Histogram
	// InvalWaitNs is the lag-budget wait for the invalidation-servers
	// (V2/V3), or the inline invalidation scan (V1).
	InvalWaitNs histo.Histogram
	// WriteBackNs is the write-back duration for the whole batch.
	WriteBackNs histo.Histogram
	// ReplyNs is the reply fan-out duration.
	ReplyNs histo.Histogram
	// LockWaitNs is the cross-shard handshake's stream-lock acquisition
	// duration, one sample per cross-shard commit (Config.Shards > 1 only).
	LockWaitNs histo.Histogram
	// DrainNs is the cross-shard handshake's invalidation-backlog drain
	// duration (Config.Shards > 1, V2/V3 only).
	DrainNs histo.Histogram
	// StepAhead is the V3 step-ahead occupancy: how many commits the
	// commit-server was running ahead of the slowest invalidation-server
	// when each epoch started.
	StepAhead histo.Histogram
}

// merge folds o into p.
func (p *ServerPhases) merge(o *ServerPhases) {
	p.QueueDepth.Merge(&o.QueueDepth)
	p.ScanNs.Merge(&o.ScanNs)
	p.InvalWaitNs.Merge(&o.InvalWaitNs)
	p.WriteBackNs.Merge(&o.WriteBackNs)
	p.ReplyNs.Merge(&o.ReplyNs)
	p.LockWaitNs.Merge(&o.LockWaitNs)
	p.DrainNs.Merge(&o.DrainNs)
	p.StepAhead.Merge(&o.StepAhead)
}

// Add accumulates o into s. The counter adds are atomic for the same reason
// the live-thread updates are: s may be a shared aggregate that several
// goroutines fold into, and the atomic discipline on these fields is
// all-or-nothing (stmlint's mixed-access check enforces it). The histogram
// merges stay plain — only quiescent server stats carry them.
func (s *Stats) Add(o Stats) {
	atomic.AddUint64(&s.Commits, o.Commits)
	atomic.AddUint64(&s.Aborts, o.Aborts)
	atomic.AddUint64(&s.ReadOnly, o.ReadOnly)
	atomic.AddUint64(&s.ROCommits, o.ROCommits)
	atomic.AddUint64(&s.ROFallbacks, o.ROFallbacks)
	atomic.AddUint64(&s.Reads, o.Reads)
	atomic.AddUint64(&s.Writes, o.Writes)
	atomic.AddUint64(&s.ReadNs, o.ReadNs)
	atomic.AddUint64(&s.CommitNs, o.CommitNs)
	atomic.AddUint64(&s.AbortNs, o.AbortNs)
	atomic.AddUint64(&s.Validations, o.Validations)
	atomic.AddUint64(&s.ValidationOps, o.ValidationOps)
	atomic.AddUint64(&s.Invalidations, o.Invalidations)
	atomic.AddUint64(&s.SelfAborts, o.SelfAborts)
	for i := range s.AbortReasons {
		atomic.AddUint64(&s.AbortReasons[i], o.AbortReasons[i])
	}
	atomic.AddUint64(&s.Epochs, o.Epochs)
	atomic.AddUint64(&s.CrossShardCommits, o.CrossShardCommits)
	s.BatchSizes.Merge(&o.BatchSizes)
	s.Server.merge(&o.Server)
}

// snapshotAtomic returns a copy of s safe to take while the owning thread is
// concurrently updating counters with atomic adds. BatchSizes is copied
// plainly: only server-side Stats (read after the servers have joined) ever
// populate it, never a live thread's.
func (s *Stats) snapshotAtomic() Stats {
	out := Stats{
		Commits:       atomic.LoadUint64(&s.Commits),
		Aborts:        atomic.LoadUint64(&s.Aborts),
		ReadOnly:      atomic.LoadUint64(&s.ReadOnly),
		ROCommits:     atomic.LoadUint64(&s.ROCommits),
		ROFallbacks:   atomic.LoadUint64(&s.ROFallbacks),
		Reads:         atomic.LoadUint64(&s.Reads),
		Writes:        atomic.LoadUint64(&s.Writes),
		ReadNs:        atomic.LoadUint64(&s.ReadNs),
		CommitNs:      atomic.LoadUint64(&s.CommitNs),
		AbortNs:       atomic.LoadUint64(&s.AbortNs),
		Validations:   atomic.LoadUint64(&s.Validations),
		ValidationOps: atomic.LoadUint64(&s.ValidationOps),
		Invalidations: atomic.LoadUint64(&s.Invalidations),
		SelfAborts:    atomic.LoadUint64(&s.SelfAborts),
		Epochs:            atomic.LoadUint64(&s.Epochs),
		CrossShardCommits: atomic.LoadUint64(&s.CrossShardCommits),
	}
	for i := range s.AbortReasons {
		out.AbortReasons[i] = atomic.LoadUint64(&s.AbortReasons[i])
	}
	out.BatchSizes = s.BatchSizes
	out.Server = s.Server
	return out
}

// ConflictAborts sums the conflict-reason abort counters (excluding
// AbortExplicit, which counts user aborts); the result equals Aborts. The
// value receiver is deliberate: these derived views read a snapshot (as
// returned by Thread.Stats / System.Stats), never a live thread's counters.
func (s Stats) ConflictAborts() uint64 {
	var n uint64
	for r := AbortReason(0); r < obs.NumConflictReasons; r++ {
		n += s.AbortReasons[r]
	}
	return n
}

// AbortRate returns aborts / (commits + aborts), or 0 when idle. Value
// receiver for the same reason as ConflictAborts: it is a snapshot view.
func (s Stats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// clock abstracts time.Now so tests can make phase accounting deterministic.
type clock func() time.Time

var realClock clock = time.Now
