package core

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// TestTimeSeriesConfigValidation pins the windowed-telemetry knobs'
// defaulting and range checks.
func TestTimeSeriesConfigValidation(t *testing.T) {
	c, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.TimeSeries != 0 || c.TimeSeriesInterval != 0 {
		t.Errorf("timeseries should default off: %+v", c)
	}

	c, err = Config{TimeSeries: 64}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.TimeSeriesInterval != time.Second {
		t.Errorf("interval default: %v", c.TimeSeriesInterval)
	}
	if !c.Latency {
		t.Error("TimeSeries must imply Latency (the sampler windows its histograms)")
	}

	// Declaring SLOs without the ring auto-enables it at the default size,
	// and Normalize fills the objective's defaults into the config's copy.
	orig := []obs.SLO{{Kind: obs.SLOAbortRate, MaxRate: 0.1}}
	c, err = Config{SLOs: orig}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.TimeSeries != DefaultTimeSeriesWindows {
		t.Errorf("SLOs should auto-enable the ring: TimeSeries=%d", c.TimeSeries)
	}
	if c.SLOs[0].Name != "abort-rate" || c.SLOs[0].Burn != obs.DefaultSLOBurn {
		t.Errorf("SLO not normalized: %+v", c.SLOs[0])
	}
	if orig[0].Name != "" {
		t.Errorf("withDefaults mutated the caller's SLO slice: %+v", orig[0])
	}

	bad := []Config{
		{TimeSeries: 1},       // ring too small
		{TimeSeries: 1 << 17}, // ring too large
		{TimeSeries: 64, TimeSeriesInterval: time.Microsecond},
		{SLOs: []obs.SLO{{Kind: obs.SLOAbortRate}}}, // invalid objective propagates
		{SLOs: []obs.SLO{ // duplicate names
			{Kind: obs.SLOAbortRate, MaxRate: 0.1, Name: "x"},
			{Kind: obs.SLOAbortRate, MaxRate: 0.2, Name: "x"},
		}},
		{TimeSeries: 4, SLOs: []obs.SLO{ // slow window exceeds the ring
			{Kind: obs.SLOAbortRate, MaxRate: 0.1, Fast: time.Second, Slow: time.Minute},
		}},
	}
	for i, b := range bad {
		if _, err := b.withDefaults(); err == nil {
			t.Errorf("bad[%d] %+v accepted", i, b)
		}
	}
}

// TestTimeSeriesOffAbsent: with the knob off there is no engine, no sampler
// goroutine, and the report is disabled — the zero-cost contract.
func TestTimeSeriesOffAbsent(t *testing.T) {
	s := newSys(t, InvalSTM, nil)
	if s.tseries != nil || s.tsStop != nil {
		t.Fatal("TimeSeries=0 must not build an engine or start a sampler")
	}
	if rep := s.TimeSeriesReport(); rep.Enabled {
		t.Fatalf("disabled report: %+v", rep)
	}
}

// TestTSTickDeterministic drives the sampler's tick function directly (the
// interval is a minute, so the background loop contributes only its startup
// baseline) and checks the windowed deltas against known work.
func TestTSTickDeterministic(t *testing.T) {
	s := newSys(t, RInvalV2, func(c *Config) {
		c.TimeSeries = 16
		c.TimeSeriesInterval = time.Minute
		c.LatencySampleEvery = 1
		c.Stats = true
	})
	if s.tsStop == nil {
		t.Fatal("sampler goroutine not started")
	}
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	for i := 0; i < 100; i++ {
		if err := th.Atomically(func(tx *Tx) error {
			tx.Store(v, tx.Load(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.tsTick(time.Now().UnixNano())
	rep := s.TimeSeriesReport()
	if !rep.Enabled || rep.Windows != 1 {
		t.Fatalf("after one tick: %+v", rep)
	}
	w := rep.Recent[0]
	if w.Counters["commits"] != 100 {
		t.Errorf("windowed commits = %d, want 100", w.Counters["commits"])
	}
	if w.Counters["writes"] == 0 || w.Counters["reads"] == 0 {
		t.Errorf("windowed reads/writes: %+v", w.Counters)
	}
	if w.Counters["epochs"] == 0 {
		t.Error("remote engine commits should advance windowed epochs")
	}
	if w.P99TotalNs == 0 {
		t.Error("every-commit latency sampling should give the window a p99")
	}

	// An idle tick appends an empty window: deltas, not cumulative values.
	s.tsTick(time.Now().UnixNano())
	rep = s.TimeSeriesReport()
	if rep.Windows != 2 {
		t.Fatalf("windows after idle tick: %d", rep.Windows)
	}
	if n := rep.Recent[len(rep.Recent)-1].Counters["commits"]; n != 0 {
		t.Errorf("idle window commits = %d, want 0", n)
	}
}

// TestTimeSeriesSamplerLive lets the real sampler goroutine run at a short
// interval and checks that windows accumulate while transactions flow.
func TestTimeSeriesSamplerLive(t *testing.T) {
	s := newSys(t, InvalSTM, func(c *Config) {
		c.TimeSeries = 64
		c.TimeSeriesInterval = 5 * time.Millisecond
	})
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			if err := th.Atomically(func(tx *Tx) error {
				tx.Store(v, tx.Load(v).(int)+1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		rep := s.TimeSeriesReport()
		if rep.Windows >= 2 {
			var commits uint64
			for _, w := range rep.Recent {
				commits += w.Counters["commits"]
			}
			if commits == 0 {
				t.Fatalf("windows with no commits recorded: %+v", rep.Recent)
			}
			if len(rep.Rates) == 0 {
				t.Fatal("report carries no windowed rates")
			}
			return
		}
	}
	t.Fatal("sampler never accumulated two windows")
}

// TestSLOAlertTriggersFlightDump wires the SLO layer through the flight
// recorder: fabricated abort-heavy samples trip the burn-rate alert, the next
// detector tick reports it as the dump reason, and the written bundle carries
// the time-series section with the tripping window.
func TestSLOAlertTriggersFlightDump(t *testing.T) {
	dir := t.TempDir()
	s := newSys(t, NOrec, func(c *Config) {
		c.TimeSeries = 16
		c.TimeSeriesInterval = time.Minute // background sampler: baseline only
		c.SLOs = []obs.SLO{{
			Kind: obs.SLOAbortRate, MaxRate: 0.2,
			Fast: 2 * time.Minute, Slow: 4 * time.Minute,
		}}
		c.FlightDir = dir
	})
	fs := s.newFlightState()
	if r := s.flightTick(fs); r != "" {
		t.Fatalf("quiescent tick tripped: %q", r)
	}

	var smp obs.TSSample
	push := func(dc, da uint64) {
		smp.UnixNanos += int64(time.Minute)
		smp.Counters[obs.TSCommits] += dc
		smp.Counters[obs.TSAborts] += da
		s.tseries.Push(smp)
	}
	push(100, 0) // baseline
	for i := 0; i < 4; i++ {
		push(100, 100) // rate 0.5, burn 2.5x on both windows once the ring fills
	}
	if n := s.tseries.AlertCount(); n != 1 {
		t.Fatalf("alert count: %d", n)
	}
	reason := s.flightTick(fs)
	if !strings.Contains(reason, "slo burn: abort-rate") {
		t.Fatalf("tick reason = %q, want slo burn", reason)
	}
	if r := s.flightTick(fs); strings.Contains(r, "slo burn") {
		t.Fatalf("watermark did not advance: %q", r)
	}

	path, err := s.DumpFlightBundle(reason)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b obs.FlightBundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.TimeSeries == nil || !b.TimeSeries.Enabled {
		t.Fatal("bundle missing the time-series section")
	}
	if b.TimeSeries.AlertsTotal != 1 || len(b.TimeSeries.Alerts) != 1 {
		t.Fatalf("bundle alerts: %+v", b.TimeSeries)
	}
	if a := b.TimeSeries.Alerts[0]; a.Window.Counters["aborts"] != 100 {
		t.Fatalf("bundle alert should carry the tripping window: %+v", a)
	}
}

// tsRMWLoop is the shared workload for the overhead measurements: a warmed
// single-thread read-modify-write with a pre-boxed value, so the measured
// path is the transaction machinery, not interface boxing.
func tsRMWLoop(th *Thread, v *Var, val any, n int) {
	for i := 0; i < n; i++ {
		_ = th.Atomically(func(tx *Tx) error {
			_ = tx.Load(v)
			tx.Store(v, val)
			return nil
		})
	}
}

// TestTimeSeriesOffZeroAllocs is the acceptance gate for the knob-off cost:
// the transaction path has no time-series record sites at all, so with
// TimeSeries=0 a warmed read-only transaction stays allocation-free (a write
// transaction's first Store always buffers one box, telemetry or not). The
// closure is hoisted so the measurement sees the transaction machinery, not
// closure construction.
func TestTimeSeriesOffZeroAllocs(t *testing.T) {
	s := newSys(t, InvalSTM, nil)
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	body := func(tx *Tx) error {
		_ = tx.Load(v)
		return nil
	}
	for i := 0; i < 1000; i++ { // warm the logs past their growth phase
		_ = th.Atomically(body)
	}
	if allocs := testing.AllocsPerRun(500, func() { _ = th.Atomically(body) }); allocs != 0 {
		t.Errorf("TimeSeries=0 transaction allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkTimeSeriesOverhead compares the per-transaction cost across the
// telemetry tiers. "off" and "on" must be indistinguishable — the engine has
// no hot-path record sites; the sampler reads counters the latency layer
// already maintains — so the only cost of TimeSeries is the Latency knob it
// implies ("latency-only" isolates that step).
func BenchmarkTimeSeriesOverhead(b *testing.B) {
	run := func(b *testing.B, mutate func(*Config)) {
		cfg := Config{Algo: InvalSTM, MaxThreads: 4, InvalServers: 1}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		th := s.MustRegister()
		defer th.Close()
		v := NewVar(0)
		var val any = 7
		tsRMWLoop(th, v, val, 1000)
		b.ReportAllocs()
		b.ResetTimer()
		tsRMWLoop(th, v, val, b.N)
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("latency-only", func(b *testing.B) {
		run(b, func(c *Config) { c.Latency = true })
	})
	b.Run("on", func(b *testing.B) {
		run(b, func(c *Config) {
			c.TimeSeries = 256
			c.TimeSeriesInterval = 25 * time.Millisecond
			c.SLOs = []obs.SLO{{
				Kind: obs.SLOAbortRate, MaxRate: 0.5,
				Fast: 250 * time.Millisecond, Slow: time.Second,
			}}
		})
	})
}
