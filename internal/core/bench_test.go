package core

import (
	"sync"
	"testing"
)

// Per-engine micro-benchmarks: the cost of the primitive operations on the
// transaction critical path, uncontended. These are the per-operation
// overheads behind the paper's Figure 1(c).

func benchSys(b *testing.B, algo Algo) (*System, *Thread) {
	b.Helper()
	s, err := New(Config{Algo: algo, MaxThreads: 4, InvalServers: 1})
	if err != nil {
		b.Fatal(err)
	}
	th := s.MustRegister()
	b.Cleanup(func() {
		th.Close()
		_ = s.Close()
	})
	return s, th
}

func BenchmarkReadOnlyTx(b *testing.B) {
	for _, a := range Algos {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			_, th := benchSys(b, a)
			v := NewVar(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomically(func(tx *Tx) error {
					_ = tx.Load(v)
					return nil
				})
			}
		})
	}
}

func BenchmarkWriteTx(b *testing.B) {
	for _, a := range Algos {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			_, th := benchSys(b, a)
			v := NewVar(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomically(func(tx *Tx) error {
					tx.Store(v, i)
					return nil
				})
			}
		})
	}
}

func BenchmarkReadHeavyTx(b *testing.B) {
	for _, a := range []Algo{NOrec, InvalSTM, RInvalV2, TL2} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			_, th := benchSys(b, a)
			vars := make([]*Var, 64)
			for i := range vars {
				vars[i] = NewVar(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = th.Atomically(func(tx *Tx) error {
					sum := 0
					for _, v := range vars {
						sum += tx.Load(v).(int)
					}
					tx.Store(vars[0], sum)
					return nil
				})
			}
		})
	}
}

func BenchmarkContendedCounter(b *testing.B) {
	for _, a := range []Algo{NOrec, InvalSTM, RInvalV2, TL2} {
		a := a
		b.Run(a.String(), func(b *testing.B) {
			s, err := New(Config{Algo: a, MaxThreads: 8, InvalServers: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = s.Close() }()
			counter := NewVar(0)
			const workers = 4
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/workers + 1
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(counter, tx.Load(counter).(int)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
		})
	}
}
