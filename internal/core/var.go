package core

import (
	"sync"
	"sync/atomic"
)

// varID hands out unique identities for bloom-filter hashing. The RSTM
// implementation hashes memory addresses; hashing a stable counter avoids any
// dependence on Go allocator layout and keeps runs reproducible.
var varID atomic.Uint64

// varNames maps Var ids to the labels given via NewVarNamed, so attribution
// reports and the stmtop dashboard can show "rbtree-root" instead of a raw
// id. Registration is construction-time only; lookups happen off the hot
// path (report building), so a plain RWMutex map suffices.
var (
	varNamesMu sync.RWMutex
	varNames   map[uint64]string
)

// NewVarNamed returns a Var holding initial, labeled for attribution
// reports. The label is advisory: it costs one map insert at construction
// and nothing afterwards.
func NewVarNamed(initial any, name string) *Var {
	v := NewVar(initial)
	varNamesMu.Lock()
	if varNames == nil {
		varNames = make(map[uint64]string)
	}
	varNames[v.id] = name
	varNamesMu.Unlock()
	return v
}

// VarName returns the label registered for id via NewVarNamed, or "" for
// unlabeled Vars.
func VarName(id uint64) string {
	varNamesMu.RLock()
	name := varNames[id]
	varNamesMu.RUnlock()
	return name
}

// box is an immutable published version of a Var's value. Write-back installs
// a fresh box, so two loads returning the same *box are guaranteed to be the
// same version — pointer comparison is NOrec's value-based validation, made
// conservative (a re-written equal value reads as a change, which can only
// cause an extra abort, never a missed conflict).
type box struct {
	v any
}

// Var is one transactional memory location. Create Vars with NewVar; access
// them only through a transaction (Tx.Load / Tx.Store). The zero value is not
// usable.
//
// Vars are engine-agnostic: the same Var works under every Algo, but a Var
// must only ever be accessed through a single System at a time — the
// consistency argument hinges on one global timestamp covering all accesses.
type Var struct {
	id uint64
	// shardH is a well-mixed hash of id, assigned at creation; a System
	// masks it down to its shard count (Config.Shards) to pick the commit
	// stream that owns this Var. Stored rather than recomputed so the read
	// hot path pays one load instead of a hash.
	shardH uint64
	val    atomic.Pointer[box]
	// verlock is the TL2 engine's versioned write-lock: bit 0 is the lock
	// bit, the remaining bits hold the version (global-clock value of the
	// last commit that wrote this Var). Unused by the coarse-grained
	// engines, whose consistency is anchored on the global timestamp.
	verlock atomic.Uint64
}

// NewVar returns a Var holding initial.
func NewVar(initial any) *Var {
	id := varID.Add(1)
	v := &Var{id: id, shardH: splitmix64(id)}
	v.val.Store(&box{v: initial})
	return v
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed mixer
// that decorrelates the sequential Var ids before shard masking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ID returns the Var's bloom-hash identity. Exposed for tests and for the
// simulator's workload models.
func (v *Var) ID() uint64 { return v.id }

// loadBox returns the current published version.
func (v *Var) loadBox() *box { return v.val.Load() }

// storeBox publishes a new version. Only commit write-back (by the committing
// thread, or by the commit-server on its behalf) may call this, and only
// while the global timestamp is odd.
func (v *Var) storeBox(b *box) { v.val.Store(b) }

// Peek returns the current committed value without any transactional
// protection. It is intended for single-threaded inspection (test assertions,
// post-run validation) and must not be used while transactions are running.
func (v *Var) Peek() any { return v.loadBox().v }

// Set unconditionally replaces the committed value without transactional
// protection. Like Peek, it is for quiescent setup/teardown only.
func (v *Var) Set(val any) { v.storeBox(&box{v: val}) }
