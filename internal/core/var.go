package core

import (
	"sync"
	"sync/atomic"
)

// varID hands out unique identities for bloom-filter hashing. The RSTM
// implementation hashes memory addresses; hashing a stable counter avoids any
// dependence on Go allocator layout and keeps runs reproducible.
var varID atomic.Uint64

// varNames maps Var ids to the labels given via NewVarNamed, so attribution
// reports and the stmtop dashboard can show "rbtree-root" instead of a raw
// id. Registration is construction-time only; lookups happen off the hot
// path (report building), so a plain RWMutex map suffices.
var (
	varNamesMu sync.RWMutex
	varNames   map[uint64]string
)

// NewVarNamed returns a Var holding initial, labeled for attribution
// reports. The label is advisory: it costs one map insert at construction
// and nothing afterwards.
func NewVarNamed(initial any, name string) *Var {
	v := NewVar(initial)
	varNamesMu.Lock()
	if varNames == nil {
		varNames = make(map[uint64]string)
	}
	varNames[v.id] = name
	varNamesMu.Unlock()
	return v
}

// VarName returns the label registered for id via NewVarNamed, or "" for
// unlabeled Vars.
func VarName(id uint64) string {
	varNamesMu.RLock()
	name := varNames[id]
	varNamesMu.RUnlock()
	return name
}

// box is an immutable published version of a Var's value. Write-back installs
// a fresh box, so two loads returning the same *box are guaranteed to be the
// same version — pointer comparison is NOrec's value-based validation, made
// conservative (a re-written equal value reads as a change, which can only
// cause an extra abort, never a missed conflict).
type box struct {
	v any
	// epoch is the commit-stream timestamp of the group-commit epoch that
	// installed this box, stamped by sys.writeBack before publication (the
	// box is immutable afterwards). Zero under Versions=0, where nothing
	// reads it; the initial box of a Var is also epoch 0, which every
	// snapshot dominates.
	epoch uint64
}

// Var is one transactional memory location. Create Vars with NewVar; access
// them only through a transaction (Tx.Load / Tx.Store). The zero value is not
// usable.
//
// Vars are engine-agnostic: the same Var works under every Algo, but a Var
// must only ever be accessed through a single System at a time — the
// consistency argument hinges on one global timestamp covering all accesses.
type Var struct {
	id uint64
	// shardH is a well-mixed hash of id, assigned at creation; a System
	// masks it down to its shard count (Config.Shards) to pick the commit
	// stream that owns this Var. Stored rather than recomputed so the read
	// hot path pays one load instead of a hash.
	shardH uint64
	val    atomic.Pointer[box]
	// verlock is the TL2 engine's versioned write-lock: bit 0 is the lock
	// bit, the remaining bits hold the version (global-clock value of the
	// last commit that wrote this Var). Unused by the coarse-grained
	// engines, whose consistency is anchored on the global timestamp.
	verlock atomic.Uint64
	// vers is the bounded version history ring under Config.Versions > 0,
	// allocated lazily at this Var's first versioned write-back. nil means
	// every committed box so far is the head (epoch-0 initial value included),
	// so a snapshot reader can take the head directly.
	vers atomic.Pointer[verRing]
}

// verRing is a Var's bounded history of recent committed boxes, newest last.
// Appends happen only under write-back exclusivity (the owning stream's
// timestamp is odd), so writers never race each other; readers race writers
// and validate against w (see versionAt). slots[ℓ%n] holds the box appended
// as logical entry ℓ; w counts appends, so logical entries w-n..w-1 are the
// ones potentially still resident.
type verRing struct {
	n     uint64
	w     atomic.Uint64
	slots []atomic.Pointer[box]
}

// appendVersion publishes b (already epoch-stamped) as the Var's newest
// history entry and trims entries no live snapshot reader can need: every
// entry strictly older than the newest entry at or below floor is unlinked so
// the boxes become collectable. Called only during write-back, while the
// owning stream's timestamp is odd.
func (v *Var) appendVersion(b *box, n int, floor uint64) {
	r := v.vers.Load()
	if r == nil {
		// First versioned write-back: seed the ring with the current head so
		// readers whose snapshot predates this append still resolve here
		// instead of falling back.
		//stmlint:ignore hot-path-deep one-time ring allocation per Var, amortized over its whole history
		r = &verRing{n: uint64(n), slots: make([]atomic.Pointer[box], n)}
		r.slots[0].Store(v.loadBox())
		r.w.Store(1)
		v.vers.Store(r)
	}
	w := r.w.Load()
	r.slots[w%r.n].Store(b)
	r.w.Store(w + 1) // publish: readers treat entries >= w as absent until this store
	// GC sweep: among the surviving entries w+1-n..w, find the newest with
	// epoch <= floor (the one the oldest live reader resolves to) and nil
	// everything strictly older. The just-appended entry is never trimmed:
	// floor is always below the odd epoch stamped on b.
	lo := uint64(0)
	if w+1 > r.n {
		lo = w + 1 - r.n
	}
	keep := lo // nothing at or below floor found => trim nothing
	for j := w; ; j-- {
		e := r.slots[j%r.n].Load()
		if e != nil && e.epoch <= floor {
			keep = j
			break
		}
		if j == lo {
			break
		}
	}
	if keep > lo {
		for j := lo; j < keep; j++ {
			r.slots[j%r.n].Store(nil)
		}
	}
}

// versionAt resolves the newest committed version of v with epoch <= e, the
// snapshot-read rule of DESIGN.md §14. ok=false means the history no longer
// reaches back to e (the writers lapped the ring, or GC trimmed past the
// snapshot) and the caller must fall back to the regular path.
//
//stm:hotpath
func (v *Var) versionAt(e uint64) (any, bool) {
	h := v.loadBox()
	if h.epoch <= e {
		// Head fast path: the common case for read-mostly Vars, and the only
		// case ever taken before the Var's first versioned write-back.
		return h.v, true
	}
	r := v.vers.Load()
	if r == nil {
		// The head is newer than the snapshot but no ring exists yet: the
		// stamping write-back that will seed the ring has published the head
		// before the ring pointer became visible to us. Rare and transient;
		// fall back.
		return nil, false
	}
	w := r.w.Load()
	if w == 0 {
		return nil, false
	}
	// Scan newest to oldest. A candidate at logical index j is trustworthy
	// only if the ring has not wrapped past it while we looked: re-reading
	// w < j+n after the slot load proves slot j%n still held logical entry j
	// (the overwrite for logical j+n is published only after w reaches j+n).
	lo := uint64(0)
	if w > r.n {
		lo = w - r.n
	}
	for j := w - 1; ; j-- {
		b := r.slots[j%r.n].Load()
		if b == nil {
			// Trimmed: every older entry is gone too.
			return nil, false
		}
		if b.epoch <= e {
			if r.w.Load() >= j+r.n {
				return nil, false // lapped while scanning
			}
			return b.v, true
		}
		if j == lo {
			return nil, false
		}
	}
}

// NewVar returns a Var holding initial.
func NewVar(initial any) *Var {
	id := varID.Add(1)
	v := &Var{id: id, shardH: splitmix64(id)}
	v.val.Store(&box{v: initial})
	return v
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed mixer
// that decorrelates the sequential Var ids before shard masking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ID returns the Var's bloom-hash identity. Exposed for tests and for the
// simulator's workload models.
func (v *Var) ID() uint64 { return v.id }

// loadBox returns the current published version.
func (v *Var) loadBox() *box { return v.val.Load() }

// storeBox publishes a new version. Only commit write-back (by the committing
// thread, or by the commit-server on its behalf) may call this, and only
// while the global timestamp is odd.
func (v *Var) storeBox(b *box) { v.val.Store(b) }

// Peek returns the current committed value without any transactional
// protection. It is intended for single-threaded inspection (test assertions,
// post-run validation) and must not be used while transactions are running.
func (v *Var) Peek() any { return v.loadBox().v }

// Set unconditionally replaces the committed value without transactional
// protection. Like Peek, it is for quiescent setup/teardown only.
func (v *Var) Set(val any) { v.storeBox(&box{v: val}) }
