package core

import (
	"math/bits"

	"github.com/ssrg-vt/rinval/internal/padded"
)

// activeSet is the level-0 gate of the two-level invalidation scan: one bit
// per request slot, set while the slot's transaction is in flight. Scans
// iterate live transactions by loading a word and peeling set bits with
// bits.TrailingZeros64, so their cost tracks the number of in-flight
// transactions, not Config.MaxThreads.
//
// Ordering contract (DESIGN.md §9): the owner sets its bit before storing
// the (epoch, ALIVE) status word in Tx.begin and clears it after storing
// INACTIVE in Tx.deactivateSlot. Go atomics are sequentially consistent, so
// a scanner that misses the bit has proof the slot is not ALIVE at that
// point of the total order: either the begin (and hence every read of that
// incarnation) has not happened yet, or the transaction already retired.
// The bitmap may over-approximate — a set bit with an INACTIVE status word
// is routine between the deactivate store and the bit clear — which only
// sends the scan to the status check it would have done anyway.
//
// Each word is cache-padded: word w is begin/end write traffic for slots
// [64w, 64w+63] only, so transactions in different words never contend on
// the bitmap, and a scanner's read of one word covers 64 slots in one line.
type activeSet struct {
	words []padded.Uint64
}

// newActiveSet returns a bitmap covering n slots.
func newActiveSet(n int) activeSet {
	return activeSet{words: make([]padded.Uint64, (n+63)/64)}
}

// set marks slot i in flight.
//stm:hotpath
func (a *activeSet) set(i int) {
	a.words[i>>6].Or(1 << (uint(i) & 63))
}

// clear marks slot i retired.
//stm:hotpath
func (a *activeSet) clear(i int) {
	a.words[i>>6].And(^(uint64(1) << (uint(i) & 63)))
}

// has reports whether slot i's bit is set (tests and diagnostics).
func (a *activeSet) has(i int) bool {
	return a.words[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

// nextSlot peels the lowest set bit from *bits (a word w snapshot) and
// returns its slot index.
//stm:hotpath
func nextSlot(w int, b *uint64) int {
	i := w<<6 + bits.TrailingZeros64(*b)
	*b &= *b - 1
	return i
}
