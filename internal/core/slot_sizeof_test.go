package core

import (
	"testing"
	"unsafe"

	"github.com/ssrg-vt/rinval/internal/padded"
)

// The requests array ([]slot) is the protocol's shared-memory interface:
// every claim about clients spinning without contending hinges on slot's
// layout. Pin it here (and in stmlint's padding check) so a field added to
// slot without re-balancing the trailing pad fails immediately.
func TestSlotLayout(t *testing.T) {
	var s slot
	if sz := unsafe.Sizeof(s); sz%padded.CacheLineSize != 0 {
		t.Errorf("slot size %d is not a multiple of the %d-byte cache line", sz, padded.CacheLineSize)
	}
	// Each spin field must start on its own line-aligned boundary within the
	// struct, so that array elements (whose stride is the struct size, a line
	// multiple) keep them line-exclusive.
	offsets := map[string]uintptr{
		"state":  unsafe.Offsetof(s.state),
		"status": unsafe.Offsetof(s.status),
		"req":    unsafe.Offsetof(s.req),
		"inUse":  unsafe.Offsetof(s.inUse),
		"killer": unsafe.Offsetof(s.killer),
	}
	for name, off := range offsets {
		if off%padded.CacheLineSize != 0 {
			t.Errorf("slot.%s at offset %d, not line-aligned", name, off)
		}
	}
}

// TestSlotArraySpinIsolation verifies the end-to-end property on a real
// array: the state mailboxes (the words clients spin on) of adjacent slots
// never share a cache line.
func TestSlotArraySpinIsolation(t *testing.T) {
	arr := make([]slot, 2)
	a := uintptr(unsafe.Pointer(&arr[0].state))
	b := uintptr(unsafe.Pointer(&arr[1].state))
	if d := b - a; d < padded.CacheLineSize {
		t.Fatalf("adjacent slot.state %d bytes apart, want >= %d", d, padded.CacheLineSize)
	}
}
