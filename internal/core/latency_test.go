package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// TestLatencyReconciliation churns every engine with sampling on and checks
// the decomposition's books balance: every client phase histogram holds
// exactly one sample per sampled commit, and the phase sums never exceed the
// end-to-end sum (the attempt intervals are disjoint within [start, end]).
// Run under -race this also exercises concurrent Report against live owners.
func TestLatencyReconciliation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		const (
			threads = 4
			perThr  = 400
			every   = 4
		)
		s := newSys(t, algo, func(c *Config) {
			c.Latency = true
			c.LatencySampleEvery = every
			c.MaxThreads = 8
		})
		vars := make([]*Var, 4)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		var wg sync.WaitGroup
		stopRep := make(chan struct{})
		wg.Add(1)
		go func() { // concurrent reader while owners record
			defer wg.Done()
			for {
				select {
				case <-stopRep:
					return
				case <-time.After(time.Millisecond):
					_ = s.LatencyReport()
				}
			}
		}()
		var workers sync.WaitGroup
		for g := 0; g < threads; g++ {
			workers.Add(1)
			go func(g int) {
				defer workers.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < perThr; i++ {
					v := vars[(g+i)%len(vars)]
					_ = th.Atomically(func(tx *Tx) error {
						tx.Store(v, tx.Load(v).(int)+1)
						return nil
					})
				}
			}(g)
		}
		workers.Wait()
		close(stopRep)
		wg.Wait()

		rep := s.LatencyReport()
		if !rep.Enabled || rep.SampleEvery != every {
			t.Fatalf("report not enabled as configured: %+v", rep)
		}
		want := uint64(threads * perThr / every)
		if rep.SampledCommits != want {
			t.Fatalf("SampledCommits = %d, want %d", rep.SampledCommits, want)
		}
		var sum, total uint64
		for _, p := range rep.Client {
			if p.Count != want {
				t.Errorf("client phase %s count = %d, want %d", p.Phase, p.Count, want)
			}
			if p.Phase == "total" {
				total = p.SumNs
			} else {
				sum += p.SumNs
			}
		}
		if total == 0 || sum > total {
			t.Errorf("phase sums do not reconcile: app+retry+commit-wait = %d, total = %d", sum, total)
		}
		// RInval engines must also have per-epoch server phases; phases the
		// variant never records (e.g. V1's lag wait) are elided, so every
		// listed phase must carry samples.
		switch algo {
		case RInvalV1, RInvalV2, RInvalV3:
			names := map[string]bool{}
			for _, p := range rep.Server {
				names[p.Phase] = true
				if p.Count == 0 {
					t.Errorf("server phase %s listed but empty", p.Phase)
				}
			}
			for _, want := range []string{"collect", "write-back", "reply"} {
				if !names[want] {
					t.Errorf("server phase %s missing for %s", want, algo)
				}
			}
		}
	})
}

// TestLatencyDisabled checks the zero-cost path reports itself off.
func TestLatencyDisabled(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	for i := 0; i < 100; i++ {
		_ = th.Atomically(func(tx *Tx) error { tx.Store(v, i); return nil })
	}
	rep := s.LatencyReport()
	if rep.Enabled || rep.SampledCommits != 0 || len(rep.Client) != 0 {
		t.Fatalf("disabled system produced a live report: %+v", rep)
	}
}

// TestLatencyUserAbortsUnrecorded checks a sampled transaction that ends in a
// user abort leaves no phase samples, keeping counts == sampled commits.
func TestLatencyUserAbortsUnrecorded(t *testing.T) {
	s := newSys(t, NOrec, func(c *Config) {
		c.Latency = true
		c.LatencySampleEvery = 1
	})
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	errBoom := errTest
	commits := 0
	for i := 0; i < 100; i++ {
		err := th.Atomically(func(tx *Tx) error {
			tx.Store(v, i)
			if i%3 == 0 {
				return errBoom
			}
			return nil
		})
		if err == nil {
			commits++
		}
	}
	rep := s.LatencyReport()
	if rep.SampledCommits != uint64(commits) {
		t.Fatalf("SampledCommits = %d, want %d (user aborts must not record)", rep.SampledCommits, commits)
	}
	for _, p := range rep.Client {
		if p.Count != uint64(commits) {
			t.Errorf("phase %s count = %d, want %d", p.Phase, p.Count, commits)
		}
	}
}

var errTest = os.ErrInvalid

// TestFlightTickStallDetection drives the detector's tick function directly:
// a slot left PENDING across two ticks with no shard-server epoch progress
// must be reported as a commit-server stall.
func TestFlightTickStallDetection(t *testing.T) {
	cfg := Config{Algo: RInvalV2, MaxThreads: 8, InvalServers: 2, FlightRecorder: true}
	s, err := newSystem(cfg) // servers deliberately not started: epochs frozen
	if err != nil {
		t.Fatal(err)
	}
	fs := s.newFlightState()
	s.slots[3].state.Store(reqPending)
	if r := s.flightTick(fs); r != "" {
		t.Fatalf("first tick tripped early: %q", r)
	}
	r := s.flightTick(fs)
	if !strings.Contains(r, "stall") || !strings.Contains(r, "slot 3") {
		t.Fatalf("second tick reason = %q, want commit-server stall on slot 3", r)
	}
	// Epoch progress clears the tracker: bump a server's epoch counter and
	// the still-pending slot no longer counts as stalled.
	s.slots[3].state.Store(reqPending)
	re := s.eng.(*remoteEngine)
	re.srv[0].commitSrv.Epochs++
	if r := s.flightTick(fs); r != "" {
		t.Fatalf("tick with epoch progress tripped: %q", r)
	}
}

// TestFlightRecorderDumpsOnAbortSpike forces a real anomaly through the
// running flight loop: a calm warmup establishes the baseline, then heavy
// write-write contention spikes the abort rate past the threshold. The dump
// must appear in FlightDir and parse back with all four sections populated.
func TestFlightRecorderDumpsOnAbortSpike(t *testing.T) {
	dir := t.TempDir()
	s := newSys(t, NOrec, func(c *Config) {
		c.MaxThreads = 8
		c.FlightRecorder = true
		c.FlightDir = dir
		c.FlightInterval = 5 * time.Millisecond
		c.FlightAbortRate = 0.05
		c.FlightCooldown = time.Minute
		c.Trace = true
		c.Attribution = true
		c.Stats = true
	})
	const workers = 4
	stop := make(chan struct{})
	contend := make(chan struct{})
	shared := NewVar(0)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			private := NewVar(0)
			contended := false
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-contend:
					contended = true
				default:
				}
				v := private // disjoint during warmup: near-zero abort rate
				if contended {
					v = shared
				}
				_ = th.Atomically(func(tx *Tx) error {
					tx.Store(v, tx.Load(v).(int)+1)
					return nil
				})
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond) // > detector warmup at 5ms ticks
	close(contend)

	var bundle string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
		if len(m) > 0 {
			bundle = m[0]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if bundle == "" {
		t.Fatal("no flight bundle appeared under contention")
	}
	data, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	var b obs.FlightBundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Reason == "" || b.UnixNanos == 0 {
		t.Errorf("bundle missing reason/timestamp: %+v", b.Reason)
	}
	if !b.Latency.Enabled || b.Latency.SampleEvery == 0 {
		t.Error("bundle latency section empty (FlightRecorder must imply Latency)")
	}
	if !b.Conflict.Enabled {
		t.Error("bundle conflict section not enabled")
	}
	if len(b.Trace) == 0 {
		t.Error("bundle trace section empty with Config.Trace set")
	}
	if !strings.Contains(b.Stacks, "goroutine") {
		t.Error("bundle stacks section empty")
	}
	// Leftover temp files would mean a non-atomic write path.
	if tmp, _ := filepath.Glob(filepath.Join(dir, ".flight-*.tmp")); len(tmp) != 0 {
		t.Errorf("temp files left behind: %v", tmp)
	}
}

// TestDumpFlightBundleDirect covers the operator-initiated dump entry point
// on a quiescent system.
func TestDumpFlightBundleDirect(t *testing.T) {
	dir := t.TempDir()
	s := newSys(t, RInvalV2, func(c *Config) {
		c.Latency = true
		c.LatencySampleEvery = 1
		c.FlightDir = dir
		c.Trace = true
	})
	th := s.MustRegister()
	v := NewVar(0)
	for i := 0; i < 50; i++ {
		_ = th.Atomically(func(tx *Tx) error { tx.Store(v, i); return nil })
	}
	th.Close()
	path, err := s.DumpFlightBundle("operator request")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b obs.FlightBundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Reason != "operator request" || b.Latency.SampledCommits != 50 {
		t.Fatalf("bundle contents wrong: reason=%q sampled=%d", b.Reason, b.Latency.SampledCommits)
	}
}

// TestLatencyConfigValidation pins the observability knobs' defaulting and
// range checks.
func TestLatencyConfigValidation(t *testing.T) {
	c, err := Config{FlightRecorder: true}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Latency {
		t.Error("FlightRecorder must imply Latency")
	}
	if c.LatencySampleEvery != 64 || c.FlightDir != "flight" ||
		c.FlightInterval != 500*time.Millisecond || c.FlightP99Factor != 3 ||
		c.FlightAbortRate != 0.5 || c.FlightCooldown != 10*time.Second {
		t.Errorf("bad observability defaults: %+v", c)
	}
	bad := []Config{
		{Latency: true, LatencySampleEvery: -1},
		{Latency: true, LatencySampleEvery: 1 << 21},
		{FlightRecorder: true, FlightInterval: -time.Second},
		{FlightRecorder: true, FlightP99Factor: 0.5},
		{FlightRecorder: true, FlightAbortRate: 1.5},
		{FlightRecorder: true, FlightCooldown: -time.Second},
	}
	for _, b := range bad {
		if _, err := b.withDefaults(); err == nil {
			t.Errorf("config %+v accepted", b)
		}
	}
}

// BenchmarkLatencyOverhead measures the exact per-transaction client
// instrumentation sequence — the sampling decision plus every latOn-gated
// clock read and record — in isolation. The "off" case (nil cell, Latency
// unset) is the always-on budget: it must stay within a couple of
// nanoseconds and allocation-free.
// latOverheadLoop is the exact per-transaction client instrumentation
// sequence — the sampling decision plus every latOn-gated clock read and
// record — concentrated into one loop, on a heap Tx as Atomically uses.
//
//go:noinline
func latOverheadLoop(n int, cell *obs.LatCell) {
	tx := new(Tx)
	tx.lat = cell
	for i := 0; i < n; i++ {
		if tx.lat != nil && tx.lat.Sample() { // Atomically entry
			tx.latOn = true
			tx.latT0 = obs.Now()
			tx.latAttemptT0 = tx.latT0
			tx.latRetryNs = 0
		} else if tx.latOn {
			tx.latOn = false
		}
		var latC0 int64
		if tx.latOn { // finishCommit() pre-commit
			latC0 = obs.Now()
		}
		if tx.latOn { // finishCommit() success path
			end := obs.Now()
			tx.lat.CommitSample(latC0-tx.latAttemptT0, end-latC0, tx.latRetryNs, end-tx.latT0)
		}
	}
}

func BenchmarkLatencyOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		latOverheadLoop(b.N, nil)
	})
	b.Run("on-1in64", func(b *testing.B) {
		rec := obs.NewLatencyRecorder(1, 0, 64)
		b.ReportAllocs()
		latOverheadLoop(b.N, rec.Client(0))
	})
	b.Run("on-every", func(b *testing.B) {
		rec := obs.NewLatencyRecorder(1, 0, 1)
		b.ReportAllocs()
		latOverheadLoop(b.N, rec.Client(0))
	})
}
