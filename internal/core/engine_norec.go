package core

import (
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// norecEngine implements NOrec (Dalessandro, Spear, Scott — PPoPP 2010): a
// single global sequence lock, lazy write buffering, and value-based
// incremental validation. It is the paper's validation-based competitor.
//
// The cost structure the paper analyzes (§III): every read that observes a
// timestamp change triggers a full read-set revalidation, so the total
// validation work of a transaction is quadratic in its read-set size under
// write contention. Commit is cheap — one CAS, write-back, one store — but
// all committers spin on the same timestamp word, which on real hardware
// turns into cache-line ping-pong (modeled in internal/sim).
type norecEngine struct {
	sys *System
}

func (e *norecEngine) usesSlots() bool { return false }

// begin snapshots an even timestamp — the transaction's linearization basis.
func (e *norecEngine) begin(tx *Tx) {
	tx.start = e.sys.waitEven()
}

// read returns a value consistent with tx.start, extending the snapshot via
// revalidation whenever the global timestamp moved.
//stm:hotpath
func (e *norecEngine) read(tx *Tx, v *Var) (*box, bool) {
	for {
		b := v.loadBox()
		if e.sys.streams[0].ts.Load() == tx.start {
			return b, true
		}
		// Timestamp moved: some transaction committed since our snapshot.
		// Re-establish a consistent snapshot by value-validating the whole
		// read set (this is the incremental-validation quadratic term).
		t, ok := e.revalidate(tx)
		if !ok {
			return nil, false
		}
		tx.start = t
	}
}

// revalidate re-checks every read against the current memory state and
// returns a new even timestamp at which the read set was observed intact.
// A value mismatch is a validation abort (tx.reason).
//stm:hotpath
func (e *norecEngine) revalidate(tx *Tx) (uint64, bool) {
	var w spin.Waiter
	tv := tx.ring.Now()
	for {
		t := e.sys.waitEven()
		atomic.AddUint64(&tx.stats.Validations, 1)
		var ops uint64
		ok := true
		for i := range tx.rs.entries {
			re := &tx.rs.entries[i]
			ops++
			if re.v.loadBox() != re.snap {
				tx.conflictVar = re.v.id // attribution: the mismatched read
				ok = false
				break
			}
		}
		atomic.AddUint64(&tx.stats.ValidationOps, ops)
		if !ok {
			tx.reason = AbortValidation
			tx.ring.Span(obs.KValidate, tv, ops)
			return 0, false
		}
		if e.sys.streams[0].ts.Load() == t {
			tx.ring.Span(obs.KValidate, tv, ops)
			return t, true
		}
		w.Wait()
	}
}

// commit acquires the sequence lock with a CAS from the transaction's
// snapshot; success proves no commit intervened, so no commit-time
// validation is needed. On CAS failure the snapshot is extended and the
// acquisition retried.
//stm:hotpath
func (e *norecEngine) commit(tx *Tx) bool {
	if tx.ws.len() == 0 {
		// Read-only: the read set is valid at tx.start by construction.
		return true
	}
	for !e.sys.streams[0].ts.CompareAndSwap(tx.start, tx.start+1) {
		t, ok := e.revalidate(tx)
		if !ok {
			return false
		}
		tx.start = t
	}
	e.sys.writeBack(tx.ws)
	e.sys.streams[0].ts.Store(tx.start + 2)
	return true
}

func (e *norecEngine) abort(tx *Tx) {}

func (e *norecEngine) serverTasks() []serverTask { return nil }

func (e *norecEngine) serverStats() Stats { return Stats{} }
