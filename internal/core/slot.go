package core

import (
	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/padded"
)

// Transaction status bits, packed into the low bits of a slot's status word.
const (
	txInactive uint64 = 0 // no transaction in flight in this slot
	txAlive    uint64 = 1 // transaction running (or awaiting its commit reply)
	txInvalid  uint64 = 2 // doomed by a committer's invalidation pass
)

const (
	statusBits uint64 = 3 // mask for the status field
	epochShift        = 2 // epoch occupies the remaining bits
)

// statusWord packs (epoch, status).
func statusWord(epoch, status uint64) uint64 { return epoch<<epochShift | status }

// wordStatus extracts the status field.
func wordStatus(w uint64) uint64 { return w & statusBits }

// Request states for the client/commit-server mailbox (Figure 5).
const (
	reqIdle      uint32 = iota // no request outstanding
	reqPending                 // client published a commit request
	reqCommitted               // server reply: committed
	reqAborted                 // server reply: invalidated, roll back
)

// commitReq is the payload of a commit request: everything the commit-server
// needs to execute the commit on the client's behalf (the paper's Figure 5
// passes the write-set and its bloom signature through the requests array).
// The client builds it privately and publishes it with a single padded
// pointer store; the server treats it as read-only.
type commitReq struct {
	ws *writeSet
	// writes/touched are shard bitmasks (bit j = stream j): the shards the
	// write set lands in, and those plus every shard the transaction read
	// from. A single-bit touched mask routes the request to that shard's
	// commit-server; more bits make it a cross-shard request led by the
	// lowest touched shard through the stream handshake. Both are 1<<0 when
	// Shards == 1. They live here, not on the slot: commitReq is a per-commit
	// heap value, so extending it cannot disturb the slot's cache-line
	// layout.
	writes  uint64
	touched uint64
}

// slot is one entry of the cache-aligned requests array. Every hot field is
// padded onto its own cache line so a client spinning on its reply line never
// contends with its neighbours or with servers touching other fields, and the
// struct as a whole is a multiple of the cache line so adjacent slots in the
// array never share one (stmlint's padding check and sizeof_test.go enforce
// both).
type slot struct {
	// state is the request mailbox the client spins on (PENDING -> reply).
	state padded.Uint32
	// status packs the slot's transaction epoch and liveness/invalidation
	// status. The owner stores begin/end transitions; servers may only CAS
	// alive->invalid on the exact word they observed (epoch guard).
	status padded.Uint64
	// req carries the published commit request while state is PENDING.
	req padded.Pointer[commitReq]
	// inUse marks the slot as owned by a registered Thread.
	inUse padded.Bool
	// killer is the attribution mailbox: a doomer stores its killDesc here
	// immediately before the doom CAS, and the victim reads it back on its
	// abort path (nil outside Config.Attribution; cleared by the owner at
	// begin, while the slot is not alive). Padded like the other hot cells —
	// a committer's store must not collide with the victim's spin lines.
	killer padded.Pointer[killDesc]
	// readBF is the transaction's read signature, written by the owner and
	// scanned concurrently by committers/invalidation-servers. The pointer
	// and the fields below it are written once at System construction and
	// read-only afterwards, so sharing a line among them is harmless.
	readBF *bloom.Atomic
	// invalServer is the invalidation-server partition this slot belongs to
	// (RInvalV2/V3); fixed at System construction.
	invalServer int
	// selfMask is the singleton slot mask {this slot}, fixed at System
	// construction — the skip set an inline committer (InvalSTM) passes to
	// the invalidation scan.
	selfMask slotMask
	// Round the cold tail (8 + 8 + 24 bytes) up to a whole cache line so
	// []slot keeps every element's spin lines exclusive.
	_ [padded.CacheLineSize - (8+8+24)%padded.CacheLineSize]byte
}

// aliveWord loads the status word and reports whether it denotes a live
// transaction.
func (s *slot) aliveWord() (uint64, bool) {
	w := s.status.Load()
	return w, wordStatus(w) == txAlive
}

// tryInvalidate dooms the transaction incarnation described by w. It returns
// false if the slot moved on (commit finished, new epoch, already doomed) —
// in which case the doom is no longer this committer's responsibility.
func (s *slot) tryInvalidate(w uint64) bool {
	return s.status.CompareAndSwap(w, (w&^statusBits)|txInvalid)
}
