package core

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"github.com/ssrg-vt/rinval/internal/bloom"
)

// rinvalAlgos are the engines that run the commit-server protocol.
var rinvalAlgos = []Algo{RInvalV1, RInvalV2, RInvalV3}

// postPending hand-publishes a commit request writing val to v in th's slot,
// exactly as the client side of remoteEngine.commit would, so tests can
// control which requests are pending before the server runs.
func postPending(s *System, th *Thread, v *Var, val any) *slot {
	sl := th.slot
	ws := newWriteSet(s.cfg.Bloom)
	ws.put(v, val)
	s.active.set(th.idx) // as Tx.begin would: bit before the ALIVE store
	epoch := (sl.status.Load() >> epochShift) + 1
	sl.status.Store(statusWord(epoch, txAlive))
	sl.req.Store(&commitReq{ws: ws})
	sl.state.Store(reqPending)
	return sl
}

// settle returns a slot to idle after a manual epoch so Close can succeed.
func settle(s *System, idx int, sl *slot) {
	sl.state.Store(reqIdle)
	sl.req.Store(nil)
	sl.status.Store(sl.status.Load() &^ statusBits)
	s.active.clear(idx)
}

// TestGroupCommitDisjointBatchOneEpoch: a batch of N disjoint writers is
// retired in exactly one timestamp epoch with N COMMITTED replies, on every
// RInval variant.
func TestGroupCommitDisjointBatchOneEpoch(t *testing.T) {
	const n = 6
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			// A wide signature keeps this test deterministic: var IDs are
			// process-global, so with the 1024-bit default a different test
			// order can produce a hash collision that spuriously splits the
			// "disjoint" batch.
			s, err := newSystem(Config{Algo: algo, MaxThreads: 8, InvalServers: 2, MaxBatch: 16,
				Bloom: bloom.Params{Bits: 1 << 16, Hashes: 2}})
			if err != nil {
				t.Fatal(err)
			}
			vars := make([]*Var, n)
			slots := make([]*slot, n)
			ths := make([]*Thread, n)
			for i := 0; i < n; i++ {
				vars[i] = NewVar(0)
				ths[i] = s.MustRegister()
				slots[i] = postPending(s, ths[i], vars[i], i+100)
			}

			eng := s.eng.(*remoteEngine)
			if !eng.srv[0].serveEpochFrom(0) {
				t.Fatal("serveEpochFrom made no progress")
			}
			if got := s.streams[0].ts.Load(); got != 2 {
				t.Errorf("timestamp after one batch epoch = %d, want 2", got)
			}
			if eng.srv[0].commitSrv.Epochs != 1 {
				t.Errorf("Epochs = %d, want 1", eng.srv[0].commitSrv.Epochs)
			}
			if eng.srv[0].commitSrv.Commits != n {
				t.Errorf("server Commits = %d, want %d", eng.srv[0].commitSrv.Commits, n)
			}
			if got := eng.srv[0].commitSrv.BatchSizes.Max(); got != n {
				t.Errorf("recorded batch size = %d, want %d", got, n)
			}
			for i := 0; i < n; i++ {
				if st := slots[i].state.Load(); st != reqCommitted {
					t.Errorf("slot %d reply = %d, want reqCommitted", i, st)
				}
				if got := vars[i].Peek(); got != i+100 {
					t.Errorf("vars[%d] = %v, want %d", i, got, i+100)
				}
				settle(s, ths[i].idx, slots[i])
				ths[i].Close()
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGroupCommitConflictSplitsEpochs: W/W and R/W overlaps keep requests
// out of the same epoch; the excluded request stays PENDING and commits in
// the next epoch. V1 and V3 are exercised (V2's lag wait needs live
// invalidation-servers, which these manual epochs do not run).
func TestGroupCommitConflictSplitsEpochs(t *testing.T) {
	for _, algo := range []Algo{RInvalV1, RInvalV3} {
		for _, kind := range []string{"ww", "follower-reads-leader-write", "leader-read-follower-write"} {
			t.Run(fmt.Sprintf("%s/%s", algo, kind), func(t *testing.T) {
				s, err := newSystem(Config{Algo: algo, MaxThreads: 4, InvalServers: 1, StepsAhead: 2, MaxBatch: 16})
				if err != nil {
					t.Fatal(err)
				}
				a, b := NewVar(0), NewVar(0)
				th0, th1 := s.MustRegister(), s.MustRegister()

				var sl0, sl1 *slot
				switch kind {
				case "ww":
					sl0 = postPending(s, th0, a, 1)
					sl1 = postPending(s, th1, a, 2)
				case "follower-reads-leader-write":
					sl0 = postPending(s, th0, a, 1)
					sl1 = postPending(s, th1, b, 2)
					sl1.readBF.Add(a.id) // follower read what the leader writes
				case "leader-read-follower-write":
					sl0 = postPending(s, th0, a, 1)
					sl0.readBF.Add(b.id) // leader read what the follower writes
					sl1 = postPending(s, th1, b, 2)
				}

				eng := s.eng.(*remoteEngine)
				if !eng.srv[0].serveEpochFrom(0) {
					t.Fatal("first epoch made no progress")
				}
				if sl0.state.Load() != reqCommitted {
					t.Fatal("leader not committed in first epoch")
				}
				if sl1.state.Load() != reqPending {
					t.Fatal("conflicting follower should have stayed pending")
				}
				if eng.srv[0].commitSrv.Epochs != 1 || eng.srv[0].commitSrv.Commits != 1 {
					t.Fatalf("after first epoch: Epochs=%d Commits=%d, want 1/1",
						eng.srv[0].commitSrv.Epochs, eng.srv[0].commitSrv.Commits)
				}

				// A follower that read what the leader wrote is a real
				// conflict: the leader's epoch dooms it, and its own epoch
				// answers ABORTED. The other exclusions are batching-only
				// conflicts and the follower commits next.
				wantFollower := reqCommitted
				if kind == "follower-reads-leader-write" {
					wantFollower = reqAborted
				}
				if algo == RInvalV1 {
					// The follower leads its own epoch once the scan returns.
					if !eng.srv[0].serveEpochFrom(0) {
						t.Fatal("second epoch made no progress")
					}
					if got := sl1.state.Load(); got != wantFollower {
						t.Fatalf("follower reply = %d, want %d", got, wantFollower)
					}
					wantEpochs := uint64(2)
					if wantFollower == reqAborted {
						wantEpochs = 1 // aborts do not burn a timestamp epoch
					}
					if eng.srv[0].commitSrv.Epochs != wantEpochs {
						t.Errorf("Epochs = %d, want %d", eng.srv[0].commitSrv.Epochs, wantEpochs)
					}
				} else {
					// V3 with no live invalidation-servers: invalTS lags the
					// new timestamp, so the follower is deferred — the
					// documented step-ahead behavior.
					if eng.srv[0].serveEpochFrom(0) {
						t.Fatal("V3 should defer the follower while its server lags")
					}
					if sl1.state.Load() != reqPending {
						t.Fatal("deferred follower must stay pending")
					}
					// Run one invalidation-server step by hand; the follower's
					// request is then served (committed, or aborted when the
					// scan doomed it).
					my := s.streams[0].invalTS[0].Load()
					d := s.streams[0].ring[(my/2)%uint64(len(s.streams[0].ring))].Load()
					s.invalidatePartition(0, d.members, d.bf, nil, nil)
					s.streams[0].invalTS[0].Store(my + 2)
					if !eng.srv[0].serveEpochFrom(0) {
						t.Fatal("follower epoch made no progress after catch-up")
					}
					if got := sl1.state.Load(); got != wantFollower {
						t.Fatalf("follower reply = %d, want %d", got, wantFollower)
					}
				}

				settle(s, th0.idx, sl0)
				settle(s, th1.idx, sl1)
				th0.Close()
				th1.Close()
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestGroupCommitMaxBatchOneRegression: with MaxBatch=1 the server never
// batches — every epoch retires exactly one request, reproducing the
// pre-group-commit protocol.
func TestGroupCommitMaxBatchOneRegression(t *testing.T) {
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 8, InvalServers: 2, MaxBatch: 1})
			const workers, iters = 4, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				v := NewVar(0)
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(v, i)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Epochs == 0 {
				t.Fatal("no epochs recorded")
			}
			if got := st.BatchSizes.Max(); got > 1 {
				t.Errorf("MaxBatch=1 recorded a batch of %d", got)
			}
			if st.BatchSizes.Count() != st.Epochs {
				t.Errorf("batch samples %d != epochs %d", st.BatchSizes.Count(), st.Epochs)
			}
			// One epoch per server-side commit: the disjoint workload dooms
			// nobody, so every epoch retires exactly one request.
			if st.Epochs != workers*iters {
				t.Errorf("Epochs = %d, want %d (one per commit)", st.Epochs, workers*iters)
			}
		})
	}
}

// TestGroupCommitBatchingReducesEpochs: disjoint writers under a batching
// server take at most as many epochs as commits, and the accounting is
// consistent (every epoch recorded one batch sample, samples sum to the
// commit count).
func TestGroupCommitBatchingReducesEpochs(t *testing.T) {
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 16, InvalServers: 2, MaxBatch: 16})
			const workers, iters = 8, 100
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				v := NewVar(0)
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(v, i)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Epochs > workers*iters {
				t.Errorf("Epochs = %d > commits = %d", st.Epochs, workers*iters)
			}
			if st.BatchSizes.Count() != st.Epochs {
				t.Errorf("batch samples %d != epochs %d", st.BatchSizes.Count(), st.Epochs)
			}
			if got := st.BatchSizes.Sum(); got != workers*iters {
				t.Errorf("batch sample sum = %d, want %d", got, workers*iters)
			}
			t.Logf("%s: %d commits in %d epochs (mean batch %.2f)",
				algo, workers*iters, st.Epochs, st.BatchSizes.Mean())
		})
	}
}

// TestGroupCommitOpacityStress: read-modify-write increments on shared
// counters must never share an epoch (each member reads what the other
// writes), so every committed increment is preserved. A lost update here
// means two intersecting write sets were retired in one epoch.
func TestGroupCommitOpacityStress(t *testing.T) {
	counters := []int{0, 1} // two contended cells
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 8, InvalServers: 2, MaxBatch: 8})
			shared := []*Var{NewVar(0), NewVar(0)}
			const workers, iters = 4, 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				priv := NewVar(0)
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						c := shared[(w+i)%len(counters)]
						if err := th.Atomically(func(tx *Tx) error {
							// rmw on a shared counter + a disjoint private
							// write, so batches mixing the two are possible
							// but batches mixing two rmws are not.
							tx.Store(c, tx.Load(c).(int)+1)
							tx.Store(priv, i)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			total := shared[0].Peek().(int) + shared[1].Peek().(int)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if total != workers*iters {
				t.Errorf("lost updates: counters sum to %d, want %d", total, workers*iters)
			}
		})
	}
}

// TestStatsReadableWhileLive: System.Stats and Thread.Stats are safe (and
// race-clean) while threads are mid-transaction.
func TestStatsReadableWhileLive(t *testing.T) {
	for _, algo := range []Algo{NOrec, RInvalV2} {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			v := NewVar(0)
			const workers, iters = 3, 200
			done := make(chan struct{})
			var wg sync.WaitGroup
			ths := make([]*Thread, workers)
			for w := 0; w < workers; w++ {
				ths[w] = s.MustRegister()
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						_ = ths[w].Atomically(func(tx *Tx) error {
							tx.Store(v, tx.Load(v).(int)+1)
							return nil
						})
					}
				}()
			}
			go func() { wg.Wait(); close(done) }()
			var last Stats
			for running := true; running; {
				select {
				case <-done:
					running = false
				default:
					runtime.Gosched()
				}
				st := s.Stats()
				if st.Commits < last.Commits {
					t.Errorf("commits went backwards: %d -> %d", last.Commits, st.Commits)
				}
				last = st
				_ = ths[0].Stats()
			}
			for _, th := range ths {
				th.Close()
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// At least one count per transaction; RInval aggregates also
			// include the commit-server's committed-request counter.
			if got := s.Stats().Commits; got < workers*iters {
				t.Errorf("commits = %d, want >= %d", got, workers*iters)
			}
		})
	}
}

// TestSetResetReleasesPointers: reset must clear the backing arrays so
// retired Vars/boxes are collectable between transactions.
func TestSetResetReleasesPointers(t *testing.T) {
	var rs readSet
	rs.add(NewVar(1), &box{v: 1})
	rs.add(NewVar(2), &box{v: 2})
	rs.reset()
	for i, e := range rs.entries[:cap(rs.entries)] {
		if e.v != nil || e.snap != nil {
			t.Errorf("readSet entry %d retained pointers after reset", i)
		}
	}

	ws := newWriteSet(bloom.DefaultParams)
	ws.put(NewVar(3), 3)
	ws.put(NewVar(4), 4)
	ws.reset()
	for i, e := range ws.entries[:cap(ws.entries)] {
		if e.v != nil || e.b != nil {
			t.Errorf("writeSet entry %d retained pointers after reset", i)
		}
	}
}

// TestMaxBatchValidation: the knob defaults to 8 and rejects out-of-range
// values.
func TestMaxBatchValidation(t *testing.T) {
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxBatch != 8 {
		t.Errorf("default MaxBatch = %d, want 8", cfg.MaxBatch)
	}
	if _, err := (Config{MaxBatch: -1}).withDefaults(); err == nil {
		t.Error("MaxBatch=-1 accepted")
	}
	if _, err := (Config{MaxBatch: 5000}).withDefaults(); err == nil {
		t.Error("MaxBatch=5000 accepted")
	}
}
