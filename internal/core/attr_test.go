package core

import (
	"sync"
	"testing"

	"github.com/ssrg-vt/rinval/internal/bloom"
)

// collidingVars returns two freshly allocated Vars whose ids collide in a
// filter with geometry p — their single-element bloom signatures intersect —
// plus a third Var whose signature is disjoint from the first's. The search
// is deterministic: Var ids come off the global counter, and the double-hash
// positions are a pure function of the id.
func collidingVars(t *testing.T, p bloom.Params) (a, b, disjoint *Var) {
	t.Helper()
	sig := func(v *Var) *bloom.Filter {
		f := bloom.NewFilter(p)
		f.Add(v.ID())
		return f
	}
	type cand struct {
		v *Var
		f *bloom.Filter
	}
	var cands []cand
	for n := 0; n < 4096; n++ {
		nv := NewVar(0)
		nf := sig(nv)
		for _, c := range cands {
			if a == nil && c.f.Intersects(nf) {
				a, b = c.v, nv
			}
		}
		cands = append(cands, cand{nv, nf})
		if a != nil {
			break
		}
	}
	if a == nil {
		t.Fatal("no bloom collision found in 4096 vars (geometry too large?)")
	}
	fa := sig(a)
	for n := 0; n < 4096; n++ {
		nv := NewVar(0)
		if !fa.Intersects(sig(nv)) {
			return a, b, nv
		}
	}
	t.Fatal("no disjoint var found")
	return nil, nil, nil
}

// doomVictim orchestrates one exact invalidation: the victim reads readVar,
// parks; the committer writes writeVar (dooming the victim if the filters
// collide — with a 1-element read set and AttrSampleEvery=1, every doom is
// exactness-checked); the victim's next read observes the doom and aborts.
// Returns after both transactions finished (victim's retry commits empty).
func doomVictim(t *testing.T, sys *System, readVar, writeVar *Var) {
	t.Helper()
	victim := sys.MustRegister()   // slot 0
	committer := sys.MustRegister() // slot 1
	defer victim.Close()
	defer committer.Close()

	ready := make(chan struct{})
	committed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		_ = victim.Atomically(func(tx *Tx) error {
			tx.Load(readVar)
			if first {
				first = false
				close(ready)
				<-committed
				tx.Load(readVar) // observes the doom -> conflict abort
			}
			return nil
		})
	}()
	<-ready
	if err := committer.Atomically(func(tx *Tx) error {
		tx.Store(writeVar, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(committed)
	wg.Wait()
}

// smallBloom is a deliberately tight geometry so single-element signatures
// collide within a few dozen allocated vars.
var smallBloom = bloom.Params{Bits: 64, Hashes: 2}

// attrConfig is the deterministic attribution setup the exactness tests use:
// inline invalidation (no server timing), every doom exactness-checked.
func attrConfig() Config {
	return Config{
		Algo:            InvalSTM,
		MaxThreads:      4,
		Attribution:     true,
		AttrSampleEvery: 1,
		CM:              CMCommitterWins,
		Bloom:           smallBloom,
	}
}

// TestAttributionBloomFalsePositive forces a bloom collision between
// disjoint exact sets: the victim reads only readVar, the committer writes
// only writeVar, their signatures collide in the 64-bit geometry, so the
// invalidation dooms the victim — and the sampled exact check must classify
// the doom as a false positive.
func TestAttributionBloomFalsePositive(t *testing.T) {
	readVar, writeVar, _ := collidingVars(t, smallBloom)
	sys := MustNew(attrConfig())
	doomVictim(t, sys, readVar, writeVar)

	st := sys.Stats()
	if st.AbortReasons[AbortInvalidated] != 1 {
		t.Fatalf("AbortReasons[invalidated] = %d, want 1 (orchestration broke)", st.AbortReasons[AbortInvalidated])
	}
	rep := sys.ConflictReport()
	if !rep.Enabled {
		t.Fatal("report not enabled")
	}
	if rep.FP.Sampled != 1 || rep.FP.FalsePositive != 1 {
		t.Fatalf("FP = %+v, want exactly one check classified false-positive", rep.FP)
	}
	if rep.Matrix[1][0] != 1 {
		t.Fatalf("matrix[committer=1][victim=0] = %d, want 1 (matrix: %v)", rep.Matrix[1][0], rep.Matrix)
	}
	if rep.InvalidationAborts != 1 {
		t.Fatalf("InvalidationAborts = %d, want 1", rep.InvalidationAborts)
	}
	if len(rep.HotVars) != 0 {
		t.Fatalf("false positive must not feed the hot-var table, got %+v", rep.HotVars)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionTrueConflict is the positive control: the victim reads the
// very Var the committer writes, so the exact check confirms the conflict,
// feeds the hot-var table, and the NewVarNamed label surfaces in the report.
func TestAttributionTrueConflict(t *testing.T) {
	hot := NewVarNamed(0, "hot-cell")
	sys := MustNew(attrConfig())
	doomVictim(t, sys, hot, hot)

	rep := sys.ConflictReport()
	if rep.FP.Sampled != 1 || rep.FP.FalsePositive != 0 {
		t.Fatalf("FP = %+v, want one check classified true conflict", rep.FP)
	}
	if len(rep.HotVars) != 1 || rep.HotVars[0].ID != hot.ID() {
		t.Fatalf("HotVars = %+v, want exactly the conflicting var", rep.HotVars)
	}
	if rep.HotVars[0].Name != "hot-cell" {
		t.Fatalf("hot var label = %q, want NewVarNamed's label", rep.HotVars[0].Name)
	}
	if rep.WastedNs["invalidated"] == 0 {
		t.Fatal("invalidation abort accounted no wasted time")
	}
	if rep.WastedOps["invalidated"] == 0 {
		t.Fatal("invalidation abort accounted no wasted ops")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionPendingRead covers the read doomed before Tx.Load could
// log it. The victim reads a, whose signature collides with b's; the
// committer writes b, dooming the victim through the collision; the victim
// then reads b itself, and that read observes the doom before reaching the
// read log — only tx.pendingRead can carry b into the exact check. Since b
// IS in the committer's write set, the check must classify a true conflict
// (the logged read a alone would call it a false positive).
func TestAttributionPendingRead(t *testing.T) {
	a, b, _ := collidingVars(t, smallBloom)
	sys := MustNew(attrConfig())

	victim := sys.MustRegister()
	committer := sys.MustRegister()
	ready := make(chan struct{})
	committed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		_ = victim.Atomically(func(tx *Tx) error {
			if first {
				first = false
				tx.Load(a) // publishes a's filter bits, logs a
				close(ready)
				<-committed
				tx.Load(b) // doomed before this read could be logged
			}
			return nil
		})
	}()
	<-ready
	if err := committer.Atomically(func(tx *Tx) error {
		tx.Store(b, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(committed)
	wg.Wait()
	victim.Close()
	committer.Close()

	rep := sys.ConflictReport()
	if rep.FP.Sampled != 1 {
		t.Fatalf("FP = %+v, want exactly one exactness check", rep.FP)
	}
	if rep.FP.FalsePositive != 0 {
		t.Fatalf("FP = %+v: true conflict on the pending read misclassified", rep.FP)
	}
	if len(rep.HotVars) != 1 || rep.HotVars[0].ID != b.ID() {
		t.Fatalf("HotVars = %+v, want only the pending-read var %d", rep.HotVars, b.ID())
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAttributionMatrixMatchesTaxonomy is the churn test: several threads
// hammer a small shared array under every slot-using engine with attribution
// on, and at quiescence the full matrix sum must equal the taxonomy's
// AbortInvalidated counter exactly — the victim records exactly one cell per
// invalidation abort, racing committers notwithstanding. Run with -race.
func TestAttributionMatrixMatchesTaxonomy(t *testing.T) {
	for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			t.Parallel()
			sys := MustNew(Config{
				Algo:            algo,
				MaxThreads:      8,
				InvalServers:    2,
				Attribution:     true,
				AttrSampleEvery: 2,
				CM:              CMCommitterWins,
			})
			vars := make([]*Var, 8)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			const threads, iters = 6, 300
			var wg sync.WaitGroup
			for g := 0; g < threads; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := sys.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						_ = th.Atomically(func(tx *Tx) error {
							a := vars[(g+i)%len(vars)]
							b := vars[(g*3+i*7)%len(vars)]
							n := tx.Load(a).(int)
							tx.Store(b, n+1)
							return nil
						})
					}
				}(g)
			}
			wg.Wait()

			// Snapshot while live threads are gone but servers still run —
			// the counters are quiescent because no transaction is in flight.
			rep := sys.ConflictReport()
			st := sys.Stats()
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			if rep.InvalidationAborts != st.AbortReasons[AbortInvalidated] {
				t.Fatalf("matrix sum %d != AbortReasons[invalidated] %d",
					rep.InvalidationAborts, st.AbortReasons[AbortInvalidated])
			}
			// Row/column consistency: the committer-major snapshot and a
			// victim-major refold must agree with the total.
			var rows, cols uint64
			colSum := make([]uint64, rep.Slots)
			for _, row := range rep.Matrix {
				for v, n := range row {
					rows += n
					colSum[v] += n
				}
			}
			for _, n := range colSum {
				cols += n
			}
			if rows != rep.InvalidationAborts || cols != rep.InvalidationAborts {
				t.Fatalf("row sum %d / col sum %d != total %d", rows, cols, rep.InvalidationAborts)
			}
			if st.Aborts > 0 && rep.WastedNs["invalidated"]+rep.WastedNs["validation"]+
				rep.WastedNs["locked"]+rep.WastedNs["self"] == 0 {
				t.Fatal("aborts happened but no wasted time was accounted")
			}
		})
	}
}

// TestAttributionOffIsInert pins the off-path contract: no attribution state
// is allocated, reports carry Enabled=false, and the killer mailbox stays
// nil through doom traffic.
func TestAttributionOffIsInert(t *testing.T) {
	sys := MustNew(Config{Algo: InvalSTM, MaxThreads: 4, CM: CMCommitterWins})
	if sys.attr != nil {
		t.Fatal("attribution state allocated with Attribution off")
	}
	v := NewVar(0)
	doomVictim(t, sys, v, v)
	rep := sys.ConflictReport()
	if rep.Enabled {
		t.Fatal("report enabled with Attribution off")
	}
	if rep.Aborts == 0 {
		t.Fatal("meta passthrough missing: report should still carry Stats totals")
	}
	for i := range sys.slots {
		if sys.slots[i].killer.Load() != nil {
			t.Fatalf("slot %d killer mailbox non-nil with Attribution off", i)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}
