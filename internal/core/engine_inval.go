package core

import (
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// invalEngine implements InvalSTM-style commit-time invalidation (the
// paper's Algorithm 1, after Gottschlich et al., CGO 2010). Reads are
// linear-time — each read checks only the global timestamp and the
// transaction's own status flag — but the entire invalidation scan runs
// inside the commit critical section, inflating lock hold time. This is the
// imbalance RInval removes (§III).
type invalEngine struct {
	sys *System
}

func (e *invalEngine) usesSlots() bool { return true }

func (e *invalEngine) begin(tx *Tx) {}

// read implements Algorithm 1's READ: load the value inside a stable even
// window of the global timestamp, publish the read-filter bit before the
// stability re-check, then verify this transaction has not been invalidated.
//stm:hotpath
func (e *invalEngine) read(tx *Tx, v *Var) (*box, bool) {
	return invalRead(tx, v, false)
}

// invalRead is the read protocol shared by InvalSTM and the RInval engines,
// applied against the stream that owns v's shard (with Shards == 1 that is
// the global timestamp, exactly the paper's protocol). waitCaughtUp adds the
// RInvalV2/V3 requirement that the reader's own invalidation-server for that
// stream has processed every prior commit (Algorithm 3, line 28). Time spent
// blocked — on an odd timestamp, a lagging server, or an unstable window —
// is recorded as a read-wait trace span.
//stm:hotpath
func invalRead(tx *Tx, v *Var, waitCaughtUp bool) (*box, bool) {
	sys := tx.sys
	shard := int(v.shardH & sys.shardMask)
	st := &sys.streams[shard]
	var w spin.Waiter
	var tw int64 // trace timestamp of the first blocked sample, if any
	for {
		t0 := st.ts.Load()
		if t0&1 == 1 || (waitCaughtUp && st.invalTS[tx.slot.invalServer].Load() < t0) {
			if tw == 0 {
				tw = tx.ring.Now()
			}
			w.Wait()
			continue
		}
		b := v.loadBox()
		// Publish the read-filter bit before confirming stability: any
		// committer whose timestamp transition we fail to observe below is
		// ordered after this OR (sequential consistency), so its
		// invalidation scan will see the bit.
		tx.slot.readBF.Add(v.id)
		if st.ts.Load() != t0 {
			if tw == 0 {
				tw = tx.ring.Now()
			}
			w.Wait()
			continue
		}
		if tw != 0 {
			tx.ring.Span(obs.KReadWait, tw, v.id)
		}
		// Record the shard this read ordered against: the commit request's
		// touched mask must cover read-only shards too (see Tx.readShards).
		tx.readShards |= 1 << uint(shard)
		if tx.invalidated() {
			tx.reason = AbortInvalidated
			// This read is not in the log yet (Tx.Load appends only on
			// success); remember its Var so the sampled exact-set check sees
			// the full read set.
			tx.pendingRead = v.id
			return nil, false
		}
		return b, true
	}
}

// commit implements Algorithm 1's COMMIT: acquire the global sequence lock
// with a CAS, re-check the status flag (a commit may have doomed us between
// the request and the acquisition), invalidate every conflicting in-flight
// transaction, publish the write set, and release.
//stm:hotpath
func (e *invalEngine) commit(tx *Tx) bool {
	sys := e.sys
	if tx.ws.len() == 0 {
		// Read-only: every returned value was consistent when read, and
		// nothing remains to serialize.
		return true
	}
	if tx.invalidated() {
		tx.reason = AbortInvalidated
		return false
	}
	if readerBiasedSelfAbort(tx) {
		return false
	}
	var w spin.Waiter
	var t uint64
	for {
		t = sys.streams[0].ts.Load()
		if t&1 == 0 && sys.streams[0].ts.CompareAndSwap(t, t+1) {
			break
		}
		w.Wait()
	}
	// Re-check after acquisition (Algorithm 1 checks the flag under the
	// lock): a commit serialized between our last read and the CAS may have
	// invalidated us.
	if tx.invalidated() {
		tx.reason = AbortInvalidated
		sys.streams[0].ts.Store(t) // release without publishing anything
		return false
	}
	var kd *killDesc
	if sys.attr != nil {
		kd = tx.attrKillDesc()
	}
	atomic.AddUint64(&tx.stats.Invalidations, sys.invalidateOthers(tx.slot.selfMask, tx.ws.bf, tx.ring, kd))
	sys.writeBack(tx.ws)
	sys.streams[0].ts.Store(t + 2)
	return true
}

func (e *invalEngine) abort(tx *Tx) {}

func (e *invalEngine) serverTasks() []serverTask { return nil }

func (e *invalEngine) serverStats() Stats { return Stats{} }

// readerBiasedSelfAbort applies the CMReaderBiased policy (the paper's §V
// future-work contention manager): a writer that would doom more than
// ReaderBiasThreshold in-flight readers aborts itself instead, for up to
// ReaderBiasRetries attempts.
func readerBiasedSelfAbort(tx *Tx) bool {
	sys := tx.sys
	if sys.cfg.CM != CMReaderBiased || tx.attempts > sys.cfg.ReaderBiasRetries {
		return false
	}
	if sys.countConflictingReaders(tx.th.idx, tx.ws.bf) > sys.cfg.ReaderBiasThreshold {
		atomic.AddUint64(&tx.stats.SelfAborts, 1)
		tx.reason = AbortSelf
		return true
	}
	return false
}
