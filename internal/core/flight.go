package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/internal/obs"
)

// DumpFlightBundle assembles the full post-mortem bundle — latency report,
// conflict report, trace-ring snapshots, goroutine stacks — and writes it
// atomically to Config.FlightDir, returning the file path. Safe to call
// while transactions run (every section reads through concurrent-safe
// snapshots); callable directly for operator-initiated dumps, and what the
// flight recorder invokes when its detector trips.
func (s *System) DumpFlightBundle(reason string) (string, error) {
	b := &obs.FlightBundle{
		Reason:    reason,
		UnixNanos: time.Now().UnixNano(),
		Latency:   s.LatencyReport(),
		Conflict:  s.ConflictReport(),
		Trace:     obs.SnapshotTracer(s.tracer),
		Stacks:    obs.AllStacks(),
	}
	if rep := s.tseries.Report(); rep.Enabled {
		b.TimeSeries = &rep
	}
	return b.WriteFile(s.cfg.FlightDir)
}

// flightState is the detector's between-tick memory: the previous tick's
// cumulative latency snapshot (windowed p99 = delta), counter baselines for
// the abort-rate window, and the stall tracker (which slots were waiting on
// a commit reply, and each shard server's epoch count).
type flightState struct {
	det         *obs.AnomalyDetector
	prevTotal   histo.Histogram
	prevCommits uint64
	prevAborts  uint64
	prevEpochs  []uint64
	prevPending []bool
	// prevAlerts is the SLO-trigger watermark: the time-series engine's
	// alert count as of the last tick. New alerts between ticks trip a dump.
	prevAlerts uint64
}

func (s *System) newFlightState() *flightState {
	fs := &flightState{
		det:         obs.NewAnomalyDetector(s.cfg.FlightP99Factor, s.cfg.FlightAbortRate),
		prevPending: make([]bool, len(s.slots)),
	}
	if re, ok := s.eng.(*remoteEngine); ok {
		fs.prevEpochs = make([]uint64, len(re.srv))
	}
	return fs
}

// flightTick evaluates one detector window and returns a non-empty dump
// reason if it is anomalous. Split from flightLoop so tests can drive ticks
// deterministically.
func (s *System) flightTick(fs *flightState) string {
	// Commit-server stall: a client has been spinning on its commit reply
	// across two consecutive ticks while no shard server finished an epoch.
	// Checked before the rate math so a wedged server is reported even when
	// the stall has driven the windows to zero activity.
	epochsAdvanced := false
	if re, ok := s.eng.(*remoteEngine); ok {
		for j := range re.srv {
			e := atomic.LoadUint64(&re.srv[j].commitSrv.Epochs)
			if e != fs.prevEpochs[j] {
				epochsAdvanced = true
			}
			fs.prevEpochs[j] = e
		}
		stalled := -1
		for i := range s.slots {
			pending := s.slots[i].state.Load() == reqPending
			if pending && fs.prevPending[i] && !epochsAdvanced {
				stalled = i
			}
			fs.prevPending[i] = pending
		}
		if stalled >= 0 {
			return fmt.Sprintf("commit-server stall: slot %d pending across two ticks with no epoch progress", stalled)
		}
	}

	// SLO burn-rate trigger: the time-series engine recorded a multi-window
	// burn alert since the last tick. Better grounded than the EWMA detector
	// — the thresholds are declared objectives, not learned baselines — so
	// it is checked first; the bundle's TimeSeries section carries the
	// alert with the window that tripped it.
	if n := s.tseries.AlertCount(); n > fs.prevAlerts {
		fs.prevAlerts = n
		if a, ok := s.tseries.LastAlert(); ok {
			return fmt.Sprintf("slo burn: %s fast=%.2fx slow=%.2fx (threshold %.2fx)",
				a.SLO, a.FastBurn, a.SlowBurn, a.Burn)
		}
	}

	st := s.Stats()
	dCommits := st.Commits - fs.prevCommits
	dAborts := st.Aborts - fs.prevAborts
	fs.prevCommits, fs.prevAborts = st.Commits, st.Aborts

	cur := s.latTotalHistogram()
	win := histo.Delta(&cur, &fs.prevTotal)
	fs.prevTotal = cur

	if dCommits+dAborts == 0 && win.Count() == 0 {
		return "" // idle window: no signal, and don't dilute the baseline
	}
	// Under-sampled windows carry no p99 signal (Observe skips p99 when <= 0);
	// the abort rate is still fed from the full counter deltas.
	p99 := float64(0)
	if win.Count() >= flightMinSamples {
		p99 = float64(win.Quantile(0.99))
	}
	abortRate := float64(0)
	if dCommits+dAborts > 0 {
		abortRate = float64(dAborts) / float64(dCommits+dAborts)
	}
	return fs.det.Observe(p99, abortRate)
}

// flightMinSamples is the minimum sampled transactions a window needs before
// its p99 is considered meaningful.
const flightMinSamples = 8

// flightLoop is the flight-recorder goroutine: tick, detect, dump, cool
// down. Started by startServers when Config.FlightRecorder is set; stopped
// by Close via flightStop.
func (s *System) flightLoop() {
	fs := s.newFlightState()
	ticker := time.NewTicker(s.cfg.FlightInterval)
	defer ticker.Stop()
	var lastDump time.Time
	for {
		select {
		case <-s.flightStop:
			return
		case <-ticker.C:
		}
		reason := s.flightTick(fs)
		if reason == "" {
			continue
		}
		if !lastDump.IsZero() && time.Since(lastDump) < s.cfg.FlightCooldown {
			continue
		}
		if _, err := s.DumpFlightBundle(reason); err == nil {
			lastDump = time.Now()
		}
	}
}
