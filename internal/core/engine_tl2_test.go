package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTL2WordHelpers(t *testing.T) {
	if tl2Locked(0) || !tl2Locked(1) || !tl2Locked(7) {
		t.Fatal("lock bit extraction wrong")
	}
	if tl2Version(0) != 0 || tl2Version(1) != 0 || tl2Version(4) != 2 || tl2Version(5) != 2 {
		t.Fatal("version extraction wrong")
	}
}

func TestTL2DisjointCommitsAllSucceedWithoutAborts(t *testing.T) {
	// The fine-grained property: writers on disjoint Vars never conflict
	// (unlike the coarse engines, which may still serialize or bloom-doom).
	s := newSys(t, TL2, nil)
	const workers, per = 6, 200
	vars := make([]*Var, workers)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < per; i++ {
				_ = th.Atomically(func(tx *Tx) error {
					tx.Store(vars[w], tx.Load(vars[w]).(int)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	for i, v := range vars {
		if v.Peek().(int) != per {
			t.Fatalf("var %d = %v", i, v.Peek())
		}
	}
	// Disjoint single-var transactions under TL2 can only abort on a lock
	// collision, which cannot happen here: expect zero aborts.
	if st := s.Stats(); st.Aborts != 0 {
		t.Fatalf("disjoint TL2 writers aborted %d times", st.Aborts)
	}
}

func TestTL2StaleSnapshotAborts(t *testing.T) {
	// A transaction whose snapshot predates a commit to a location must not
	// read that location's new version silently: it retries and converges.
	s := newSys(t, TL2, nil)
	x := NewVar(0)
	y := NewVar(0)
	th1 := s.MustRegister()
	defer th1.Close()
	th2 := s.MustRegister()
	defer th2.Close()

	// th1 writes x and y in one tx; th2 reads both. Interleave heavily.
	var stop atomic.Bool
	var bad atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; !stop.Load(); i++ {
			_ = th1.Atomically(func(tx *Tx) error {
				tx.Store(x, i)
				tx.Store(y, -i)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = th2.Atomically(func(tx *Tx) error {
				a := tx.Load(x).(int)
				b := tx.Load(y).(int)
				if a+b != 0 {
					bad.Add(1)
				}
				return nil
			})
		}
	}()
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("TL2 exposed %d inconsistent snapshots", bad.Load())
	}
}

func TestTL2LockOrderNoDeadlock(t *testing.T) {
	// Committers with overlapping write sets acquired in opposite program
	// order must not deadlock (id-ordered acquisition).
	s := newSys(t, TL2, nil)
	a, b := NewVar(0), NewVar(0)
	const per = 300
	var wg sync.WaitGroup
	run := func(first, second *Var) {
		defer wg.Done()
		th := s.MustRegister()
		defer th.Close()
		for i := 0; i < per; i++ {
			_ = th.Atomically(func(tx *Tx) error {
				tx.Store(first, tx.Load(first).(int)+1)
				tx.Store(second, tx.Load(second).(int)+1)
				return nil
			})
		}
	}
	wg.Add(2)
	go run(a, b)
	go run(b, a)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("deadlock suspected")
	}
	if a.Peek().(int) != 2*per || b.Peek().(int) != 2*per {
		t.Fatalf("a=%v b=%v want %d", a.Peek(), b.Peek(), 2*per)
	}
}

func TestTL2VersionAdvancesOnCommit(t *testing.T) {
	s := newSys(t, TL2, nil)
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	before := v.verlock.Load()
	if err := th.Atomically(func(tx *Tx) error {
		tx.Store(v, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after := v.verlock.Load()
	if tl2Locked(after) {
		t.Fatal("lock leaked after commit")
	}
	if tl2Version(after) <= tl2Version(before) {
		t.Fatalf("version did not advance: %d -> %d", tl2Version(before), tl2Version(after))
	}
	// A failed (user-abort) transaction must not advance the version.
	mid := v.verlock.Load()
	_ = th.Atomically(func(tx *Tx) error {
		tx.Store(v, 9)
		return errSentinel
	})
	if v.verlock.Load() != mid {
		t.Fatal("user abort changed the verlock")
	}
	if v.Peek().(int) != 1 {
		t.Fatal("user abort leaked a write")
	}
}

var errSentinel = &sentinelError{}

type sentinelError struct{}

func (*sentinelError) Error() string { return "sentinel" }
