package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardsValidation is the table-driven withDefaults contract for the
// Shards knob, alongside the MaxBatch table in groupcommit_test.go: default
// 1, power-of-two rounding, the 64-shard bitmask cap, engine gating, and the
// InvalServers divisibility requirement.
func TestShardsValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		want    int  // effective Shards when ok
		wantErr bool
	}{
		{name: "default-1", cfg: Config{}, want: 1},
		{name: "explicit-1-any-engine", cfg: Config{Algo: NOrec, Shards: 1}, want: 1},
		{name: "negative", cfg: Config{Algo: RInvalV2, Shards: -1}, wantErr: true},
		{name: "beyond-64", cfg: Config{Algo: RInvalV2, Shards: 65}, wantErr: true},
		{name: "power-of-two-kept", cfg: Config{Algo: RInvalV2, Shards: 4, InvalServers: 4}, want: 4},
		{name: "rounds-up-3-to-4", cfg: Config{Algo: RInvalV2, Shards: 3, InvalServers: 4}, want: 4},
		{name: "rounds-up-33-to-64", cfg: Config{Algo: RInvalV2, Shards: 33, InvalServers: 64, MaxThreads: 64}, want: 64},
		{name: "v1-sharded", cfg: Config{Algo: RInvalV1, Shards: 2}, want: 2},
		{name: "v3-sharded", cfg: Config{Algo: RInvalV3, Shards: 2, InvalServers: 4}, want: 2},
		{name: "norec-sharded", cfg: Config{Algo: NOrec, Shards: 2}, wantErr: true},
		{name: "mutex-sharded", cfg: Config{Algo: Mutex, Shards: 2}, wantErr: true},
		{name: "invalstm-sharded", cfg: Config{Algo: InvalSTM, Shards: 2}, wantErr: true},
		{name: "tl2-sharded", cfg: Config{Algo: TL2, Shards: 2}, wantErr: true},
		{name: "servers-not-divisible", cfg: Config{Algo: RInvalV2, Shards: 4, InvalServers: 6}, wantErr: true},
		{name: "servers-divisible", cfg: Config{Algo: RInvalV2, Shards: 4, InvalServers: 8}, want: 4},
		{name: "default-servers-cover-shards", cfg: Config{Algo: RInvalV2, Shards: 8}, want: 8},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.cfg.withDefaults()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("withDefaults accepted %+v (Shards=%d)", tc.cfg, cfg.Shards)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Shards != tc.want {
				t.Fatalf("effective Shards = %d, want %d", cfg.Shards, tc.want)
			}
			if cfg.InvalServers%cfg.Shards != 0 {
				t.Fatalf("defaulted InvalServers %d not divisible by Shards %d",
					cfg.InvalServers, cfg.Shards)
			}
		})
	}
}

// varInShard returns a fresh Var that s's mask places in the wanted shard
// (Var ids are hashed, so allocation order does not determine the shard).
func varInShard(t *testing.T, s *System, shard int, initial any) *Var {
	t.Helper()
	for i := 0; i < 10000; i++ {
		v := NewVar(initial)
		if s.shardOf(v) == shard {
			return v
		}
	}
	t.Fatalf("no Var hashed to shard %d in 10000 tries", shard)
	return nil
}

// TestShardOfCoversAllStreams: the creation-time hash reaches every shard,
// and the mask agrees with the stored hash.
func TestShardOfCoversAllStreams(t *testing.T) {
	s := newSys(t, RInvalV2, func(c *Config) { c.Shards = 4; c.InvalServers = 4 })
	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	seen := make(map[int]bool)
	for i := 0; i < 1024; i++ {
		v := NewVar(i)
		j := s.shardOf(v)
		if j < 0 || j >= 4 {
			t.Fatalf("shardOf = %d, out of range", j)
		}
		if j != int(v.shardH&s.shardMask) {
			t.Fatalf("shardOf disagrees with mask")
		}
		seen[j] = true
	}
	for j := 0; j < 4; j++ {
		if !seen[j] {
			t.Errorf("no Var hashed to shard %d in 1024 tries", j)
		}
	}
}

// TestCrossShardHandshake plants cross-shard write sets — transfers between
// accounts pinned to distinct shards, concurrent with single-shard traffic —
// on every RInval engine at Shards=4, under the race detector. Completion is
// the deadlock-freedom check (the ascending-index stream acquisition must
// never cycle); the conserved account total is the atomicity check; the
// CrossShardCommits counter proves the handshake path actually ran.
func TestCrossShardHandshake(t *testing.T) {
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s, err := New(Config{Algo: algo, MaxThreads: 16, InvalServers: 4,
				StepsAhead: 2, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			const nShards = 4
			const perShard = 2
			const initial = 1000
			// accounts[j] live in shard j%nShards.
			var accounts []*Var
			for j := 0; j < nShards*perShard; j++ {
				accounts = append(accounts, varInShard(t, s, j%nShards, initial))
			}
			const workers, iters = 8, 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						// Pick a cross-shard pair deterministically: adjacent
						// indices always differ in shard (j % nShards).
						from := accounts[(w+i)%len(accounts)]
						to := accounts[(w+i+1)%len(accounts)]
						if err := th.Atomically(func(tx *Tx) error {
							a := tx.Load(from).(int)
							b := tx.Load(to).(int)
							tx.Store(from, a-1)
							tx.Store(to, b+1)
							return nil
						}); err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
						// Interleave single-shard traffic so the handshake
						// contends with ordinary per-stream epochs.
						solo := accounts[(w*iters+i)%len(accounts)]
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(solo, tx.Load(solo).(int))
							return nil
						}); err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			total := 0
			for _, v := range accounts {
				total += v.Peek().(int)
			}
			if want := len(accounts) * initial; total != want {
				t.Errorf("account total = %d, want %d (torn cross-shard commit)", total, want)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.CrossShardCommits == 0 {
				t.Error("no cross-shard commits recorded; handshake path never ran")
			}
			if st.CrossShardCommits > st.Commits {
				t.Errorf("CrossShardCommits %d > Commits %d", st.CrossShardCommits, st.Commits)
			}
		})
	}
}

// TestShardDifferentialHistory runs the RMW chain-serializability oracle
// (history_test.go) at Shards=1 and Shards=4 on the same workload shape: the
// sharded run must produce exactly the same kind of single-chain history the
// paper-exact baseline does. The register is read-modify-written by every
// transaction, so under sharding every commit still orders through the
// register's one stream; a second register in another shard makes half the
// transactions cross-shard without breaking the chain.
func TestShardDifferentialHistory(t *testing.T) {
	for _, algo := range rinvalAlgos {
		for _, shards := range []int{1, 4} {
			shards := shards
			t.Run(algo.String()+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				s, err := New(Config{Algo: algo, MaxThreads: 16, InvalServers: 4,
					StepsAhead: 2, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					if err := s.Close(); err != nil {
						t.Errorf("Close: %v", err)
					}
				}()
				const workers, per = 6, 80
				const initial = -1
				reg := NewVar(initial)
				// side lives in a different stream than reg when sharded, so
				// odd iterations commit through the cross-shard handshake.
				side := reg
				if shards > 1 {
					side = varInShard(t, s, (s.shardOf(reg)+1)%shards, 0)
				}

				type opRec struct{ read, wrote int }
				records := make([][]opRec, workers)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						th := s.MustRegister()
						defer th.Close()
						for i := 0; i < per; i++ {
							unique := w*per + i
							var read int
							if err := th.Atomically(func(tx *Tx) error {
								read = tx.Load(reg).(int)
								tx.Store(reg, unique)
								if i%2 == 1 {
									tx.Store(side, unique)
								}
								return nil
							}); err != nil {
								t.Errorf("worker %d: %v", w, err)
								return
							}
							records[w] = append(records[w], opRec{read: read, wrote: unique})
						}
					}()
				}
				wg.Wait()

				next := make(map[int]int, workers*per)
				for w := range records {
					for _, r := range records[w] {
						if prev, dup := next[r.read]; dup {
							t.Fatalf("two transactions (%d and %d) both observed %d: lost update",
								prev, r.wrote, r.read)
						}
						next[r.read] = r.wrote
					}
				}
				seen, cur := 0, initial
				for {
					n, ok := next[cur]
					if !ok {
						break
					}
					cur = n
					seen++
				}
				if seen != workers*per {
					t.Fatalf("chain covers %d of %d transactions (history not serializable at Shards=%d)",
						seen, workers*per, shards)
				}
				if got := reg.Peek().(int); got != cur {
					t.Fatalf("final value %d is not the chain tail %d", got, cur)
				}
			})
		}
	}
}

// TestShardAbortReasonsSum extends the taxonomy invariant of
// TestAbortReasonsSumToAborts to sharded systems: conflict reasons still sum
// exactly to Aborts with Shards=4, and the per-shard server stats decompose
// the aggregate — shard Epochs/Commits/Invalidations/CrossShardCommits sum
// to the engine totals, so nothing is double-counted across streams.
func TestShardAbortReasonsSum(t *testing.T) {
	for _, algo := range rinvalAlgos {
		t.Run(algo.String(), func(t *testing.T) {
			s, err := New(Config{Algo: algo, MaxThreads: 16, InvalServers: 4,
				StepsAhead: 2, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			counters := make([]*Var, 4)
			for j := range counters {
				counters[j] = varInShard(t, s, j, 0)
			}
			const workers, per = 6, 120
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						c := counters[(w+i)%len(counters)]
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(c, tx.Load(c).(int)+1)
							if i%8 == 0 {
								// Every 8th iteration also bumps the next
								// shard's counter: a planted cross-shard RMW.
								d := counters[(w+i+1)%len(counters)]
								tx.Store(d, tx.Load(d).(int)+1)
							}
							return nil
						}); err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if got := st.ConflictAborts(); got != st.Aborts {
				t.Fatalf("conflict reasons sum to %d, Aborts = %d (reasons %v)",
					got, st.Aborts, st.AbortReasons)
			}
			shardStats := s.ShardServerStats()
			if len(shardStats) != 4 {
				t.Fatalf("ShardServerStats returned %d entries, want 4", len(shardStats))
			}
			var epochs, commits, invals, cross uint64
			for _, ss := range shardStats {
				epochs += ss.Epochs
				commits += ss.Commits
				invals += ss.Invalidations
				cross += ss.CrossShardCommits
			}
			eng := s.eng.(*remoteEngine)
			agg := eng.serverStats()
			if epochs != agg.Epochs || commits != agg.Commits ||
				invals != agg.Invalidations || cross != agg.CrossShardCommits {
				t.Fatalf("per-shard stats (%d epochs, %d commits, %d invals, %d cross) "+
					"do not sum to aggregate (%d, %d, %d, %d)",
					epochs, commits, invals, cross,
					agg.Epochs, agg.Commits, agg.Invalidations, agg.CrossShardCommits)
			}
			if cross == 0 {
				t.Error("planted cross-shard RMWs recorded no cross-shard commits")
			}
		})
	}
}

// TestCrossShardMaskClassification: the client-side commit masks route
// correctly — a single-shard write set carries a one-bit touched mask, and a
// read in a foreign shard widens touched beyond writes (the write-skew
// guard), which must send the commit through the handshake.
func TestCrossShardMaskClassification(t *testing.T) {
	s := newSys(t, RInvalV2, func(c *Config) { c.Shards = 4; c.InvalServers = 4 })
	w0 := varInShard(t, s, 0, 0)
	r2 := varInShard(t, s, 2, 0)
	th := s.MustRegister()
	defer th.Close()

	// Writer-only transaction in shard 0: after commit the recorded request
	// masks are single-bit. The slot's req pointer is cleared on reply, so
	// observe classification through the readShards accumulator instead.
	if err := th.Atomically(func(tx *Tx) error {
		tx.Store(w0, 1)
		if tx.readShards != 0 {
			t.Errorf("readShards = %b before any read", tx.readShards)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if err := th.Atomically(func(tx *Tx) error {
		_ = tx.Load(r2)
		if tx.readShards != 1<<2 {
			t.Errorf("readShards = %b after shard-2 read, want %b", tx.readShards, 1<<2)
		}
		tx.Store(w0, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The read-in-shard-2 + write-in-shard-0 commit must have used the
	// handshake: touched spans two streams even though writes is one bit, and
	// the handshake is led by the lowest touched shard's server (shard 0).
	if got := th.Stats(); got.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", got.Commits)
	}
	eng := s.eng.(*remoteEngine)
	if got := atomic.LoadUint64(&eng.srv[0].commitSrv.CrossShardCommits); got != 1 {
		t.Errorf("shard-0 server CrossShardCommits = %d, want 1 (read-only foreign shard must route through the handshake)", got)
	}
	for j := 1; j < 4; j++ {
		if got := atomic.LoadUint64(&eng.srv[j].commitSrv.CrossShardCommits); got != 0 {
			t.Errorf("shard-%d server led %d handshakes, want 0", j, got)
		}
	}
}
