package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestDifferentialSingleThread runs one deterministic operation trace
// through every engine and demands bit-identical final state: with a single
// thread there is no nondeterminism, so any divergence is an engine bug.
func TestDifferentialSingleThread(t *testing.T) {
	const nvars, ops = 12, 800
	type result [nvars]int
	run := func(algo Algo) (result, Stats) {
		s := MustNew(Config{Algo: algo, MaxThreads: 4, InvalServers: 1})
		defer s.Close()
		th := s.MustRegister()
		vars := make([]*Var, nvars)
		for i := range vars {
			vars[i] = NewVar(i)
		}
		rng := uint64(42)
		next := func() uint64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return rng >> 16
		}
		for op := 0; op < ops; op++ {
			a := int(next()) % nvars
			b := int(next()) % nvars
			k := int(next()) % 3
			_ = th.Atomically(func(tx *Tx) error {
				switch k {
				case 0: // transfer-ish
					av := tx.Load(vars[a]).(int)
					bv := tx.Load(vars[b]).(int)
					tx.Store(vars[a], av+bv)
				case 1: // swap
					av := tx.Load(vars[a]).(int)
					bv := tx.Load(vars[b]).(int)
					tx.Store(vars[a], bv)
					tx.Store(vars[b], av)
				case 2: // conditional user abort
					if tx.Load(vars[a]).(int)%2 == 0 {
						tx.Store(vars[b], -1)
						return errDiffAbort
					}
					tx.Store(vars[b], tx.Load(vars[b]).(int)+1)
				}
				return nil
			})
		}
		var out result
		for i, v := range vars {
			out[i] = v.Peek().(int)
		}
		st := th.Stats()
		th.Close()
		return out, st
	}

	ref, refStats := run(Algos[0])
	for _, algo := range Algos[1:] {
		got, st := run(algo)
		if got != ref {
			t.Errorf("%v diverged from %v:\n ref=%v\n got=%v", algo, Algos[0], ref, got)
		}
		// Single-threaded: no conflicts, so commit counts must agree too.
		if st.Commits != refStats.Commits {
			t.Errorf("%v commits %d != %d", algo, st.Commits, refStats.Commits)
		}
	}
}

var errDiffAbort = fmt.Errorf("diff abort")

// TestDifferentialConcurrentConservation runs the same concurrent transfer
// workload under every engine; the interleavings differ but the conserved
// quantity must not.
func TestDifferentialConcurrentConservation(t *testing.T) {
	const nvars, workers, per, initial = 8, 6, 120, 1000
	for _, algo := range Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 16, InvalServers: 2})
			defer s.Close()
			vars := make([]*Var, nvars)
			for i := range vars {
				vars[i] = NewVar(initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					rng := uint64(w + 7)
					next := func() int {
						rng = rng*6364136223846793005 + 1442695040888963407
						return int(rng >> 33)
					}
					for i := 0; i < per; i++ {
						from, to, amt := next()%nvars, next()%nvars, next()%25
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(vars[from], tx.Load(vars[from]).(int)-amt)
							tx.Store(vars[to], tx.Load(vars[to]).(int)+amt)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			total := 0
			for _, v := range vars {
				total += v.Peek().(int)
			}
			if total != nvars*initial {
				t.Fatalf("conservation violated: %d != %d", total, nvars*initial)
			}
			st := s.Stats()
			if st.Commits != workers*per {
				t.Fatalf("commits %d != %d", st.Commits, workers*per)
			}
		})
	}
}

// TestSlotReuseAfterRemoteCommits exercises register/unregister churn on a
// remote engine: a slot that served commits must be safely reusable by a new
// thread, including its epoch and filter state.
func TestSlotReuseAfterRemoteCommits(t *testing.T) {
	s := MustNew(Config{Algo: RInvalV2, MaxThreads: 2, InvalServers: 1})
	defer s.Close()
	x := NewVar(0)
	for round := 0; round < 40; round++ {
		th := s.MustRegister()
		if err := th.Atomically(func(tx *Tx) error {
			tx.Store(x, tx.Load(x).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		th.Close()
	}
	if x.Peek().(int) != 40 {
		t.Fatalf("got %v", x.Peek())
	}
	st := s.Stats()
	if st.Commits != 40 {
		t.Fatalf("commits %d", st.Commits)
	}
}

// TestServerStatsAggregatedOnClose: the commit-server's activity (remote
// invalidations) must appear in System.Stats after Close.
func TestServerStatsAggregatedOnClose(t *testing.T) {
	s := MustNew(Config{Algo: RInvalV1, MaxThreads: 8})
	x := NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < 100; i++ {
				_ = th.Atomically(func(tx *Tx) error {
					tx.Store(x, tx.Load(x).(int)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	before := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	// The server counted every commit it executed; client-side stats do not.
	if after.Commits < before.Commits {
		t.Fatalf("stats shrank after Close: %d -> %d", before.Commits, after.Commits)
	}
	if x.Peek().(int) != 400 {
		t.Fatalf("final %v", x.Peek())
	}
}

// TestPrivatization: the coarse-grained family is privatization-safe (§IV-E):
// after a transaction detaches a node from a shared structure and commits,
// the owner may access the detached data non-transactionally without racing
// a delayed writer.
func TestPrivatization(t *testing.T) {
	for _, algo := range []Algo{NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo, nil)
			type nodeT struct {
				val  *Var
				next *Var // holds *nodeT
			}
			n2 := &nodeT{val: NewVar(2), next: NewVar((*nodeT)(nil))}
			n1 := &nodeT{val: NewVar(1), next: NewVar(n2)}
			head := NewVar(n1)

			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Mutator: transactionally increments values of reachable nodes.
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = th.Atomically(func(tx *Tx) error {
						n := tx.Load(head).(*nodeT)
						for n != nil {
							tx.Store(n.val, tx.Load(n.val).(int)+1)
							ni := tx.Load(n.next)
							n, _ = ni.(*nodeT)
						}
						return nil
					})
				}
			}()
			// Privatizer: detach n2, then read it non-transactionally many
			// times; its value must never change after privatization.
			th := s.MustRegister()
			defer th.Close()
			var detached *nodeT
			if err := th.Atomically(func(tx *Tx) error {
				n := tx.Load(head).(*nodeT)
				ni := tx.Load(n.next)
				detached, _ = ni.(*nodeT)
				tx.Store(n.next, (*nodeT)(nil))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			frozen := detached.val.Peek().(int)
			for i := 0; i < 2000; i++ {
				if got := detached.val.Peek().(int); got != frozen {
					t.Fatalf("privatized node mutated: %d -> %d", frozen, got)
					break
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
