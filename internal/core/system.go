package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/padded"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// engine is the concurrency-control strategy plugged into a System. A Tx
// funnels every transactional access through its System's engine.
type engine interface {
	// usesSlots reports whether the engine relies on the per-thread status
	// word and read bloom filter (the invalidation engines do; Mutex and
	// NOrec do not, and skip that bookkeeping).
	usesSlots() bool
	// begin runs engine-specific transaction setup (e.g. NOrec's snapshot,
	// Mutex's lock acquisition).
	begin(tx *Tx)
	// read returns the current consistent version of v, or ok=false if the
	// transaction must abort.
	read(tx *Tx, v *Var) (b *box, ok bool)
	// commit attempts to commit tx; false means a conflict abort (the
	// engine sets tx.reason before failing). Read-only fast paths are the
	// engine's responsibility.
	commit(tx *Tx) bool
	// abort releases engine resources on any abort path (conflict or user).
	abort(tx *Tx)
	// serverTasks returns the named goroutine bodies the System must run
	// for this engine (commit-server, invalidation-servers). Each body
	// receives a stop predicate it must poll; the name labels the goroutine
	// in pprof profiles and trace exports.
	serverTasks() []serverTask
	// serverStats returns activity the servers performed on behalf of
	// clients (e.g. invalidations executed remotely). Valid after Close.
	serverStats() Stats
}

// serverTask is one engine server goroutine: its run loop plus the stable
// name used for pprof goroutine labels and tracer tracks.
type serverTask struct {
	name string
	run  func(stop func() bool)
}

// slotMask is a bitmask over request-slot indices: the skip set an
// invalidation scan must leave alone. For a single committer it holds one
// bit; a group-commit epoch sets one bit per batch member so invalidation
// skips the whole batch (a transaction that reads then writes the same
// location always self-intersects).
type slotMask []uint64

func newSlotMask(n int) slotMask { return make(slotMask, (n+63)/64) }

func (m slotMask) set(i int)      { m[i>>6] |= 1 << (uint(i) & 63) }
func (m slotMask) has(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

func (m slotMask) clearAll() {
	for i := range m {
		m[i] = 0
	}
}

func (m slotMask) copyFrom(o slotMask) { copy(m, o) }

// commitDesc is what the commit-server hands to invalidation-servers: the
// epoch's write signature (the union of every batch member's write filter)
// plus the committer-slot bitmask, so invalidation skips every member of the
// batch.
type commitDesc struct {
	bf      *bloom.Filter
	members slotMask
	// kd is the epoch's killer descriptor for conflict attribution (nil when
	// Config.Attribution is off): invalidation-servers publish it into each
	// victim's slot before the doom CAS.
	kd *killDesc
}

// commitStream is one shard's serialization point: its even/odd timestamp,
// its in-flight descriptor ring, and the local timestamps of the
// invalidation-servers assigned to it. With Config.Shards == 1 there is a
// single stream and the layout reproduces the paper exactly; with more, each
// stream orders only the commits that write its shard's Vars (DESIGN.md §11).
type commitStream struct {
	// ts is the stream's even/odd timestamp (sequence lock). Even: no commit
	// write-back in progress. Odd: a committer is publishing its write set.
	ts padded.Uint64

	// owner is the stream lock, only used when Shards > 1: held (1) while a
	// commit-server — the shard's own, or a cross-shard leader that acquired
	// this stream during the two-phase handshake — drives an epoch here.
	// Every ts transition happens under it, so a holder that observes ts
	// even knows no epoch is in flight. Streams are always locked in
	// ascending shard order, which makes the handshake deadlock-free.
	owner padded.Uint32

	// invalTS[k] is local invalidation-server k's timestamp for this stream
	// (RInvalV2/V3). Always even; server k has processed every commit of
	// this stream with base timestamp below invalTS[k] for its partition.
	invalTS []padded.Uint64

	// ring holds this stream's in-flight commit descriptors. Slot (base/2)
	// mod len(ring); len(ring) = StepsAhead+1 bounds how many commits may be
	// awaiting invalidation at once.
	ring []padded.Pointer[commitDesc]

	// Round the cold tail (two 24-byte slice headers) up to a whole cache
	// line so []commitStream keeps every stream's spin lines exclusive.
	_ [padded.CacheLineSize - (24+24)%padded.CacheLineSize]byte
}

// System owns the shared state of one STM instance: the commit streams
// (one per shard; the global timestamp when Shards == 1), the cache-aligned
// requests array, and — for the RInval engines — the server goroutines.
// Create with New, dispose with Close.
type System struct {
	cfg Config

	// streams[s] is shard s's commit stream. streams[0].ts doubles as the
	// global timestamp for the single-stream engines (Mutex, NOrec,
	// InvalSTM, TL2), which require Shards == 1.
	streams []commitStream

	// shardMask is Config.Shards-1 (Shards is a power of two): a Var with
	// hash h belongs to shard h & shardMask. Zero when Shards == 1, so the
	// single-stream fast path costs one masked load.
	shardMask uint64

	// nInvalPerShard is the invalidation-server count per stream
	// (InvalServers/Shards); slot i's partition index is i % nInvalPerShard.
	nInvalPerShard int

	// slots is the cache-aligned requests array (Figure 5), one entry per
	// registrable thread.
	slots []slot

	// active is the level-0 scan gate: one bit per slot, set while a
	// transaction is in flight there (see activeSet for the ordering
	// contract). Unused when cfg.FlatScan walks every slot instead.
	active activeSet

	// nVers is Config.Versions: the per-Var history ring capacity, 0 when
	// multi-versioning is off. Cached here so the write-back dispatch is one
	// integer test.
	nVers int

	// roActive is the snapshot readers' own liveness bitmap (Versions > 0):
	// slot i's bit is set while a snapshot read-only transaction runs there.
	// Deliberately separate from active — committers never scan it, so
	// snapshot readers add zero work to invalidation epochs; only write-back's
	// GC floor computation (roFloorNow) reads it.
	roActive activeSet

	// roEpoch[i] is slot i's published snapshot lower bound while its roActive
	// bit is set: a provisional epoch stored before the bit (see runSnapshot
	// for the ordering argument), never above the snapshot the reader actually
	// captures. Kept out of slot so the request array's hand-tuned layout is
	// untouched.
	roEpoch []padded.Uint64

	// partMask[k] masks active's words down to invalidation partition k
	// (slots with invalServer == k). Built once at construction; every
	// stream's server k scans the same slot partition.
	partMask []slotMask

	// mu is the Mutex engine's global lock.
	mu sync.Mutex

	eng engine

	// logReads gates the read-log append in Tx.Load. NOrec and TL2 always
	// revalidate from the log; the invalidation engines never replay it, so
	// they keep it only when cfg.Stats wants read-set accounting.
	logReads bool

	// tracer records lifecycle events when cfg.Trace is set; nil otherwise.
	// Actors 0..MaxThreads-1 are the client slots; engines append their
	// server tracks at construction.
	tracer *obs.Tracer

	// attr is the conflict-attribution state when cfg.Attribution is set;
	// nil otherwise, which makes every record call a no-op (same discipline
	// as the trace rings).
	attr *obs.Attribution

	// lat is the critical-path latency recorder when cfg.Latency is set; nil
	// otherwise (nil-receiver no-op discipline, like attr and the rings).
	// Cells: client slot i records into lat.Client(i); shard j's
	// commit-server into lat.Server(j); its invalidation-server k into
	// lat.Server(Shards + j*nInvalPerShard + k).
	lat *obs.LatencyRecorder

	// flightStop ends the flight-recorder goroutine (cfg.FlightRecorder).
	// A dedicated channel rather than the stop flag so Close interrupts the
	// detector's tick sleep immediately instead of waiting out the interval.
	flightStop chan struct{}

	// tseries is the windowed telemetry engine when cfg.TimeSeries > 0; nil
	// otherwise (nil-receiver no-op discipline, like attr and lat). tsStop
	// ends its sampler goroutine, mirroring flightStop.
	tseries *obs.TimeSeries
	tsStop  chan struct{}

	regMu     sync.Mutex
	freeSlots []int
	live      map[*Thread]struct{}
	retired   Stats
	closed    bool

	// yieldPerTx enables a cooperative runtime.Gosched at every transaction
	// boundary. On machines with few cores the Go scheduler only preempts
	// busy goroutines every ~10ms, which would make each client/server
	// handoff (and any writer competing with tight read-only loops) ride on
	// the preemption tick; yielding at transaction boundaries restores
	// fairness. On big machines the servers own their cores — the paper's
	// deployment — and the yield is skipped.
	yieldPerTx bool

	stop padded.Bool
	wg   sync.WaitGroup
}

// New constructs a System and starts any server goroutines its engine needs.
// The caller must Close it to stop the servers.
func New(cfg Config) (*System, error) {
	s, err := newSystem(cfg)
	if err != nil {
		return nil, err
	}
	s.startServers()
	return s, nil
}

// newSystem builds a System without starting its servers. Tests drive the
// server routines directly for deterministic epoch-level assertions.
func newSystem(cfg Config) (*System, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:        cfg,
		live:       make(map[*Thread]struct{}),
		yieldPerTx: runtime.GOMAXPROCS(0) < 4,
	}
	s.shardMask = uint64(cfg.Shards - 1)
	s.nInvalPerShard = cfg.InvalServers / cfg.Shards
	s.slots = make([]slot, cfg.MaxThreads)
	s.active = newActiveSet(cfg.MaxThreads)
	s.nVers = cfg.Versions
	if s.nVers > 0 {
		s.roActive = newActiveSet(cfg.MaxThreads)
		s.roEpoch = make([]padded.Uint64, cfg.MaxThreads)
	}
	s.partMask = make([]slotMask, s.nInvalPerShard)
	for k := range s.partMask {
		s.partMask[k] = newSlotMask(cfg.MaxThreads)
	}
	s.freeSlots = make([]int, 0, cfg.MaxThreads)
	for i := range s.slots {
		s.slots[i].readBF = bloom.NewAtomic(cfg.Bloom)
		s.slots[i].invalServer = i % s.nInvalPerShard
		s.slots[i].selfMask = newSlotMask(cfg.MaxThreads)
		s.slots[i].selfMask.set(i)
		s.partMask[i%s.nInvalPerShard].set(i)
		s.freeSlots = append(s.freeSlots, cfg.MaxThreads-1-i)
	}

	s.streams = make([]commitStream, cfg.Shards)
	for j := range s.streams {
		s.streams[j].invalTS = make([]padded.Uint64, s.nInvalPerShard)
		s.streams[j].ring = make([]padded.Pointer[commitDesc], cfg.StepsAhead+1)
	}

	if cfg.Trace {
		// Client tracks first (track i == slot i); engine constructors
		// append their server tracks below.
		s.tracer = obs.NewTracer(cfg.TraceEvents)
		for i := 0; i < cfg.MaxThreads; i++ {
			s.tracer.AddActor(fmt.Sprintf("client-%d", i))
		}
	}
	if cfg.Attribution {
		s.attr = obs.NewAttribution(cfg.MaxThreads, cfg.AttrReservoirSize, cfg.Seed)
	}
	if cfg.Latency {
		// Before engine construction: the shard servers capture their cells.
		// Server cells are allocated for every engine (the non-RInval ones
		// simply leave theirs empty).
		s.lat = obs.NewLatencyRecorder(cfg.MaxThreads,
			cfg.Shards*(1+s.nInvalPerShard), cfg.LatencySampleEvery)
	}
	if cfg.TimeSeries > 0 {
		s.tseries = obs.NewTimeSeries(cfg.TimeSeries, cfg.TimeSeriesInterval, cfg.SLOs)
	}

	switch cfg.Algo {
	case Mutex:
		s.eng = &mutexEngine{sys: s}
	case NOrec:
		s.eng = &norecEngine{sys: s}
	case InvalSTM:
		s.eng = &invalEngine{sys: s}
	case RInvalV1:
		s.eng = newRemoteEngine(s, 0, 0)
	case RInvalV2:
		s.eng = newRemoteEngine(s, cfg.InvalServers, 0)
	case RInvalV3:
		s.eng = newRemoteEngine(s, cfg.InvalServers, cfg.StepsAhead)
	case TL2:
		s.eng = &tl2Engine{sys: s}
	}
	switch cfg.Algo {
	case NOrec, TL2:
		s.logReads = true // revalidation replays the log
	default:
		// Attribution forces the log on: the sampled exact-set check that
		// classifies bloom false positives replays it on the victim's abort
		// path.
		s.logReads = cfg.Stats || cfg.Attribution
	}
	return s, nil
}

// startServers launches the engine's server goroutines, each labeled with
// its task name so CPU/goroutine profiles attribute server time separately
// from client time.
func (s *System) startServers() {
	if s.tseries != nil {
		s.tsStop = make(chan struct{})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			pprof.Do(context.Background(), pprof.Labels("stm-role", "timeseries-sampler"),
				func(context.Context) { s.tsLoop() })
		}()
	}
	if s.cfg.FlightRecorder {
		s.flightStop = make(chan struct{})
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			pprof.Do(context.Background(), pprof.Labels("stm-role", "flight-recorder"),
				func(context.Context) { s.flightLoop() })
		}()
	}
	for _, task := range s.eng.serverTasks() {
		s.wg.Add(1)
		go func(t serverTask) {
			defer s.wg.Done()
			if s.cfg.PinServers {
				// Dedicate an OS thread to this server, as the paper pins
				// servers to cores. Unlocked implicitly when the goroutine
				// exits.
				runtime.LockOSThread()
			}
			pprof.Do(context.Background(), pprof.Labels("stm-role", t.name),
				func(context.Context) { t.run(s.stop.Load) })
		}(task)
	}
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *System) Config() Config { return s.cfg }

// Algo returns the engine selection.
func (s *System) Algo() Algo { return s.cfg.Algo }

// Close stops the server goroutines and retires the system. All registered
// threads must be closed and no transaction may be in flight. Close is
// idempotent.
func (s *System) Close() error {
	s.regMu.Lock()
	if s.closed {
		s.regMu.Unlock()
		return nil
	}
	if len(s.live) != 0 {
		s.regMu.Unlock()
		return fmt.Errorf("core: Close with %d threads still registered", len(s.live))
	}
	s.closed = true
	s.regMu.Unlock()

	s.stop.Store(true)
	if s.flightStop != nil {
		close(s.flightStop)
	}
	if s.tsStop != nil {
		close(s.tsStop)
	}
	s.wg.Wait()
	s.retired.Add(s.eng.serverStats())
	return nil
}

// Register claims a request slot and returns a Thread bound to it. Each
// Thread must be used by one goroutine at a time and released with
// Thread.Close. Register fails when MaxThreads threads are already live.
func (s *System) Register() (*Thread, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: Register on closed System")
	}
	if len(s.freeSlots) == 0 {
		return nil, fmt.Errorf("core: all %d slots in use", s.cfg.MaxThreads)
	}
	idx := s.freeSlots[len(s.freeSlots)-1]
	s.freeSlots = s.freeSlots[:len(s.freeSlots)-1]
	sl := &s.slots[idx]
	sl.inUse.Store(true)
	th := &Thread{
		sys:  s,
		idx:  idx,
		slot: sl,
	}
	th.tx = Tx{
		sys:   s,
		th:    th,
		slot:  sl,
		ws:    newWriteSet(s.cfg.Bloom),
		stats: &th.stats,
	}
	if s.tracer != nil {
		th.tx.ring = s.tracer.Ring(idx)
	}
	if s.nVers > 0 {
		th.tx.snap = make([]uint64, s.cfg.Shards)
	}
	th.tx.lat = s.lat.Client(idx) // nil cell when Latency is off
	if s.attr != nil {
		// The thread's reusable unsampled killer descriptor: immutable, so
		// victims may read it long after the commit that published it.
		th.tx.attrKD = &killDesc{committer: idx}
	}
	th.backoff = spin.NewBackoff(time.Microsecond, 128*time.Microsecond, s.cfg.Seed+uint64(idx)*0x9e37)
	s.live[th] = struct{}{}
	return th, nil
}

// MustRegister is Register that panics on error, for tests and examples.
func (s *System) MustRegister() *Thread {
	th, err := s.Register()
	if err != nil {
		panic(err)
	}
	return th
}

// release returns a thread's slot to the free pool and folds its stats into
// the system's retired aggregate.
func (s *System) release(th *Thread) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if _, ok := s.live[th]; !ok {
		return
	}
	delete(s.live, th)
	th.slot.inUse.Store(false)
	s.freeSlots = append(s.freeSlots, th.idx)
	s.retired.Add(th.stats)
}

// Stats aggregates statistics from retired threads, live threads, and (after
// Close) servers. Safe to call at any time, including while threads are
// running transactions: live threads' counters are read atomically (each
// counter individually; the aggregate is not a single instant).
func (s *System) Stats() Stats {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	agg := s.retired
	for th := range s.live {
		agg.Add(th.stats.snapshotAtomic())
	}
	return agg
}

// Timestamp returns the current global timestamp — shard 0's stream when
// sharding is on (for tests and diagnostics).
func (s *System) Timestamp() uint64 { return s.streams[0].ts.Load() }

// Shards returns the effective shard count.
func (s *System) Shards() int { return len(s.streams) }

// ShardServerStats returns one Stats per commit stream — shard j's
// commit-server activity folded with its invalidation-servers', including
// the per-shard phase histograms and cross-shard-commit count. Only the
// RInval engines have shard servers; other engines return nil. Valid after
// Close (server stats are read unsynchronized once the goroutines joined).
func (s *System) ShardServerStats() []Stats {
	re, ok := s.eng.(*remoteEngine)
	if !ok {
		return nil
	}
	out := make([]Stats, len(re.srv))
	for j, sv := range re.srv {
		st := sv.commitSrv
		for k := range sv.invalSrv {
			st.Add(sv.invalSrv[k])
		}
		out[j] = st
	}
	return out
}

// shardOf returns the index of the commit stream that owns v.
//
//stm:hotpath
func (s *System) shardOf(v *Var) int { return int(v.shardH & s.shardMask) }

// VarShard returns the index of the commit stream that owns v — which
// commit-server serializes writes to it. Always 0 when Shards == 1. Exposed
// so benchmarks and tests can construct shard-pinned (or deliberately
// cross-shard) working sets.
func (s *System) VarShard(v *Var) int { return s.shardOf(v) }

// lockStream acquires shard j's stream lock, spinning until the current
// holder releases it. Callers acquiring several streams must do so in
// ascending shard order (the handshake's deadlock-freedom argument,
// DESIGN.md §11). Only meaningful when Shards > 1 — with a single stream
// the lone commit-server is the only epoch driver and never locks.
//
//stm:hotpath
func (s *System) lockStream(j int) {
	st := &s.streams[j]
	var w spin.Waiter
	for !st.owner.CompareAndSwap(0, 1) {
		w.Wait()
	}
}

// unlockStream releases shard j's stream lock.
//
//stm:hotpath
func (s *System) unlockStream(j int) { s.streams[j].owner.Store(0) }

// Tracer returns the lifecycle event tracer, or nil when Config.Trace is
// off. Export methods (WriteChromeTrace, Summary) must only be called after
// the recording goroutines have quiesced — after Close, or with all threads
// idle.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// waitEven spins until the global timestamp (shard 0's stream; the
// single-stream engines that call this require Shards == 1) is even and
// returns it.
func (s *System) waitEven() uint64 {
	var w spin.Waiter
	for {
		t := s.streams[0].ts.Load()
		if t&1 == 0 {
			return t
		}
		w.Wait()
	}
}

// writeBack publishes every buffered version of ws. With Versions off this is
// exactly the seed's bare loop (one storeBox per entry, nothing else touches
// the hot path); with Versions on, each box is first stamped with its owning
// stream's timestamp — odd at this point, uniquely identifying the epoch — and
// appended to its Var's history ring, trimming entries below the GC floor in
// the same pass. The caller must hold the write-back right for every written
// stream (timestamp odd, or the global mutex with streams[0] raised odd).
//
//stm:hotpath
func (s *System) writeBack(ws *writeSet) {
	if s.nVers == 0 {
		ws.writeBack()
		return
	}
	floor := s.roFloorNow()
	for _, e := range ws.entries {
		e.b.epoch = s.streams[e.v.shardH&s.shardMask].ts.Load()
		e.v.appendVersion(e.b, s.nVers, floor)
		e.v.storeBox(e.b)
	}
}

// roFloorNow returns the version-GC floor: no live snapshot reader resolves a
// Load below it, so history entries strictly older than the newest entry at
// or below the floor are reclaimable. It is the minimum of (a) every stream's
// current rounded-down timestamp — the snapshot any reader beginning from now
// on captures at least — and (b) every live reader's published epoch bound.
// The timestamps are read FIRST: a reader that our bitmap scan misses (bit
// not yet set) publishes its provisional epoch before the bit and captures a
// snapshot at or above that epoch, which is itself at or above the timestamp
// value we already read — monotonicity makes the early read a lower bound.
//
//stm:hotpath
func (s *System) roFloorNow() uint64 {
	floor := ^uint64(0)
	for j := range s.streams {
		if t := s.streams[j].ts.Load() &^ 1; t < floor {
			floor = t
		}
	}
	for w := range s.roActive.words {
		b := s.roActive.words[w].Load()
		for b != 0 {
			if e := s.roEpoch[nextSlot(w, &b)].Load(); e < floor {
				floor = e
			}
		}
	}
	return floor
}

// captureSnapshot fills dst (length Shards) with a consistent per-shard epoch
// vector: a cut no commit's write-back straddles. With one shard any even
// value works — rounding an odd timestamp down names the last epoch whose
// write-back fully preceded the odd transition we observed. With several
// shards a single pass can tear across a cross-shard commit, so the vector is
// double-collected: two ascending passes that must both see every stream even
// and unchanged. That suffices because a cross-shard epoch raises its streams
// odd in ascending order and lowers them in descending order — the lowest
// participating stream's odd window encloses the others — so a commit whose
// write-back overlapped the first pass either shows odd on some stream or
// changes a timestamp between the passes. false after the retry budget means
// the caller should fall back to the regular path rather than spin against a
// saturated commit pipeline.
//
//stm:hotpath
func (s *System) captureSnapshot(dst []uint64) bool {
	if len(s.streams) == 1 {
		dst[0] = s.streams[0].ts.Load() &^ 1
		return true
	}
	var w spin.Waiter
	for attempt := 0; attempt < 8; attempt++ {
		stable := true
		for j := range s.streams {
			t := s.streams[j].ts.Load()
			if t&1 != 0 {
				stable = false
				break
			}
			dst[j] = t
		}
		if stable {
			for j := range s.streams {
				if s.streams[j].ts.Load() != dst[j] {
					stable = false
					break
				}
			}
		}
		if stable {
			return true
		}
		w.Wait()
	}
	return false
}

// invalidateOthers dooms every in-flight transaction outside the skip set
// whose read signature intersects bf. It returns the number of transactions
// doomed. Used inline by InvalSTM (skip = the committer's selfMask) and by
// RInvalV1's commit-server (skip = the epoch's batch members), and
// per-partition by the invalidation-servers. Each doom is recorded on the
// invalidator's trace ring (nil when tracing is off).
//
// The default path is the two-level scan: level 0 iterates only the slots
// whose active bit is set (word load + TrailingZeros64, cost proportional to
// in-flight transactions), level 1 rejects a non-conflicting slot on its
// 64-bit read-summary signature before committing to the full filter
// intersection. Both levels are conservative — they may pass a slot the full
// check would reject, never skip a true conflict — so the doom decision is
// still made exactly where it was at seed. Config.FlatScan restores the
// seed's walk over all MaxThreads slots for measurement.
//stm:hotpath
func (s *System) invalidateOthers(skip slotMask, bf *bloom.Filter, ring *obs.Ring, kd *killDesc) uint64 {
	var doomed uint64
	if s.cfg.FlatScan {
		for i := range s.slots {
			if skip.has(i) {
				continue
			}
			doomed += s.invalidateSlotFlat(i, bf, ring, kd)
		}
		return doomed
	}
	sum := bf.Summary()
	for w := range s.active.words {
		b := s.active.words[w].Load() &^ skip[w]
		for b != 0 {
			doomed += s.invalidateSlot(nextSlot(w, &b), sum, bf, ring, kd)
		}
	}
	return doomed
}

// invalidatePartition is invalidateOthers restricted to invalidation
// partition k (the bitmap words masked by partMask[k]). Every stream's
// server k covers the same slot partition; concurrent scans from different
// streams are safe because the doom CAS is epoch-guarded and idempotent.
//stm:hotpath
func (s *System) invalidatePartition(k int, skip slotMask, bf *bloom.Filter, ring *obs.Ring, kd *killDesc) uint64 {
	var doomed uint64
	if s.cfg.FlatScan {
		for i := k; i < len(s.slots); i += s.nInvalPerShard {
			if skip.has(i) {
				continue
			}
			doomed += s.invalidateSlotFlat(i, bf, ring, kd)
		}
		return doomed
	}
	sum := bf.Summary()
	part := s.partMask[k]
	for w := range s.active.words {
		b := s.active.words[w].Load() & part[w] &^ skip[w]
		for b != 0 {
			doomed += s.invalidateSlot(nextSlot(w, &b), sum, bf, ring, kd)
		}
	}
	return doomed
}

// invalidateSlot applies the two-level doom check to one slot whose active
// bit was observed. The summary rejection comes first so the common
// non-conflicting case touches a single cache line (the Atomic filter
// header); the status word is captured before the full filter intersection
// so the CAS can only doom the exact transaction incarnation whose bits
// were observed.
//stm:hotpath
func (s *System) invalidateSlot(i int, sum uint64, bf *bloom.Filter, ring *obs.Ring, kd *killDesc) uint64 {
	sl := &s.slots[i]
	if !sl.readBF.SummaryIntersects(sum) {
		return 0
	}
	w, alive := sl.aliveWord()
	if !alive {
		return 0
	}
	if !sl.readBF.IntersectsFilter(bf) {
		return 0
	}
	// Publish the killer descriptor before the doom CAS: a victim that
	// observes its doom (same seq-cst order) also observes the descriptor.
	// If the CAS fails the stale store is harmless — the victim only reads
	// the mailbox when it actually aborts, and begin clears it.
	if kd != nil {
		sl.killer.Store(kd)
	}
	if sl.tryInvalidate(w) {
		ring.Instant(obs.KInval, uint64(i))
		return 1
	}
	return 0
}

// invalidateSlotFlat is the seed-era doom check: no active bitmap (so the
// slot may be idle — gate on inUse and the status word first) and no summary
// rejection. Kept behind Config.FlatScan as the measured baseline and the
// differential-test oracle for the two-level path.
//stm:hotpath
func (s *System) invalidateSlotFlat(i int, bf *bloom.Filter, ring *obs.Ring, kd *killDesc) uint64 {
	sl := &s.slots[i]
	if !sl.inUse.Load() {
		return 0
	}
	w, alive := sl.aliveWord()
	if !alive {
		return 0
	}
	if !sl.readBF.IntersectsFilter(bf) {
		return 0
	}
	if kd != nil {
		sl.killer.Store(kd) // before the CAS, as in invalidateSlot
	}
	if sl.tryInvalidate(w) {
		ring.Instant(obs.KInval, uint64(i))
		return 1
	}
	return 0
}

// countConflictingReaders counts in-flight transactions whose read signature
// intersects bf — the CMReaderBiased policy's doom estimate. Same two-level
// structure as the invalidation scan, without the doom.
//stm:hotpath
func (s *System) countConflictingReaders(committer int, bf *bloom.Filter) int {
	n := 0
	if s.cfg.FlatScan {
		for i := range s.slots {
			if i == committer {
				continue
			}
			sl := &s.slots[i]
			if !sl.inUse.Load() {
				continue
			}
			if _, alive := sl.aliveWord(); !alive {
				continue
			}
			if sl.readBF.IntersectsFilter(bf) {
				n++
			}
		}
		return n
	}
	sum := bf.Summary()
	for w := range s.active.words {
		b := s.active.words[w].Load()
		if committer>>6 == w {
			b &^= 1 << (uint(committer) & 63)
		}
		for b != 0 {
			sl := &s.slots[nextSlot(w, &b)]
			if !sl.readBF.SummaryIntersects(sum) {
				continue
			}
			if _, alive := sl.aliveWord(); !alive {
				continue
			}
			if sl.readBF.IntersectsFilter(bf) {
				n++
			}
		}
	}
	return n
}

// appendPendingCandidates appends to buf the indices (>= from, ascending) of
// every slot that may hold a PENDING commit request, for the commit-server's
// collection scan. A requester is ALIVE for the whole PENDING window and its
// active bit is set before the request can be published (begin precedes
// commit), so the bitmap is a conservative superset of the pending set; the
// caller re-checks state on each candidate. With FlatScan every slot index
// is a candidate, as at seed.
//stm:hotpath
func (s *System) appendPendingCandidates(buf []int, from int) []int {
	if s.cfg.FlatScan {
		for i := from; i < len(s.slots); i++ {
			buf = append(buf, i)
		}
		return buf
	}
	for w := from >> 6; w < len(s.active.words); w++ {
		b := s.active.words[w].Load()
		if w == from>>6 {
			b &= ^uint64(0) << (uint(from) & 63)
		}
		for b != 0 {
			buf = append(buf, nextSlot(w, &b))
		}
	}
	return buf
}
