package core

import (
	"fmt"
	"time"

	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/obs"
)

// Algo selects the concurrency-control engine.
type Algo int

const (
	// Mutex serializes whole atomic blocks under one global mutex — the
	// coarse-grained locking baseline of the paper's Figure 1(b).
	Mutex Algo = iota
	// NOrec is value-based incremental validation over a global sequence
	// lock — the paper's validation-based competitor.
	NOrec
	// InvalSTM is commit-time invalidation executed inline by the committing
	// thread — the paper's Algorithm 1.
	InvalSTM
	// RInvalV1 executes commits (including invalidation) on a dedicated
	// commit-server — the paper's Algorithm 2.
	RInvalV1
	// RInvalV2 adds parallel invalidation-servers — the paper's Algorithm 3.
	RInvalV2
	// RInvalV3 adds step-ahead commit — the paper's Algorithm 4.
	RInvalV3
	// TL2 is a fine-grained baseline: per-location versioned write-locks
	// over a global version clock (Dice, Shalev, Shavit — DISC 2006). The
	// paper repeatedly contrasts the coarse-grained family against this
	// design point (more concurrency, more metadata, harder HTM/privatization
	// integration); it is provided for the ablation experiments.
	TL2
)

// String returns the name used in the paper's plots.
func (a Algo) String() string {
	switch a {
	case Mutex:
		return "mutex"
	case NOrec:
		return "norec"
	case InvalSTM:
		return "invalstm"
	case RInvalV1:
		return "rinval-v1"
	case RInvalV2:
		return "rinval-v2"
	case RInvalV3:
		return "rinval-v3"
	case TL2:
		return "tl2"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Algos lists every engine, in the order the paper discusses them.
var Algos = []Algo{Mutex, NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3, TL2}

// ParseAlgo converts a name produced by Algo.String back to an Algo.
func ParseAlgo(s string) (Algo, error) {
	for _, a := range Algos {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// CMPolicy selects the contention manager applied on conflict aborts.
type CMPolicy int

const (
	// CMCommitterWins retries immediately: the committing transaction always
	// wins and doomed transactions restart at once (the paper's base rule).
	CMCommitterWins CMPolicy = iota
	// CMBackoff retries after randomized exponential backoff — the paper's
	// "simple contention manager" (§IV-D).
	CMBackoff
	// CMReaderBiased implements the paper's future-work suggestion (§V):
	// before requesting commit, a writer counts the in-flight readers its
	// write set would doom; if more than ReaderBiasThreshold and the writer
	// has not exceeded ReaderBiasRetries attempts, the writer aborts itself
	// instead of the readers.
	CMReaderBiased
)

// String returns a stable lowercase policy name.
func (p CMPolicy) String() string {
	switch p {
	case CMCommitterWins:
		return "committer-wins"
	case CMBackoff:
		return "backoff"
	case CMReaderBiased:
		return "reader-biased"
	default:
		return fmt.Sprintf("CMPolicy(%d)", int(p))
	}
}

// Config parameterizes a System. The zero value is not usable; call
// (*Config).withDefaults via New, which fills unset fields.
type Config struct {
	// Algo selects the engine. Default NOrec.
	Algo Algo
	// MaxThreads bounds the number of concurrently registered threads and
	// sizes the request-slot array. Default 64, matching the paper's testbed.
	MaxThreads int
	// InvalServers is the number of invalidation-server goroutines for
	// RInvalV2/V3. The paper found 4-8 sufficient on 64 cores. Default 4.
	InvalServers int
	// StepsAhead bounds how far the RInvalV3 commit-server may run ahead of
	// the slowest invalidation-server, in commits. Default 2.
	StepsAhead int
	// MaxBatch caps how many mutually compatible commit requests the RInval
	// commit-server may fold into one group-commit epoch (one odd/even
	// timestamp transition, one merged invalidation signature). 1 disables
	// batching and reproduces the paper's one-request-per-epoch protocol
	// exactly. Default 8.
	MaxBatch int
	// Shards partitions Vars across independent commit streams, each with its
	// own commit-server, timestamp, and invalidation partition (DESIGN.md
	// §11). Every Var hashes to one shard at creation; a transaction that
	// touches a single shard commits through that shard's stream alone, while
	// a cross-shard transaction orders via a two-phase handshake that
	// acquires the participating streams in shard-index order. 1 (the
	// default) is the paper-exact single-stream baseline and the differential
	// oracle, the same pattern FlatScan and MaxBatch=1 establish. Values that
	// are not powers of two are rounded up to the next power of two (the
	// shard hash is a mask); the rounded value must not exceed 64 (shard sets
	// travel as uint64 bitmasks). Shards > 1 requires a remote-invalidation
	// engine (RInvalV1/V2/V3) and, for V2/V3, an InvalServers count divisible
	// by Shards so every stream gets the same number of invalidation-servers.
	Shards int
	// Bloom is the read/write signature geometry. Default bloom.DefaultParams.
	Bloom bloom.Params
	// CM selects the contention manager. Default CMBackoff.
	CM CMPolicy
	// ReaderBiasThreshold is the doomed-reader count above which a
	// CMReaderBiased writer self-aborts. Default 2.
	ReaderBiasThreshold int
	// ReaderBiasRetries caps how many times a CMReaderBiased writer yields
	// to readers before it falls back to committer-wins. Default 3.
	ReaderBiasRetries int
	// FlatScan disables the two-level invalidation scan (active-transaction
	// bitmap + per-slot summary signatures) and restores the seed behaviour
	// of walking every request slot with a full filter intersection. The two
	// paths are semantically identical — the two-level gates are conservative
	// and may only skip slots the full check would also pass over — so this
	// exists for the invalscan benchmark's before/after comparison and for
	// differential testing, not as a tuning knob. Off by default.
	FlatScan bool
	// PinServers dedicates an OS thread to each server goroutine
	// (runtime.LockOSThread), approximating the paper's core-pinned
	// deployment on machines with spare cores. Counterproductive when
	// GOMAXPROCS is small, so it is off by default.
	PinServers bool
	// Stats enables per-thread phase timing (read/validation, commit, abort)
	// and the commit-server's phase histograms (Stats.Server). Timing costs
	// ~two clock reads per operation, so it is off by default.
	Stats bool
	// Attribution enables conflict attribution: the who-aborted-whom matrix,
	// wasted-work accounting per abort reason, bloom false-positive sampling,
	// and hot-var reservoir sampling (see System.ConflictReport and DESIGN.md
	// §10). Committers publish a killer descriptor before each doom CAS and
	// victims record on their abort path; read logging is forced on for the
	// invalidation engines so the sampled exact-set check has data. Off by
	// default; when off, every record site is a nil-receiver no-op.
	Attribution bool
	// AttrSampleEvery is the deterministic sampling period of the exact
	// read-set ∩ write-set false-positive check: every Nth writer commit
	// attaches its exact write ids to the killer descriptor. 1 checks every
	// doom. Default 8.
	AttrSampleEvery int
	// AttrReservoirSize is the per-slot hot-var reservoir capacity (uniform
	// sample of conflicting Var ids). Default 128.
	AttrReservoirSize int
	// Latency enables the sampled critical-path latency decomposition
	// (DESIGN.md §12): 1 in LatencySampleEvery transactions per thread is
	// timed end-to-end and split into app-work, retry, and commit-wait on
	// the client side, and every commit-server epoch into collect, scan,
	// inval-wait, write-back, reply (plus cross-shard lock-wait/drain)
	// phases — all recorded into cache-padded per-actor histograms readable
	// live via System.LatencyReport, /metrics, and stmtop. Off by default;
	// when off, every record site is a nil/bool check with no clock read.
	Latency bool
	// LatencySampleEvery is the per-thread sampling period of the latency
	// decomposition: every Nth transaction is timed. 1 times every
	// transaction. Default 64.
	LatencySampleEvery int
	// FlightRecorder arms the anomaly-triggered post-mortem dump: a
	// background goroutine ticks every FlightInterval, watches the windowed
	// latency p99 and abort rate against EWMA baselines (and the
	// commit-servers for stalls), and on a spike writes a flight bundle —
	// trace-ring snapshots, conflict report, latency report, goroutine
	// stacks — atomically to a timestamped JSON file under FlightDir.
	// Implies Latency (the detector needs the windowed p99). Off by default.
	FlightRecorder bool
	// FlightDir is the directory flight bundles are written to. Default
	// "flight" (relative to the working directory).
	FlightDir string
	// FlightInterval is the detector's tick period. Default 500ms.
	FlightInterval time.Duration
	// FlightP99Factor trips a dump when a window's p99 exceeds this multiple
	// of the EWMA baseline. Default 3.
	FlightP99Factor float64
	// FlightAbortRate trips a dump when a window's abort rate exceeds this
	// absolute threshold (and twice its EWMA baseline). Default 0.5.
	FlightAbortRate float64
	// FlightCooldown suppresses further dumps for this long after one fires,
	// so a sustained incident produces one bundle, not one per tick.
	// Default 10s.
	FlightCooldown time.Duration
	// TimeSeries enables the windowed telemetry engine (DESIGN.md §15): a
	// sampler goroutine snapshots the cumulative counters and latency
	// histograms every TimeSeriesInterval and delta-encodes them into a
	// bounded ring, exposing windowed rates, moving quantiles, and SLO burn
	// rates via System.TimeSeriesReport, the /debug/stm/timeseries endpoint,
	// and /metrics gauges. The value is the ring capacity in windows
	// (DefaultTimeSeriesWindows = 600 ≈ 10 min at the default 1 s interval);
	// values 2..65536 are accepted. 0 (the default) disables the engine
	// entirely: no sampler goroutine, no ring memory, and zero hot-path cost
	// — the engine has no per-transaction record sites at all, it only reads
	// counters the other knobs already maintain. Implies Latency (the
	// windowed quantiles delta the latency recorder's histograms).
	TimeSeries int
	// TimeSeriesInterval is the sampler's window length. Default 1s;
	// minimum 1ms.
	TimeSeriesInterval time.Duration
	// SLOs declares service-level objectives the time-series engine
	// evaluates every window with multi-window burn rates (obs.SLO: a fast
	// and a slow trailing window must both burn the error budget past the
	// threshold before an alert fires — the SRE rule that ignores blips but
	// catches slow bleeds). Alerts land in the report, the /metrics
	// stm_slo_* gauges, and — when FlightRecorder is armed — trigger a
	// flight dump carrying the tripping window. Setting SLOs with
	// TimeSeries == 0 enables the engine at DefaultTimeSeriesWindows.
	SLOs []obs.SLO
	// Trace enables lifecycle event tracing: every client thread and server
	// goroutine records begin/read-wait/commit/abort/epoch/invalidation
	// events with nanosecond timestamps into a fixed-capacity per-actor ring
	// buffer (internal/obs). Export via System.Tracer (Chrome trace-event
	// JSON or text summary) after Close. Off by default; when off, the
	// recording sites are nil-ring no-ops.
	Trace bool
	// TraceEvents caps the events retained per actor ring (rounded up to a
	// power of two; oldest events are overwritten once full). Default 4096,
	// i.e. 128 KiB per actor.
	TraceEvents int
	// Versions keeps, per Var, a bounded ring of the most recent committed
	// boxes stamped with the commit epoch that installed them (DESIGN.md §14).
	// With Versions > 0 a transaction run via Thread.AtomicallyRO captures a
	// per-shard epoch snapshot at begin, resolves every Load to the newest
	// version at or below that snapshot, and commits without a read filter,
	// doom CAS, or revalidation — zero aborts by construction and zero work
	// added to committers' epochs. A reader the writers lap (its snapshot
	// falls off the ring) falls back once to the regular path, counted in
	// Stats.ROFallbacks. 0 (the default) disables versioning and is the
	// paper-exact baseline: write-back installs bare boxes and AtomicallyRO
	// degrades to the regular read-only path. Values 2..1024 are accepted;
	// 1 is rejected (a one-entry ring can never satisfy a reader that is even
	// one epoch behind). TL2 is excluded: its per-Var verlock clock is not
	// the seqlock epoch the snapshot rule is anchored on.
	Versions int
	// Seed makes contention-manager jitter reproducible. Default 1.
	Seed uint64
}

// withDefaults returns a copy of c with unset fields defaulted and validates
// the result.
func (c Config) withDefaults() (Config, error) {
	if c.MaxThreads == 0 {
		c.MaxThreads = 64
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 1 || c.Shards > 64 {
		return c, fmt.Errorf("core: Shards %d out of range [1,64]", c.Shards)
	}
	// Round up to a power of two so the shard hash is a mask (documented on
	// the field); the rounded value must still fit a 64-bit shard set.
	c.Shards = nextPow2(c.Shards)
	if c.Shards > 64 {
		return c, fmt.Errorf("core: Shards rounds up to %d, beyond the 64-shard bitmask limit", c.Shards)
	}
	if c.InvalServers == 0 {
		// Default to the paper's sweet spot, clamped so small systems work
		// out of the box — but never below one invalidation-server per shard.
		c.InvalServers = 4
		if c.MaxThreads > 0 && c.InvalServers > c.MaxThreads {
			c.InvalServers = c.MaxThreads
		}
		if c.InvalServers < c.Shards {
			c.InvalServers = c.Shards
		}
	}
	if c.StepsAhead == 0 {
		c.StepsAhead = 2
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.Bloom == (bloom.Params{}) {
		c.Bloom = bloom.DefaultParams
	}
	if c.ReaderBiasThreshold == 0 {
		c.ReaderBiasThreshold = 2
	}
	if c.ReaderBiasRetries == 0 {
		c.ReaderBiasRetries = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TraceEvents == 0 {
		c.TraceEvents = obs.DefaultRingEvents
	}
	if c.AttrSampleEvery == 0 {
		c.AttrSampleEvery = 8
	}
	if c.FlightRecorder {
		// The anomaly detector runs off the windowed latency p99; arming the
		// flight recorder forces the decomposition on.
		c.Latency = true
	}
	if len(c.SLOs) > 0 && c.TimeSeries == 0 {
		c.TimeSeries = DefaultTimeSeriesWindows
	}
	if c.TimeSeries != 0 {
		if c.TimeSeries < 2 || c.TimeSeries > 1<<16 {
			return c, fmt.Errorf("core: TimeSeries %d out of range [2,65536] (or 0 to disable)", c.TimeSeries)
		}
		if c.TimeSeriesInterval == 0 {
			c.TimeSeriesInterval = time.Second
		}
		if c.TimeSeriesInterval < time.Millisecond {
			return c, fmt.Errorf("core: TimeSeriesInterval %v below 1ms", c.TimeSeriesInterval)
		}
		// The windowed quantiles delta the latency recorder's histograms.
		c.Latency = true
		// Copy before normalizing so the caller's slice is never mutated.
		c.SLOs = append([]obs.SLO(nil), c.SLOs...)
		names := make(map[string]bool, len(c.SLOs))
		for i := range c.SLOs {
			o, err := c.SLOs[i].Normalize(c.TimeSeriesInterval, c.TimeSeries)
			if err != nil {
				return c, fmt.Errorf("core: SLOs[%d]: %w", i, err)
			}
			if names[o.Name] {
				return c, fmt.Errorf("core: duplicate SLO name %q", o.Name)
			}
			names[o.Name] = true
			c.SLOs[i] = o
		}
	}
	if c.LatencySampleEvery == 0 {
		c.LatencySampleEvery = 64
	}
	if c.LatencySampleEvery < 1 || c.LatencySampleEvery > 1<<20 {
		return c, fmt.Errorf("core: LatencySampleEvery %d out of range [1,1Mi]", c.LatencySampleEvery)
	}
	if c.FlightDir == "" {
		c.FlightDir = "flight"
	}
	if c.FlightInterval == 0 {
		c.FlightInterval = 500 * time.Millisecond
	}
	if c.FlightInterval < 0 {
		return c, fmt.Errorf("core: negative FlightInterval %v", c.FlightInterval)
	}
	if c.FlightP99Factor == 0 {
		c.FlightP99Factor = 3
	}
	if c.FlightP99Factor < 1 {
		return c, fmt.Errorf("core: FlightP99Factor %v below 1", c.FlightP99Factor)
	}
	if c.FlightAbortRate == 0 {
		c.FlightAbortRate = 0.5
	}
	if c.FlightAbortRate < 0 || c.FlightAbortRate > 1 {
		return c, fmt.Errorf("core: FlightAbortRate %v out of range [0,1]", c.FlightAbortRate)
	}
	if c.FlightCooldown == 0 {
		c.FlightCooldown = 10 * time.Second
	}
	if c.FlightCooldown < 0 {
		return c, fmt.Errorf("core: negative FlightCooldown %v", c.FlightCooldown)
	}
	if c.AttrReservoirSize == 0 {
		c.AttrReservoirSize = 128
	}
	if c.AttrSampleEvery < 1 || c.AttrSampleEvery > 1<<20 {
		return c, fmt.Errorf("core: AttrSampleEvery %d out of range [1,1Mi]", c.AttrSampleEvery)
	}
	if c.AttrReservoirSize < 1 || c.AttrReservoirSize > 1<<20 {
		return c, fmt.Errorf("core: AttrReservoirSize %d out of range [1,1Mi]", c.AttrReservoirSize)
	}
	if c.TraceEvents < 16 || c.TraceEvents > 1<<22 {
		return c, fmt.Errorf("core: TraceEvents %d out of range [16,4Mi]", c.TraceEvents)
	}
	if c.MaxThreads < 1 || c.MaxThreads > 4096 {
		return c, fmt.Errorf("core: MaxThreads %d out of range [1,4096]", c.MaxThreads)
	}
	if c.InvalServers < 1 || c.InvalServers > c.MaxThreads {
		return c, fmt.Errorf("core: InvalServers %d out of range [1,MaxThreads]", c.InvalServers)
	}
	if c.StepsAhead < 1 || c.StepsAhead > 64 {
		return c, fmt.Errorf("core: StepsAhead %d out of range [1,64]", c.StepsAhead)
	}
	if c.MaxBatch < 1 || c.MaxBatch > 4096 {
		return c, fmt.Errorf("core: MaxBatch %d out of range [1,4096]", c.MaxBatch)
	}
	switch c.Algo {
	case Mutex, NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3, TL2:
	default:
		return c, fmt.Errorf("core: unknown Algo %d", c.Algo)
	}
	if c.Shards > 1 {
		switch c.Algo {
		case RInvalV1, RInvalV2, RInvalV3:
		default:
			return c, fmt.Errorf("core: Shards %d requires a remote-invalidation engine, not %v", c.Shards, c.Algo)
		}
		if c.InvalServers%c.Shards != 0 {
			return c, fmt.Errorf("core: InvalServers %d is not divisible by Shards %d (each stream needs an equal invalidation partition)", c.InvalServers, c.Shards)
		}
	}
	if c.Versions != 0 {
		if c.Versions < 2 || c.Versions > 1024 {
			return c, fmt.Errorf("core: Versions %d out of range [2,1024] (or 0 to disable)", c.Versions)
		}
		if c.Algo == TL2 {
			return c, fmt.Errorf("core: Versions requires a seqlock-epoch engine, not %v", c.Algo)
		}
	}
	return c, nil
}

// nextPow2 rounds n up to the next power of two (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
