package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/ssrg-vt/rinval/internal/bloom"
)

// forEachAlgo runs f once per engine, in a subtest named after the engine.
func forEachAlgo(t *testing.T, f func(t *testing.T, algo Algo)) {
	t.Helper()
	for _, a := range Algos {
		a := a
		t.Run(a.String(), func(t *testing.T) { f(t, a) })
	}
}

// newSys builds a small system for tests and registers cleanup.
func newSys(t *testing.T, algo Algo, mutate func(*Config)) *System {
	t.Helper()
	cfg := Config{Algo: algo, MaxThreads: 16, InvalServers: 2, StepsAhead: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

func TestAlgoStringRoundTrip(t *testing.T) {
	for _, a := range Algos {
		got, err := ParseAlgo(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgo(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgo("nope"); err == nil {
		t.Error("ParseAlgo accepted garbage")
	}
	if s := Algo(99).String(); s != "Algo(99)" {
		t.Errorf("unknown algo string %q", s)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxThreads != 64 || c.InvalServers != 4 || c.StepsAhead != 2 {
		t.Fatalf("bad defaults: %+v", c)
	}
	if c.Bloom != bloom.DefaultParams || c.Seed == 0 {
		t.Fatalf("bad defaults: %+v", c)
	}
	bad := []Config{
		{MaxThreads: -1},
		{MaxThreads: 5000},
		{InvalServers: 100, MaxThreads: 8},
		{StepsAhead: 200},
		{Algo: Algo(42)},
	}
	for _, b := range bad {
		if _, err := b.withDefaults(); err == nil {
			t.Errorf("config %+v accepted", b)
		}
	}
	// An unset InvalServers clamps to small MaxThreads instead of erroring.
	small, err := Config{MaxThreads: 2}.withDefaults()
	if err != nil || small.InvalServers != 2 {
		t.Fatalf("small-system default: %+v, %v", small, err)
	}
}

func TestSingleThreadReadWrite(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		x := NewVar(10)
		y := NewVar("hello")

		err := th.Atomically(func(tx *Tx) error {
			if got := tx.Load(x).(int); got != 10 {
				t.Errorf("Load(x) = %d", got)
			}
			tx.Store(x, 11)
			if got := tx.Load(x).(int); got != 11 {
				t.Errorf("read-after-write = %d", got)
			}
			tx.Store(y, "world")
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if x.Peek().(int) != 11 || y.Peek().(string) != "world" {
			t.Fatalf("commit not published: x=%v y=%v", x.Peek(), y.Peek())
		}
	})
}

func TestUserAbortRollsBack(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		x := NewVar(1)
		boom := errors.New("boom")
		err := th.Atomically(func(tx *Tx) error {
			tx.Store(x, 99)
			return boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
		if x.Peek().(int) != 1 {
			t.Fatalf("user abort leaked write: %v", x.Peek())
		}
		// System must remain usable (in particular the Mutex engine must
		// have released its lock).
		if err := th.Atomically(func(tx *Tx) error { tx.Store(x, 2); return nil }); err != nil {
			t.Fatal(err)
		}
		if x.Peek().(int) != 2 {
			t.Fatal("post-abort commit failed")
		}
	})
}

func TestUserPanicPropagatesAndReleases(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		x := NewVar(1)
		func() {
			defer func() {
				if r := recover(); r == nil || r.(string) != "user panic" {
					t.Errorf("recover = %v", r)
				}
			}()
			_ = th.Atomically(func(tx *Tx) error {
				tx.Store(x, 5)
				panic("user panic")
			})
		}()
		if x.Peek().(int) != 1 {
			t.Fatal("panicking tx leaked write")
		}
		if err := th.Atomically(func(tx *Tx) error { tx.Store(x, 3); return nil }); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadOnlyTransaction(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		x := NewVar(7)
		var got int
		if err := th.Atomically(func(tx *Tx) error {
			got = tx.Load(x).(int)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != 7 {
			t.Fatalf("got %d", got)
		}
		st := th.Stats()
		if st.Commits != 1 || st.ReadOnly != 1 {
			t.Fatalf("stats %+v", st)
		}
	})
}

func TestConcurrentCounter(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		counter := NewVar(0)
		const workers = 8
		const perWorker = 200
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < perWorker; i++ {
					err := th.Atomically(func(tx *Tx) error {
						tx.Store(counter, tx.Load(counter).(int)+1)
						return nil
					})
					if err != nil {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if got := counter.Peek().(int); got != workers*perWorker {
			t.Fatalf("lost updates: %d != %d", got, workers*perWorker)
		}
		st := s.Stats()
		if st.Commits < workers*perWorker {
			t.Fatalf("commit count %d too low", st.Commits)
		}
	})
}

// TestWriteSkewPrevented: classic write-skew anomaly must not occur. Two
// transactions each read the other's variable and write their own; any
// serial order leaves at least one variable at its written value consistent
// with the reads. The illegal outcome under snapshot-but-not-serializable
// systems is both writes succeeding from stale reads: x = y = 1 when the
// rule is "write 1 only if the other is 0" starting from x=y=0 would allow
// x+y<=1 under serializability.
func TestWriteSkewPrevented(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		for round := 0; round < 50; round++ {
			s := newSys(t, algo, nil)
			x, y := NewVar(0), NewVar(0)
			var wg sync.WaitGroup
			run := func(read, write *Var) {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				_ = th.Atomically(func(tx *Tx) error {
					if tx.Load(read).(int) == 0 {
						tx.Store(write, 1)
					}
					return nil
				})
			}
			wg.Add(2)
			go run(x, y)
			go run(y, x)
			wg.Wait()
			if x.Peek().(int)+y.Peek().(int) > 1 {
				t.Fatalf("write skew: x=%v y=%v", x.Peek(), y.Peek())
			}
			// newSys registered Close via t.Cleanup; rounds accumulate,
			// which is fine for 50 small systems.
		}
	})
}

func TestStatsCountsAborts(t *testing.T) {
	// Force conflicts: many threads increment one counter; at least some
	// engines must record aborts under this contention (Mutex never aborts).
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, func(c *Config) { c.CM = CMCommitterWins })
		counter := NewVar(0)
		const workers, per = 6, 150
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < per; i++ {
					_ = th.Atomically(func(tx *Tx) error {
						tx.Store(counter, tx.Load(counter).(int)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		st := s.Stats()
		if st.Commits != workers*per {
			t.Fatalf("commits %d != %d", st.Commits, workers*per)
		}
		if algo == Mutex && st.Aborts != 0 {
			t.Fatalf("mutex engine aborted %d times", st.Aborts)
		}
		if counter.Peek().(int) != workers*per {
			t.Fatal("final value wrong")
		}
	})
}

func TestManyVarsDisjointWriters(t *testing.T) {
	// Disjoint writers should all commit; verifies invalidation does not
	// doom non-conflicting transactions (modulo bloom false positives, which
	// only cause retries).
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		const workers, per = 8, 100
		vars := make([]*Var, workers)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < per; i++ {
					_ = th.Atomically(func(tx *Tx) error {
						tx.Store(vars[w], tx.Load(vars[w]).(int)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		for i, v := range vars {
			if v.Peek().(int) != per {
				t.Fatalf("var %d = %v, want %d", i, v.Peek(), per)
			}
		}
	})
}

func TestLargeWriteSetUsesMapPath(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		th := s.MustRegister()
		defer th.Close()
		const n = wsetMapThreshold * 3
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		if err := th.Atomically(func(tx *Tx) error {
			for i, v := range vars {
				tx.Store(v, i)
			}
			// Overwrite half, exercising map-path replacement.
			for i := 0; i < n/2; i++ {
				tx.Store(vars[i], i*10)
			}
			// Read-after-write through the map path.
			for i := 0; i < n/2; i++ {
				if got := tx.Load(vars[i]).(int); got != i*10 {
					return fmt.Errorf("RAW got %d want %d", got, i*10)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n/2; i++ {
			if vars[i].Peek().(int) != i*10 {
				t.Fatalf("var %d = %v", i, vars[i].Peek())
			}
		}
		for i := n / 2; i < n; i++ {
			if vars[i].Peek().(int) != i {
				t.Fatalf("var %d = %v", i, vars[i].Peek())
			}
		}
	})
}

func TestTinyBloomStillCorrect(t *testing.T) {
	// A 64-bit filter over many vars produces heavy false conflicts; the
	// system must stay correct (only slower).
	for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo, func(c *Config) {
				c.Bloom = bloom.Params{Bits: 64, Hashes: 1}
			})
			vars := make([]*Var, 32)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			const workers, per = 4, 50
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						v := vars[(w*per+i)%len(vars)]
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(v, tx.Load(v).(int)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			total := 0
			for _, v := range vars {
				total += v.Peek().(int)
			}
			if total != workers*per {
				t.Fatalf("total %d != %d", total, workers*per)
			}
		})
	}
}

func TestReaderBiasedCM(t *testing.T) {
	for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo, func(c *Config) {
				c.CM = CMReaderBiased
				c.ReaderBiasThreshold = 1
				c.ReaderBiasRetries = 2
			})
			shared := NewVar(0)
			const workers, per = 6, 80
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < per; i++ {
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(shared, tx.Load(shared).(int)+1)
							return nil
						})
					}
				}()
			}
			wg.Wait()
			if shared.Peek().(int) != workers*per {
				t.Fatalf("total %v != %d", shared.Peek(), workers*per)
			}
			// Self-aborts may or may not trigger depending on interleaving;
			// the important property is progress + correctness above.
		})
	}
}

func TestVarPeekSet(t *testing.T) {
	v := NewVar(3)
	if v.Peek().(int) != 3 {
		t.Fatal("Peek")
	}
	v.Set(4)
	if v.Peek().(int) != 4 {
		t.Fatal("Set")
	}
	if v.ID() == 0 {
		t.Fatal("ID should be nonzero")
	}
	w := NewVar(0)
	if w.ID() == v.ID() {
		t.Fatal("IDs must be unique")
	}
}

func TestAttemptCounter(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	defer th.Close()
	x := NewVar(0)
	attempts := 0
	if err := th.Atomically(func(tx *Tx) error {
		attempts = tx.Attempt()
		_ = tx.Load(x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("first attempt numbered %d", attempts)
	}
	if th.tx.System() != s {
		t.Fatal("System accessor broken")
	}
}
