package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpacityInvariantPair is the canonical zombie detector: writers keep
// x + y == 0 invariant (x = -y), readers assert the invariant INSIDE the
// transaction body. Under opacity a transaction body, even one that will
// abort, never observes a broken invariant.
func TestOpacityInvariantPair(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		x, y := NewVar(0), NewVar(0)
		stopFlag := &atomic.Bool{}
		var violations atomic.Int64
		var wg sync.WaitGroup

		// Writers: move value between x and y keeping the sum zero.
		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 1; !stopFlag.Load(); i++ {
					_ = th.Atomically(func(tx *Tx) error {
						delta := (i % 7) + w
						tx.Store(x, tx.Load(x).(int)+delta)
						tx.Store(y, tx.Load(y).(int)-delta)
						return nil
					})
				}
			}()
		}
		// Readers: observe both and check the invariant inside the body.
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for !stopFlag.Load() {
					_ = th.Atomically(func(tx *Tx) error {
						a := tx.Load(x).(int)
						b := tx.Load(y).(int)
						if a+b != 0 {
							violations.Add(1)
						}
						return nil
					})
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		stopFlag.Store(true)
		wg.Wait()
		if violations.Load() != 0 {
			t.Fatalf("opacity violated %d times", violations.Load())
		}
		if x.Peek().(int)+y.Peek().(int) != 0 {
			t.Fatalf("final invariant broken: %v + %v", x.Peek(), y.Peek())
		}
	})
}

// TestOpacityChainedReads stresses the multi-read window: an array of vars
// all equal by invariant; writers bump all of them in one transaction;
// readers load them one by one (giving commits time to land between reads)
// and check equality inside the body. This is the exact scenario
// invalidation must catch: a reader whose early reads predate a commit must
// be doomed before its later reads observe post-commit state.
func TestOpacityChainedReads(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		const n = 8
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		stopFlag := &atomic.Bool{}
		var violations atomic.Int64
		var wg sync.WaitGroup

		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for !stopFlag.Load() {
					_ = th.Atomically(func(tx *Tx) error {
						v0 := tx.Load(vars[0]).(int)
						for _, v := range vars {
							tx.Store(v, v0+1)
						}
						return nil
					})
				}
			}()
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for !stopFlag.Load() {
					_ = th.Atomically(func(tx *Tx) error {
						first := tx.Load(vars[0]).(int)
						for _, v := range vars[1:] {
							if got := tx.Load(v).(int); got != first {
								violations.Add(1)
								return nil
							}
						}
						return nil
					})
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		stopFlag.Store(true)
		wg.Wait()
		if violations.Load() != 0 {
			t.Fatalf("inconsistent snapshot observed %d times", violations.Load())
		}
		final := vars[0].Peek().(int)
		for i, v := range vars {
			if v.Peek().(int) != final {
				t.Fatalf("final state diverged at %d: %v != %d", i, v.Peek(), final)
			}
		}
	})
}

// TestBankTransferConservation models the classic bank: transfers move money
// between accounts; auditors sum all accounts transactionally and must
// always see the exact initial total.
func TestBankTransferConservation(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		const accounts = 10
		const initial = 100
		accs := make([]*Var, accounts)
		for i := range accs {
			accs[i] = NewVar(initial)
		}
		stopFlag := &atomic.Bool{}
		var badAudits atomic.Int64
		var wg sync.WaitGroup

		for w := 0; w < 3; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				rng := uint64(w + 1)
				next := func() int {
					rng = rng*6364136223846793005 + 1442695040888963407
					return int(rng >> 33)
				}
				for !stopFlag.Load() {
					from, to := next()%accounts, next()%accounts
					amt := next() % 20
					_ = th.Atomically(func(tx *Tx) error {
						tx.Store(accs[from], tx.Load(accs[from]).(int)-amt)
						tx.Store(accs[to], tx.Load(accs[to]).(int)+amt)
						return nil
					})
				}
			}()
		}
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for !stopFlag.Load() {
					_ = th.Atomically(func(tx *Tx) error {
						total := 0
						for _, a := range accs {
							total += tx.Load(a).(int)
						}
						if total != accounts*initial {
							badAudits.Add(1)
						}
						return nil
					})
				}
			}()
		}
		time.Sleep(300 * time.Millisecond)
		stopFlag.Store(true)
		wg.Wait()
		if badAudits.Load() != 0 {
			t.Fatalf("%d audits saw a wrong total", badAudits.Load())
		}
		total := 0
		for _, a := range accs {
			total += a.Peek().(int)
		}
		if total != accounts*initial {
			t.Fatalf("money not conserved: %d", total)
		}
	})
}

// TestV3StepsAheadRange runs the chained-read opacity stress across the
// step-ahead window sizes, since V3's correctness argument (requester's own
// server caught up) is the subtlest part of the protocol.
func TestV3StepsAheadRange(t *testing.T) {
	for _, steps := range []int{1, 2, 4, 8} {
		steps := steps
		t.Run(fmtInt("steps", steps), func(t *testing.T) {
			s := newSys(t, RInvalV3, func(c *Config) {
				c.StepsAhead = steps
				c.InvalServers = 3
			})
			const n = 6
			vars := make([]*Var, n)
			for i := range vars {
				vars[i] = NewVar(0)
			}
			stopFlag := &atomic.Bool{}
			var violations atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for !stopFlag.Load() {
						_ = th.Atomically(func(tx *Tx) error {
							v0 := tx.Load(vars[0]).(int)
							for _, v := range vars {
								tx.Store(v, v0+1)
							}
							return nil
						})
					}
				}()
			}
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for !stopFlag.Load() {
						_ = th.Atomically(func(tx *Tx) error {
							first := tx.Load(vars[0]).(int)
							for _, v := range vars[1:] {
								if tx.Load(v).(int) != first {
									violations.Add(1)
									return nil
								}
							}
							return nil
						})
					}
				}()
			}
			time.Sleep(200 * time.Millisecond)
			stopFlag.Store(true)
			wg.Wait()
			if violations.Load() != 0 {
				t.Fatalf("steps=%d: %d snapshot violations", steps, violations.Load())
			}
		})
	}
}

func fmtInt(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
