package core

import (
	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// remoteEngine implements the three Remote Invalidation variants (the
// paper's Algorithms 2-4) behind one parameterization:
//
//   - numInval == 0: RInval-V1. The commit-server executes both the
//     invalidation scan and the write-back itself. Clients never touch the
//     global timestamp: they publish a request in their padded slot and spin
//     on their own cache line, so commit has zero CAS operations and no
//     shared-lock spinning.
//   - numInval > 0, stepsAhead == 0: RInval-V2. Invalidation is partitioned
//     across numInval invalidation-server goroutines that run in parallel
//     with the commit-server's write-back. The commit-server waits for every
//     invalidation-server to catch up before starting the next commit.
//   - numInval > 0, stepsAhead > 0: RInval-V3. The commit-server may run up
//     to stepsAhead commits past the slowest invalidation-server, provided
//     the *requester's own* invalidation-server is fully caught up (which
//     makes the pre-commit status check conclusive). In-flight commit
//     descriptors live in a ring of stepsAhead+1 padded pointers.
type remoteEngine struct {
	sys        *System
	numInval   int
	stepsAhead int

	// sigBufs[i] is the stable write-signature buffer for ring slot i. The
	// commit-server copies the client's write filter here before publishing
	// the descriptor: the client regains ownership of its write set (and
	// clears its filter) as soon as it sees the COMMITTED reply, which can
	// happen while invalidation-servers are still scanning. The ring's
	// overwrite bound (no server trails by more than stepsAhead commits)
	// guarantees a buffer is never recycled while a server still reads it.
	sigBufs []*bloom.Filter

	commitSrv Stats   // commit-server activity (valid after servers stop)
	invalSrv  []Stats // per-invalidation-server activity
}

func newRemoteEngine(sys *System, numInval, stepsAhead int) *remoteEngine {
	e := &remoteEngine{
		sys:        sys,
		numInval:   numInval,
		stepsAhead: stepsAhead,
		invalSrv:   make([]Stats, numInval),
		sigBufs:    make([]*bloom.Filter, len(sys.ring)),
	}
	for i := range e.sigBufs {
		e.sigBufs[i] = bloom.NewFilter(sys.cfg.Bloom)
	}
	return e
}

func (e *remoteEngine) usesSlots() bool { return true }

func (e *remoteEngine) begin(tx *Tx) {}

// read uses the shared invalidation read protocol. With invalidation-servers
// present, a read additionally requires the reader's own server to have
// processed every prior commit (Algorithm 3 line 28): only then is "my
// status flag is still ALIVE" proof that no prior commit conflicted.
func (e *remoteEngine) read(tx *Tx, v *Var) (*box, bool) {
	if e.numInval == 0 {
		return invalRead(tx, v, nil)
	}
	myTS := &e.sys.invalTS[tx.slot.invalServer]
	return invalRead(tx, v, func(t uint64) bool { return myTS.Load() >= t })
}

// commit is the client side of Algorithm 2's CLIENT COMMIT: publish the
// request, then spin on the private reply field until the commit-server
// answers. Identical for all three variants.
func (e *remoteEngine) commit(tx *Tx) bool {
	if tx.ws.len() == 0 {
		return true
	}
	if tx.invalidated() {
		return false
	}
	if readerBiasedSelfAbort(tx) {
		return false
	}
	sl := tx.slot
	sl.req.Store(&commitReq{ws: tx.ws})
	sl.state.Store(reqPending)
	var w spin.Waiter
	for {
		switch sl.state.Load() {
		case reqCommitted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			return true
		case reqAborted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			return false
		}
		w.Wait()
	}
}

func (e *remoteEngine) abort(tx *Tx) {}

func (e *remoteEngine) serverMains() []func(stop func() bool) {
	mains := []func(stop func() bool){e.commitServerMain}
	for k := 0; k < e.numInval; k++ {
		k := k
		mains = append(mains, func(stop func() bool) { e.invalServerMain(k, stop) })
	}
	return mains
}

func (e *remoteEngine) serverStats() Stats {
	agg := e.commitSrv
	for i := range e.invalSrv {
		agg.Add(e.invalSrv[i])
	}
	return agg
}

// commitServerMain is Algorithm 2/3/4's COMMIT-SERVER LOOP: scan the
// requests array for PENDING entries and execute them. The scan order gives
// a round-robin fairness guarantee: a pending request is served within one
// pass over the array (V3 may defer a request whose invalidation-server
// lags, but that server's catch-up is itself bounded by the ring).
func (e *remoteEngine) commitServerMain(stop func() bool) {
	sys := e.sys
	var w spin.Waiter
	for !stop() {
		progress := false
		for i := range sys.slots {
			s := &sys.slots[i]
			if s.state.Load() != reqPending {
				continue
			}
			if e.handleRequest(i, s) {
				progress = true
			}
		}
		if progress {
			w.Reset()
		} else {
			w.Wait()
		}
	}
}

// handleRequest executes one commit request. It returns false when the
// request must be deferred (V3: the requester's invalidation-server has not
// caught up) so the scan can serve other ready requests first.
func (e *remoteEngine) handleRequest(i int, s *slot) bool {
	sys := e.sys
	t := sys.ts.Load() // even: only this goroutine makes it odd

	if e.numInval > 0 {
		// Requester's own server must have applied every prior commit's
		// invalidation so the ALIVE check below is conclusive (Alg. 4 l. 2).
		if sys.invalTS[s.invalServer].Load() < t {
			if e.stepsAhead > 0 {
				return false // defer; serve a request that is ready
			}
			// V2: fall through — the wait below catches every server up.
		}
		// No invalidation-server may trail by more than stepsAhead commits;
		// this also guarantees the ring entry we are about to overwrite has
		// been consumed by every server (Alg. 3 l. 7 / Alg. 4 l. 5).
		lagBudget := 2 * uint64(e.stepsAhead)
		for k := range sys.invalTS {
			var w spin.Waiter
			for sys.invalTS[k].Load()+lagBudget < t {
				w.Wait()
			}
		}
	}

	// Status check before touching the timestamp: a doomed request is
	// answered without burning a timestamp increment (Algorithm 2, line 15,
	// and the paper's note that this saves bumping the shared timestamp for
	// doomed transactions).
	if _, alive := s.aliveWord(); !alive {
		s.state.Store(reqAborted)
		return true
	}
	req := s.req.Load()

	if e.numInval == 0 {
		// V1: serial invalidation + write-back by the commit-server.
		sys.ts.Add(1)
		e.commitSrv.Invalidations += sys.invalidateOthers(i, req.ws.bf)
		req.ws.writeBack()
		sys.ts.Add(1)
	} else {
		// V2/V3: hand the signature to the invalidation-servers, then
		// write back in parallel with their scans. The signature is copied
		// into a ring-owned buffer because the client reclaims its write
		// set the moment it sees the reply, while the scans may still run.
		slot := (t / 2) % uint64(len(sys.ring))
		e.sigBufs[slot].CopyFrom(req.ws.bf)
		sys.ring[slot].Store(&commitDesc{bf: e.sigBufs[slot], committer: i})
		sys.ts.Add(1)
		req.ws.writeBack()
		sys.ts.Add(1)
	}
	s.state.Store(reqCommitted)
	e.commitSrv.Commits++
	return true
}

// invalServerMain is Algorithm 3's INVALIDATION-SERVER LOOP: whenever the
// global timestamp passes this server's local timestamp, fetch the pending
// commit descriptor, doom conflicting transactions in this server's
// partition, and advance the local timestamp by 2.
func (e *remoteEngine) invalServerMain(k int, stop func() bool) {
	sys := e.sys
	st := &e.invalSrv[k]
	var w spin.Waiter
	for !stop() {
		my := sys.invalTS[k].Load()
		if sys.ts.Load() > my {
			// The descriptor for base timestamp `my` was published before
			// the timestamp moved past it, and the commit-server cannot
			// overwrite it until this server advances (ring bound).
			d := sys.ring[(my/2)%uint64(len(sys.ring))].Load()
			st.Invalidations += sys.invalidatePartition(k, d.committer, d.bf)
			sys.invalTS[k].Store(my + 2)
			w.Reset()
		} else {
			w.Wait()
		}
	}
}
