package core

import (
	"fmt"
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// remoteEngine implements the three Remote Invalidation variants (the
// paper's Algorithms 2-4) behind one parameterization:
//
//   - numInval == 0: RInval-V1. The commit-server executes both the
//     invalidation scan and the write-back itself. Clients never touch the
//     global timestamp: they publish a request in their padded slot and spin
//     on their own cache line, so commit has zero CAS operations and no
//     shared-lock spinning.
//   - numInval > 0, stepsAhead == 0: RInval-V2. Invalidation is partitioned
//     across numInval invalidation-server goroutines that run in parallel
//     with the commit-server's write-back. The commit-server waits for every
//     invalidation-server to catch up before starting the next commit.
//   - numInval > 0, stepsAhead > 0: RInval-V3. The commit-server may run up
//     to stepsAhead commits past the slowest invalidation-server, provided
//     the *requester's own* invalidation-server is fully caught up (which
//     makes the pre-commit status check conclusive). In-flight commit
//     descriptors live in a ring of stepsAhead+1 padded pointers.
type remoteEngine struct {
	sys        *System
	numInval   int
	stepsAhead int
	maxBatch   int

	// sigBufs[i] is the stable write-signature buffer for ring slot i. The
	// commit-server copies the batch's merged write filter here before
	// publishing the descriptor: a client regains ownership of its write set
	// (and clears its filter) as soon as it sees the COMMITTED reply, which
	// can happen while invalidation-servers are still scanning. The ring's
	// overwrite bound (no server trails by more than stepsAhead commits)
	// guarantees a buffer is never recycled while a server still reads it.
	sigBufs []*bloom.Filter
	// memberBufs[i] is the stable member-mask buffer for ring slot i, reused
	// under the same overwrite bound as sigBufs.
	memberBufs []slotMask

	// Group-commit scratch, owned by the commit-server goroutine: the batch
	// member slots, the union of their write signatures, the union of their
	// read signatures (for the R/W compatibility test), and the member mask
	// RInvalV1 passes to its inline invalidation scan.
	batchIdx  []int
	batchWS   *bloom.Filter
	batchRS   *bloom.Filter
	batchMask slotMask

	// scanBuf/epochBuf hold the candidate slots of the outer request scan
	// and of one epoch's collection pass — the active bitmap's word-decoded
	// indices (or every slot under FlatScan). Reused, commit-server-owned.
	scanBuf  []int
	epochBuf []int

	commitSrv Stats   // commit-server activity (valid after servers stop)
	invalSrv  []Stats // per-invalidation-server activity

	// attrEpochs counts served epochs for attribution's 1-in-N exact-sample
	// selection (commit-server-owned; see epochKillDesc).
	attrEpochs uint64

	// commitRing/invalRings are the servers' trace tracks (nil entries when
	// tracing is off; every recording call on them is then a no-op).
	commitRing *obs.Ring
	invalRings []*obs.Ring
}

func newRemoteEngine(sys *System, numInval, stepsAhead int) *remoteEngine {
	e := &remoteEngine{
		sys:        sys,
		numInval:   numInval,
		stepsAhead: stepsAhead,
		maxBatch:   sys.cfg.MaxBatch,
		invalSrv:   make([]Stats, numInval),
		sigBufs:    make([]*bloom.Filter, len(sys.ring)),
		memberBufs: make([]slotMask, len(sys.ring)),
		batchIdx:   make([]int, 0, sys.cfg.MaxThreads),
		batchWS:    bloom.NewFilter(sys.cfg.Bloom),
		batchRS:    bloom.NewFilter(sys.cfg.Bloom),
		batchMask:  newSlotMask(sys.cfg.MaxThreads),
		scanBuf:    make([]int, 0, sys.cfg.MaxThreads),
		epochBuf:   make([]int, 0, sys.cfg.MaxThreads),
	}
	for i := range e.sigBufs {
		e.sigBufs[i] = bloom.NewFilter(sys.cfg.Bloom)
		e.memberBufs[i] = newSlotMask(sys.cfg.MaxThreads)
	}
	e.invalRings = make([]*obs.Ring, numInval)
	if sys.tracer != nil {
		e.commitRing = sys.tracer.AddActor("commit-server")
		for k := range e.invalRings {
			e.invalRings[k] = sys.tracer.AddActor(fmt.Sprintf("inval-server-%d", k))
		}
	}
	return e
}

func (e *remoteEngine) usesSlots() bool { return true }

func (e *remoteEngine) begin(tx *Tx) {}

// read uses the shared invalidation read protocol. With invalidation-servers
// present, a read additionally requires the reader's own server to have
// processed every prior commit (Algorithm 3 line 28): only then is "my
// status flag is still ALIVE" proof that no prior commit conflicted.
//stm:hotpath
func (e *remoteEngine) read(tx *Tx, v *Var) (*box, bool) {
	if e.numInval == 0 {
		return invalRead(tx, v, nil)
	}
	myTS := &e.sys.invalTS[tx.slot.invalServer]
	return invalRead(tx, v, func(t uint64) bool { return myTS.Load() >= t })
}

// commit is the client side of Algorithm 2's CLIENT COMMIT: publish the
// request, then spin on the private reply field until the commit-server
// answers. Identical for all three variants.
//stm:hotpath
func (e *remoteEngine) commit(tx *Tx) bool {
	if tx.ws.len() == 0 {
		return true
	}
	if tx.invalidated() {
		tx.reason = AbortInvalidated
		return false
	}
	if readerBiasedSelfAbort(tx) {
		return false
	}
	sl := tx.slot
	sl.req.Store(&commitReq{ws: tx.ws})
	sl.state.Store(reqPending)
	tx.ring.Instant(obs.KCommitReq, 0)
	var w spin.Waiter
	for {
		switch sl.state.Load() {
		case reqCommitted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			return true
		case reqAborted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			tx.reason = AbortInvalidated
			return false
		}
		w.Wait()
	}
}

func (e *remoteEngine) abort(tx *Tx) {}

func (e *remoteEngine) serverTasks() []serverTask {
	tasks := []serverTask{{name: "commit-server", run: e.commitServerMain}}
	for k := 0; k < e.numInval; k++ {
		k := k
		tasks = append(tasks, serverTask{
			name: fmt.Sprintf("inval-server-%d", k),
			run:  func(stop func() bool) { e.invalServerMain(k, stop) },
		})
	}
	return tasks
}

func (e *remoteEngine) serverStats() Stats {
	agg := e.commitSrv
	for i := range e.invalSrv {
		agg.Add(e.invalSrv[i])
	}
	return agg
}

// commitServerMain is Algorithm 2/3/4's COMMIT-SERVER LOOP: scan the
// requests array for PENDING entries and execute them, batching compatible
// requests into one group-commit epoch. The scan order gives a round-robin
// fairness guarantee: a pending request is served within one pass over the
// array (V3 may defer a request whose invalidation-server lags, but that
// server's catch-up is itself bounded by the ring; a request left out of a
// batch for incompatibility stays PENDING and leads its own epoch when the
// scan reaches it).
//stm:hotpath
func (e *remoteEngine) commitServerMain(stop func() bool) {
	sys := e.sys
	var w spin.Waiter
	for !stop() {
		progress := false
		// Candidates come from the active bitmap: a PENDING requester is
		// ALIVE for its whole wait, so its bit is set, and the per-candidate
		// state check below filters the (routine) stale bits. A request
		// published after the bitmap snapshot is picked up on the next pass.
		e.scanBuf = sys.appendPendingCandidates(e.scanBuf[:0], 0)
		for _, i := range e.scanBuf {
			if sys.slots[i].state.Load() != reqPending {
				continue
			}
			if e.serveEpochFrom(i) {
				progress = true
			}
		}
		if progress {
			w.Reset()
		} else {
			w.Wait()
		}
	}
}

// serveEpochFrom executes one group-commit epoch: starting at slot first, it
// collects up to maxBatch pending requests whose signatures are mutually
// compatible — no W/W overlap (two members writing the same location) and no
// R/W overlap in either direction (a member reading what another writes),
// tested on the bloom signatures — then retires the whole batch under a
// single odd/even timestamp transition and replies to every member.
// Incompatible or deferred requests stay PENDING for a later epoch. It
// returns false when no reply was sent (V3: every pending requester's
// invalidation-server lags) so the caller's scan can back off.
//stm:hotpath
func (e *remoteEngine) serveEpochFrom(first int) bool {
	sys := e.sys
	ring := e.commitRing
	phases := &e.commitSrv.Server
	// Phase timestamps cost a clock read each, so they are taken only when
	// someone consumes them: the phase histograms (cfg.Stats) or the trace
	// ring. The queue-depth and step-ahead samples are clock-free and
	// always collected.
	timing := sys.cfg.Stats || ring != nil
	var tStart int64
	if timing {
		tStart = obs.Now()
	}
	t := sys.ts.Load() // even: only this goroutine makes it odd

	if e.numInval > 0 && e.stepsAhead > 0 {
		// V3 step-ahead occupancy: how many commits this server is running
		// ahead of the slowest invalidation-server right now.
		minTS := sys.invalTS[0].Load()
		for k := 1; k < len(sys.invalTS); k++ {
			if v := sys.invalTS[k].Load(); v < minTS {
				minTS = v
			}
		}
		occ := (t - minTS) / 2
		phases.StepAhead.Record(occ)
		ring.Counter(obs.KStepAhead, occ)
	}

	// Collect the batch in array order from the leader onward. A member's
	// write signature must not intersect the members' write union (W/W) or
	// read union (it would overwrite something a member read), and its read
	// signature must not intersect the write union (it read something a
	// member overwrites). With MaxBatch=1 this degenerates to the paper's
	// one-request protocol: the leader alone, no compatibility tests.
	e.batchIdx = e.batchIdx[:0]
	e.batchWS.Clear()
	e.batchRS.Clear()
	pending := uint64(0) // queue depth: every PENDING request the scan saw
	e.epochBuf = sys.appendPendingCandidates(e.epochBuf[:0], first)
	for _, j := range e.epochBuf {
		if len(e.batchIdx) >= e.maxBatch {
			break
		}
		s := &sys.slots[j]
		if s.state.Load() != reqPending {
			continue
		}
		pending++
		if e.numInval > 0 && e.stepsAhead > 0 && sys.invalTS[s.invalServer].Load() < t {
			// V3: the requester's own server must have applied every prior
			// commit's invalidation for the ALIVE check below to be
			// conclusive (Alg. 4 l. 2). Defer; serve requests that are ready.
			// (V2 admits the request: the lag wait below catches every
			// server up to t before the ALIVE checks.)
			continue
		}
		req := s.req.Load()
		if len(e.batchIdx) > 0 {
			if req.ws.intersects(e.batchWS) || req.ws.intersects(e.batchRS) ||
				s.readBF.IntersectsFilter(e.batchWS) {
				continue
			}
		}
		e.batchIdx = append(e.batchIdx, j)
		e.batchWS.UnionWith(req.ws.bf)
		e.batchRS.UnionAtomic(s.readBF)
	}
	if len(e.batchIdx) == 0 {
		return false
	}
	phases.QueueDepth.Record(pending)
	ring.Counter(obs.KQueueDepth, pending)
	tPrev := tStart // end of the last timed phase
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.ScanNs.Record(uint64(now - tPrev))
		}
		ring.SpanAt(obs.KScan, tPrev, now, pending)
		tPrev = now
	}

	if e.numInval > 0 {
		// No invalidation-server may trail by more than stepsAhead commits;
		// this also guarantees the ring entry we are about to overwrite has
		// been consumed by every server (Alg. 3 l. 7 / Alg. 4 l. 5). For V2
		// (stepsAhead == 0) it additionally catches every server up to t,
		// which makes the per-member ALIVE checks below conclusive.
		lagBudget := 2 * uint64(e.stepsAhead)
		for k := range sys.invalTS {
			var w spin.Waiter
			for sys.invalTS[k].Load()+lagBudget < t {
				w.Wait()
			}
		}
		if timing {
			now := obs.Now()
			if sys.cfg.Stats {
				phases.InvalWaitNs.Record(uint64(now - tPrev))
			}
			ring.SpanAt(obs.KInvalWait, tPrev, now, 0)
			tPrev = now
		}
	}

	// Per-member status check before touching the timestamp: doomed members
	// are answered without burning a timestamp increment (Algorithm 2, line
	// 15). The check is conclusive for every member: its own invalidation
	// server has applied all prior commits (V1: the commit-server itself is
	// the only invalidator), and no in-flight scan can doom it afterwards —
	// the only unprocessed descriptor will be this epoch's, which skips
	// members by mask.
	n := 0
	for _, j := range e.batchIdx {
		s := &sys.slots[j]
		if _, alive := s.aliveWord(); !alive {
			s.state.Store(reqAborted)
			continue
		}
		e.batchIdx[n] = j
		n++
	}
	dropped := n < len(e.batchIdx)
	e.batchIdx = e.batchIdx[:n]
	if n == 0 {
		return true // progress: abort replies were sent
	}
	if dropped {
		// Rebuild the epoch signature from the survivors so a doomed
		// member's writes do not cause spurious invalidations. The doomed
		// slots have been answered; only survivors' requests are re-read.
		e.batchWS.Clear()
		for _, j := range e.batchIdx {
			e.batchWS.UnionWith(sys.slots[j].req.Load().ws.bf)
		}
	}

	var kd *killDesc
	if sys.attr != nil {
		kd = e.epochKillDesc()
	}
	if e.numInval == 0 {
		// V1: one serial invalidation scan + write-back epoch for the batch.
		e.batchMask.clearAll()
		for _, j := range e.batchIdx {
			e.batchMask.set(j)
		}
		sys.ts.Add(1)
		doomed := sys.invalidateOthers(e.batchMask, e.batchWS, e.commitRing, kd)
		atomic.AddUint64(&e.commitSrv.Invalidations, doomed)
		if timing {
			// V1 has no lag wait; the inline scan itself is the
			// invalidation phase.
			now := obs.Now()
			if sys.cfg.Stats {
				phases.InvalWaitNs.Record(uint64(now - tPrev))
			}
			ring.SpanAt(obs.KInvalWait, tPrev, now, doomed)
			tPrev = now
		}
		for _, j := range e.batchIdx {
			sys.slots[j].req.Load().ws.writeBack()
		}
		sys.ts.Add(1)
	} else {
		// V2/V3: hand the merged signature and member mask to the
		// invalidation-servers, then write back in parallel with their
		// scans. Signature and mask are copied into ring-owned buffers
		// because a client reclaims its write set the moment it sees the
		// reply, while the scans may still run.
		slot := (t / 2) % uint64(len(sys.ring))
		e.sigBufs[slot].CopyFrom(e.batchWS)
		m := e.memberBufs[slot]
		m.clearAll()
		for _, j := range e.batchIdx {
			m.set(j)
		}
		sys.ring[slot].Store(&commitDesc{bf: e.sigBufs[slot], members: m, kd: kd})
		sys.ts.Add(1)
		for _, j := range e.batchIdx {
			sys.slots[j].req.Load().ws.writeBack()
		}
		sys.ts.Add(1)
	}
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.WriteBackNs.Record(uint64(now - tPrev))
		}
		ring.SpanAt(obs.KWriteBack, tPrev, now, uint64(n))
		tPrev = now
	}
	for _, j := range e.batchIdx {
		sys.slots[j].state.Store(reqCommitted)
	}
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.ReplyNs.Record(uint64(now - tPrev))
		}
		ring.SpanAt(obs.KReply, tPrev, now, uint64(n))
		ring.SpanAt(obs.KEpoch, tStart, now, uint64(n))
	}
	atomic.AddUint64(&e.commitSrv.Commits, uint64(n))
	atomic.AddUint64(&e.commitSrv.Epochs, 1)
	e.commitSrv.BatchSizes.Record(uint64(n))
	return true
}

// invalServerMain is Algorithm 3's INVALIDATION-SERVER LOOP: whenever the
// global timestamp passes this server's local timestamp, fetch the pending
// commit descriptor, doom conflicting transactions in this server's
// partition, and advance the local timestamp by 2.
//stm:hotpath
func (e *remoteEngine) invalServerMain(k int, stop func() bool) {
	sys := e.sys
	st := &e.invalSrv[k]
	ring := e.invalRings[k]
	var w spin.Waiter
	for !stop() {
		my := sys.invalTS[k].Load()
		if sys.ts.Load() > my {
			// The descriptor for base timestamp `my` was published before
			// the timestamp moved past it, and the commit-server cannot
			// overwrite it until this server advances (ring bound).
			t0 := ring.Now()
			d := sys.ring[(my/2)%uint64(len(sys.ring))].Load()
			doomed := sys.invalidatePartition(k, d.members, d.bf, ring, d.kd)
			atomic.AddUint64(&st.Invalidations, doomed)
			sys.invalTS[k].Store(my + 2)
			ring.Span(obs.KInvalScan, t0, doomed)
			w.Reset()
		} else {
			w.Wait()
		}
	}
}
