package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// remoteEngine implements the three Remote Invalidation variants (the
// paper's Algorithms 2-4) behind one parameterization:
//
//   - numInval == 0: RInval-V1. The commit-server executes both the
//     invalidation scan and the write-back itself. Clients never touch the
//     global timestamp: they publish a request in their padded slot and spin
//     on their own cache line, so commit has zero CAS operations and no
//     shared-lock spinning.
//   - numInval > 0, stepsAhead == 0: RInval-V2. Invalidation is partitioned
//     across numInval invalidation-server goroutines that run in parallel
//     with the commit-server's write-back. The commit-server waits for every
//     invalidation-server to catch up before starting the next commit.
//   - numInval > 0, stepsAhead > 0: RInval-V3. The commit-server may run up
//     to stepsAhead commits past the slowest invalidation-server, provided
//     the *requester's own* invalidation-server is fully caught up (which
//     makes the pre-commit status check conclusive). In-flight commit
//     descriptors live in a ring of stepsAhead+1 padded pointers.
//
// With Config.Shards > 1 the engine runs one shardServer — a commit-server
// plus its share of invalidation-servers — per commit stream. A request
// whose touched-shard mask (read shards ∪ write shards) is a single bit is
// served by that shard's server exactly as above, independently of every
// other stream; a cross-shard request is led solo by the server of its
// lowest touched shard through the two-phase stream handshake
// (serveCrossShard, DESIGN.md §11). Shards == 1 is the paper-exact baseline:
// one server set, no stream locks, identical instruction path.
type remoteEngine struct {
	sys        *System
	numInval   int // invalidation-servers per commit stream (0 for V1)
	stepsAhead int
	maxBatch   int
	sharded    bool // Shards > 1: stream locks + touched-mask routing

	// srv[j] is shard j's server set. Exactly one entry when Shards == 1.
	srv []*shardServer
}

// shardServer is one commit stream's server set: the commit-server loop, its
// group-commit scratch, the stream's invalidation-server loops, and their
// stats. Every field below the stream pointer is owned by this shard's
// commit-server goroutine (the scratch) or by one invalidation-server (its
// Stats entry); nothing here is shared across shards except via the stream
// handshake, which hands a cross-shard leader ownership of another shard's
// ring buffers only while it holds that stream's lock.
type shardServer struct {
	eng   *remoteEngine
	sys   *System
	shard int
	st    *commitStream

	// sigBufs[i] is the stable write-signature buffer for ring slot i. The
	// commit-server copies the batch's merged write filter here before
	// publishing the descriptor: a client regains ownership of its write set
	// (and clears its filter) as soon as it sees the COMMITTED reply, which
	// can happen while invalidation-servers are still scanning. The ring's
	// overwrite bound (no server trails by more than stepsAhead commits)
	// guarantees a buffer is never recycled while a server still reads it.
	sigBufs []*bloom.Filter
	// memberBufs[i] is the stable member-mask buffer for ring slot i, reused
	// under the same overwrite bound as sigBufs.
	memberBufs []slotMask

	// Group-commit scratch, owned by the commit-server goroutine: the batch
	// member slots, the union of their write signatures, the union of their
	// read signatures (for the R/W compatibility test), and the member mask
	// RInvalV1 passes to its inline invalidation scan.
	batchIdx  []int
	batchWS   *bloom.Filter
	batchRS   *bloom.Filter
	batchMask slotMask

	// scanBuf/epochBuf hold the candidate slots of the outer request scan
	// and of one epoch's collection pass — the active bitmap's word-decoded
	// indices (or every slot under FlatScan). Reused, commit-server-owned.
	scanBuf  []int
	epochBuf []int

	commitSrv Stats   // commit-server activity (valid after servers stop)
	invalSrv  []Stats // per-invalidation-server activity

	// attrEpochs counts served epochs for attribution's 1-in-N exact-sample
	// selection (commit-server-owned; see epochKillDesc).
	attrEpochs uint64

	// commitRing/invalRings are the servers' trace tracks (nil entries when
	// tracing is off; every recording call on them is then a no-op).
	commitRing *obs.Ring
	invalRings []*obs.Ring

	// latC/invalLat are the servers' latency-phase cells (nil when
	// Config.Latency is off; recording on a nil cell is a no-op). Servers
	// record every epoch — only client cells sample.
	latC     *obs.LatCell
	invalLat []*obs.LatCell
}

func newRemoteEngine(sys *System, numInval, stepsAhead int) *remoteEngine {
	perShard := 0
	if numInval > 0 {
		perShard = sys.nInvalPerShard
	}
	e := &remoteEngine{
		sys:        sys,
		numInval:   perShard,
		stepsAhead: stepsAhead,
		maxBatch:   sys.cfg.MaxBatch,
		sharded:    len(sys.streams) > 1,
	}
	for j := range sys.streams {
		sv := &shardServer{
			eng:        e,
			sys:        sys,
			shard:      j,
			st:         &sys.streams[j],
			invalSrv:   make([]Stats, perShard),
			sigBufs:    make([]*bloom.Filter, len(sys.streams[j].ring)),
			memberBufs: make([]slotMask, len(sys.streams[j].ring)),
			batchIdx:   make([]int, 0, sys.cfg.MaxThreads),
			batchWS:    bloom.NewFilter(sys.cfg.Bloom),
			batchRS:    bloom.NewFilter(sys.cfg.Bloom),
			batchMask:  newSlotMask(sys.cfg.MaxThreads),
			scanBuf:    make([]int, 0, sys.cfg.MaxThreads),
			epochBuf:   make([]int, 0, sys.cfg.MaxThreads),
		}
		for i := range sv.sigBufs {
			sv.sigBufs[i] = bloom.NewFilter(sys.cfg.Bloom)
			sv.memberBufs[i] = newSlotMask(sys.cfg.MaxThreads)
		}
		sv.latC = sys.lat.Server(j)
		sv.invalLat = make([]*obs.LatCell, perShard)
		for k := range sv.invalLat {
			sv.invalLat[k] = sys.lat.Server(len(sys.streams) + j*sys.nInvalPerShard + k)
		}
		sv.invalRings = make([]*obs.Ring, perShard)
		if sys.tracer != nil {
			sv.commitRing = sys.tracer.AddActor(serverName("commit-server", j, e.sharded))
			for k := range sv.invalRings {
				sv.invalRings[k] = sys.tracer.AddActor(serverName(fmt.Sprintf("inval-server-%d", k), j, e.sharded))
			}
		}
		e.srv = append(e.srv, sv)
	}
	return e
}

// serverName qualifies a server-task label with its shard when sharding is
// on; the single-stream names match the paper (and the seed) exactly.
func serverName(base string, shard int, sharded bool) string {
	if !sharded {
		return base
	}
	return fmt.Sprintf("shard%d-%s", shard, base)
}

func (e *remoteEngine) usesSlots() bool { return true }

func (e *remoteEngine) begin(tx *Tx) {}

// read uses the shared invalidation read protocol against the stream owning
// v's shard. With invalidation-servers present, a read additionally requires
// the reader's own server for that stream to have processed every prior
// commit (Algorithm 3 line 28): only then is "my status flag is still ALIVE"
// proof that no prior commit conflicted.
//stm:hotpath
func (e *remoteEngine) read(tx *Tx, v *Var) (*box, bool) {
	return invalRead(tx, v, e.numInval > 0)
}

// commit is the client side of Algorithm 2's CLIENT COMMIT: publish the
// request, then spin on the private reply field until a commit-server
// answers. Identical for all three variants. Under sharding the request also
// carries the transaction's shard masks, computed here from the write set
// and the shards its reads visited; the server of the lowest touched shard
// owns the request.
//stm:hotpath
func (e *remoteEngine) commit(tx *Tx) bool {
	if tx.ws.len() == 0 {
		return true
	}
	if tx.invalidated() {
		tx.reason = AbortInvalidated
		return false
	}
	if readerBiasedSelfAbort(tx) {
		return false
	}
	req := &commitReq{ws: tx.ws, writes: 1, touched: 1}
	if e.sharded {
		var writes uint64
		for i := range tx.ws.entries {
			writes |= 1 << (tx.ws.entries[i].v.shardH & e.sys.shardMask)
		}
		req.writes = writes
		req.touched = writes | tx.readShards
	}
	sl := tx.slot
	sl.req.Store(req)
	sl.state.Store(reqPending)
	tx.ring.Instant(obs.KCommitReq, 0)
	var w spin.Waiter
	for {
		switch sl.state.Load() {
		case reqCommitted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			return true
		case reqAborted:
			sl.state.Store(reqIdle)
			sl.req.Store(nil)
			tx.reason = AbortInvalidated
			return false
		}
		w.Wait()
	}
}

func (e *remoteEngine) abort(tx *Tx) {}

func (e *remoteEngine) serverTasks() []serverTask {
	var tasks []serverTask
	for j := range e.srv {
		sv := e.srv[j]
		tasks = append(tasks, serverTask{
			name: serverName("commit-server", j, e.sharded),
			run:  sv.commitServerMain,
		})
		for k := 0; k < e.numInval; k++ {
			k := k
			tasks = append(tasks, serverTask{
				name: serverName(fmt.Sprintf("inval-server-%d", k), j, e.sharded),
				run:  func(stop func() bool) { sv.invalServerMain(k, stop) },
			})
		}
	}
	return tasks
}

func (e *remoteEngine) serverStats() Stats {
	var agg Stats
	for _, sv := range e.srv {
		agg.Add(sv.commitSrv)
		for i := range sv.invalSrv {
			agg.Add(sv.invalSrv[i])
		}
	}
	return agg
}

// commitServerMain is Algorithm 2/3/4's COMMIT-SERVER LOOP: scan the
// requests array for PENDING entries and execute them, batching compatible
// requests into one group-commit epoch. The scan order gives a round-robin
// fairness guarantee: a pending request is served within one pass over the
// array (V3 may defer a request whose invalidation-server lags, but that
// server's catch-up is itself bounded by the ring; a request left out of a
// batch for incompatibility stays PENDING and leads its own epoch when the
// scan reaches it). Under sharding each server claims only the requests it
// homes — single-shard requests of its own stream, plus cross-shard requests
// whose lowest touched shard is its stream — so a request still has exactly
// one server and the single-answerer protocol is unchanged.
//stm:hotpath
func (sv *shardServer) commitServerMain(stop func() bool) {
	sys := sv.sys
	sharded := sv.eng.sharded
	home := uint64(1) << uint(sv.shard)
	var w spin.Waiter
	for !stop() {
		progress := false
		// Candidates come from the active bitmap: a PENDING requester is
		// ALIVE for its whole wait, so its bit is set, and the per-candidate
		// state check below filters the (routine) stale bits. A request
		// published after the bitmap snapshot is picked up on the next pass.
		sv.scanBuf = sys.appendPendingCandidates(sv.scanBuf[:0], 0)
		for _, i := range sv.scanBuf {
			if sys.slots[i].state.Load() != reqPending {
				continue
			}
			if sharded {
				// The request pointer may already be retracted if another
				// server answered its owner between the state check and this
				// load; only requests homed here are served by this loop.
				req := sys.slots[i].req.Load()
				if req == nil {
					continue
				}
				if req.touched&(req.touched-1) != 0 {
					// Cross-shard: led solo by the lowest touched shard.
					if bits.TrailingZeros64(req.touched) != sv.shard {
						continue
					}
					sv.serveCrossShard(i, req)
					progress = true
					continue
				}
				if req.touched != home {
					continue
				}
			}
			if sv.serveEpochFrom(i) {
				progress = true
			}
		}
		if progress {
			w.Reset()
		} else {
			w.Wait()
		}
	}
}

// serveEpochFrom executes one group-commit epoch on this shard's stream:
// starting at slot first, it collects up to maxBatch pending requests homed
// to this stream whose signatures are mutually compatible — no W/W overlap
// (two members writing the same location) and no R/W overlap in either
// direction (a member reading what another writes), tested on the bloom
// signatures — then retires the whole batch under a single odd/even
// timestamp transition and replies to every member. Incompatible or deferred
// requests stay PENDING for a later epoch. It returns false when no reply
// was sent (V3: every pending requester's invalidation-server lags) so the
// caller's scan can back off. Under sharding the epoch runs with the stream
// lock held, serializing against cross-shard leaders that acquired this
// stream; with one shard the lone commit-server is the only epoch driver and
// never locks.
//stm:hotpath
func (sv *shardServer) serveEpochFrom(first int) bool {
	sys := sv.sys
	st := sv.st
	sharded := sv.eng.sharded
	home := uint64(1) << uint(sv.shard)
	ring := sv.commitRing
	phases := &sv.commitSrv.Server
	if sharded {
		sys.lockStream(sv.shard)
		defer sys.unlockStream(sv.shard)
	}
	// Phase timestamps cost a clock read each, so they are taken only when
	// someone consumes them: the phase histograms (cfg.Stats), the trace
	// ring, or the live latency recorder. The queue-depth and step-ahead
	// samples are clock-free and always collected.
	timing := sys.cfg.Stats || ring != nil || sv.latC != nil
	var tStart int64
	if timing {
		tStart = obs.Now()
	}
	t := st.ts.Load() // even: only the stream-lock holder makes it odd

	if sv.eng.numInval > 0 && sv.eng.stepsAhead > 0 {
		// V3 step-ahead occupancy: how many commits this server is running
		// ahead of the stream's slowest invalidation-server right now.
		minTS := st.invalTS[0].Load()
		for k := 1; k < len(st.invalTS); k++ {
			if v := st.invalTS[k].Load(); v < minTS {
				minTS = v
			}
		}
		occ := (t - minTS) / 2
		phases.StepAhead.Record(occ)
		ring.Counter(obs.KStepAhead, occ)
	}

	// Collect the batch in array order from the leader onward. A member's
	// write signature must not intersect the members' write union (W/W) or
	// read union (it would overwrite something a member read), and its read
	// signature must not intersect the write union (it read something a
	// member overwrites). With MaxBatch=1 this degenerates to the paper's
	// one-request protocol: the leader alone, no compatibility tests.
	sv.batchIdx = sv.batchIdx[:0]
	sv.batchWS.Clear()
	sv.batchRS.Clear()
	pending := uint64(0) // queue depth: every PENDING request the scan saw
	sv.epochBuf = sys.appendPendingCandidates(sv.epochBuf[:0], first)
	for _, j := range sv.epochBuf {
		if len(sv.batchIdx) >= sv.eng.maxBatch {
			break
		}
		s := &sys.slots[j]
		if s.state.Load() != reqPending {
			continue
		}
		req := s.req.Load()
		if req == nil {
			continue
		}
		if sharded && req.touched != home {
			// Another stream's request, or a cross-shard one (those lead
			// their own handshake epoch); not this epoch's to serve.
			continue
		}
		pending++
		if sv.eng.numInval > 0 && sv.eng.stepsAhead > 0 && st.invalTS[s.invalServer].Load() < t {
			// V3: the requester's own server must have applied every prior
			// commit's invalidation for the ALIVE check below to be
			// conclusive (Alg. 4 l. 2). Defer; serve requests that are ready.
			// (V2 admits the request: the lag wait below catches every
			// server up to t before the ALIVE checks.)
			continue
		}
		if len(sv.batchIdx) > 0 {
			if req.ws.intersects(sv.batchWS) || req.ws.intersects(sv.batchRS) ||
				s.readBF.IntersectsFilter(sv.batchWS) {
				continue
			}
		}
		sv.batchIdx = append(sv.batchIdx, j)
		sv.batchWS.UnionWith(req.ws.bf)
		sv.batchRS.UnionAtomic(s.readBF)
	}
	if len(sv.batchIdx) == 0 {
		return false
	}
	phases.QueueDepth.Record(pending)
	ring.Counter(obs.KQueueDepth, pending)
	tPrev := tStart // end of the last timed phase
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.ScanNs.Record(uint64(now - tPrev))
		}
		sv.latC.Record(obs.LatCollect, now-tPrev)
		ring.SpanAt(obs.KScan, tPrev, now, pending)
		tPrev = now
	}

	if sv.eng.numInval > 0 {
		// No invalidation-server may trail by more than stepsAhead commits;
		// this also guarantees the ring entry we are about to overwrite has
		// been consumed by every server (Alg. 3 l. 7 / Alg. 4 l. 5). For V2
		// (stepsAhead == 0) it additionally catches every server up to t,
		// which makes the per-member ALIVE checks below conclusive.
		lagBudget := 2 * uint64(sv.eng.stepsAhead)
		for k := range st.invalTS {
			var w spin.Waiter
			for st.invalTS[k].Load()+lagBudget < t {
				w.Wait()
			}
		}
		if timing {
			now := obs.Now()
			if sys.cfg.Stats {
				phases.InvalWaitNs.Record(uint64(now - tPrev))
			}
			sv.latC.Record(obs.LatInvalWait, now-tPrev)
			ring.SpanAt(obs.KInvalWait, tPrev, now, 0)
			tPrev = now
		}
	}

	// Per-member status check before touching the timestamp: doomed members
	// are answered without burning a timestamp increment (Algorithm 2, line
	// 15). The check is conclusive for every member: its own invalidation
	// server has applied all prior commits (V1: the commit-server itself is
	// the only invalidator), and no in-flight scan can doom it afterwards —
	// the only unprocessed descriptor will be this epoch's, which skips
	// members by mask.
	n := 0
	for _, j := range sv.batchIdx {
		s := &sys.slots[j]
		if _, alive := s.aliveWord(); !alive {
			s.state.Store(reqAborted)
			continue
		}
		sv.batchIdx[n] = j
		n++
	}
	dropped := n < len(sv.batchIdx)
	sv.batchIdx = sv.batchIdx[:n]
	if n == 0 {
		return true // progress: abort replies were sent
	}
	if dropped {
		// Rebuild the epoch signature from the survivors so a doomed
		// member's writes do not cause spurious invalidations. The doomed
		// slots have been answered; only survivors' requests are re-read.
		sv.batchWS.Clear()
		for _, j := range sv.batchIdx {
			sv.batchWS.UnionWith(sys.slots[j].req.Load().ws.bf)
		}
	}

	var kd *killDesc
	if sys.attr != nil {
		kd = sv.epochKillDesc()
	}
	if sv.eng.numInval == 0 {
		// V1: one serial invalidation scan + write-back epoch for the batch.
		sv.batchMask.clearAll()
		for _, j := range sv.batchIdx {
			sv.batchMask.set(j)
		}
		st.ts.Add(1)
		doomed := sys.invalidateOthers(sv.batchMask, sv.batchWS, sv.commitRing, kd)
		atomic.AddUint64(&sv.commitSrv.Invalidations, doomed)
		if timing {
			// V1 has no lag wait; the inline scan itself is the
			// invalidation phase (latency phase "scan", since the server
			// actively scans rather than waits).
			now := obs.Now()
			if sys.cfg.Stats {
				phases.InvalWaitNs.Record(uint64(now - tPrev))
			}
			sv.latC.Record(obs.LatScan, now-tPrev)
			ring.SpanAt(obs.KInvalWait, tPrev, now, doomed)
			tPrev = now
		}
		for _, j := range sv.batchIdx {
			sys.writeBack(sys.slots[j].req.Load().ws)
		}
		st.ts.Add(1)
	} else {
		// V2/V3: hand the merged signature and member mask to the
		// invalidation-servers, then write back in parallel with their
		// scans. Signature and mask are copied into ring-owned buffers
		// because a client reclaims its write set the moment it sees the
		// reply, while the scans may still run.
		slot := (t / 2) % uint64(len(st.ring))
		sv.sigBufs[slot].CopyFrom(sv.batchWS)
		m := sv.memberBufs[slot]
		m.clearAll()
		for _, j := range sv.batchIdx {
			m.set(j)
		}
		st.ring[slot].Store(&commitDesc{bf: sv.sigBufs[slot], members: m, kd: kd})
		st.ts.Add(1)
		for _, j := range sv.batchIdx {
			sys.writeBack(sys.slots[j].req.Load().ws)
		}
		st.ts.Add(1)
	}
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.WriteBackNs.Record(uint64(now - tPrev))
		}
		sv.latC.Record(obs.LatWriteBack, now-tPrev)
		ring.SpanAt(obs.KWriteBack, tPrev, now, uint64(n))
		tPrev = now
	}
	for _, j := range sv.batchIdx {
		sys.slots[j].state.Store(reqCommitted)
	}
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			phases.ReplyNs.Record(uint64(now - tPrev))
		}
		sv.latC.Record(obs.LatReply, now-tPrev)
		ring.SpanAt(obs.KReply, tPrev, now, uint64(n))
		ring.SpanAt(obs.KEpoch, tStart, now, uint64(n))
	}
	atomic.AddUint64(&sv.commitSrv.Commits, uint64(n))
	atomic.AddUint64(&sv.commitSrv.Epochs, 1)
	sv.commitSrv.BatchSizes.Record(uint64(n))
	return true
}

// serveCrossShard retires one cross-shard commit request through the
// two-phase stream handshake (DESIGN.md §11). Phase one acquires every
// touched stream's lock in ascending shard index order (the total order
// makes concurrent handshakes deadlock-free) and — with invalidation-servers
// present — drains each touched stream's servers fully to its frozen even
// timestamp, which makes the requester's ALIVE check conclusive exactly as
// V2's lag wait does on a single stream. Phase two publishes one combined
// invalidation pass — the full write signature into every written stream's
// ring (V2/V3) or one inline scan while the written streams are odd (V1) —
// writes back, raises/releases the written timestamps (odd ascending, even
// descending), replies, and unlocks in reverse order. Only the lowest
// touched shard's commit-server runs this, so each request still has a
// single answerer. Called only when Shards > 1.
//stm:hotpath
func (sv *shardServer) serveCrossShard(i int, req *commitReq) {
	sys := sv.sys
	s := &sys.slots[i]
	touched := req.touched
	ring := sv.commitRing
	timing := sys.cfg.Stats || ring != nil || sv.latC != nil
	var tStart int64
	if timing {
		tStart = obs.Now()
	}
	for m := touched; m != 0; m &= m - 1 {
		sys.lockStream(bits.TrailingZeros64(m))
	}
	tPrev := tStart // end of the last timed handshake phase
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			sv.commitSrv.Server.LockWaitNs.Record(uint64(now - tPrev))
		}
		sv.latC.Record(obs.LatLockWait, now-tPrev)
		tPrev = now
	}
	if sv.eng.numInval > 0 {
		// Drain every touched stream: with its lock held the timestamp is
		// frozen even, so catching each local server up to it applies every
		// prior commit of that stream — the requester's status flag then
		// conclusively reflects all of them, and every ring slot we may
		// overwrite below has been consumed.
		for m := touched; m != 0; m &= m - 1 {
			st := &sys.streams[bits.TrailingZeros64(m)]
			t := st.ts.Load()
			for k := range st.invalTS {
				var w spin.Waiter
				for st.invalTS[k].Load() < t {
					w.Wait()
				}
			}
		}
		if timing {
			now := obs.Now()
			if sys.cfg.Stats {
				sv.commitSrv.Server.DrainNs.Record(uint64(now - tPrev))
			}
			sv.latC.Record(obs.LatDrain, now-tPrev)
			tPrev = now
		}
	}
	if _, alive := s.aliveWord(); !alive {
		s.state.Store(reqAborted)
		unlockStreamsDesc(sys, touched)
		return
	}
	var kd *killDesc
	if sys.attr != nil {
		sv.batchIdx = append(sv.batchIdx[:0], i)
		kd = sv.epochKillDesc()
	}
	writes := req.writes
	if sv.eng.numInval == 0 {
		// V1: raise every written stream odd, run one combined inline scan
		// (dooms precede write-back, as on a single stream), write back, then
		// release the timestamps even.
		for m := writes; m != 0; m &= m - 1 {
			sys.streams[bits.TrailingZeros64(m)].ts.Add(1)
		}
		doomed := sys.invalidateOthers(s.selfMask, req.ws.bf, ring, kd)
		atomic.AddUint64(&sv.commitSrv.Invalidations, doomed)
		sys.writeBack(req.ws)
		for m := writes; m != 0; {
			j := bits.Len64(m) - 1
			m &^= 1 << uint(j)
			sys.streams[j].ts.Add(1)
		}
	} else {
		// V2/V3: publish the combined descriptor into every written stream's
		// ring, so each stream's servers doom its readers asynchronously. The
		// signature is copied into that stream's ring-slot buffer (safe: the
		// drain above proved the slot consumed, and the stream lock keeps its
		// owner out); the member mask is the requester's immutable selfMask.
		// The same victim may be scanned once per written stream — the doom
		// CAS is epoch-guarded, so duplicates are no-ops.
		for m := writes; m != 0; m &= m - 1 {
			j := bits.TrailingZeros64(m)
			st := &sys.streams[j]
			t := st.ts.Load()
			slot := (t / 2) % uint64(len(st.ring))
			buf := sv.eng.srv[j].sigBufs[slot]
			buf.CopyFrom(req.ws.bf)
			st.ring[slot].Store(&commitDesc{bf: buf, members: s.selfMask, kd: kd})
			st.ts.Add(1)
		}
		sys.writeBack(req.ws)
		for m := writes; m != 0; {
			j := bits.Len64(m) - 1
			m &^= 1 << uint(j)
			sys.streams[j].ts.Add(1)
		}
	}
	s.state.Store(reqCommitted)
	unlockStreamsDesc(sys, touched)
	if timing {
		now := obs.Now()
		if sys.cfg.Stats {
			sv.commitSrv.Server.WriteBackNs.Record(uint64(now - tPrev))
		}
		sv.latC.Record(obs.LatWriteBack, now-tPrev)
		ring.SpanAt(obs.KEpoch, tStart, now, 1)
	}
	atomic.AddUint64(&sv.commitSrv.Commits, 1)
	atomic.AddUint64(&sv.commitSrv.Epochs, 1)
	atomic.AddUint64(&sv.commitSrv.CrossShardCommits, 1)
	sv.commitSrv.BatchSizes.Record(1)
}

// unlockStreamsDesc releases the stream locks in mask in descending shard
// order — the reverse of the handshake's acquisition order.
//stm:hotpath
func unlockStreamsDesc(sys *System, mask uint64) {
	for m := mask; m != 0; {
		j := bits.Len64(m) - 1
		m &^= 1 << uint(j)
		sys.unlockStream(j)
	}
}

// invalServerMain is Algorithm 3's INVALIDATION-SERVER LOOP for this shard's
// stream: whenever the stream timestamp passes this server's local
// timestamp, fetch the pending commit descriptor, doom conflicting
// transactions in this server's partition, and advance the local timestamp
// by 2. Every stream's server k covers the same global slot partition k;
// concurrent scans from different streams are safe because the doom CAS is
// epoch-guarded and idempotent.
//stm:hotpath
func (sv *shardServer) invalServerMain(k int, stop func() bool) {
	sys := sv.sys
	st := sv.st
	stats := &sv.invalSrv[k]
	ring := sv.invalRings[k]
	lc := sv.invalLat[k]
	timing := ring != nil || lc != nil
	var w spin.Waiter
	for !stop() {
		my := st.invalTS[k].Load()
		if st.ts.Load() > my {
			// The descriptor for base timestamp `my` was published before
			// the timestamp moved past it, and no epoch driver can
			// overwrite it until this server advances (ring bound).
			var t0 int64
			if timing {
				t0 = obs.Now()
			}
			d := st.ring[(my/2)%uint64(len(st.ring))].Load()
			doomed := sys.invalidatePartition(k, d.members, d.bf, ring, d.kd)
			atomic.AddUint64(&stats.Invalidations, doomed)
			st.invalTS[k].Store(my + 2)
			if timing {
				now := obs.Now()
				lc.Record(obs.LatScan, now-t0)
				ring.SpanAt(obs.KInvalScan, t0, now, doomed)
			}
			w.Reset()
		} else {
			w.Wait()
		}
	}
}
