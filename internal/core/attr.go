package core

import (
	"sort"
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// Conflict attribution (Config.Attribution) answers "who aborted whom, over
// which data, at what cost" — the questions the abort taxonomy alone cannot.
//
// The mechanism is victim-side recording with a committer-published killer
// descriptor. Invalidation is asynchronous: the committer (or a server acting
// for it) dooms a victim with a status-word CAS and moves on, while the
// victim only learns of the doom at its next read or commit attempt. The
// victim's abort path is therefore the one place where exactly one event per
// abort happens — recording there keeps every total exact, and keeps all
// attribution cost off the committer's critical path (the paper's whole
// point is keeping that path short). The committer's only contribution is
// publishing a killDesc pointer into the victim's slot immediately before
// the doom CAS; the victim reads it back while rolling back.
//
// The descriptor race is accepted as best-effort: two committers may doom
// candidates concurrently, and a loser's descriptor can overwrite the
// winner's before the victim looks. Attribution then charges the wrong
// committer row (or the unknown row when the victim's begin already cleared
// the pointer), but never changes the matrix total — the victim increments
// exactly one cell per invalidation abort regardless.

// killDesc identifies the commit that doomed a victim. Immutable once
// published (victims read it concurrently with later commits).
type killDesc struct {
	// committer is the request-slot index of the doomer — for a group-commit
	// epoch, the batch leader.
	committer int
	// writeIDs, non-nil on a deterministic 1-in-AttrSampleEvery sample of
	// commits, is the commit's exact sorted write-set Var ids. A doomed
	// victim intersects its exact read log against it to classify the doom
	// as a true conflict or a bloom false positive, and to harvest the
	// conflicting Var ids for hot-var sampling. Freshly allocated per
	// sampled commit so it can outlive the committer's write-set reuse.
	writeIDs []uint64
}

// attrKillDesc returns the descriptor for this thread's next inline commit
// (InvalSTM): the cached unsampled descriptor, or — every AttrSampleEvery-th
// writer commit — a fresh one carrying the exact write ids.
func (tx *Tx) attrKillDesc() *killDesc {
	tx.attrSeq++
	if int(tx.attrSeq%uint64(tx.sys.cfg.AttrSampleEvery)) != 0 {
		return tx.attrKD
	}
	return &killDesc{committer: tx.th.idx, writeIDs: sortedWriteIDs(tx.ws)}
}

// sortedWriteIDs returns ws's Var ids sorted ascending — the shape contains
// needs. Always a fresh allocation: descriptor payloads must not be reused
// while victims may still read them.
func sortedWriteIDs(ws *writeSet) []uint64 {
	ids := make([]uint64, 0, len(ws.entries))
	for i := range ws.entries {
		ids = append(ids, ws.entries[i].v.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// epochKillDesc returns the killer descriptor for this shard commit-server's
// current epoch: the batch leader as the representative committer and — on
// every AttrSampleEvery-th epoch — the exact merged write ids of the whole
// batch (the invalidation scan tests the merged signature, so the exact
// check must test the merged set). Commit-server-owned; called once per
// epoch after doomed members have been filtered out of batchIdx (a
// cross-shard epoch sets batchIdx to its single requester first).
func (sv *shardServer) epochKillDesc() *killDesc {
	sv.attrEpochs++
	kd := &killDesc{committer: sv.batchIdx[0]}
	if int(sv.attrEpochs%uint64(sv.sys.cfg.AttrSampleEvery)) == 0 {
		var ids []uint64
		for _, j := range sv.batchIdx {
			ws := sv.sys.slots[j].req.Load().ws
			for i := range ws.entries {
				ids = append(ids, ws.entries[i].v.id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		kd.writeIDs = ids
	}
	return kd
}

// contains reports whether sorted ids contains id.
//
//stm:hotpath
func contains(ids []uint64, id uint64) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// recordAttribution is the victim-side attribution hook, called from every
// conflict-abort path when Config.Attribution is on. It charges the abort to
// the killer (matrix + wasted work), runs the sampled exact-set check that
// classifies bloom false positives, and feeds conflicting Var ids to the
// hot-var reservoir.
//
//stm:hotpath
func (tx *Tx) recordAttribution(a *obs.Attribution) {
	victim := tx.th.idx
	ns := uint64(obs.Now() - tx.attrT0)
	ops := atomic.LoadUint64(&tx.stats.Reads) - tx.attrReadsBase +
		atomic.LoadUint64(&tx.stats.Writes) - tx.attrWritesBase

	committer := a.Unknown()
	if tx.reason == AbortInvalidated && tx.sys.eng.usesSlots() {
		if kd := tx.slot.killer.Load(); kd != nil {
			committer = kd.committer
			if kd.writeIDs != nil {
				// Sampled commit: the exact read-set ∩ write-set check. The
				// read log holds every completed read (logReads is forced on
				// under attribution); pendingRead covers a read doomed before
				// Tx.Load could log it.
				hits := 0
				for i := range tx.rs.entries {
					if id := tx.rs.entries[i].v.id; contains(kd.writeIDs, id) {
						a.OfferVar(victim, id)
						hits++
					}
				}
				if tx.pendingRead != 0 && contains(kd.writeIDs, tx.pendingRead) {
					a.OfferVar(victim, tx.pendingRead)
					hits++
				}
				a.RecordFPCheck(victim, hits == 0)
			}
		}
	} else if tx.conflictVar != 0 {
		// Validation/locked aborts name the conflicting Var directly at the
		// abort site (NOrec value mismatch, TL2 version/lock failure).
		a.OfferVar(victim, tx.conflictVar)
	}
	a.RecordAbort(committer, victim, tx.reason, ns, ops)
}

// ConflictReport returns the attribution snapshot: who-aborted-whom matrix,
// wasted work per abort reason, bloom false-positive estimate, and the top-K
// hot-var table, alongside the Stats totals it was built from. Safe to call
// while transactions run (counters are read atomically, the snapshot is not
// a single instant); Enabled is false when Config.Attribution is off.
func (s *System) ConflictReport() obs.ConflictReport {
	st := s.Stats()
	return s.attr.Report(obs.ReportMeta{
		Commits:      st.Commits,
		Aborts:       st.Aborts,
		ReadOnly:     st.ReadOnly,
		ROCommits:    st.ROCommits,
		ROFallbacks:  st.ROFallbacks,
		AbortReasons: st.AbortReasons,
		FilterBits:   s.cfg.Bloom.Bits,
		NameOf:       VarName,
	})
}
