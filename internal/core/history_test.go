package core

import (
	"sync"
	"testing"
)

// TestSerializableRMWHistory is a history-based serializability check. Every
// transaction reads a shared register and writes a globally unique value, so
// a serializable execution must produce a single chain: each observed read
// value is either the initial value or exactly one other transaction's
// written value, no two transactions observe the same predecessor, and the
// final register value is the chain's last write. Any lost update, dirty
// read, or write skew breaks the chain structure.
func TestSerializableRMWHistory(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		const workers, per = 6, 80
		const initial = -1
		reg := NewVar(initial)

		type opRec struct{ read, wrote int }
		records := make([][]opRec, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < per; i++ {
					unique := w*per + i
					var read int
					if err := th.Atomically(func(tx *Tx) error {
						read = tx.Load(reg).(int)
						tx.Store(reg, unique)
						return nil
					}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					records[w] = append(records[w], opRec{read: read, wrote: unique})
				}
			}()
		}
		wg.Wait()

		// Build the chain: predecessor value -> successor write.
		next := make(map[int]int, workers*per)
		for w := range records {
			for _, r := range records[w] {
				if prev, dup := next[r.read]; dup {
					t.Fatalf("two transactions (%d and %d) both observed %d: lost update",
						prev, r.wrote, r.read)
				}
				next[r.read] = r.wrote
			}
		}
		// Walk from the initial value; the chain must visit every
		// transaction exactly once and end at the final register value.
		seen := 0
		cur := initial
		for {
			n, ok := next[cur]
			if !ok {
				break
			}
			cur = n
			seen++
		}
		if seen != workers*per {
			t.Fatalf("chain covers %d of %d transactions (history not serializable)",
				seen, workers*per)
		}
		if got := reg.Peek().(int); got != cur {
			t.Fatalf("final value %d is not the chain tail %d", got, cur)
		}
	})
}

// TestSerializableTwoRegisterHistory extends the chain check to a pair of
// registers updated together: serializability requires both chains to agree
// on the transaction order, which catches anomalies where each register is
// individually consistent but the pair is not (e.g. sliced write-backs).
func TestSerializableTwoRegisterHistory(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		const workers, per = 4, 60
		const initial = -1
		a, b := NewVar(initial), NewVar(initial)

		type opRec struct{ readA, readB, wrote int }
		records := make([][]opRec, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < per; i++ {
					unique := w*per + i
					var ra, rb int
					if err := th.Atomically(func(tx *Tx) error {
						ra = tx.Load(a).(int)
						rb = tx.Load(b).(int)
						tx.Store(a, unique)
						tx.Store(b, unique)
						return nil
					}); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					records[w] = append(records[w], opRec{readA: ra, readB: rb, wrote: unique})
				}
			}()
		}
		wg.Wait()

		next := make(map[int]int, workers*per)
		for w := range records {
			for _, r := range records[w] {
				// Atomicity within the transaction: both registers were
				// written together by the predecessor, so both reads must
				// name the same predecessor.
				if r.readA != r.readB {
					t.Fatalf("tx %d observed torn pair (%d, %d)", r.wrote, r.readA, r.readB)
				}
				if prev, dup := next[r.readA]; dup {
					t.Fatalf("txs %d and %d share predecessor %d", prev, r.wrote, r.readA)
				}
				next[r.readA] = r.wrote
			}
		}
		seen, cur := 0, initial
		for {
			n, ok := next[cur]
			if !ok {
				break
			}
			cur = n
			seen++
		}
		if seen != workers*per {
			t.Fatalf("chain covers %d of %d transactions", seen, workers*per)
		}
		if a.Peek().(int) != cur || b.Peek().(int) != cur {
			t.Fatalf("final pair (%v, %v) != chain tail %d", a.Peek(), b.Peek(), cur)
		}
	})
}
