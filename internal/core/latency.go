package core

import (
	"fmt"

	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/internal/obs"
)

// LatencyReport returns the merged critical-path latency decomposition
// (Config.Latency). Safe to call while transactions run: the cells are
// snapshotted atomically. With Latency off, Enabled is false.
func (s *System) LatencyReport() obs.LatencyReport {
	return s.lat.Report()
}

// latTotalHistogram merges the client end-to-end ("total") phase across all
// cells — the flight recorder's p99 source.
func (s *System) latTotalHistogram() histo.Histogram {
	return s.lat.ClientPhaseHistogram(obs.LatTotal)
}

// ServerPhaseHistograms exposes the commit-server phase histograms
// (Stats.Server) as named OpenMetrics histogram families, one child per
// (shard, phase). The underlying histograms are owned by the server
// goroutines and folded into Stats at Close, so before Close this returns
// empty children — the live phase view is the latency report's server side
// (stm_latency_ns{side="server"}), which is recorded through atomic cells.
func (s *System) ServerPhaseHistograms() []obs.NamedHistogram {
	shardStats := s.ShardServerStats()
	if shardStats == nil {
		// Non-RInval engines have no commit-server; fall back to the global
		// aggregate (all zero for them, but keeps the families present).
		return serverPhaseChildren(-1, s.Stats())
	}
	var out []obs.NamedHistogram
	for j, st := range shardStats {
		out = append(out, serverPhaseChildren(j, st)...)
	}
	return out
}

// serverPhaseChildren renders one Stats' server histograms as histogram
// children labeled with shard (omitted when shard < 0).
func serverPhaseChildren(shard int, st Stats) []obs.NamedHistogram {
	shardLabel := ""
	if shard >= 0 {
		shardLabel = fmt.Sprintf("shard=\"%d\",", shard)
	}
	phases := []struct {
		name string
		h    histo.Histogram
	}{
		{"scan", st.Server.ScanNs},
		{"inval-wait", st.Server.InvalWaitNs},
		{"write-back", st.Server.WriteBackNs},
		{"reply", st.Server.ReplyNs},
		{"lock-wait", st.Server.LockWaitNs},
		{"drain", st.Server.DrainNs},
	}
	out := make([]obs.NamedHistogram, 0, len(phases)+3)
	for _, p := range phases {
		out = append(out, obs.NamedHistogram{
			Name:   "stm_server_phase_ns",
			Labels: fmt.Sprintf("%sphase=%q", shardLabel, p.name),
			Hist:   p.h,
		})
	}
	trim := func(label string) string {
		if shardLabel == "" {
			return ""
		}
		return label[:len(label)-1] // drop the trailing comma for lone labels
	}
	out = append(out,
		obs.NamedHistogram{Name: "stm_server_queue_depth", Labels: trim(shardLabel), Hist: st.Server.QueueDepth},
		obs.NamedHistogram{Name: "stm_server_step_ahead", Labels: trim(shardLabel), Hist: st.Server.StepAhead},
		obs.NamedHistogram{Name: "stm_batch_size", Labels: trim(shardLabel), Hist: st.BatchSizes},
	)
	return out
}
