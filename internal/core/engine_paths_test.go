package core

import (
	"sync"
	"testing"
)

// TestNOrecRevalidationExtendsSnapshot forces the incremental-validation
// path deterministically: a reader loads x, then another thread commits a
// write to an unrelated var (moving the global timestamp), then the reader
// loads y. The reader's second load must revalidate (x unchanged => snapshot
// extends) and the transaction commits on the first attempt.
func TestNOrecRevalidationExtendsSnapshot(t *testing.T) {
	s := newSys(t, NOrec, nil)
	x, y, unrelated := NewVar(1), NewVar(2), NewVar(0)

	reader := s.MustRegister()
	defer reader.Close()
	writer := s.MustRegister()
	defer writer.Close()

	readerAtStep := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		<-readerAtStep
		_ = writer.Atomically(func(tx *Tx) error {
			tx.Store(unrelated, 99)
			return nil
		})
		close(writerDone)
	}()

	attempts := 0
	var got int
	if err := reader.Atomically(func(tx *Tx) error {
		attempts = tx.Attempt()
		_ = tx.Load(x)
		if attempts == 1 {
			close(readerAtStep)
			<-writerDone // a commit definitely lands between the two loads
		}
		got = tx.Load(y).(int)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("snapshot extension failed: %d attempts", attempts)
	}
	if got != 2 {
		t.Fatalf("y = %d", got)
	}
	st := s.Stats()
	if st.Validations == 0 {
		t.Fatal("revalidation path not exercised")
	}
}

// TestNOrecRevalidationConflictAborts: same shape, but the interleaved
// commit writes x itself — the reader's revalidation must fail and the
// transaction must retry.
func TestNOrecRevalidationConflictAborts(t *testing.T) {
	s := newSys(t, NOrec, nil)
	x, y := NewVar(1), NewVar(2)

	reader := s.MustRegister()
	defer reader.Close()
	writer := s.MustRegister()
	defer writer.Close()

	readerAtStep := make(chan struct{})
	writerDone := make(chan struct{})
	var once sync.Once
	go func() {
		<-readerAtStep
		_ = writer.Atomically(func(tx *Tx) error {
			tx.Store(x, 111)
			return nil
		})
		close(writerDone)
	}()

	maxAttempt := 0
	var sawNew bool
	if err := reader.Atomically(func(tx *Tx) error {
		if tx.Attempt() > maxAttempt {
			maxAttempt = tx.Attempt()
		}
		xv := tx.Load(x).(int)
		once.Do(func() {
			close(readerAtStep)
			<-writerDone
		})
		_ = tx.Load(y)
		sawNew = xv == 111
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if maxAttempt < 2 {
		t.Fatalf("conflicting commit did not force a retry (attempts=%d)", maxAttempt)
	}
	if !sawNew {
		t.Fatal("retry did not observe the committed value")
	}
	if st := s.Stats(); st.Aborts == 0 {
		t.Fatal("no abort recorded")
	}
}

// TestNOrecCommitCASRetry: a commit whose snapshot is stale must revalidate
// and still commit when no conflict exists.
func TestNOrecCommitCASRetry(t *testing.T) {
	s := newSys(t, NOrec, nil)
	x, unrelated := NewVar(1), NewVar(0)
	a := s.MustRegister()
	defer a.Close()
	bth := s.MustRegister()
	defer bth.Close()

	step := make(chan struct{})
	done := make(chan struct{})
	go func() {
		<-step
		_ = bth.Atomically(func(tx *Tx) error {
			tx.Store(unrelated, 5)
			return nil
		})
		close(done)
	}()
	var once sync.Once
	if err := a.Atomically(func(tx *Tx) error {
		tx.Store(x, tx.Load(x).(int)+1)
		once.Do(func() {
			close(step)
			<-done // timestamp moves between body and commit
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if x.Peek().(int) != 2 {
		t.Fatalf("x = %v", x.Peek())
	}
}

// TestTL2ReadLockedVarAborts: a reader encountering a location whose
// verlock is held past the spin budget must abort rather than block.
func TestTL2ReadLockedVarAborts(t *testing.T) {
	s := newSys(t, TL2, nil)
	v := NewVar(7)
	th := s.MustRegister()
	defer th.Close()

	// Jam the lock bit from outside (simulating a stuck owner).
	w := v.verlock.Load()
	v.verlock.Store(w | 1)
	attempts := 0
	errDone := make(chan error, 1)
	go func() {
		errDone <- th.Atomically(func(tx *Tx) error {
			attempts = tx.Attempt()
			if attempts >= 3 {
				return nil // give up reading the jammed var
			}
			_ = tx.Load(v)
			return nil
		})
	}()
	if err := <-errDone; err != nil {
		t.Fatal(err)
	}
	if attempts < 3 {
		t.Fatalf("locked read did not abort (attempts=%d)", attempts)
	}
	v.verlock.Store(w) // unjam for cleanup
}

// TestTL2ReadTooNewAborts: a read of a version newer than the snapshot must
// abort (no snapshot extension in classic TL2).
func TestTL2ReadTooNewAborts(t *testing.T) {
	s := newSys(t, TL2, nil)
	v := NewVar(7)
	th := s.MustRegister()
	defer th.Close()

	bumped := false
	if err := th.Atomically(func(tx *Tx) error {
		if tx.Attempt() == 1 {
			// Simulate a concurrent commit: advance the global clock and
			// stamp the var with the new version, which postdates this
			// transaction's snapshot (but not the retry's).
			ver := s.streams[0].ts.Add(5)
			v.verlock.Store(ver << 1)
			bumped = true
			_ = tx.Load(v) // must conflict-abort
			t.Error("read of too-new version succeeded")
			return nil
		}
		_ = tx.Load(v) // retry with a fresh snapshot succeeds
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bumped {
		t.Fatal("test did not exercise the path")
	}
}

func TestTxStringAndAlgoString(t *testing.T) {
	s := newSys(t, NOrec, nil)
	th := s.MustRegister()
	defer th.Close()
	v := NewVar(0)
	_ = th.Atomically(func(tx *Tx) error {
		_ = tx.Load(v)
		tx.Store(v, 1)
		if tx.String() == "" {
			t.Error("empty Tx string")
		}
		return nil
	})
	for _, p := range []CMPolicy{CMCommitterWins, CMBackoff, CMReaderBiased, CMPolicy(9)} {
		if p.String() == "" {
			t.Error("empty CM policy string")
		}
	}
}
