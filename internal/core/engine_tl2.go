package core

import (
	"sort"

	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/internal/spin"
)

// tl2Engine implements TL2 (Dice, Shalev, Shavit — DISC 2006): fine-grained
// concurrency control with one versioned write-lock per Var and a global
// version clock.
//
// The paper positions this design point against its coarse-grained family
// (§I, §III): per-location locks reduce false conflicts and let disjoint
// commits proceed in parallel, at the cost of per-location metadata, CAS
// traffic proportional to write-set size, and the loss of the properties the
// coarse family gets for free (trivial privatization safety, single-point
// HTM integration). It is included as a baseline for the ablations.
//
// Protocol: a transaction snapshots the clock at begin (rv). A read is valid
// when the location is unlocked and its version is at most rv, sampled
// stably around the value load. Commit locks the write set in id order
// (bounded spinning, then abort — no deadlock possible given the total
// order), increments the clock to obtain wv, revalidates the read set,
// publishes the writes, and releases each lock with version wv.
type tl2Engine struct {
	sys *System
}

// tl2Locked reports whether a verlock word is held.
func tl2Locked(w uint64) bool { return w&1 == 1 }

// tl2Version extracts the commit version from a verlock word.
func tl2Version(w uint64) uint64 { return w >> 1 }

// tl2LockSpins bounds how long a reader or committer waits on a held
// lock before aborting; lock holders finish quickly, but a bounded wait
// keeps the engine abort-based rather than blocking.
const tl2LockSpins = 128

func (e *tl2Engine) usesSlots() bool { return false }

// begin samples the read version.
func (e *tl2Engine) begin(tx *Tx) {
	tx.start = e.sys.streams[0].ts.Load()
}

// read returns v's value if it is committed no later than the transaction's
// read version. TL2 does not extend snapshots: a newer version aborts.
//stm:hotpath
func (e *tl2Engine) read(tx *Tx, v *Var) (*box, bool) {
	var w spin.Waiter
	var tw int64 // trace timestamp of the first blocked sample, if any
	for i := 0; ; i++ {
		w1 := v.verlock.Load()
		if tl2Locked(w1) {
			if tw == 0 {
				tw = tx.ring.Now()
			}
			if i >= tl2LockSpins {
				tx.reason = AbortLocked
				tx.conflictVar = v.id
				tx.ring.Span(obs.KReadWait, tw, v.id)
				return nil, false
			}
			w.Wait()
			continue
		}
		if tw != 0 {
			tx.ring.Span(obs.KReadWait, tw, v.id)
			tw = 0
		}
		b := v.loadBox()
		if v.verlock.Load() != w1 {
			continue // writer intervened; resample
		}
		if tl2Version(w1) > tx.start {
			tx.reason = AbortValidation
			tx.conflictVar = v.id
			return nil, false // too new for our snapshot
		}
		return b, true
	}
}

// commit locks the write set in id order, validates the read set against
// the snapshot, publishes, and releases at the new version.
//stm:hotpath
func (e *tl2Engine) commit(tx *Tx) bool {
	if tx.ws.len() == 0 {
		return true
	}
	// Deterministic global acquisition order prevents deadlock between
	// committers with overlapping write sets.
	order := make([]*writeEntry, len(tx.ws.entries))
	for i := range tx.ws.entries {
		order[i] = &tx.ws.entries[i]
	}
	sort.Slice(order, func(i, j int) bool { return order[i].v.id < order[j].v.id })

	locked := 0
	release := func() {
		for _, we := range order[:locked] {
			// Restore the pre-lock word (version unchanged, lock cleared).
			w := we.v.verlock.Load()
			we.v.verlock.Store(w &^ 1)
		}
	}
	for _, we := range order {
		var w spin.Waiter
		acquired := false
		for i := 0; i < tl2LockSpins; i++ {
			cur := we.v.verlock.Load()
			if !tl2Locked(cur) {
				if tl2Version(cur) > tx.start {
					// Written since our snapshot: even if we locked it, the
					// read of this location (if any) is stale; a pure blind
					// write could proceed, but classic TL2 validates via
					// the read set below, so locking is still fine.
				}
				if we.v.verlock.CompareAndSwap(cur, cur|1) {
					acquired = true
					break
				}
				continue
			}
			w.Wait()
		}
		if !acquired {
			tx.reason = AbortLocked
			tx.conflictVar = we.v.id
			release()
			return false
		}
		locked++
	}

	wv := e.sys.streams[0].ts.Add(1)

	// Validate the read set: every location must be unlocked (or locked by
	// us, i.e. in our write set) and unchanged since the snapshot.
	for i := range tx.rs.entries {
		re := &tx.rs.entries[i]
		w := re.v.verlock.Load()
		if tl2Version(w) > tx.start {
			tx.reason = AbortValidation
			tx.conflictVar = re.v.id
			release()
			return false
		}
		if tl2Locked(w) {
			if _, mine := tx.ws.lookup(re.v); !mine {
				tx.reason = AbortValidation
				tx.conflictVar = re.v.id
				release()
				return false
			}
		}
	}

	// Publish and unlock at the commit version.
	for _, we := range order {
		we.v.storeBox(we.b)
		we.v.verlock.Store(wv << 1)
	}
	return true
}

func (e *tl2Engine) abort(tx *Tx) {}

func (e *tl2Engine) serverTasks() []serverTask { return nil }

func (e *tl2Engine) serverStats() Stats { return Stats{} }
