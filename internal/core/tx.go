package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// conflictSignal unwinds a transaction body when the engine detects a
// conflict mid-flight (e.g. an invalidation engine observing its INVALIDATED
// flag on a read). It is thrown with panic and caught by Thread.Atomically,
// which retries the transaction; it never escapes the package.
type conflictSignal struct{}

// roFallbackSignal unwinds a snapshot read-only attempt whose snapshot fell
// off a Var's bounded history ring (the writers lapped it, or the commit
// pipeline never went quiet long enough to capture a cut). It is deliberately
// not a conflictSignal: nothing doomed the reader and there is no engine
// state to roll back or abort reason to record — AtomicallyRO catches it,
// counts Stats.ROFallbacks, and re-runs the body once on the regular path.
type roFallbackSignal struct{}

// Thread binds a goroutine to one entry of the cache-aligned requests array.
// Obtain with System.Register, release with Close. A Thread (and its
// transactions) must be driven by a single goroutine at a time.
type Thread struct {
	sys     *System
	idx     int
	slot    *slot
	tx      Tx
	backoff backoffState
	stats   Stats
	inTx    bool
	closed  bool
}

// backoffState is a tiny wrapper so Thread can hold a *spin.Backoff without
// exposing the dependency in its public surface.
type backoffState = interface {
	Pause()
	Reset()
}

// ID returns the thread's slot index within the requests array.
func (th *Thread) ID() int { return th.idx }

// Stats returns a copy of the thread's counters. Safe to call at any time:
// counters are read atomically, each individually.
func (th *Thread) Stats() Stats { return th.stats.snapshotAtomic() }

// Close releases the thread's slot. It panics if called inside Atomically.
func (th *Thread) Close() {
	if th.inTx {
		panic("core: Thread.Close inside a transaction")
	}
	if th.closed {
		return
	}
	th.closed = true
	th.sys.release(th)
}

// Atomically runs fn as a transaction, retrying on conflicts until it
// commits. If fn returns a non-nil error the transaction's writes are
// discarded and the error is returned (a user abort). fn may be re-executed
// many times and must confine its side effects to Tx operations.
func (th *Thread) Atomically(fn func(*Tx) error) error {
	if th.closed {
		panic("core: Atomically on closed Thread")
	}
	if th.inTx {
		panic("core: nested Atomically (flat nesting is not supported; pass the Tx down)")
	}
	th.inTx = true
	defer func() {
		th.inTx = false
		if th.sys.yieldPerTx {
			runtime.Gosched()
		}
	}()

	tx := &th.tx
	tx.attempts = 0
	th.backoff.Reset()
	tx.sampleLatency()
	return tx.retryLoop(fn)
}

// AtomicallyRO runs fn as a read-only transaction. With Config.Versions > 0
// it takes the snapshot path: capture a per-shard epoch vector, resolve every
// Load to the newest version at or below it, and finish without a read
// filter, doom CAS, or revalidation — the transaction can never conflict and
// never appears in an invalidation scan. A reader the writers lap falls back
// once to the regular retry loop (counted in Stats.ROFallbacks). With
// Versions == 0 the regular path runs directly, so the paper-exact baseline
// is behaviourally unchanged. Either way fn must not call Tx.Store (it
// panics); returning a non-nil error aborts as in Atomically.
func (th *Thread) AtomicallyRO(fn func(*Tx) error) error {
	if th.closed {
		panic("core: AtomicallyRO on closed Thread")
	}
	if th.inTx {
		panic("core: nested AtomicallyRO (flat nesting is not supported; pass the Tx down)")
	}
	th.inTx = true
	tx := &th.tx
	tx.roUser = true
	defer func() {
		tx.roUser = false
		th.inTx = false
		if th.sys.yieldPerTx {
			runtime.Gosched()
		}
	}()

	tx.attempts = 0
	th.backoff.Reset()
	tx.sampleLatency()
	if th.sys.nVers > 0 {
		if err, ok := tx.runSnapshot(fn); ok {
			return err
		}
		// Lapped (or capture never stabilized): one shot on the regular path.
	}
	return tx.retryLoop(fn)
}

// sampleLatency makes the one sampling decision per transaction, before the
// first attempt: all of a sampled transaction's attempts are timed, so the
// retry phase is complete and the phase counts equal the sampled-commit
// count. With Latency off (nil cell) this path does no store at all, and
// latOn stays at its zero value; the conditional reset only pays when the
// previous transaction was sampled.
func (tx *Tx) sampleLatency() {
	if tx.lat != nil && tx.lat.Sample() {
		tx.latOn = true
		tx.latT0 = obs.Now()
		tx.latAttemptT0 = tx.latT0
		tx.latRetryNs = 0
	} else if tx.latOn {
		tx.latOn = false
	}
}

// retryLoop drives attempts of fn through the engine until one commits or fn
// asks for a user abort. Shared by Atomically and AtomicallyRO's fallback.
func (tx *Tx) retryLoop(fn func(*Tx) error) error {
	for {
		tx.begin()
		err, conflicted := tx.run(fn)
		if conflicted {
			tx.onConflictAbort()
			continue
		}
		if err != nil {
			tx.onUserAbort()
			return err
		}
		if tx.finishCommit() {
			return nil
		}
		tx.onConflictAbort()
	}
}

// runSnapshot is AtomicallyRO's abort-free path: one attempt against a
// consistent epoch snapshot. ok=false means the attempt fell back (counted in
// ROFallbacks) and the caller must re-run fn on the regular path; the user
// function's effects are discarded either way (it has no writes).
func (tx *Tx) runSnapshot(fn func(*Tx) error) (err error, ok bool) {
	sys := tx.sys
	tx.attempts++
	// Publish the provisional epoch bound, then the liveness bit, then
	// capture. roFloorNow reads the timestamps before the bitmap, so a floor
	// computation that misses our bit used timestamp values from before this
	// point — at or below the provisional bound, and therefore at or below
	// every component of the snapshot we are about to capture (timestamps
	// only grow). One that sees our bit honours the published bound directly.
	prov := ^uint64(0)
	for j := range sys.streams {
		if t := sys.streams[j].ts.Load() &^ 1; t < prov {
			prov = t
		}
	}
	sys.roEpoch[tx.th.idx].Store(prov)
	sys.roActive.set(tx.th.idx)
	defer sys.roActive.clear(tx.th.idx)
	if !sys.captureSnapshot(tx.snap) {
		atomic.AddUint64(&tx.stats.ROFallbacks, 1)
		return nil, false
	}
	// Tighten the published bound to the snapshot's actual minimum so GC
	// reclaims up to what this reader really needs. Raising it is safe: the
	// floor takes the minimum over all live readers and the resolve rule
	// never reaches below the snapshot component of the Var's own shard.
	minSnap := tx.snap[0]
	for _, e := range tx.snap[1:] {
		if e < minSnap {
			minSnap = e
		}
	}
	sys.roEpoch[tx.th.idx].Store(minSnap)

	tx.ro = true
	defer func() { tx.ro = false }()
	tx.traceT0 = tx.ring.Now()
	tx.ring.InstantAt(obs.KBegin, tx.traceT0, uint64(tx.attempts))
	err, fellBack := tx.runRO(fn)
	if fellBack {
		atomic.AddUint64(&tx.stats.ROFallbacks, 1)
		tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeAbort)
		if tx.latOn {
			// Fold the burned attempt into the retry phase; the fallback
			// attempt's finishCommit records the sample, as in onConflictAbort.
			now := obs.Now()
			tx.latRetryNs += now - tx.latAttemptT0
			tx.latAttemptT0 = now
		}
		return nil, false
	}
	if err != nil {
		// User abort on the snapshot path: no engine state, no slot to
		// retire — just the taxonomy counter and the trace events.
		atomic.AddUint64(&tx.stats.AbortReasons[AbortExplicit], 1)
		tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeUserAbort)
		tx.ring.Instant(obs.KAbort, uint64(AbortExplicit))
		return err, true
	}
	atomic.AddUint64(&tx.stats.Commits, 1)
	atomic.AddUint64(&tx.stats.ReadOnly, 1)
	atomic.AddUint64(&tx.stats.ROCommits, 1)
	tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeCommit)
	if tx.latOn {
		// No commit-wait by construction: the snapshot path never queues
		// behind a server or a timestamp CAS.
		end := obs.Now()
		tx.lat.CommitSample(end-tx.latAttemptT0, 0, tx.latRetryNs, end-tx.latT0)
	}
	return nil, true
}

// runRO executes the user function on the snapshot path, translating a
// roFallbackSignal panic into fellBack=true. Other panics propagate directly:
// the snapshot path holds no engine resources or slot state to release.
func (tx *Tx) runRO(fn func(*Tx) error) (err error, fellBack bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(roFallbackSignal); ok {
				fellBack = true
				return
			}
			panic(r)
		}
	}()
	return fn(tx), false
}

// Tx is one transaction attempt's view of the world. It is only valid inside
// the Atomically callback that received it.
type Tx struct {
	sys  *System
	th   *Thread
	slot *slot

	rs    readSet
	ws    *writeSet
	start uint64 // NOrec: timestamp snapshot

	attempts int
	stats    *Stats
	direct   bool // Mutex engine: operate on Vars directly under the lock

	// roUser marks the whole AtomicallyRO call (snapshot path and fallback
	// alike): Store panics while it is set. ro marks the snapshot attempt
	// specifically: Load resolves against snap, the per-shard epoch vector
	// captured at begin (allocated once at Register when Versions > 0).
	roUser bool
	ro     bool
	snap   []uint64

	// readShards accumulates the shard bits of every Var this attempt read
	// (invalidation engines only; always bit 0 when Config.Shards == 1). The
	// commit request's touched mask is writes ∪ readShards: a transaction
	// that merely read another shard must still order against that stream,
	// or two single-shard writers could commit a cross-shard write skew.
	readShards uint64

	// reason records why the current attempt is failing; every engine
	// conflict path sets it before returning/panicking, and the abort
	// bookkeeping charges the matching Stats.AbortReasons counter.
	reason AbortReason
	// ring is this thread's lifecycle trace ring (nil unless Config.Trace).
	ring *obs.Ring
	// traceT0 is the attempt's begin timestamp on the trace clock.
	traceT0 int64

	// Latency-decomposition state (Config.Latency; DESIGN.md §12). lat is
	// this thread's phase cell (nil when off); latOn marks the current
	// transaction as sampled — every clock read below is gated on it, so an
	// unsampled (or disabled) transaction costs only the flag checks.
	// latT0 anchors the end-to-end phase, latAttemptT0 the current attempt,
	// and latRetryNs accumulates failed attempts including backoff.
	lat          *obs.LatCell
	latOn        bool
	latT0        int64
	latAttemptT0 int64
	latRetryNs   int64

	// Attribution state, used only under Config.Attribution (see attr.go).
	// attrKD is this thread's cached unsampled killer descriptor (immutable;
	// reused by every inline commit that is not part of the 1-in-N exact
	// sample); attrSeq counts writer commits for that sampling. attrT0 and
	// the attr*Base counters anchor the attempt's wasted-work accounting.
	// pendingRead is the Var id of a read doomed before Tx.Load could log
	// it; conflictVar is the Var a validation/lock abort named at its site.
	attrKD         *killDesc
	attrSeq        uint64
	attrT0         int64
	attrReadsBase  uint64
	attrWritesBase uint64
	pendingRead    uint64
	conflictVar    uint64
}

// Attempt returns the 1-based attempt number of the current execution, so
// workloads can observe retry behaviour.
func (tx *Tx) Attempt() int { return tx.attempts }

// System returns the owning System.
func (tx *Tx) System() *System { return tx.sys }

// begin resets per-attempt state and runs the engine's begin hook.
func (tx *Tx) begin() {
	tx.attempts++
	tx.rs.reset()
	tx.ws.reset()
	tx.readShards = 0
	tx.reason = AbortInvalidated // engines overwrite at their abort sites
	tx.traceT0 = tx.ring.Now()
	tx.ring.InstantAt(obs.KBegin, tx.traceT0, uint64(tx.attempts))
	if tx.sys.attr != nil {
		tx.pendingRead = 0
		tx.conflictVar = 0
		tx.attrT0 = obs.Now()
		tx.attrReadsBase = atomic.LoadUint64(&tx.stats.Reads)
		tx.attrWritesBase = atomic.LoadUint64(&tx.stats.Writes)
	}
	if tx.sys.eng.usesSlots() {
		// Order matters: clear the read signature while the slot is not
		// alive, then set the active bit, then publish the new (epoch, ALIVE)
		// word. A server holding the previous word can no longer doom this
		// incarnation (CAS epoch guard), and one scanning after the store
		// sees an empty filter. The active bit precedes the ALIVE store so a
		// scanner that misses the bit has proof the slot was not ALIVE at
		// that point (DESIGN.md §9).
		tx.slot.readBF.Clear()
		if tx.sys.attr != nil {
			// Retire the previous incarnation's killer descriptor while the
			// slot is not alive: a doomer targeting this incarnation stores
			// its descriptor after observing the ALIVE word below, so it
			// cannot be erased by this clear.
			tx.slot.killer.Store(nil)
		}
		tx.sys.active.set(tx.th.idx)
		epoch := (tx.slot.status.Load() >> epochShift) + 1
		tx.slot.status.Store(statusWord(epoch, txAlive))
	}
	tx.sys.eng.begin(tx)
}

// run executes the user function, translating a conflictSignal panic into
// conflicted=true. Other panics propagate after the engine's resources are
// released (so e.g. the Mutex engine's global lock is not leaked).
func (tx *Tx) run(fn func(*Tx) error) (err error, conflicted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(conflictSignal); ok {
				conflicted = true
				return
			}
			tx.sys.eng.abort(tx)
			tx.deactivateSlot()
			panic(r)
		}
	}()
	return fn(tx), false
}

// Load returns the transaction's view of v, aborting (via conflictSignal) if
// the engine detects a conflict.
//
// Counter updates here and below are atomic adds so System.Stats can read a
// live thread's counters without a data race; the thread is the only writer.
//stm:hotpath
func (tx *Tx) Load(v *Var) any {
	atomic.AddUint64(&tx.stats.Reads, 1)
	if tx.ro {
		return tx.loadSnapshot(v)
	}
	if tx.direct {
		if b, ok := tx.ws.lookup(v); ok {
			return b.v
		}
		return v.loadBox().v
	}
	if b, ok := tx.ws.lookup(v); ok {
		return b.v
	}
	var t0 time.Time
	if tx.sys.cfg.Stats {
		t0 = realClock()
	}
	b, ok := tx.sys.eng.read(tx, v)
	if tx.sys.cfg.Stats {
		atomic.AddUint64(&tx.stats.ReadNs, uint64(realClock().Sub(t0)))
	}
	if !ok {
		panic(conflictSignal{})
	}
	if tx.sys.logReads {
		// NOrec/TL2 revalidate from this log; the invalidation engines keep
		// it only when stats are enabled (read-set accounting).
		tx.rs.add(v, b)
	}
	return b.v
}

// loadSnapshot resolves v against the attempt's epoch snapshot: the newest
// committed version at or below the snapshot component of v's shard. No read
// filter, no read log, no slot state — nothing a committer could scan or
// doom. A miss (history trimmed or lapped under the reader) unwinds to the
// one-shot fallback in AtomicallyRO.
//
//stm:hotpath
func (tx *Tx) loadSnapshot(v *Var) any {
	val, ok := v.versionAt(tx.snap[v.shardH&tx.sys.shardMask])
	if !ok {
		panic(roFallbackSignal{})
	}
	return val
}

// Store buffers a write of val to v; it becomes visible atomically at commit.
//stm:hotpath
func (tx *Tx) Store(v *Var, val any) {
	if tx.roUser {
		panic("core: Store in read-only transaction")
	}
	atomic.AddUint64(&tx.stats.Writes, 1)
	tx.ws.put(v, val)
}

// finishCommit drives the engine commit and updates stats/slot state.
//stm:hotpath
func (tx *Tx) finishCommit() bool {
	var t0 time.Time
	if tx.sys.cfg.Stats {
		t0 = realClock()
	}
	var latC0 int64
	if tx.latOn {
		latC0 = obs.Now()
	}
	tc := tx.ring.Now()
	ok := tx.sys.eng.commit(tx)
	if tx.sys.cfg.Stats {
		atomic.AddUint64(&tx.stats.CommitNs, uint64(realClock().Sub(t0)))
	}
	tx.deactivateSlot()
	if ok {
		atomic.AddUint64(&tx.stats.Commits, 1)
		if tx.ws.len() == 0 {
			atomic.AddUint64(&tx.stats.ReadOnly, 1)
		}
		tx.ring.Span(obs.KCommit, tc, 0)
		tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeCommit)
		if tx.latOn {
			// One record per phase per sampled commit, so every client phase
			// histogram's count equals the sampled-commit count, and
			// app + commit-wait + retry <= total (the attempt intervals are
			// disjoint and all lie within [latT0, end]).
			end := obs.Now()
			tx.lat.CommitSample(latC0-tx.latAttemptT0, end-latC0, tx.latRetryNs, end-tx.latT0)
		}
	}
	return ok
}

// onConflictAbort rolls back after a conflict and applies the contention
// manager's retry policy. The engine set tx.reason at the conflict site;
// the per-reason counter keeps the taxonomy in lockstep with Aborts.
func (tx *Tx) onConflictAbort() {
	var t0 time.Time
	if tx.sys.cfg.Stats {
		t0 = realClock()
	}
	tx.sys.eng.abort(tx)
	tx.deactivateSlot()
	atomic.AddUint64(&tx.stats.Aborts, 1)
	atomic.AddUint64(&tx.stats.AbortReasons[tx.reason], 1)
	tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeAbort)
	tx.ring.Instant(obs.KAbort, uint64(tx.reason))
	if a := tx.sys.attr; a != nil {
		// Before the backoff pause: wasted work is the attempt's burned
		// time, not the contention manager's deliberate wait.
		tx.recordAttribution(a)
	}
	if tx.sys.cfg.CM != CMCommitterWins {
		tx.th.backoff.Pause()
	}
	if tx.sys.cfg.Stats {
		atomic.AddUint64(&tx.stats.AbortNs, uint64(realClock().Sub(t0)))
	}
	if tx.latOn {
		// After the backoff pause: the retry phase is the full cost of the
		// failed attempt, deliberate wait included. The same timestamp
		// anchors the next attempt, so begin() needs no clock read of its
		// own and the attempt intervals stay disjoint.
		now := obs.Now()
		tx.latRetryNs += now - tx.latAttemptT0
		tx.latAttemptT0 = now
	}
}

// onUserAbort rolls back after the user function returned an error. User
// aborts are not conflicts: they skip Aborts and count under AbortExplicit.
func (tx *Tx) onUserAbort() {
	tx.sys.eng.abort(tx)
	tx.deactivateSlot()
	atomic.AddUint64(&tx.stats.AbortReasons[AbortExplicit], 1)
	tx.ring.Span(obs.KTx, tx.traceT0, obs.OutcomeUserAbort)
	tx.ring.Instant(obs.KAbort, uint64(AbortExplicit))
}

// deactivateSlot retires the slot's status word so servers stop considering
// this thread in-flight. The epoch field is preserved: the next begin bumps
// it, invalidating any doom a server is still trying to apply. The active
// bit is cleared only after the INACTIVE store (mirror image of begin): a
// scanner that still sees the bit merely re-checks the status word, while
// one that misses it can rely on the transaction having retired.
func (tx *Tx) deactivateSlot() {
	if !tx.sys.eng.usesSlots() {
		return
	}
	w := tx.slot.status.Load()
	tx.slot.status.Store((w &^ statusBits) | txInactive)
	tx.sys.active.clear(tx.th.idx)
}

// invalidated reports whether this transaction incarnation has been doomed.
func (tx *Tx) invalidated() bool {
	_, alive := tx.slot.aliveWord()
	return !alive
}

// String identifies the transaction for debugging.
func (tx *Tx) String() string {
	return fmt.Sprintf("tx{thread=%d attempt=%d reads=%d writes=%d}",
		tx.th.idx, tx.attempts, tx.rs.len(), tx.ws.len())
}
