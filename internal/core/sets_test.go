package core

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/bloom"
)

func TestWriteSetLinearThenMapPath(t *testing.T) {
	ws := newWriteSet(bloom.DefaultParams)
	vars := make([]*Var, wsetMapThreshold*2)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	// Linear-path inserts and replacement.
	for i := 0; i < wsetMapThreshold; i++ {
		ws.put(vars[i], i)
	}
	if ws.idx != nil {
		t.Fatal("map built too early")
	}
	ws.put(vars[0], 999)
	if b, ok := ws.lookup(vars[0]); !ok || b.v.(int) != 999 {
		t.Fatal("linear replacement broken")
	}
	if ws.len() != wsetMapThreshold {
		t.Fatalf("len %d", ws.len())
	}
	// Cross the threshold: map path activates.
	for i := wsetMapThreshold; i < len(vars); i++ {
		ws.put(vars[i], i)
	}
	if ws.idx == nil {
		t.Fatal("map not built past threshold")
	}
	ws.put(vars[5], 555)
	if b, ok := ws.lookup(vars[5]); !ok || b.v.(int) != 555 {
		t.Fatal("map replacement broken")
	}
	if _, ok := ws.lookup(NewVar(0)); ok {
		t.Fatal("lookup found absent var")
	}
	// Reset clears everything including the map and the filter.
	ws.reset()
	if ws.len() != 0 || ws.idx != nil || !ws.bf.Empty() {
		t.Fatal("reset incomplete")
	}
	if _, ok := ws.lookup(vars[0]); ok {
		t.Fatal("lookup after reset found entry")
	}
}

func TestWriteSetWriteBackOrder(t *testing.T) {
	ws := newWriteSet(bloom.DefaultParams)
	a, b := NewVar(0), NewVar(0)
	ws.put(a, 1)
	ws.put(b, 2)
	ws.put(a, 3) // replacement keeps program order slot
	ws.writeBack()
	if a.Peek().(int) != 3 || b.Peek().(int) != 2 {
		t.Fatalf("writeBack wrong: a=%v b=%v", a.Peek(), b.Peek())
	}
}

func TestReadSetReuse(t *testing.T) {
	var rs readSet
	v := NewVar(1)
	bx := v.loadBox()
	for i := 0; i < 100; i++ {
		rs.add(v, bx)
	}
	if rs.len() != 100 {
		t.Fatalf("len %d", rs.len())
	}
	rs.reset()
	if rs.len() != 0 {
		t.Fatal("reset failed")
	}
	rs.add(v, bx)
	if rs.len() != 1 || rs.entries[0].v != v {
		t.Fatal("reuse after reset broken")
	}
}

func TestStatsAddAndAbortRate(t *testing.T) {
	a := Stats{Commits: 10, Aborts: 5, Reads: 100, Writes: 50, ReadNs: 7,
		CommitNs: 8, AbortNs: 9, Validations: 3, ValidationOps: 30,
		Invalidations: 2, SelfAborts: 1, ReadOnly: 4}
	b := a
	a.Add(b)
	if a.Commits != 20 || a.Aborts != 10 || a.Reads != 200 || a.ReadNs != 14 ||
		a.Validations != 6 || a.Invalidations != 4 || a.SelfAborts != 2 || a.ReadOnly != 8 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if got := a.AbortRate(); got != float64(10)/30 {
		t.Fatalf("AbortRate %v", got)
	}
	var empty Stats
	if empty.AbortRate() != 0 {
		t.Fatal("empty AbortRate")
	}
}

func TestStatusWordPacking(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 77, 1 << 40} {
		for _, st := range []uint64{txInactive, txAlive, txInvalid} {
			w := statusWord(epoch, st)
			if wordStatus(w) != st {
				t.Fatalf("status lost: epoch=%d st=%d", epoch, st)
			}
			if w>>epochShift != epoch {
				t.Fatalf("epoch lost: epoch=%d st=%d", epoch, st)
			}
		}
	}
}

func TestSlotTryInvalidateEpochGuard(t *testing.T) {
	var s slot
	w := statusWord(5, txAlive)
	s.status.Store(w)
	if !s.tryInvalidate(w) {
		t.Fatal("invalidate on matching word failed")
	}
	if got, alive := s.aliveWord(); alive || wordStatus(got) != txInvalid {
		t.Fatal("status not invalid after doom")
	}
	// A stale word (old epoch) must not doom the new incarnation.
	fresh := statusWord(6, txAlive)
	s.status.Store(fresh)
	if s.tryInvalidate(w) {
		t.Fatal("stale-epoch doom succeeded")
	}
	if _, alive := s.aliveWord(); !alive {
		t.Fatal("new incarnation was doomed by stale word")
	}
}

func TestVarBoxIdentityChangesOnStore(t *testing.T) {
	v := NewVar(1)
	b1 := v.loadBox()
	v.Set(1) // same value, new version
	b2 := v.loadBox()
	if b1 == b2 {
		t.Fatal("Set did not install a fresh version box")
	}
	if b1.v.(int) != b2.v.(int) {
		t.Fatal("value changed unexpectedly")
	}
}
