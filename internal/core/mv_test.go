package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// mvAlgos is every engine that accepts Config.Versions (all but TL2, whose
// per-Var verlock clock is not the seqlock epoch the version rings stamp).
var mvAlgos = []Algo{Mutex, NOrec, InvalSTM, RInvalV1, RInvalV2, RInvalV3}

func TestVersionsConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Versions: 1},
		{Versions: -3},
		{Versions: 2048},
		{Algo: TL2, Versions: 4},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	c, err := Config{Versions: 4}.withDefaults()
	if err != nil || c.Versions != 4 {
		t.Fatalf("Versions=4 rejected: %+v, %v", c, err)
	}
	if c, err := (Config{}).withDefaults(); err != nil || c.Versions != 0 {
		t.Fatalf("default Versions not 0: %+v, %v", c, err)
	}
}

// TestVersionRingResolve drives appendVersion/versionAt directly: epoch
// resolution picks the newest entry at or below the snapshot, the GC sweep
// trims strictly below the floor entry, and a lapped ring reports false.
func TestVersionRingResolve(t *testing.T) {
	v := NewVar("e0")
	// Before any versioned write-back, every snapshot resolves to the head.
	if got, ok := v.versionAt(0); !ok || got != "e0" {
		t.Fatalf("fresh head: %v %v", got, ok)
	}

	// Commit epochs 2, 4, 6 with an unbounded floor (no trimming). Capacity 8
	// keeps the ring un-full: versionAt refuses the oldest entry of a full
	// ring (a concurrent append may already be overwriting its slot).
	for _, e := range []uint64{2, 4, 6} {
		b := &box{v: "e" + string(rune('0'+e)), epoch: e}
		v.appendVersion(b, 8, 0)
		v.storeBox(b)
	}
	want := map[uint64]string{0: "e0", 1: "e0", 2: "e2", 3: "e2", 4: "e4", 5: "e4", 6: "e6", 99: "e6"}
	for snap, val := range want {
		if got, ok := v.versionAt(snap); !ok || got != val {
			t.Errorf("versionAt(%d) = %v, %v; want %q", snap, got, ok, val)
		}
	}

	// A floor of 4 makes "e4" the oldest entry any reader can need: the
	// sweep on the next append must drop e0 and e2 but keep e4.
	b8 := &box{v: "e8", epoch: 8}
	v.appendVersion(b8, 8, 4)
	v.storeBox(b8)
	if _, ok := v.versionAt(3); ok {
		t.Error("trimmed epoch still resolvable")
	}
	if got, ok := v.versionAt(5); !ok || got != "e4" {
		t.Errorf("floor survivor: %v, %v", got, ok)
	}

	// Lap the ring (capacity 8): old snapshots must fall back, the newest
	// entries must still resolve.
	for e := uint64(10); e <= 30; e += 2 {
		b := &box{v: "new", epoch: e}
		v.appendVersion(b, 8, 0)
		v.storeBox(b)
	}
	if _, ok := v.versionAt(5); ok {
		t.Error("lapped snapshot resolved")
	}
	if got, ok := v.versionAt(19); !ok || got != "new" {
		t.Errorf("recent snapshot: %v, %v", got, ok)
	}
}

func TestROSnapshotBasicAndStorePanics(t *testing.T) {
	for _, algo := range mvAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo, func(c *Config) { c.Versions = 4; c.Stats = true })
			th := s.MustRegister()
			defer th.Close()
			x, y := NewVar(1), NewVar(2)
			if err := th.Atomically(func(tx *Tx) error {
				tx.Store(x, 10)
				tx.Store(y, 20)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			var sum int
			if err := th.AtomicallyRO(func(tx *Tx) error {
				sum = tx.Load(x).(int) + tx.Load(y).(int)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if sum != 30 {
				t.Fatalf("snapshot read %d, want 30", sum)
			}
			st := th.Stats()
			if st.ROCommits != 1 || st.ReadOnly != 1 || st.ROFallbacks != 0 {
				t.Fatalf("stats %+v: want ROCommits=1 ReadOnly=1 ROFallbacks=0", st)
			}

			defer func() {
				if recover() == nil {
					t.Error("Store inside AtomicallyRO did not panic")
				}
			}()
			_ = th.AtomicallyRO(func(tx *Tx) error {
				tx.Store(x, 99)
				return nil
			})
		})
	}
}

// TestROTornPairProperty is the snapshot-consistency property test: writers
// keep pairs of Vars balanced (a+b == 0) in single atomic commits while
// snapshot readers stream through them; a reader observing a torn pair means
// the epoch-vector resolve produced an inconsistent cut. Attribution is on so
// the test can also assert the taxonomy invariant: reader threads take zero
// aborts and own zero read-victim matrix rows.
func TestROTornPairProperty(t *testing.T) {
	for _, algo := range []Algo{NOrec, InvalSTM, RInvalV2} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			const pairs, writers, readers, iters = 16, 3, 3, 300
			s := newSys(t, algo, func(c *Config) {
				c.Versions = 8
				c.Stats = true
				c.Attribution = true
			})
			as, bs := make([]*Var, pairs), make([]*Var, pairs)
			for i := range as {
				as[i], bs[i] = NewVar(0), NewVar(0)
			}
			var torn atomic.Int64
			var wg sync.WaitGroup
			readerIdx := make(map[int]bool)
			var mu sync.Mutex
			for w := 0; w < writers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					rng := uint64(w + 1)
					for i := 0; i < iters; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						p := int(rng>>33) % pairs
						d := int(rng>>20)%7 + 1
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(as[p], tx.Load(as[p]).(int)+d)
							tx.Store(bs[p], tx.Load(bs[p]).(int)-d)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					mu.Lock()
					readerIdx[th.ID()] = true
					mu.Unlock()
					defer th.Close()
					rng := uint64(1000 + r)
					for i := 0; i < iters; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						p := int(rng>>33) % pairs
						if err := th.AtomicallyRO(func(tx *Tx) error {
							if sum := tx.Load(as[p]).(int) + tx.Load(bs[p]).(int); sum != 0 {
								torn.Add(1)
							}
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
					if st := th.Stats(); st.Aborts != 0 {
						t.Errorf("reader thread aborted %d times (snapshot readers are abort-free)", st.Aborts)
					}
				}()
			}
			wg.Wait()
			if n := torn.Load(); n != 0 {
				t.Fatalf("%d torn pairs observed", n)
			}
			rep := s.ConflictReport()
			for c, row := range rep.Matrix {
				for victim, n := range row {
					if n != 0 && readerIdx[victim] {
						t.Errorf("matrix[%d][%d] = %d: snapshot reader appears as invalidation victim", c, victim, n)
					}
				}
			}
			if rep.ROCommits == 0 {
				t.Error("no snapshot commits recorded")
			}
		})
	}
}

// TestROChurnLapFallback hammers a tiny Var set through a minimum-depth ring
// so writers lap readers: lapped snapshot reads must fall back (counted, not
// wrong) and the pair invariant must survive the mixed snapshot/regular
// traffic. Primarily a -race exercise of the ring's reader/writer protocol.
func TestROChurnLapFallback(t *testing.T) {
	const iters = 400
	s := newSys(t, InvalSTM, func(c *Config) { c.Versions = 2; c.Stats = true })
	a, b := NewVar(0), NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < iters; i++ {
				if err := th.Atomically(func(tx *Tx) error {
					tx.Store(a, tx.Load(a).(int)+w+1)
					tx.Store(b, tx.Load(b).(int)-w-1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var fallbacks uint64
	var mu sync.Mutex
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < iters; i++ {
				if err := th.AtomicallyRO(func(tx *Tx) error {
					if sum := tx.Load(a).(int) + tx.Load(b).(int); sum != 0 {
						t.Errorf("torn pair: sum %d", sum)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
			st := th.Stats()
			mu.Lock()
			fallbacks += st.ROFallbacks
			mu.Unlock()
			if st.ROCommits+st.ROFallbacks == 0 {
				t.Error("reader ran no snapshot attempts")
			}
		}()
	}
	wg.Wait()
	t.Logf("lap fallbacks: %d", fallbacks)
}

// TestROCrossShardSnapshot checks the S>1 epoch-vector rule: a pair of Vars
// living in different commit streams is updated atomically through the
// cross-shard handshake while snapshot readers capture per-shard epoch
// vectors; a torn read would mean captureSnapshot accepted a cut that splits
// a cross-shard commit.
func TestROCrossShardSnapshot(t *testing.T) {
	const iters = 300
	s := newSys(t, RInvalV2, func(c *Config) {
		c.Shards = 4
		c.InvalServers = 4
		c.Versions = 8
		c.Stats = true
	})
	// Find two Vars owned by different shards.
	a := NewVar(0)
	b := NewVar(0)
	for s.VarShard(a) == s.VarShard(b) {
		b = NewVar(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < iters; i++ {
				if err := th.Atomically(func(tx *Tx) error {
					tx.Store(a, tx.Load(a).(int)+w+1)
					tx.Store(b, tx.Load(b).(int)-w-1)
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := s.MustRegister()
			defer th.Close()
			for i := 0; i < iters; i++ {
				if err := th.AtomicallyRO(func(tx *Tx) error {
					if sum := tx.Load(a).(int) + tx.Load(b).(int); sum != 0 {
						t.Errorf("cross-shard torn pair: sum %d", sum)
					}
					return nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
			if st := th.Stats(); st.Aborts != 0 {
				t.Errorf("cross-shard reader aborted %d times", st.Aborts)
			}
		}()
	}
	wg.Wait()
}

// TestROVersionsZeroDifferential runs one deterministic mixed trace (updates
// interleaved with AtomicallyRO reads) under Versions=0 and Versions=8:
// final state and read observations must be bit-identical, and under
// Versions=0 AtomicallyRO must degrade to the regular path exactly — no
// snapshot commits, no fallbacks, ReadOnly still counted.
func TestROVersionsZeroDifferential(t *testing.T) {
	for _, algo := range mvAlgos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			const nvars, ops = 8, 400
			run := func(versions int) ([nvars]int, []int, Stats) {
				s := MustNew(Config{Algo: algo, MaxThreads: 4, InvalServers: 1, Versions: versions, Stats: true})
				defer s.Close()
				th := s.MustRegister()
				vars := make([]*Var, nvars)
				for i := range vars {
					vars[i] = NewVar(i)
				}
				var seen []int
				rng := uint64(7)
				next := func() uint64 {
					rng = rng*6364136223846793005 + 1442695040888963407
					return rng >> 16
				}
				for op := 0; op < ops; op++ {
					i, j := int(next())%nvars, int(next())%nvars
					if op%3 == 0 {
						_ = th.AtomicallyRO(func(tx *Tx) error {
							seen = append(seen, tx.Load(vars[i]).(int)+tx.Load(vars[j]).(int))
							return nil
						})
					} else {
						_ = th.Atomically(func(tx *Tx) error {
							tx.Store(vars[i], tx.Load(vars[j]).(int)+1)
							return nil
						})
					}
				}
				var out [nvars]int
				for i, v := range vars {
					out[i] = v.Peek().(int)
				}
				st := th.Stats()
				th.Close()
				return out, seen, st
			}
			s0, seen0, st0 := run(0)
			s8, seen8, st8 := run(8)
			if s0 != s8 {
				t.Errorf("final state diverged:\n V=0 %v\n V=8 %v", s0, s8)
			}
			for i := range seen0 {
				if seen0[i] != seen8[i] {
					t.Errorf("read %d diverged: V=0 saw %d, V=8 saw %d", i, seen0[i], seen8[i])
					break
				}
			}
			if st0.ROCommits != 0 || st0.ROFallbacks != 0 {
				t.Errorf("Versions=0 took the snapshot path: %+v", st0)
			}
			if st0.ReadOnly == 0 || st0.ReadOnly != st8.ReadOnly {
				t.Errorf("ReadOnly accounting diverged: V=0 %d, V=8 %d", st0.ReadOnly, st8.ReadOnly)
			}
			if st8.ROCommits == 0 {
				t.Errorf("Versions=8 never used the snapshot path: %+v", st8)
			}
			if st0.Commits != st8.Commits {
				t.Errorf("commits diverged: V=0 %d, V=8 %d", st0.Commits, st8.Commits)
			}
		})
	}
}
