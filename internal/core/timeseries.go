// Windowed-telemetry sampling: the core half of Config.TimeSeries
// (DESIGN.md §15). A single sampler goroutine assembles one cumulative
// obs.TSSample per interval — from System.Stats' atomic counter snapshots,
// the live commit-servers' epoch counters, attribution totals, and the
// latency recorder's client-phase histograms — and pushes it into the obs
// engine, which delta-encodes and evaluates SLO burn rates. The sampler is
// the only goroutine that may read the clock here; nothing reachable from a
// //stm:hotpath root touches this file (enforced by stmlint's tsclean/tsnow
// fixtures).
package core

import (
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// DefaultTimeSeriesWindows is the ring capacity Config.TimeSeries defaults
// to when SLOs are declared without an explicit window count: 600 windows
// is 10 minutes of history at the default 1 s interval.
const DefaultTimeSeriesWindows = 600

// collectTSSample assembles one cumulative observation as of nowNanos.
// Alloc-free: Stats() copies values, the server counters are individual
// atomic loads, and the phase histograms merge into the sample in place.
func (s *System) collectTSSample(nowNanos int64) obs.TSSample {
	var smp obs.TSSample
	smp.UnixNanos = nowNanos
	st := s.Stats()
	c := &smp.Counters
	c[obs.TSCommits] = st.Commits
	c[obs.TSAborts] = st.Aborts
	c[obs.TSAbortInvalidated] = st.AbortReasons[AbortInvalidated]
	c[obs.TSAbortValidation] = st.AbortReasons[AbortValidation]
	c[obs.TSAbortSelf] = st.AbortReasons[AbortSelf]
	c[obs.TSAbortLocked] = st.AbortReasons[AbortLocked]
	c[obs.TSAbortExplicit] = st.AbortReasons[AbortExplicit]
	c[obs.TSReadOnly] = st.ReadOnly
	c[obs.TSROCommits] = st.ROCommits
	c[obs.TSROFallbacks] = st.ROFallbacks
	c[obs.TSReads] = st.Reads
	c[obs.TSWrites] = st.Writes
	// Server-side activity lives in the server goroutines' Stats, which
	// System.Stats only folds in after Close; read the live counters the way
	// the flight recorder's stall watchdog does. The sampler joins before
	// Close folds the server stats, so the two sources never double-count.
	epochs, cross := st.Epochs, st.CrossShardCommits
	if re, ok := s.eng.(*remoteEngine); ok {
		for j := range re.srv {
			epochs += atomic.LoadUint64(&re.srv[j].commitSrv.Epochs)
			cross += atomic.LoadUint64(&re.srv[j].commitSrv.CrossShardCommits)
		}
	}
	c[obs.TSEpochs] = epochs
	c[obs.TSCrossShard] = cross
	fpSampled, fpFalse, wastedNs := s.attr.Totals()
	c[obs.TSBloomFPSampled] = fpSampled
	c[obs.TSBloomFPFalse] = fpFalse
	c[obs.TSWastedNs] = wastedNs
	for i, p := range obs.TSPhases {
		smp.Phases[i] = s.lat.ClientPhaseHistogram(p)
	}
	return smp
}

// tsTick takes one sample and pushes it into the engine. Split from tsLoop
// so tests can drive windows deterministically with fabricated timestamps.
func (s *System) tsTick(nowNanos int64) {
	s.tseries.Push(s.collectTSSample(nowNanos))
}

// tsLoop is the sampler goroutine: an immediate baseline sample (the first
// push only establishes the delta base), one sample per interval, and a
// final sample on stop so short-lived systems still retain their last
// window. Started by startServers when Config.TimeSeries > 0; stopped by
// Close via tsStop.
func (s *System) tsLoop() {
	s.tsTick(time.Now().UnixNano())
	ticker := time.NewTicker(s.cfg.TimeSeriesInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.tsStop:
			s.tsTick(time.Now().UnixNano())
			return
		case <-ticker.C:
			s.tsTick(time.Now().UnixNano())
		}
	}
}

// TimeSeriesReport returns the windowed-telemetry view: rates and moving
// quantiles over the standard spans, recent windows, and SLO/alert state.
// Safe to call while transactions run; Enabled=false when Config.TimeSeries
// is off.
func (s *System) TimeSeriesReport() obs.TimeSeriesReport {
	return s.tseries.Report()
}
