package core

// mutexEngine serializes entire atomic blocks under the System's global
// mutex — the paper's coarse-grained locking strawman (Figure 1(b)). The
// critical path is exactly: acquire lock, run body, publish writes, release.
// There are no conflicts and no aborts; writes are still buffered so that a
// user abort (fn returning an error) rolls back, keeping the API semantics
// identical across engines.
type mutexEngine struct {
	sys *System
}

func (e *mutexEngine) usesSlots() bool { return false }

func (e *mutexEngine) begin(tx *Tx) {
	e.sys.mu.Lock()
	tx.direct = true
}

func (e *mutexEngine) read(tx *Tx, v *Var) (*box, bool) {
	// Unreachable: direct-mode loads bypass the engine. Kept total so the
	// engine satisfies the interface even if a future caller routes here.
	return v.loadBox(), true
}

func (e *mutexEngine) commit(tx *Tx) bool {
	if e.sys.nVers > 0 && tx.ws.len() > 0 {
		// Versioned write-back needs an odd epoch to stamp. The mutex engine
		// never touches the timestamp otherwise, so bracket the write-back
		// with an odd/even transition here, under the global lock — snapshot
		// readers then see mutex commits exactly as they see seqlock commits.
		e.sys.streams[0].ts.Add(1)
		e.sys.writeBack(tx.ws)
		e.sys.streams[0].ts.Add(1)
	} else {
		tx.ws.writeBack()
	}
	tx.direct = false
	e.sys.mu.Unlock()
	return true
}

func (e *mutexEngine) abort(tx *Tx) {
	tx.direct = false
	e.sys.mu.Unlock()
}

func (e *mutexEngine) serverTasks() []serverTask { return nil }

func (e *mutexEngine) serverStats() Stats { return Stats{} }
