package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// TestAbortReasonsSumToAborts drives every engine through a contended
// workload plus explicit user aborts and checks the taxonomy invariant: the
// conflict reasons sum exactly to Aborts, and user aborts land only in the
// AbortExplicit bucket.
func TestAbortReasonsSumToAborts(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		s := newSys(t, algo, nil)
		counter := NewVar(0)
		boom := errors.New("boom")
		const workers, per, userAbortEvery = 6, 120, 10
		var wg sync.WaitGroup
		var userAborts atomic.Uint64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < per; i++ {
					err := th.Atomically(func(tx *Tx) error {
						tx.Store(counter, tx.Load(counter).(int)+1)
						if i%userAbortEvery == 0 {
							return boom
						}
						return nil
					})
					if errors.Is(err, boom) {
						userAborts.Add(1)
					} else if err != nil {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}()
		}
		wg.Wait()
		st := s.Stats()
		if got := st.ConflictAborts(); got != st.Aborts {
			t.Fatalf("conflict reasons sum to %d, Aborts = %d (reasons %v)",
				got, st.Aborts, st.AbortReasons)
		}
		if got := st.AbortReasons[AbortExplicit]; got != userAborts.Load() {
			t.Fatalf("AbortExplicit = %d, want %d user aborts", got, userAborts.Load())
		}
		if algo == Mutex && st.Aborts != 0 {
			t.Fatalf("mutex engine recorded conflict aborts: %v", st.AbortReasons)
		}
	})
}

// TestConcurrentStatsSnapshots hammers System.Stats and Thread.Stats from a
// sampler goroutine while transactions run (the -race target for the live
// snapshot path) and checks that every counter a snapshot reports is
// monotonic across samples.
func TestConcurrentStatsSnapshots(t *testing.T) {
	for _, algo := range []Algo{NOrec, InvalSTM, RInvalV2, TL2} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			s := newSys(t, algo, nil)
			counter := NewVar(0)
			var stop atomic.Bool

			const workers, per = 4, 300
			var ths []*Thread
			for w := 0; w < workers; w++ {
				ths = append(ths, s.MustRegister())
			}
			var workersWG sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				workersWG.Add(1)
				go func() {
					defer workersWG.Done()
					for i := 0; i < per; i++ {
						_ = ths[w].Atomically(func(tx *Tx) error {
							tx.Store(counter, tx.Load(counter).(int)+1)
							return nil
						})
					}
				}()
			}

			sample := func(st Stats) [4]uint64 {
				return [4]uint64{st.Commits, st.Aborts, st.Reads, st.ConflictAborts()}
			}
			samplerDone := make(chan struct{})
			go func() {
				defer close(samplerDone)
				var lastSys, lastTh [4]uint64
				for !stop.Load() {
					cur := sample(s.Stats())
					for i := range cur {
						if cur[i] < lastSys[i] {
							t.Errorf("System.Stats counter %d went backwards: %d -> %d", i, lastSys[i], cur[i])
							return
						}
					}
					lastSys = cur
					curTh := sample(ths[0].Stats())
					for i := range curTh {
						if curTh[i] < lastTh[i] {
							t.Errorf("Thread.Stats counter %d went backwards: %d -> %d", i, lastTh[i], curTh[i])
							return
						}
					}
					lastTh = curTh
					// Throttle: an unthrottled sampler starves the workers
					// of cores on small machines.
					time.Sleep(200 * time.Microsecond)
				}
			}()

			workersWG.Wait()
			stop.Store(true)
			<-samplerDone
			for _, th := range ths {
				th.Close()
			}
			if got := counter.Peek().(int); got != workers*per {
				t.Fatalf("lost updates: %d != %d", got, workers*per)
			}
		})
	}
}

// TestTraceLifecycle runs each engine with tracing on and checks the tracer
// retains per-actor tracks with begin/tx events, server tracks for the
// remote engines, and a loadable Chrome export.
func TestTraceLifecycle(t *testing.T) {
	forEachAlgo(t, func(t *testing.T, algo Algo) {
		cfg := Config{Algo: algo, MaxThreads: 4, InvalServers: 2, StepsAhead: 2,
			Trace: true, TraceEvents: 256}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counter := NewVar(0)
		var wg sync.WaitGroup
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				th := s.MustRegister()
				defer th.Close()
				for i := 0; i < 50; i++ {
					_ = th.Atomically(func(tx *Tx) error {
						tx.Store(counter, tx.Load(counter).(int)+1)
						return nil
					})
				}
			}()
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		tr := s.Tracer()
		if tr == nil {
			t.Fatal("Trace enabled but Tracer() is nil")
		}
		names := map[string]bool{}
		for i := 0; i < tr.Actors(); i++ {
			names[tr.ActorName(i)] = true
		}
		if !names["client-0"] {
			t.Fatalf("missing client track: %v", names)
		}
		switch algo {
		case RInvalV1:
			if !names["commit-server"] {
				t.Fatalf("V1 missing commit-server track: %v", names)
			}
		case RInvalV2, RInvalV3:
			if !names["commit-server"] || !names["inval-server-0"] || !names["inval-server-1"] {
				t.Fatalf("remote engine missing server tracks: %v", names)
			}
		}
		if algo != Mutex && tr.Events() == 0 {
			t.Fatal("no events recorded")
		}

		var buf bytes.Buffer
		if err := tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
			t.Fatalf("chrome trace not valid JSON: %v", err)
		}
		if _, ok := parsed["traceEvents"]; !ok {
			t.Fatal("chrome trace missing traceEvents")
		}
	})
}

// TestTraceDisabledHasNoTracer checks the default configuration records
// nothing and exposes no tracer.
func TestTraceDisabledHasNoTracer(t *testing.T) {
	s := newSys(t, RInvalV2, nil)
	th := s.MustRegister()
	defer th.Close()
	x := NewVar(0)
	if err := th.Atomically(func(tx *Tx) error { tx.Store(x, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if s.Tracer() != nil {
		t.Fatal("Tracer() non-nil without Config.Trace")
	}
}

func TestTraceEventsValidation(t *testing.T) {
	if _, err := (Config{Trace: true, TraceEvents: 4}).withDefaults(); err == nil {
		t.Error("TraceEvents=4 accepted")
	}
	if _, err := (Config{Trace: true, TraceEvents: 1 << 23}).withDefaults(); err == nil {
		t.Error("TraceEvents=8Mi accepted")
	}
	c, err := (Config{Trace: true}).withDefaults()
	if err != nil || c.TraceEvents != obs.DefaultRingEvents {
		t.Errorf("default TraceEvents = %d, %v", c.TraceEvents, err)
	}
}

// TestServerPhaseHistograms checks the commit-server records phase timings
// when Stats is on and queue-depth samples regardless.
func TestServerPhaseHistograms(t *testing.T) {
	for _, algo := range []Algo{RInvalV1, RInvalV2, RInvalV3} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			cfg := Config{Algo: algo, MaxThreads: 4, InvalServers: 2, StepsAhead: 2, Stats: true}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := NewVar(0)
			th := s.MustRegister()
			for i := 0; i < 40; i++ {
				if err := th.Atomically(func(tx *Tx) error {
					tx.Store(x, i)
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			}
			th.Close()
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Server.QueueDepth.Count() == 0 {
				t.Fatal("no queue-depth samples")
			}
			if st.Server.ScanNs.Count() == 0 || st.Server.WriteBackNs.Count() == 0 ||
				st.Server.ReplyNs.Count() == 0 {
				t.Fatalf("phase histograms empty: scan=%d wb=%d reply=%d",
					st.Server.ScanNs.Count(), st.Server.WriteBackNs.Count(), st.Server.ReplyNs.Count())
			}
			if algo == RInvalV3 && st.Server.StepAhead.Count() == 0 {
				t.Fatal("V3 recorded no step-ahead samples")
			}
			if algo == RInvalV1 && st.Server.InvalWaitNs.Count() == 0 {
				t.Fatal("V1 recorded no inline invalidation phase")
			}
		})
	}
}

// TestAbortReasonConstantsAlias pins the core aliases to the obs taxonomy so
// a reorder in either package fails loudly.
func TestAbortReasonConstantsAlias(t *testing.T) {
	pairs := []struct {
		core, obs AbortReason
		name      string
	}{
		{AbortInvalidated, obs.AbortInvalidated, "invalidated"},
		{AbortValidation, obs.AbortValidation, "validation"},
		{AbortSelf, obs.AbortSelf, "self"},
		{AbortLocked, obs.AbortLocked, "locked"},
		{AbortExplicit, obs.AbortExplicit, "explicit"},
	}
	for _, p := range pairs {
		if p.core != p.obs || p.core.String() != p.name {
			t.Errorf("alias mismatch: %v / %v / %s", p.core, p.obs, p.name)
		}
	}
	if fmt.Sprint(NumAbortReasons) != fmt.Sprint(obs.NumAbortReasons) {
		t.Error("NumAbortReasons mismatch")
	}
}
