package core

import "github.com/ssrg-vt/rinval/internal/bloom"

// readEntry records one transactional read: the Var and the version observed.
// NOrec revalidates by comparing the Var's current version pointer against
// snap; the invalidation engines keep the log only when stats are enabled.
type readEntry struct {
	v    *Var
	snap *box
}

// readSet is an append-only log of the transaction's reads. It is reused
// across transactions on the same thread to amortize allocation.
type readSet struct {
	entries []readEntry
}

func (rs *readSet) add(v *Var, snap *box) {
	rs.entries = append(rs.entries, readEntry{v: v, snap: snap})
}

func (rs *readSet) reset() {
	// Zero the recorded entries before truncating: entries[:0] alone keeps
	// the *Var/*box pointers reachable through the backing array, pinning
	// retired data structures for as long as this thread lives.
	clear(rs.entries)
	rs.entries = rs.entries[:0]
}

func (rs *readSet) len() int { return len(rs.entries) }

// writeEntry is one buffered write: the target Var and the version to
// publish at commit.
type writeEntry struct {
	v *Var
	b *box
}

// wsetMapThreshold is the write-set size beyond which lookups switch from
// linear scan to a map. Most transactions write a handful of locations, where
// a scan over a compact slice beats map hashing.
const wsetMapThreshold = 12

// writeSet buffers a transaction's writes (lazy versioning) together with
// their bloom signature. The slice preserves program order so write-back is
// deterministic; idx accelerates read-after-write lookups for large sets.
type writeSet struct {
	entries []writeEntry
	idx     map[*Var]int
	bf      *bloom.Filter
}

func newWriteSet(p bloom.Params) *writeSet {
	return &writeSet{bf: bloom.NewFilter(p)}
}

// lookup returns the pending version for v, if any.
func (ws *writeSet) lookup(v *Var) (*box, bool) {
	if ws.idx != nil {
		if i, ok := ws.idx[v]; ok {
			return ws.entries[i].b, true
		}
		return nil, false
	}
	for i := len(ws.entries) - 1; i >= 0; i-- {
		if ws.entries[i].v == v {
			return ws.entries[i].b, true
		}
	}
	return nil, false
}

// put records a write of val to v, replacing any earlier write to v. An
// overwrite mutates the buffered box in place: the box is private to the
// write set until writeBack publishes it into the Var (lookup hands out only
// the value, never the box), so no reader can hold a reference to it yet and
// the overwrite allocates nothing.
func (ws *writeSet) put(v *Var, val any) {
	if ws.idx != nil {
		if i, ok := ws.idx[v]; ok {
			ws.entries[i].b.v = val
			return
		}
		ws.entries = append(ws.entries, writeEntry{v: v, b: &box{v: val}})
		ws.idx[v] = len(ws.entries) - 1
		ws.bf.Add(v.id)
		return
	}
	for i := range ws.entries {
		if ws.entries[i].v == v {
			ws.entries[i].b.v = val
			return
		}
	}
	ws.entries = append(ws.entries, writeEntry{v: v, b: &box{v: val}})
	ws.bf.Add(v.id)
	if len(ws.entries) > wsetMapThreshold {
		//stmlint:ignore hot-path-deep amortized one-time index build above the threshold; O(1) lookups from then on repay the allocation
		ws.idx = make(map[*Var]int, 2*len(ws.entries))
		for i, e := range ws.entries {
			ws.idx[e.v] = i
		}
	}
}

func (ws *writeSet) reset() {
	// As in readSet.reset: drop the pointers, not just the length, so
	// committed boxes and dead Vars can be collected between transactions.
	clear(ws.entries)
	ws.entries = ws.entries[:0]
	ws.idx = nil
	ws.bf.Clear()
}

func (ws *writeSet) len() int { return len(ws.entries) }

// intersects reports whether this write set's bloom signature shares a bit
// with f — the constant-time conflict test group commit uses to decide
// whether two pending requests may share an epoch.
func (ws *writeSet) intersects(f *bloom.Filter) bool {
	return ws.bf.Intersects(f)
}

// writeBack publishes every buffered version. The caller must hold the
// write-back right (global timestamp odd, or the global mutex).
func (ws *writeSet) writeBack() {
	for _, e := range ws.entries {
		e.v.storeBox(e.b)
	}
}
