package core

import (
	"sync"
	"testing"
	"unsafe"

	"github.com/ssrg-vt/rinval/internal/padded"
)

// TestActiveSetBasics exercises set/clear/has across word boundaries.
func TestActiveSetBasics(t *testing.T) {
	a := newActiveSet(130) // three words
	if len(a.words) != 3 {
		t.Fatalf("words = %d, want 3", len(a.words))
	}
	for _, i := range []int{0, 1, 63, 64, 127, 128, 129} {
		if a.has(i) {
			t.Fatalf("fresh bitmap has bit %d", i)
		}
		a.set(i)
		if !a.has(i) {
			t.Fatalf("set(%d) not visible", i)
		}
	}
	a.clear(64)
	if a.has(64) || !a.has(63) || !a.has(127) {
		t.Fatal("clear(64) affected the wrong bits")
	}
	// nextSlot peels bits in ascending order within a word.
	b := a.words[0].Load()
	if i := nextSlot(0, &b); i != 0 {
		t.Fatalf("first bit = %d, want 0", i)
	}
	if i := nextSlot(0, &b); i != 1 {
		t.Fatalf("second bit = %d, want 1", i)
	}
	if i := nextSlot(0, &b); i != 63 {
		t.Fatalf("third bit = %d, want 63", i)
	}
	if b != 0 {
		t.Fatalf("word not exhausted: %x", b)
	}
}

// TestActiveSetWordPadding: the bitmap words are padded cells, so adjacent
// words (each the begin/deactivate write traffic of 64 slots) never share a
// cache line. Mirrors the slot layout tests for the new shared structure.
func TestActiveSetWordPadding(t *testing.T) {
	a := newActiveSet(128)
	p0 := uintptr(unsafe.Pointer(&a.words[0]))
	p1 := uintptr(unsafe.Pointer(&a.words[1]))
	if d := p1 - p0; d < padded.CacheLineSize || d%padded.CacheLineSize != 0 {
		t.Fatalf("adjacent bitmap words %d bytes apart, want a positive cache-line multiple", d)
	}
	if sz := unsafe.Sizeof(a.words[0]); sz%padded.CacheLineSize != 0 {
		t.Fatalf("bitmap word cell is %d bytes, not a cache-line multiple", sz)
	}
}

// TestActiveBitmapTracksTransactions: the bit is set exactly while a
// transaction is in flight in the slot (for engines that use slots), and the
// whole bitmap is clear once the system quiesces.
func TestActiveBitmapTracksTransactions(t *testing.T) {
	for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2} {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			th := s.MustRegister()
			if s.active.has(th.idx) {
				t.Fatal("bit set before any transaction")
			}
			if err := th.Atomically(func(tx *Tx) error {
				if !s.active.has(th.idx) {
					t.Error("bit not set inside transaction")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if s.active.has(th.idx) {
				t.Fatal("bit still set after commit")
			}
			th.Close()
			for w := range s.active.words {
				if got := s.active.words[w].Load(); got != 0 {
					t.Fatalf("quiescent bitmap word %d = %x", w, got)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestActiveBitmapChurn is the concurrent doom test: client threads churn
// begin/deactivate (read-modify-writes on two shared counters, so the
// commit-time invalidation scan constantly walks the bitmap and dooms
// readers) while the scan path runs in the servers and in inline committers.
// Run under -race this checks the bitmap orderings; the final counter sum
// checks no lost updates — i.e. the bitmap never hid a live conflicting
// reader from the scan.
func TestActiveBitmapChurn(t *testing.T) {
	for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2, RInvalV3} {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 16, InvalServers: 4})
			shared := []*Var{NewVar(0), NewVar(0)}
			const workers, iters = 8, 200
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := s.MustRegister()
					defer th.Close()
					for i := 0; i < iters; i++ {
						c := shared[(w+i)%len(shared)]
						if err := th.Atomically(func(tx *Tx) error {
							tx.Store(c, tx.Load(c).(int)+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			total := shared[0].Peek().(int) + shared[1].Peek().(int)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if total != workers*iters {
				t.Errorf("lost updates: counters sum to %d, want %d (a conflicting reader escaped the scan)",
					total, workers*iters)
			}
			for w := range s.active.words {
				if got := s.active.words[w].Load(); got != 0 {
					t.Errorf("bitmap word %d = %x after quiesce", w, got)
				}
			}
		})
	}
}

// TestFlatScanMatchesTwoLevel runs the same contended workload under the
// seed scan (FlatScan) and the two-level scan and requires both to preserve
// every update — the two paths must be semantically interchangeable.
func TestFlatScanMatchesTwoLevel(t *testing.T) {
	for _, flat := range []bool{false, true} {
		name := "twolevel"
		if flat {
			name = "flat"
		}
		t.Run(name, func(t *testing.T) {
			for _, algo := range []Algo{InvalSTM, RInvalV1, RInvalV2} {
				s := MustNew(Config{Algo: algo, MaxThreads: 32, InvalServers: 4, FlatScan: flat})
				counter := NewVar(0)
				const workers, iters = 6, 150
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						th := s.MustRegister()
						defer th.Close()
						for i := 0; i < iters; i++ {
							if err := th.Atomically(func(tx *Tx) error {
								tx.Store(counter, tx.Load(counter).(int)+1)
								return nil
							}); err != nil {
								t.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				got := counter.Peek().(int)
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if got != workers*iters {
					t.Errorf("%s/%s: counter = %d, want %d", algo, name, got, workers*iters)
				}
			}
		})
	}
}

// TestStoreOverwriteZeroAllocs: the steady-state overwrite path of Tx.Store
// must not allocate — put mutates the unpublished box in place instead of
// boxing a fresh one per Store.
func TestStoreOverwriteZeroAllocs(t *testing.T) {
	for _, algo := range []Algo{Mutex, InvalSTM} {
		t.Run(algo.String(), func(t *testing.T) {
			s := MustNew(Config{Algo: algo, MaxThreads: 2})
			defer s.Close()
			th := s.MustRegister()
			defer th.Close()
			v := NewVar(0)
			// Pre-boxed value: interface conversion happens once, out here,
			// so the measurement isolates the write-set path.
			var val any = 12345
			var allocs float64
			if err := th.Atomically(func(tx *Tx) error {
				tx.Store(v, val) // first write to v buffers a fresh box
				allocs = testing.AllocsPerRun(200, func() {
					tx.Store(v, val)
				})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if allocs != 0 {
				t.Errorf("Store overwrite allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// TestReadLogSkippedWhenStatsOff: the invalidation engines only keep the
// read log for stats accounting; NOrec (and TL2) always keep it because
// revalidation replays it.
func TestReadLogSkippedWhenStatsOff(t *testing.T) {
	cases := []struct {
		algo    Algo
		stats   bool
		wantLog bool
	}{
		{InvalSTM, false, false},
		{InvalSTM, true, true},
		{RInvalV2, false, false},
		{RInvalV2, true, true},
		{NOrec, false, true},
		{NOrec, true, true},
		{TL2, false, true},
	}
	for _, c := range cases {
		s := MustNew(Config{Algo: c.algo, MaxThreads: 4, InvalServers: 2, Stats: c.stats})
		th := s.MustRegister()
		v := NewVar(7)
		var logged int
		if err := th.Atomically(func(tx *Tx) error {
			_ = tx.Load(v)
			logged = tx.rs.len()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		want := 0
		if c.wantLog {
			want = 1
		}
		if logged != want {
			t.Errorf("%s stats=%v: read log has %d entries, want %d", c.algo, c.stats, logged, want)
		}
		th.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
