// Package core implements the STM runtime and the six concurrency-control
// engines evaluated in "Remote Invalidation: Optimizing the Critical Path of
// Memory Transactions" (Hassan, Palmieri, Ravindran, IPDPS 2014):
//
//   - Mutex: a coarse global-lock baseline (the paper's Figure 1(b)).
//   - NOrec: value-based incremental validation over a single global sequence
//     lock (Dalessandro et al., PPoPP 2010) — the paper's validation-based
//     competitor.
//   - InvalSTM: commit-time invalidation (Gottschlich et al., CGO 2010), the
//     paper's Algorithm 1 — the non-remote invalidation competitor.
//   - RInvalV1: remote commit. Clients publish commit requests in cache-padded
//     slots and spin locally; a dedicated commit-server executes commits,
//     removing all CAS operations and shared-lock spinning (Algorithm 2).
//   - RInvalV2: V1 plus K invalidation-servers that run the invalidation scan
//     in parallel with the commit-server's write-back (Algorithm 3).
//   - RInvalV3: V2 plus step-ahead commit — the commit-server may run up to
//     StepsAhead commits past the slowest invalidation-server, as long as the
//     committer's own invalidation-server has caught up (Algorithm 4).
//
// All engines share one object model: transactional state lives in Vars
// (boxed values published through an atomic pointer), transactions buffer
// writes (lazy versioning) and publish them at commit, and consistency is
// anchored on a global even/odd timestamp (sequence lock). The invalidation
// engines additionally give every registered thread a cache-padded slot
// holding its status word and an atomically readable read bloom filter.
//
// # Opacity
//
// Every engine guarantees opacity. For NOrec this is the classic argument:
// reads are accepted only when the global timestamp is even and unchanged
// across the value load, and the whole read set is revalidated (by value)
// whenever the timestamp moved. For the invalidation engines the argument is:
//
//  1. A reader publishes its read-filter bit *before* its final timestamp
//     stability check. Go atomics are sequentially consistent, so if the
//     reader did not observe a committer's timestamp transition, the
//     committer's subsequent filter scan observes the reader's bit.
//  2. A read is accepted only when the timestamp is even (no write-back in
//     progress) and — for V2/V3 — equal to the reader's own
//     invalidation-server timestamp, i.e. every prior commit's invalidation
//     pass over this reader's slot has completed. Hence if any prior commit
//     conflicted with this transaction, its status word is already
//     INVALIDATED when the read checks it, and the transaction aborts before
//     observing a state newer than its earlier reads.
//
// # Epoch-guarded invalidation
//
// Status words pack a per-slot epoch with the status bits. Servers doom a
// transaction with a CAS against the exact word they observed, so an
// invalidation aimed at a finished transaction can never kill its successor.
// The reverse race (a server intersecting a freshly cleared filter) can only
// suppress a doom that is no longer needed, or doom spuriously — both safe.
package core
