package core

import (
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/internal/obs"
)

// goldenFamilies is the complete expected set of OpenMetrics families when
// every observability layer is on (attribution, latency, server histograms,
// windowed telemetry with SLOs). Renaming or dropping a family is a breaking
// change for scrapers — update this list deliberately.
var goldenFamilies = []string{
	"stm_commits", "stm_aborts", "stm_readonly", "stm_ro_commits",
	"stm_ro_fallbacks", "stm_attribution_enabled", "stm_wasted_ns",
	"stm_wasted_ops", "stm_bloom_fp_checks", "stm_bloom_fp", "stm_conflicts",
	"stm_hot_var_samples",
	"stm_latency_enabled", "stm_latency_sampled_commits", "stm_latency_ns",
	"stm_server_phase_ns", "stm_server_queue_depth", "stm_server_step_ahead",
	"stm_batch_size",
	"stm_timeseries_enabled", "stm_timeseries_windows", "stm_rate",
	"stm_window_quantile_ns", "stm_slo_burn", "stm_slo_firing",
	"stm_slo_alerts",
}

// expositionFor builds one engine's full /metrics page, exactly as the
// benchmark harness publishes it.
func expositionFor(t *testing.T, algo Algo, mutate func(*Config)) string {
	t.Helper()
	s := newSys(t, algo, func(c *Config) {
		c.Attribution = true
		c.LatencySampleEvery = 1
		c.TimeSeries = 16
		c.TimeSeriesInterval = time.Minute // quiet sampler; ticks driven below
		c.SLOs = []obs.SLO{{
			Kind: obs.SLOAbortRate, MaxRate: 0.2,
			Fast: 2 * time.Minute, Slow: 4 * time.Minute,
		}}
		if mutate != nil {
			mutate(c)
		}
	})
	th := s.MustRegister()
	v := NewVar(0)
	for i := 0; i < 40; i++ {
		if err := th.Atomically(func(tx *Tx) error {
			tx.Store(v, tx.Load(v).(int)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ { // read-only traffic for the ro families
		if err := th.Atomically(func(tx *Tx) error {
			_ = tx.Load(v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce before reading: ServerPhaseHistograms (via ShardServerStats)
	// reads the server goroutines' histograms unsynchronized and is only
	// valid once they have joined. Close is idempotent, so the newSys
	// cleanup's second Close is a no-op.
	th.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.tsTick(time.Now().UnixNano())
	rep := s.TimeSeriesReport()
	page := obs.MetricsPage{
		Conflict:   s.ConflictReport(),
		Latency:    s.LatencyReport(),
		Server:     s.ServerPhaseHistograms(),
		TimeSeries: &rep,
	}
	var b strings.Builder
	page.WriteOpenMetrics(&b)
	return b.String()
}

// typeFamilies extracts the `# TYPE <name> <type>` declarations in order.
func typeFamilies(exposition string) []string {
	var fams []string
	for _, line := range strings.Split(exposition, "\n") {
		if f, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fams = append(fams, strings.Fields(f)[0])
		}
	}
	return fams
}

// TestOpenMetricsExpositionGolden pins the full metric surface per engine
// family: the exact family set, plus engine-distinguishing labels (shard
// children only under Config.Shards > 1).
func TestOpenMetricsExpositionGolden(t *testing.T) {
	cases := []struct {
		name   string
		algo   Algo
		mutate func(*Config)
		want   []string // substrings that must appear
		absent []string // substrings that must not
	}{
		{
			name: "norec", algo: NOrec,
			want: []string{
				`stm_aborts_total{reason="invalidated"}`,
				`side="client"`, // latency histogram children
				`stm_rate{metric="commits",window=`,
				`stm_slo_burn{slo="abort-rate",window="fast"}`,
				"stm_timeseries_enabled 1",
			},
			absent: []string{`shard="`},
		},
		{
			name: "invalstm", algo: InvalSTM,
			want:   []string{`stm_aborts_total{reason="invalidated"}`, `stm_slo_firing{slo="abort-rate"}`},
			absent: []string{`shard="`},
		},
		{
			name: "rinval-v2-sharded-mv", algo: RInvalV2,
			mutate: func(c *Config) { c.Shards = 2; c.Versions = 4 },
			want: []string{
				`shard="0"`, `shard="1"`, // one server-histogram child set per shard
				`stm_server_phase_ns`, `phase="scan"`,
				"stm_ro_commits",
				`stm_window_quantile_ns{phase="total",q="0.99",window=`,
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out := expositionFor(t, tc.algo, tc.mutate)
			got := typeFamilies(out)
			sortedGot := append([]string(nil), got...)
			sortedWant := append([]string(nil), goldenFamilies...)
			sort.Strings(sortedGot)
			sort.Strings(sortedWant)
			if strings.Join(sortedGot, ",") != strings.Join(sortedWant, ",") {
				t.Errorf("family set drifted:\n got %v\nwant %v", sortedGot, sortedWant)
			}
			seen := map[string]bool{}
			for _, f := range got {
				if seen[f] {
					t.Errorf("family %s declared twice", f)
				}
				seen[f] = true
			}
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("exposition missing %q", w)
				}
			}
			for _, a := range tc.absent {
				if strings.Contains(out, a) {
					t.Errorf("exposition unexpectedly contains %q", a)
				}
			}
		})
	}
}

// TestOpenMetricsHelpConformance: every # TYPE declaration is immediately
// preceded by a # HELP line for the same family (the family() helper's
// invariant, checked over the real full exposition).
func TestOpenMetricsHelpConformance(t *testing.T) {
	out := expositionFor(t, RInvalV2, func(c *Config) { c.Shards = 2; c.Versions = 4 })
	lines := strings.Split(out, "\n")
	types := 0
	for i, line := range lines {
		f, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		types++
		name := strings.Fields(f)[0]
		if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP "+name+" ") {
			t.Errorf("family %s has no # HELP line immediately before its # TYPE", name)
		}
		if help := strings.TrimPrefix(lines[i-1], "# HELP "+name+" "); strings.TrimSpace(help) == "" {
			t.Errorf("family %s has an empty # HELP text", name)
		}
	}
	if types != len(goldenFamilies) {
		t.Errorf("declared %d families, want %d", types, len(goldenFamilies))
	}
}
