package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// SLOBurnOpts parameterizes the SLO burn-rate experiment: two runs of the
// same engine under the windowed telemetry engine with declared objectives.
// The control run works disjoint per-client Vars for the whole duration and
// must stay silent (zero alerts — the multi-window rule's false-positive
// guarantee). The phase-change run works disjoint Vars for Steady, then
// every client hammers one shared Var for Spike: the abort rate jumps from
// ~0 to ~(n-1)/n, the fast and slow windows both burn the error budget, and
// the abort-rate SLO must alert — while the deliberately generous latency
// SLO stays silent in both runs.
type SLOBurnOpts struct {
	Algo     stm.Algo      // engine under test (default RInvalV2)
	Clients  int           // worker goroutines (default 6)
	Interval time.Duration // sampling window (default 25ms)
	Steady   time.Duration // disjoint-keys phase (default 1.2s)
	Spike    time.Duration // shared-key phase (default 900ms)
	Seed     uint64
}

// withDefaults fills unset knobs.
func (o SLOBurnOpts) withDefaults() SLOBurnOpts {
	if o.Algo == 0 {
		o.Algo = stm.RInvalV2
	}
	if o.Clients == 0 {
		o.Clients = 6
	}
	if o.Interval == 0 {
		o.Interval = 25 * time.Millisecond
	}
	if o.Steady == 0 {
		o.Steady = 1200 * time.Millisecond
	}
	if o.Spike == 0 {
		o.Spike = 900 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// slos returns the experiment's objectives, sized in sampling windows: the
// fast window spans 8 intervals, the slow 24. The abort-rate objective is
// tight enough that the planted phase change must trip it; the latency
// objective is generous enough that neither run may.
func (o SLOBurnOpts) slos() []stm.SLO {
	fast, slow := 8*o.Interval, 24*o.Interval
	return []stm.SLO{
		{Kind: stm.SLOAbortRate, MaxRate: 0.15, Fast: fast, Slow: slow},
		{Kind: stm.SLOLatencyP99, MaxNs: uint64(50 * time.Millisecond), Fast: fast, Slow: slow},
	}
}

// SLOBurnRun is one run's outcome.
type SLOBurnRun struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
	Commits    uint64 `json:"commits"`
	Aborts     uint64 `json:"aborts"`
	// AbortRate is the whole-run cumulative rate, for contrast with the
	// windowed rates the alerts are evaluated on.
	AbortRate float64 `json:"abort_rate"`
	Windows   int     `json:"windows"`
	// PhaseChangeUnixNanos timestamps the planted workload flip (0 on the
	// control run); AlertsBefore/AlertsAfter classify alerts against it.
	PhaseChangeUnixNanos int64           `json:"phase_change_unix_nanos,omitempty"`
	AlertsBefore         int             `json:"alerts_before_change"`
	AlertsAfter          int             `json:"alerts_after_change"`
	Alerts               []stm.SLOAlert  `json:"alerts,omitempty"`
	SLOs                 []stm.SLOStatus `json:"slos"`
	// Recent is the trailing window list (oldest first): the rate shift and
	// the burn crossing, readable straight out of the JSON.
	Recent []stm.TSWindowReport `json:"recent,omitempty"`
}

// SLOBurnReport is the full experiment, serialized to BENCH_slo_burn.json.
type SLOBurnReport struct {
	Algo       string     `json:"algo"`
	Clients    int        `json:"clients"`
	IntervalNs int64      `json:"interval_ns"`
	SteadyNs   int64      `json:"steady_ns"`
	SpikeNs    int64      `json:"spike_ns"`
	Objectives []stm.SLO  `json:"objectives"`
	Workload   string     `json:"workload"`
	Control    SLOBurnRun `json:"control"`
	PhaseShift SLOBurnRun `json:"phase_change"`
}

// RunSLOBurn executes both runs and cross-checks the expected outcome:
// the control must record zero alerts, the phase-change run at least one
// abort-rate alert after the flip and none before it.
func RunSLOBurn(o SLOBurnOpts) (*SLOBurnReport, error) {
	o = o.withDefaults()
	rep := &SLOBurnReport{
		Algo:       o.Algo.String(),
		Clients:    o.Clients,
		IntervalNs: int64(o.Interval),
		SteadyNs:   int64(o.Steady),
		SpikeNs:    int64(o.Spike),
		Objectives: o.slos(),
		Workload:   "read-modify-write: one private Var per client; the phase-change run flips every client onto one shared Var",
	}
	var err error
	if rep.Control, err = runSLOBurnRun("steady-control", o, false); err != nil {
		return nil, err
	}
	if rep.PhaseShift, err = runSLOBurnRun("phase-change", o, true); err != nil {
		return nil, err
	}
	if n := len(rep.Control.Alerts); n != 0 {
		return nil, fmt.Errorf("bench: sloburn control run recorded %d alerts, want 0 (false positives)", n)
	}
	if rep.PhaseShift.AlertsBefore != 0 {
		return nil, fmt.Errorf("bench: sloburn phase-change run alerted %d times before the flip", rep.PhaseShift.AlertsBefore)
	}
	if rep.PhaseShift.AlertsAfter == 0 {
		return nil, fmt.Errorf("bench: sloburn phase-change run never alerted after the flip")
	}
	return rep, nil
}

// runSLOBurnRun drives one run: Steady of disjoint work, then (withSpike)
// Spike of fully shared work.
func runSLOBurnRun(name string, o SLOBurnOpts, withSpike bool) (SLOBurnRun, error) {
	inv := o.Clients
	if inv > 4 {
		inv = 4
	}
	// Ring sized to retain the whole run plus slack, so the report's window
	// list covers both phases end to end.
	capacity := int((o.Steady+o.Spike)/o.Interval) + 16
	sys, err := stm.New(stm.Config{
		Algo:               o.Algo,
		MaxThreads:         o.Clients,
		InvalServers:       inv,
		TimeSeries:         capacity,
		TimeSeriesInterval: o.Interval,
		SLOs:               o.slos(),
		LatencySampleEvery: 4,
		Seed:               o.Seed,
	})
	if err != nil {
		return SLOBurnRun{}, err
	}
	liveSys.Store(sys) // -metrics serves this run's expvar view (stmtop's sparkline panel)
	private := make([]*stm.Var[int], o.Clients)
	for i := range private {
		private[i] = stm.NewVar(0)
	}
	shared := stm.NewVar(0)
	ths := make([]*stm.Thread, o.Clients)
	for i := range ths {
		if ths[i], err = sys.Register(); err != nil {
			sys.Close()
			return SLOBurnRun{}, err
		}
	}
	var spike, stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, o.Clients)
	start := time.Now()
	for w := 0; w < o.Clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			clientLabeled(w, func() {
				for !stop.Load() {
					v := private[w]
					if spike.Load() {
						v = shared
					}
					errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
						x := v.Load(tx)
						v.Store(tx, x+1)
						return nil
					})
					if errs[w] != nil {
						return
					}
				}
			})
		}()
	}
	time.Sleep(o.Steady)
	var changeNs int64
	if withSpike {
		changeNs = time.Now().UnixNano()
		spike.Store(true)
	}
	time.Sleep(o.Spike)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i := range ths {
		ths[i].Close()
	}
	st := sys.Stats()
	liveSys.CompareAndSwap(sys, nil)
	// Close first: the sampler takes a final window on shutdown, so the
	// report read below retains the tail of the spike.
	if err := sys.Close(); err != nil {
		return SLOBurnRun{}, err
	}
	for _, e := range errs {
		if e != nil {
			return SLOBurnRun{}, e
		}
	}
	ts := sys.TimeSeriesReport()
	run := SLOBurnRun{
		Name:                 name,
		DurationNs:           elapsed.Nanoseconds(),
		Commits:              st.Commits,
		Aborts:               st.Aborts,
		AbortRate:            st.AbortRate(),
		Windows:              ts.Windows,
		PhaseChangeUnixNanos: changeNs,
		Alerts:               ts.Alerts,
		SLOs:                 ts.SLOs,
		Recent:               ts.Recent,
	}
	for _, a := range ts.Alerts {
		if changeNs != 0 && a.UnixNanos >= changeNs {
			run.AlertsAfter++
		} else {
			run.AlertsBefore++
		}
	}
	return run, nil
}

// WriteJSON serializes the report.
func (r *SLOBurnReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// Format renders both runs as an aligned table plus the alert log.
func (r *SLOBurnReport) Format(w io.Writer) {
	fmt.Fprintf(w, "SLO burn-rate monitor: %s, %d clients, %v windows (fast %v / slow %v)\n",
		r.Algo, r.Clients, time.Duration(r.IntervalNs),
		8*time.Duration(r.IntervalNs), 24*time.Duration(r.IntervalNs))
	fmt.Fprintf(w, "workload: %s\n", r.Workload)
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "run\tcommits\taborts\tabort rate\twindows\talerts(before/after)")
	for _, run := range []*SLOBurnRun{&r.Control, &r.PhaseShift} {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%d\t%d/%d\n",
			run.Name, run.Commits, run.Aborts, run.AbortRate, run.Windows,
			run.AlertsBefore, run.AlertsAfter)
	}
	tw.Flush()
	for _, a := range r.PhaseShift.Alerts {
		fmt.Fprintf(w, "alert: %s at window seq %d — fast %.1fx, slow %.1fx (threshold %.1fx), window abort rate %.2f\n",
			a.SLO, a.Seq, a.FastBurn, a.SlowBurn, a.Burn, a.Window.AbortRate)
	}
	for _, s := range r.PhaseShift.SLOs {
		fmt.Fprintf(w, "slo %s (%s): firing=%v fast=%.2fx slow=%.2fx alerts=%d\n",
			s.Name, s.Objective, s.Firing, s.FastBurn, s.SlowBurn, s.Alerts)
	}
}
