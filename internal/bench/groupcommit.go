package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/stm"
)

// GroupCommitOpts parameterizes the group-commit contention sweep: a
// disjoint blind-write workload (each client updates only its own Vars, so
// every pending request is batch-compatible) run over a grid of client
// counts and MaxBatch settings. The interesting output is epochs per
// committed transaction: with MaxBatch=1 it is exactly 1 (the paper's
// protocol), with batching enabled it drops toward 1/MaxBatch as the
// commit-server absorbs whole queues of compatible requests into single
// timestamp transitions.
type GroupCommitOpts struct {
	Clients []int // client-thread counts to sweep
	Batches []int // MaxBatch settings to sweep
	Iters   int   // committed write transactions per client
	VarsPer int   // private Vars per client (default 4)
}

// GroupCommitPoint is one (algo, clients, MaxBatch) measurement.
type GroupCommitPoint struct {
	Algo            string         `json:"algo"`
	Clients         int            `json:"clients"`
	MaxBatch        int            `json:"max_batch"`
	DurationNs      int64          `json:"duration_ns"`
	Commits         uint64         `json:"commits"`
	Epochs          uint64         `json:"epochs"`
	EpochsPerCommit float64        `json:"epochs_per_commit"`
	KTxPerSec       float64        `json:"ktx_per_sec"`
	MeanBatch       float64        `json:"mean_batch"`
	MaxBatchSeen    uint64         `json:"max_batch_seen"`
	BatchHistogram  []histo.Bucket `json:"batch_histogram,omitempty"`
	// Server holds the commit-server's per-epoch phase distributions
	// (queue depth at batch collection, then the scan, invalidation-wait,
	// write-back, and reply phases in nanoseconds).
	Server []PhaseHistogram `json:"server_phases,omitempty"`
}

// PhaseHistogram is one commit-server phase distribution in the JSON report.
type PhaseHistogram struct {
	Phase   string         `json:"phase"`
	Count   uint64         `json:"count"`
	Mean    float64        `json:"mean"`
	Max     uint64         `json:"max"`
	Buckets []histo.Bucket `json:"buckets,omitempty"`
}

// phaseHistograms flattens the Stats.Server histograms, skipping empty ones.
func phaseHistograms(st *stm.Stats) []PhaseHistogram {
	named := []struct {
		name string
		h    *histo.Histogram
	}{
		{"queue_depth", &st.Server.QueueDepth},
		{"scan_ns", &st.Server.ScanNs},
		{"inval_wait_ns", &st.Server.InvalWaitNs},
		{"write_back_ns", &st.Server.WriteBackNs},
		{"reply_ns", &st.Server.ReplyNs},
		{"step_ahead", &st.Server.StepAhead},
	}
	var out []PhaseHistogram
	for _, n := range named {
		if n.h.Count() == 0 {
			continue
		}
		out = append(out, PhaseHistogram{
			Phase:   n.name,
			Count:   n.h.Count(),
			Mean:    n.h.Mean(),
			Max:     n.h.Max(),
			Buckets: n.h.NonEmptyBuckets(),
		})
	}
	return out
}

// GroupCommitReport is the full sweep, serialized to BENCH_group_commit.json.
type GroupCommitReport struct {
	Workload string             `json:"workload"`
	Iters    int                `json:"iters_per_client"`
	Points   []GroupCommitPoint `json:"points"`
}

// RunGroupCommit executes the sweep on the live engines. Commits are counted
// by the harness (clients × iters, every transaction commits — the workload
// is conflict-free by construction), epochs come from the commit-server's
// counters after Close.
func RunGroupCommit(algos []stm.Algo, o GroupCommitOpts) (*GroupCommitReport, error) {
	if o.Iters < 1 {
		return nil, fmt.Errorf("bench: group-commit iters must be >= 1")
	}
	if o.VarsPer == 0 {
		o.VarsPer = 4
	}
	rep := &GroupCommitReport{
		Workload: fmt.Sprintf("disjoint blind writes, %d private vars per client", o.VarsPer),
		Iters:    o.Iters,
	}
	for _, algo := range algos {
		for _, clients := range o.Clients {
			for _, mb := range o.Batches {
				p, err := runGroupCommitPoint(algo, clients, mb, o)
				if err != nil {
					return nil, err
				}
				rep.Points = append(rep.Points, p)
			}
		}
	}
	return rep, nil
}

func runGroupCommitPoint(algo stm.Algo, clients, maxBatch int, o GroupCommitOpts) (GroupCommitPoint, error) {
	sys, err := stm.New(stm.Config{
		Algo:         algo,
		MaxThreads:   clients,
		InvalServers: min(4, clients),
		MaxBatch:     maxBatch,
		// Phase timing on: the sweep's JSON reports the commit-server's
		// per-epoch scan/inval-wait/write-back/reply distributions.
		Stats: true,
	})
	if err != nil {
		return GroupCommitPoint{}, err
	}

	// Pre-register so measurement covers only transactional work.
	ths := make([]*stm.Thread, clients)
	for i := range ths {
		ths[i], err = sys.Register()
		if err != nil {
			sys.Close()
			return GroupCommitPoint{}, err
		}
	}
	vars := make([][]*stm.Var[int], clients)
	for i := range vars {
		vars[i] = make([]*stm.Var[int], o.VarsPer)
		for j := range vars[i] {
			vars[i][j] = stm.NewVar(0)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := vars[w]
			for i := 0; i < o.Iters; i++ {
				errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
					mine[i%len(mine)].Store(tx, i)
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, th := range ths {
		th.Close()
	}
	if err := sys.Close(); err != nil {
		return GroupCommitPoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return GroupCommitPoint{}, e
		}
	}

	commits := uint64(clients) * uint64(o.Iters)
	st := sys.Stats() // post-Close: includes the commit-server's counters
	p := GroupCommitPoint{
		Algo:           algo.String(),
		Clients:        clients,
		MaxBatch:       maxBatch,
		DurationNs:     elapsed.Nanoseconds(),
		Commits:        commits,
		Epochs:         st.Epochs,
		KTxPerSec:      float64(commits) / elapsed.Seconds() / 1e3,
		MeanBatch:      st.BatchSizes.Mean(),
		MaxBatchSeen:   st.BatchSizes.Max(),
		BatchHistogram: st.BatchSizes.NonEmptyBuckets(),
		Server:         phaseHistograms(&st),
	}
	if commits > 0 {
		p.EpochsPerCommit = float64(st.Epochs) / float64(commits)
	}
	return p, nil
}

// WriteJSON serializes the report with stable indentation.
func (r *GroupCommitReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format writes a human-readable table of the sweep.
func (r *GroupCommitReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== Group commit: %s (%d tx/client) ==\n", r.Workload, r.Iters)
	fmt.Fprintf(w, "%-12s %8s %9s %12s %10s %10s %14s %10s\n",
		"algo", "clients", "maxbatch", "ktx/s", "commits", "epochs", "epochs/commit", "meanbatch")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12s %8d %9d %12.1f %10d %10d %14.3f %10.2f\n",
			p.Algo, p.Clients, p.MaxBatch, p.KTxPerSec, p.Commits, p.Epochs,
			p.EpochsPerCommit, p.MeanBatch)
	}
	fmt.Fprintln(w)
}
