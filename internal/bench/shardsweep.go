package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/internal/sim"
	"github.com/ssrg-vt/rinval/stm"
)

// ShardSweepOpts parameterizes the sharded-commit-stream sweep. The sweep has
// two phases, mirroring the repository's sim/live split (results/README.md):
//
//   - Sim: the deterministic 64-core model, where S independent commit-server
//     pipelines actually run on S dedicated modeled cores. This phase carries
//     the scaling claim (single-shard commit throughput vs Config.Shards),
//     which the live CI host cannot measure — a single physical core
//     timeshares the "parallel" servers.
//   - Live: the real engines on this machine. This phase anchors correctness
//     and overhead: the S=1 points must match the group-commit baseline
//     (sharding off is the paper-exact code path), and the S>1 points account
//     every cross-shard commit through the two-phase handshake.
//
// Both phases use the same disjoint-key blind-write workload as the
// group-commit sweep, with MaxBatch=1 so one epoch retires exactly one commit
// and epochs/sec equals commit throughput.
type ShardSweepOpts struct {
	Shards     []int     // shard counts to sweep (default 1,2,4,8)
	SimThreads []int     // sim phase: modeled client counts (default 16,64)
	CrossFracs []float64 // fraction of commits spanning two shards (default 0, 0.1)

	LiveShards  []int // live phase: shard counts (default 1,4)
	LiveClients []int // live phase: client threads (default 1,16,64)
	Iters       int   // live phase: committed transactions per client
	VarsPer     int   // live phase: private vars per client per shard (default 4)
	Seed        uint64
}

func (o *ShardSweepOpts) defaults() {
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
	if len(o.SimThreads) == 0 {
		o.SimThreads = []int{16, 64}
	}
	if len(o.CrossFracs) == 0 {
		o.CrossFracs = []float64{0, 0.10}
	}
	if len(o.LiveShards) == 0 {
		o.LiveShards = []int{1, 4}
	}
	if len(o.LiveClients) == 0 {
		o.LiveClients = []int{1, 16, 64}
	}
	if o.VarsPer == 0 {
		o.VarsPer = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ShardSimPoint is one (engine, shards, threads, cross-frac) measurement on
// the modeled 64-core machine.
type ShardSimPoint struct {
	Algo         string  `json:"algo"`
	Shards       int     `json:"shards"`
	Threads      int     `json:"threads"`
	CrossFrac    float64 `json:"cross_frac"`
	Commits      uint64  `json:"commits"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
	KTxPerSec    float64 `json:"ktx_per_sec"`
	AbortRate    float64 `json:"abort_rate"`
	// SpeedupVsS1 is EpochsPerSec relative to the Shards=1 point of the same
	// (algo, threads, cross-frac) — the acceptance number.
	SpeedupVsS1 float64 `json:"speedup_vs_s1"`
}

// ShardStreamStats is one commit stream's share of a live point.
type ShardStreamStats struct {
	Shard             int    `json:"shard"`
	Commits           uint64 `json:"commits"`
	Epochs            uint64 `json:"epochs"`
	CrossShardCommits uint64 `json:"cross_shard_commits"`
}

// ShardLivePoint is one (engine, shards, clients, cross-frac) measurement on
// the real engines.
type ShardLivePoint struct {
	Algo              string             `json:"algo"`
	Shards            int                `json:"shards"`
	Clients           int                `json:"clients"`
	CrossFrac         float64            `json:"cross_frac"`
	DurationNs        int64              `json:"duration_ns"`
	Commits           uint64             `json:"commits"`
	Epochs            uint64             `json:"epochs"`
	CrossShardCommits uint64             `json:"cross_shard_commits"`
	KTxPerSec         float64            `json:"ktx_per_sec"`
	EpochsPerSec      float64            `json:"epochs_per_sec"`
	PerShard          []ShardStreamStats `json:"per_shard,omitempty"`
	// Server holds shard 0's per-epoch phase distributions (representative;
	// the sweep keeps the report compact by not repeating all S shards').
	Server []PhaseHistogram `json:"server_phases,omitempty"`
}

// ShardSweepReport is the full sweep, serialized to BENCH_shard_sweep.json.
type ShardSweepReport struct {
	Workload   string           `json:"workload"`
	SimNote    string           `json:"sim_note"`
	LiveNote   string           `json:"live_note"`
	Iters      int              `json:"iters_per_client"`
	SimPoints  []ShardSimPoint  `json:"sim_points"`
	LivePoints []ShardLivePoint `json:"live_points"`
}

// RunShardSweep executes both phases.
func RunShardSweep(algos []stm.Algo, o ShardSweepOpts) (*ShardSweepReport, error) {
	if o.Iters < 1 {
		return nil, fmt.Errorf("bench: shard-sweep iters must be >= 1")
	}
	o.defaults()
	rep := &ShardSweepReport{
		Workload: fmt.Sprintf("disjoint blind writes, MaxBatch=1, %d private vars per client per shard", o.VarsPer),
		SimNote: "deterministic 64-core model: S commit streams on S dedicated cores, " +
			"InvalServers=2*S (constant per-stream invalidation capacity)",
		LiveNote: "this host (GOMAXPROCS-bound): S=1 is the paper-exact single-stream path " +
			"and must match BENCH_group_commit.json maxbatch=1 within noise",
		Iters: o.Iters,
	}
	for _, algo := range algos {
		simEng, err := sim.ParseEngine(algo.String())
		if err != nil {
			return nil, err
		}
		for _, cf := range o.CrossFracs {
			for _, th := range o.SimThreads {
				base := 0.0
				for _, s := range o.Shards {
					p := runShardSimPoint(simEng, s, th, cf, o.Seed)
					if s == 1 {
						base = p.EpochsPerSec
					}
					if base > 0 {
						p.SpeedupVsS1 = p.EpochsPerSec / base
					}
					rep.SimPoints = append(rep.SimPoints, p)
				}
			}
		}
	}
	for _, algo := range algos {
		for _, cf := range o.CrossFracs {
			for _, clients := range o.LiveClients {
				for _, s := range o.LiveShards {
					p, err := runShardLivePoint(algo, s, clients, cf, o)
					if err != nil {
						return nil, err
					}
					rep.LivePoints = append(rep.LivePoints, p)
				}
			}
		}
	}
	return rep, nil
}

// runShardSimPoint runs one configuration of the modeled machine. The
// workload is conflict-free (disjoint keys), write-only, and memory-bound —
// the regime where the single commit stream is the bottleneck.
func runShardSimPoint(e sim.Engine, shards, threads int, crossFrac float64, seed uint64) ShardSimPoint {
	w := sim.Workload{
		Name:           "disjoint",
		Reads:          4,
		Writes:         4,
		PerReadWork:    60,
		NonTxWork:      400,
		CrossShardFrac: crossFrac,
	}
	c := sim.DefaultConfig(e, threads)
	c.Shards = shards
	c.InvalServers = 2 * shards
	c.Seed = seed
	p := sim.DefaultParams()
	r := sim.MustRun(p, w, c)
	seconds := float64(r.Cycles) / (p.GHz * 1e9)
	return ShardSimPoint{
		Algo:      e.String(),
		Shards:    shards,
		Threads:   threads,
		CrossFrac: crossFrac,
		Commits:   r.Commits,
		// Every commit is a writer (ReadOnlyFrac=0) retiring through exactly
		// one epoch (MaxBatch=1 semantics), so epochs/sec = commits/sec.
		EpochsPerSec: float64(r.Commits) / seconds,
		KTxPerSec:    r.ThroughputKTxPerSec(p),
		AbortRate:    r.AbortRate(),
	}
}

// runShardLivePoint runs one configuration of the real engines. Each client
// owns VarsPer private vars pinned to its home shard (client mod S) and
// VarsPer pinned to the next shard; a cross-frac share of its transactions
// writes one var from each set, exercising the two-phase handshake without
// introducing conflicts.
func runShardLivePoint(algo stm.Algo, shards, clients int, crossFrac float64, o ShardSweepOpts) (ShardLivePoint, error) {
	// S=1 is configured exactly like the group-commit baseline so the parity
	// check is apples-to-apples; S>1 keeps two invalidation-servers per
	// stream and sizes the slot array up to satisfy InvalServers <= MaxThreads
	// at small client counts.
	maxThreads, invalServers := clients, min(4, clients)
	if shards > 1 {
		invalServers = 2 * shards
		maxThreads = max(clients, invalServers)
	}
	sys, err := stm.New(stm.Config{
		Algo:         algo,
		MaxThreads:   maxThreads,
		Shards:       shards,
		InvalServers: invalServers,
		MaxBatch:     1, // one epoch per commit: epochs/sec is commit throughput
		Stats:        true,
	})
	if err != nil {
		return ShardLivePoint{}, err
	}
	ths := make([]*stm.Thread, clients)
	for i := range ths {
		ths[i], err = sys.Register()
		if err != nil {
			sys.Close()
			return ShardLivePoint{}, err
		}
	}
	home := make([][]*stm.Var[int], clients)
	away := make([][]*stm.Var[int], clients)
	for w := range home {
		home[w] = shardPinnedVars(sys, w%shards, o.VarsPer)
		away[w] = shardPinnedVars(sys, (w+1)%shards, o.VarsPer)
	}
	// Deterministic, evenly spread cross-shard iterations.
	crossPeriod := 0
	if crossFrac > 0 {
		crossPeriod = int(1/crossFrac + 0.5)
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for w := 0; w < clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine, theirs := home[w], away[w]
			for i := 0; i < o.Iters; i++ {
				cross := crossPeriod > 0 && i%crossPeriod == 0
				errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
					mine[i%len(mine)].Store(tx, i)
					if cross {
						theirs[i%len(theirs)].Store(tx, i)
					}
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, th := range ths {
		th.Close()
	}
	if err := sys.Close(); err != nil {
		return ShardLivePoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return ShardLivePoint{}, e
		}
	}

	commits := uint64(clients) * uint64(o.Iters)
	st := sys.Stats() // post-Close: includes every shard server's counters
	p := ShardLivePoint{
		Algo:              algo.String(),
		Shards:            shards,
		Clients:           clients,
		CrossFrac:         crossFrac,
		DurationNs:        elapsed.Nanoseconds(),
		Commits:           commits,
		Epochs:            st.Epochs,
		CrossShardCommits: st.CrossShardCommits,
		KTxPerSec:         float64(commits) / elapsed.Seconds() / 1e3,
		EpochsPerSec:      float64(st.Epochs) / elapsed.Seconds(),
	}
	for j, sst := range sys.ShardServerStats() {
		p.PerShard = append(p.PerShard, ShardStreamStats{
			Shard:             j,
			Commits:           sst.Commits,
			Epochs:            sst.Epochs,
			CrossShardCommits: sst.CrossShardCommits,
		})
		if j == 0 {
			p.Server = phaseHistograms(&sst)
		}
	}
	return p, nil
}

// shardPinnedVars allocates n fresh Vars that all hash to the given shard.
// Var ids hash uniformly, so each pinned Var costs ~S allocations; discarded
// candidates are just garbage.
func shardPinnedVars(sys *stm.System, shard, n int) []*stm.Var[int] {
	out := make([]*stm.Var[int], 0, n)
	for len(out) < n {
		v := stm.NewVar(0)
		if stm.ShardOf(sys, v) == shard {
			out = append(out, v)
		}
	}
	return out
}

// WriteJSON serializes the report with stable indentation.
func (r *ShardSweepReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format writes human-readable tables of both phases.
func (r *ShardSweepReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== Shard sweep (sim): %s ==\n", r.SimNote)
	fmt.Fprintf(w, "%-12s %7s %8s %6s %14s %12s %8s\n",
		"algo", "shards", "threads", "cross", "epochs/s", "ktx/s", "vs S=1")
	for _, p := range r.SimPoints {
		fmt.Fprintf(w, "%-12s %7d %8d %6.2f %14.0f %12.1f %7.2fx\n",
			p.Algo, p.Shards, p.Threads, p.CrossFrac, p.EpochsPerSec, p.KTxPerSec, p.SpeedupVsS1)
	}
	fmt.Fprintf(w, "\n== Shard sweep (live): %s (%d tx/client) ==\n", r.Workload, r.Iters)
	fmt.Fprintf(w, "%-12s %7s %8s %6s %14s %12s %10s %8s\n",
		"algo", "shards", "clients", "cross", "epochs/s", "ktx/s", "epochs", "xshard")
	for _, p := range r.LivePoints {
		fmt.Fprintf(w, "%-12s %7d %8d %6.2f %14.0f %12.1f %10d %8d\n",
			p.Algo, p.Shards, p.Clients, p.CrossFrac, p.EpochsPerSec, p.KTxPerSec,
			p.Epochs, p.CrossShardCommits)
	}
	fmt.Fprintln(w)
}
