package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ssrg-vt/rinval/stm"
)

// TestRunGroupCommit runs a tiny sweep and checks the report's invariants:
// commits are exact (conflict-free workload), MaxBatch=1 burns one epoch per
// commit, and batching never exceeds the cap or the commit count.
func TestRunGroupCommit(t *testing.T) {
	rep, err := RunGroupCommit([]stm.Algo{stm.RInvalV1, stm.RInvalV2},
		GroupCommitOpts{Clients: []int{1, 4}, Batches: []int{1, 4}, Iters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2*2*2 {
		t.Fatalf("points = %d, want 8", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Commits != uint64(p.Clients)*50 {
			t.Errorf("%s c=%d mb=%d: commits = %d, want %d",
				p.Algo, p.Clients, p.MaxBatch, p.Commits, p.Clients*50)
		}
		if p.MaxBatch == 1 && p.Epochs != p.Commits {
			t.Errorf("%s c=%d mb=1: epochs = %d, want %d (one per commit)",
				p.Algo, p.Clients, p.Epochs, p.Commits)
		}
		if p.Epochs > p.Commits {
			t.Errorf("%s c=%d mb=%d: epochs %d > commits %d",
				p.Algo, p.Clients, p.MaxBatch, p.Epochs, p.Commits)
		}
		if p.MaxBatchSeen > uint64(p.MaxBatch) {
			t.Errorf("%s c=%d mb=%d: batch of %d exceeds cap",
				p.Algo, p.Clients, p.MaxBatch, p.MaxBatchSeen)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round GroupCommitReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.Points) != len(rep.Points) {
		t.Fatalf("round-trip lost points: %d != %d", len(round.Points), len(rep.Points))
	}
}
