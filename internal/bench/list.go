package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/internal/sim"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// ListOpts parameterizes the sorted linked-list micro-benchmark — the
// paper's §I/§II motivating workload: every traversed node is monitored, so
// the read set grows linearly with the key range and NOrec's incremental
// validation grows quadratically while invalidation stays linear.
type ListOpts struct {
	Keys     int // key range; list pre-filled to half occupancy
	ReadPct  int // lookup percentage; rest split insert/delete
	Duration time.Duration
	Seed     uint64
}

// RunList executes the list micro-benchmark on a fresh System.
func RunList(algo stm.Algo, threads int, o ListOpts) (Row, error) {
	if o.Keys < 2 || threads < 1 {
		return Row{}, fmt.Errorf("bench: bad list options")
	}
	sys, err := stm.New(stm.Config{
		Algo:         algo,
		MaxThreads:   threads + 1,
		InvalServers: min(4, threads+1),
		Seed:         o.Seed,
	})
	if err != nil {
		return Row{}, err
	}
	defer sys.Close()

	list := ds.NewList()
	setup := sys.MustRegister()
	fill := stamp.NewRand(o.Seed, 7)
	for i := 0; i < o.Keys/2; i++ {
		k := fill.Intn(o.Keys)
		if err := setup.Atomically(func(tx *stm.Tx) error {
			list.Insert(tx, k, k)
			return nil
		}); err != nil {
			setup.Close()
			return Row{}, err
		}
	}
	setup.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, threads)
	start := time.Now()
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := sys.Register()
			if err != nil {
				errs[w] = err
				return
			}
			defer th.Close()
			rng := stamp.NewRand(o.Seed, uint64(w)+2000)
			for !stop.Load() {
				k := rng.Intn(o.Keys)
				op := rng.Intn(100)
				errs[w] = th.Atomically(func(tx *stm.Tx) error {
					switch {
					case op < o.ReadPct:
						list.Contains(tx, k)
					case op < o.ReadPct+(100-o.ReadPct)/2:
						list.Insert(tx, k, k)
					default:
						list.Delete(tx, k)
					}
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			return Row{}, e
		}
	}
	st := sys.Stats()
	return Row{
		Algo:      algo.String(),
		Threads:   threads,
		Elapsed:   elapsed,
		Commits:   st.Commits,
		Aborts:    st.Aborts,
		KTxPerSec: float64(st.Commits) / elapsed.Seconds() / 1e3,
	}, nil
}

// LiveAblationReadSetSize sweeps the list key range on the live engines:
// longer traversals mean larger read sets. The paper's §II claim is that
// commit-time invalidation converts quadratic incremental validation into
// linear work, which is exactly what grows here.
func LiveAblationReadSetSize(keyRanges []int, threads int, dur time.Duration, seed uint64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Ablation: read-set size via list key range (live, %d threads)", threads),
		Note:  "longer chains -> larger read sets; invalidation reads stay O(1) per element while NOrec revalidates the whole prefix",
	}
	for _, keys := range keyRanges {
		for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
			o := ListOpts{Keys: keys, ReadPct: 80, Duration: clampDuration(dur, 10*time.Millisecond, time.Minute), Seed: seed}
			row, err := RunList(a, threads, o)
			if err != nil {
				return nil, err
			}
			row.Algo = fmt.Sprintf("%s/keys=%d", a, keys)
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// SimAblationReadSetSize sweeps the transaction read-set size on the
// modeled machine, holding everything else fixed.
func SimAblationReadSetSize(readSets []int, threads int, seed uint64) *Table {
	p := sim.DefaultParams()
	t := &Table{
		Title: fmt.Sprintf("Ablation: validation cost vs read-set size (%d threads, simulated)", threads),
		Note:  "NOrec revalidation is O(prefix) per timestamp move; invalidation reads are O(1)",
	}
	for _, n := range readSets {
		w := sim.ListTraversal(n)
		for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
			c := sim.DefaultConfig(simEngine(a), threads)
			c.Seed = seed
			r := simRow(sim.MustRun(p, w, c), p)
			r.Algo = fmt.Sprintf("%s/reads=%d", a, n)
			t.Rows = append(t.Rows, r)
		}
	}
	return t
}
