package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/container/rbtree"
	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// LatencyRow is one engine's per-transaction latency distribution.
type LatencyRow struct {
	Algo    string
	Threads int
	Count   uint64
	Mean    time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// LatencyTable holds a latency-profile experiment.
type LatencyTable struct {
	Title string
	Note  string
	Rows  []LatencyRow
}

// Format writes an aligned latency table.
func (t *LatencyTable) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	fmt.Fprintf(w, "%-12s %8s %10s %10s %10s %10s %10s %10s\n",
		"algo", "threads", "txs", "mean", "p50", "p90", "p99", "max")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s %8d %10d %10s %10s %10s %10s %10s\n",
			r.Algo, r.Threads, r.Count,
			fmtDur(r.Mean), fmtDur(r.P50), fmtDur(r.P90), fmtDur(r.P99), fmtDur(r.Max))
	}
	fmt.Fprintln(w)
}

// LiveLatencyProfile measures the per-transaction latency distribution of a
// write transaction (insert/delete on the red-black tree) under each
// engine. Remote commit trades a longer round trip per commit for immunity
// to shared-lock convoys — a distribution property that throughput averages
// hide.
func LiveLatencyProfile(algos []stm.Algo, threads int, dur time.Duration, seed uint64) (*LatencyTable, error) {
	t := &LatencyTable{
		Title: fmt.Sprintf("Latency profile: red-black tree update transactions (live, %d threads)", threads),
		Note:  "wall time per committed transaction, including retries",
	}
	for _, algo := range algos {
		row, err := runLatency(algo, threads, dur, seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runLatency(algo stm.Algo, threads int, dur time.Duration, seed uint64) (LatencyRow, error) {
	sys, err := stm.New(stm.Config{
		Algo:         algo,
		MaxThreads:   threads + 1,
		InvalServers: min(4, threads+1),
		Seed:         seed,
	})
	if err != nil {
		return LatencyRow{}, err
	}
	defer sys.Close()

	tree := rbtree.New()
	setup := sys.MustRegister()
	fill := stamp.NewRand(seed, 3)
	const keys = 4096
	for i := 0; i < keys/2; i++ {
		k := fill.Intn(keys)
		if err := setup.Atomically(func(tx *stm.Tx) error {
			tree.Insert(tx, k, k)
			return nil
		}); err != nil {
			setup.Close()
			return LatencyRow{}, err
		}
	}
	setup.Close()

	hists := make([]histo.Histogram, threads)
	errs := make([]error, threads)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := sys.Register()
			if err != nil {
				errs[w] = err
				return
			}
			defer th.Close()
			rng := stamp.NewRand(seed, uint64(w)+500)
			for !stop.Load() {
				k := rng.Intn(keys)
				ins := rng.Intn(2) == 0
				t0 := time.Now()
				errs[w] = th.Atomically(func(tx *stm.Tx) error {
					if ins {
						tree.Insert(tx, k, k)
					} else {
						tree.Delete(tx, k)
					}
					return nil
				})
				hists[w].Record(uint64(time.Since(t0)))
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	time.Sleep(clampDuration(dur, 10*time.Millisecond, time.Minute))
	stop.Store(true)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return LatencyRow{}, e
		}
	}
	var all histo.Histogram
	for i := range hists {
		all.Merge(&hists[i])
	}
	return LatencyRow{
		Algo:    algo.String(),
		Threads: threads,
		Count:   all.Count(),
		Mean:    time.Duration(all.Mean()),
		P50:     time.Duration(all.Quantile(0.5)),
		P90:     time.Duration(all.Quantile(0.9)),
		P99:     time.Duration(all.Quantile(0.99)),
		Max:     time.Duration(all.Max()),
	}, nil
}
