package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

func TestLiveLatencyProfileSmoke(t *testing.T) {
	tbl, err := LiveLatencyProfile([]stm.Algo{stm.NOrec, stm.RInvalV2}, 2, 25*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.Count == 0 {
			t.Fatalf("%s: no transactions", r.Algo)
		}
		if r.P50 > r.P90 || r.P90 > r.P99 || r.P99 > r.Max {
			t.Fatalf("%s: quantiles not monotone: %+v", r.Algo, r)
		}
		if r.Mean <= 0 {
			t.Fatalf("%s: zero mean", r.Algo)
		}
	}
}

func TestLatencyTableFormat(t *testing.T) {
	tbl := &LatencyTable{
		Title: "t",
		Note:  "n",
		Rows: []LatencyRow{{
			Algo: "norec", Threads: 2, Count: 10,
			Mean: time.Microsecond, P50: time.Microsecond,
			P90: 2 * time.Microsecond, P99: 3 * time.Microsecond, Max: time.Millisecond,
		}},
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	for _, want := range []string{"norec", "p99", "1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
