package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/ssrg-vt/rinval/internal/plot"
)

// ChartKind selects which measurement a chart plots.
type ChartKind int

const (
	// ChartThroughput plots K tx/s vs threads (Figure 7 style).
	ChartThroughput ChartKind = iota
	// ChartElapsed plots execution time in milliseconds vs threads
	// (Figure 8 style).
	ChartElapsed
)

// Chart converts the table into an SVG-renderable line chart with one
// series per algorithm over the thread axis.
func (t *Table) Chart(kind ChartKind) *plot.Chart {
	byAlgo := map[string][]Row{}
	var order []string
	for _, r := range t.Rows {
		if _, seen := byAlgo[r.Algo]; !seen {
			order = append(order, r.Algo)
		}
		byAlgo[r.Algo] = append(byAlgo[r.Algo], r)
	}
	c := &plot.Chart{Title: t.Title, XLabel: "threads"}
	switch kind {
	case ChartElapsed:
		c.YLabel = "execution time (ms)"
	default:
		c.YLabel = "K transactions / second"
	}
	for _, algo := range order {
		rows := byAlgo[algo]
		sort.Slice(rows, func(i, j int) bool { return rows[i].Threads < rows[j].Threads })
		s := plot.Series{Name: algo}
		for _, r := range rows {
			s.X = append(s.X, float64(r.Threads))
			switch kind {
			case ChartElapsed:
				s.Y = append(s.Y, r.Elapsed.Seconds()*1e3)
			default:
				s.Y = append(s.Y, r.KTxPerSec)
			}
		}
		c.Series = append(c.Series, s)
	}
	return c
}

// RenderSVG writes the table's chart as SVG.
func (t *Table) RenderSVG(w io.Writer, kind ChartKind) error {
	return t.Chart(kind).Render(w)
}

// SVGFileName derives a filesystem-friendly name from the table title.
func (t *Table) SVGFileName() string {
	name := strings.ToLower(t.Title)
	if i := strings.IndexAny(name, ":,"); i > 0 {
		name = name[:i]
	}
	name = strings.TrimSpace(name)
	var b strings.Builder
	lastDash := false
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return fmt.Sprintf("%s.svg", strings.TrimSuffix(b.String(), "-"))
}
