// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V): the red-black tree throughput
// curves (Figure 7), the critical-path breakdowns (Figures 2-3), the STAMP
// execution times (Figure 8), and the ablations called out in DESIGN.md.
//
// Each experiment can run in two modes:
//
//   - live: the real STM engines execute the real workloads on this
//     machine's Go runtime. Correct on any core count, but the paper's
//     cache-contention effects require many physical cores to show.
//   - sim: the internal/sim discrete-event model of the paper's 64-core
//     testbed. Deterministic, core-count-independent, reproduces the
//     figures' shapes.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// Row is one measurement: an (algorithm, thread count) cell of a figure.
type Row struct {
	Algo    string
	Threads int
	// KTxPerSec is throughput in thousands of transactions per second
	// (Figure 7's unit). For execution-time figures it is derived from
	// Elapsed and Commits.
	KTxPerSec float64
	// Elapsed is the workload execution time (Figure 8's unit).
	Elapsed time.Duration
	Commits uint64
	Aborts  uint64
	// Breakdown fractions of busy time (Figures 2-3). Zero when the run
	// did not collect phase timing.
	ReadFrac, CommitFrac, AbortFrac, OtherFrac float64
}

// Table is a formatted experiment result.
type Table struct {
	Title string
	Note  string
	Rows  []Row
}

// Format writes an aligned, human-readable table.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	hasBreakdown := false
	for _, r := range t.Rows {
		if r.ReadFrac+r.CommitFrac+r.AbortFrac+r.OtherFrac > 0 {
			hasBreakdown = true
			break
		}
	}
	if hasBreakdown {
		fmt.Fprintf(w, "%-12s %8s %12s %10s %7s %7s %7s %7s %7s\n",
			"algo", "threads", "ktx/s", "elapsed", "aborts", "read%", "commit%", "abort%", "other%")
	} else {
		fmt.Fprintf(w, "%-12s %8s %12s %10s %10s %10s\n",
			"algo", "threads", "ktx/s", "elapsed", "commits", "aborts")
	}
	for _, r := range t.Rows {
		if hasBreakdown {
			fmt.Fprintf(w, "%-12s %8d %12.1f %10s %7d %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
				r.Algo, r.Threads, r.KTxPerSec, fmtDur(r.Elapsed), r.Aborts,
				100*r.ReadFrac, 100*r.CommitFrac, 100*r.AbortFrac, 100*r.OtherFrac)
		} else {
			fmt.Fprintf(w, "%-12s %8d %12.1f %10s %10d %10d\n",
				r.Algo, r.Threads, r.KTxPerSec, fmtDur(r.Elapsed), r.Commits, r.Aborts)
		}
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values with a header.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, "algo,threads,ktx_per_sec,elapsed_ns,commits,aborts,read_frac,commit_frac,abort_frac,other_frac")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s,%d,%.3f,%d,%d,%d,%.4f,%.4f,%.4f,%.4f\n",
			r.Algo, r.Threads, r.KTxPerSec, r.Elapsed.Nanoseconds(), r.Commits, r.Aborts,
			r.ReadFrac, r.CommitFrac, r.AbortFrac, r.OtherFrac)
	}
}

// Sort orders rows by (algo presentation order, threads) for stable output.
func (t *Table) Sort() {
	order := map[string]int{}
	for i, a := range stm.Algos {
		order[a.String()] = i
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i], t.Rows[j]
		if order[a.Algo] != order[b.Algo] {
			return order[a.Algo] < order[b.Algo]
		}
		return a.Threads < b.Threads
	})
}

// Series returns the throughput values for one algorithm ordered by thread
// count — convenient for shape assertions in tests.
func (t *Table) Series(algo string) []float64 {
	var rows []Row
	for _, r := range t.Rows {
		if r.Algo == algo {
			rows = append(rows, r)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Threads < rows[j].Threads })
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r.KTxPerSec
	}
	return out
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}

// ParseThreads parses a comma-separated thread list like "1,2,4,8".
func ParseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bench: bad thread count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: empty thread list")
	}
	return out, nil
}
