package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// ConflictOpts parameterizes the conflict-attribution sweep: a fixed client
// count runs a skewed read-write mix over shared Var pools of decreasing size
// (the contention knob) on each invalidation-based engine, with
// Config.Attribution on. The interesting outputs are the attribution layer's
// own measurements — bloom false-positive rate, hot-var skew, wasted-work
// fraction — under conditions where ground truth is intuitive: smaller pools
// mean more true conflicts, and the hot subset must dominate the top-K table.
type ConflictOpts struct {
	Algos    []stm.Algo // engines to sweep (default: the four invalidation engines)
	Clients  int        // concurrent client threads (default 8)
	Iters    int        // committed transactions per client
	VarPools []int      // shared-pool sizes, the contention axis (default 8, 64, 512)
	Seed     uint64     // workload rng seed (default 1)
}

// ConflictPoint is one (algo, pool-size) measurement.
type ConflictPoint struct {
	Algo               string       `json:"algo"`
	Vars               int          `json:"vars"`
	Clients            int          `json:"clients"`
	DurationNs         int64        `json:"duration_ns"`
	Commits            uint64       `json:"commits"`
	Aborts             uint64       `json:"aborts"`
	AbortRate          float64      `json:"abort_rate"` // aborts / attempts
	InvalidationAborts uint64       `json:"invalidation_aborts"`
	UnknownShare       float64      `json:"unknown_share"` // matrix unknown-row fraction
	FPSampled          uint64       `json:"fp_sampled"`
	FPRate             float64      `json:"fp_rate"`
	FilterBits         int          `json:"filter_bits"`
	Top4Share          float64      `json:"top4_share"` // hot-var skew: top-4 sample share
	HotVars            []stm.HotVar `json:"hot_vars,omitempty"`
	WastedNs           uint64       `json:"wasted_ns"`
	WastedFraction     float64      `json:"wasted_fraction"` // of total client time
}

// ConflictReport is the full sweep, serialized to BENCH_conflict_attr.json.
type ConflictReport struct {
	Workload string          `json:"workload"`
	Clients  int             `json:"clients"`
	Iters    int             `json:"iters_per_client"`
	Points   []ConflictPoint `json:"points"`
}

// RunConflict executes the attribution sweep on the live engines.
func RunConflict(o ConflictOpts) (*ConflictReport, error) {
	if o.Iters < 1 {
		return nil, fmt.Errorf("bench: conflict iters must be >= 1")
	}
	if len(o.Algos) == 0 {
		o.Algos = []stm.Algo{stm.InvalSTM, stm.RInvalV1, stm.RInvalV2, stm.RInvalV3}
	}
	if o.Clients == 0 {
		o.Clients = 8
	}
	if len(o.VarPools) == 0 {
		o.VarPools = []int{8, 64, 512}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	rep := &ConflictReport{
		Workload: "skewed read-write mix: 3 reads + 1 write per tx, half of accesses to a pool/8 hot subset",
		Clients:  o.Clients,
		Iters:    o.Iters,
	}
	for _, pool := range o.VarPools {
		for _, algo := range o.Algos {
			p, err := runConflictPoint(algo, pool, o)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, p)
		}
	}
	return rep, nil
}

// conflictHotVars labels the hot subset so the report's top-K table carries
// names — the NewVarNamed path the dashboard displays.
func conflictHotVars(pool int) ([]*stm.Var[int], int) {
	hot := max(1, pool/8)
	vars := make([]*stm.Var[int], pool)
	for i := range vars {
		if i < hot {
			vars[i] = stm.NewVarNamed(0, fmt.Sprintf("hot-%d", i))
		} else {
			vars[i] = stm.NewVar(0)
		}
	}
	return vars, hot
}

func runConflictPoint(algo stm.Algo, pool int, o ConflictOpts) (ConflictPoint, error) {
	sys, err := stm.New(stm.Config{
		Algo:            algo,
		MaxThreads:      o.Clients,
		Attribution:     true,
		AttrSampleEvery: 4,
	})
	if err != nil {
		return ConflictPoint{}, err
	}
	liveSys.Store(sys) // -metrics serves this point's /metrics and expvar view

	vars, hot := conflictHotVars(pool)
	ths := make([]*stm.Thread, o.Clients)
	for i := range ths {
		if ths[i], err = sys.Register(); err != nil {
			sys.Close()
			return ConflictPoint{}, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, o.Clients)
	start := time.Now()
	for w := 0; w < o.Clients; w++ {
		w := w
		wg.Add(1)
		go clientLabeled(w, func() {
			defer wg.Done()
			rng := o.Seed + uint64(w)*0x9e3779b97f4a7c15
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			// Half of all accesses land in the hot subset: the skew the
			// top-K table must recover.
			pick := func() *stm.Var[int] {
				if next(2) == 0 {
					return vars[next(hot)]
				}
				return vars[next(pool)]
			}
			for i := 0; i < o.Iters; i++ {
				errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
					sum := 0
					for r := 0; r < 3; r++ {
						sum += pick().Load(tx)
					}
					pick().Store(tx, sum+1)
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		})
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Snapshot attribution before Close: the report is defined while the
	// system is alive (threads are quiescent, so the counters are stable).
	cr := sys.ConflictReport()
	for _, th := range ths {
		th.Close()
	}
	if err := finishTrace(sys); err != nil {
		return ConflictPoint{}, err
	}
	if err := sys.Close(); err != nil {
		return ConflictPoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return ConflictPoint{}, e
		}
	}

	var unknown uint64
	if len(cr.Matrix) == cr.Slots+1 {
		for _, n := range cr.Matrix[cr.Slots] {
			unknown += n
		}
	}
	p := ConflictPoint{
		Algo:               algo.String(),
		Vars:               pool,
		Clients:            o.Clients,
		DurationNs:         elapsed.Nanoseconds(),
		Commits:            cr.Commits,
		Aborts:             cr.Aborts,
		InvalidationAborts: cr.InvalidationAborts,
		FPSampled:          cr.FP.Sampled,
		FPRate:             cr.FP.Rate,
		FilterBits:         cr.FilterBits,
		Top4Share:          cr.TopKShare(4),
		WastedNs:           sumWasted(cr.WastedNs),
	}
	if n := len(cr.HotVars); n > 4 {
		p.HotVars = cr.HotVars[:4]
	} else {
		p.HotVars = cr.HotVars
	}
	if attempts := cr.Commits + cr.Aborts; attempts > 0 {
		p.AbortRate = float64(cr.Aborts) / float64(attempts)
	}
	if cr.InvalidationAborts > 0 {
		p.UnknownShare = float64(unknown) / float64(cr.InvalidationAborts)
	}
	if wall := uint64(o.Clients) * uint64(elapsed.Nanoseconds()); wall > 0 {
		p.WastedFraction = float64(p.WastedNs) / float64(wall)
	}
	return p, nil
}

func sumWasted(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

// WriteJSON serializes the report with stable indentation.
func (r *ConflictReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format writes a human-readable table of the sweep.
func (r *ConflictReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== Conflict attribution: %s (%d clients, %d tx each) ==\n",
		r.Workload, r.Clients, r.Iters)
	fmt.Fprintf(w, "%-10s %6s %10s %10s %8s %10s %8s %10s %8s\n",
		"algo", "vars", "commits", "invaborts", "unk%", "fp rate", "top4", "wasted%", "abort%")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-10s %6d %10d %10d %8.1f %10.4f %8.2f %10.2f %8.2f\n",
			p.Algo, p.Vars, p.Commits, p.InvalidationAborts, p.UnknownShare*100,
			p.FPRate, p.Top4Share, p.WastedFraction*100, p.AbortRate*100)
	}
	fmt.Fprintln(w)
}
