package bench

import (
	"fmt"
	"time"

	"github.com/ssrg-vt/rinval/internal/sim"
	"github.com/ssrg-vt/rinval/stm"
)

// STM engines compared in the paper's plots (Mutex is the Figure 1 strawman
// and is reported by the ablation experiments only).
var figureAlgos = []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV1, stm.RInvalV2}

// simEngine maps a live engine to its simulator model.
func simEngine(a stm.Algo) sim.Engine {
	switch a {
	case stm.Mutex:
		return sim.Mutex
	case stm.NOrec:
		return sim.NOrec
	case stm.InvalSTM:
		return sim.InvalSTM
	case stm.RInvalV1:
		return sim.RInvalV1
	case stm.RInvalV2:
		return sim.RInvalV2
	default:
		return sim.RInvalV3
	}
}

func simRow(r sim.Result, p sim.Params) Row {
	read, commit, abort, other := r.Breakdown()
	return Row{
		Algo:       r.Engine.String(),
		Threads:    r.Threads,
		KTxPerSec:  r.ThroughputKTxPerSec(p),
		Elapsed:    time.Duration(float64(r.Cycles) / (p.GHz * 1e9) * float64(time.Second)),
		Commits:    r.Commits,
		Aborts:     r.Aborts,
		ReadFrac:   read,
		CommitFrac: commit,
		AbortFrac:  abort,
		OtherFrac:  other,
	}
}

// SimFigure7 regenerates Figure 7 (red-black tree throughput, 64K elements)
// on the modeled 64-core machine for the given lookup percentage.
func SimFigure7(readPct int, threads []int, seed uint64) *Table {
	p := sim.DefaultParams()
	w := sim.RBTree(readPct)
	t := &Table{
		Title: fmt.Sprintf("Figure 7 (%d%% reads): red-black tree throughput, simulated 64-core machine", readPct),
		Note:  "K transactions/second; shapes match the paper, absolute numbers are synthetic",
	}
	for _, a := range figureAlgos {
		for _, n := range threads {
			c := sim.DefaultConfig(simEngine(a), n)
			c.Seed = seed
			t.Rows = append(t.Rows, simRow(sim.MustRun(p, w, c), p))
		}
	}
	t.Sort()
	return t
}

// SimFigure2 regenerates Figure 2 (red-black tree critical-path breakdown,
// NOrec vs InvalSTM, normalized) at the paper's thread counts.
func SimFigure2(threads []int, seed uint64) *Table {
	p := sim.DefaultParams()
	w := sim.RBTree(50)
	t := &Table{
		Title: "Figure 2: validation/commit/other breakdown on red-black tree (simulated)",
		Note:  "read% includes validation; other% is non-transactional work",
	}
	for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM} {
		for _, n := range threads {
			c := sim.DefaultConfig(simEngine(a), n)
			c.Seed = seed
			t.Rows = append(t.Rows, simRow(sim.MustRun(p, w, c), p))
		}
	}
	t.Sort()
	return t
}

// SimFigure3 regenerates Figure 3 (STAMP breakdown, NOrec vs InvalSTM) on
// the modeled machine.
func SimFigure3(threads int, seed uint64) *Table {
	p := sim.DefaultParams()
	t := &Table{
		Title: fmt.Sprintf("Figure 3: STAMP critical-path breakdown at %d threads (simulated)", threads),
	}
	for _, app := range sim.STAMPNames {
		w, _ := sim.STAMP(app)
		for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM} {
			c := sim.DefaultConfig(simEngine(a), threads)
			c.Seed = seed
			r := simRow(sim.MustRun(p, w, c), p)
			r.Algo = app + "/" + r.Algo
			t.Rows = append(t.Rows, r)
		}
	}
	return t
}

// SimFigure8 regenerates Figure 8 (STAMP execution time) for one app: the
// time to complete a fixed transaction budget, derived from simulated
// throughput.
func SimFigure8(app string, threads []int, seed uint64) (*Table, error) {
	w, ok := sim.STAMP(app)
	if !ok {
		return nil, fmt.Errorf("bench: unknown sim app %q", app)
	}
	p := sim.DefaultParams()
	t := &Table{
		Title: fmt.Sprintf("Figure 8 (%s): execution time, simulated 64-core machine", app),
		Note:  "elapsed = time to retire a fixed transaction budget at the simulated rate",
	}
	const budget = 200_000 // transactions per run
	for _, a := range figureAlgos {
		for _, n := range threads {
			c := sim.DefaultConfig(simEngine(a), n)
			c.Seed = seed
			r := sim.MustRun(p, w, c)
			row := simRow(r, p)
			if r.Commits > 0 {
				perTx := float64(r.Cycles) / float64(r.Commits)
				row.Elapsed = time.Duration(perTx * budget / (p.GHz * 1e9) * float64(time.Second))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Sort()
	return t, nil
}

// SimAblationInvalServers sweeps the invalidation-server count for
// RInval-V2 (the paper's §IV-B observation that 4-8 suffice on 64 cores).
func SimAblationInvalServers(counts []int, threads int, seed uint64) *Table {
	p := sim.DefaultParams()
	w := sim.RBTree(50)
	t := &Table{
		Title: fmt.Sprintf("Ablation: RInval-V2 invalidation servers at %d threads (simulated)", threads),
	}
	for _, k := range counts {
		c := sim.DefaultConfig(sim.RInvalV2, threads)
		c.InvalServers = k
		c.Seed = seed
		r := simRow(sim.MustRun(p, w, c), p)
		r.Algo = fmt.Sprintf("v2/k=%d", k)
		t.Rows = append(t.Rows, r)
	}
	return t
}

// SimAblationJitter compares engines with OS jitter on and off — the
// paper's §IV-A argument that a descheduled commit executor blocks everyone
// while a dedicated commit-server does not.
func SimAblationJitter(threads int, seed uint64) *Table {
	w := sim.RBTree(50)
	t := &Table{
		Title: fmt.Sprintf("Ablation: OS jitter sensitivity at %d threads (simulated)", threads),
		Note:  "jitter deschedules lock holders; RInval servers are pinned and exempt",
	}
	for _, jitter := range []bool{false, true} {
		p := sim.DefaultParams()
		if !jitter {
			p.JitterProb = 0
		} else {
			p.JitterProb = 0.002
		}
		for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
			c := sim.DefaultConfig(simEngine(a), threads)
			c.Seed = seed
			r := simRow(sim.MustRun(p, w, c), p)
			if jitter {
				r.Algo += "+jitter"
			}
			t.Rows = append(t.Rows, r)
		}
	}
	return t
}

// SimAblationCoarseVsFine compares the coarse-grained family against the
// TL2-style fine-grained baseline (per-location locks) on the modeled
// machine — the paper's §III locking-granularity trade-off.
func SimAblationCoarseVsFine(threads []int, seed uint64) *Table {
	p := sim.DefaultParams()
	w := sim.RBTree(50)
	t := &Table{
		Title: "Ablation: coarse-grained family vs fine-grained TL2 (simulated)",
		Note:  "TL2 has no global serialization point but pays per-write CAS traffic and commit-time validation",
	}
	for _, e := range []sim.Engine{sim.NOrec, sim.RInvalV2, sim.TL2} {
		for _, n := range threads {
			c := sim.DefaultConfig(e, n)
			c.Seed = seed
			t.Rows = append(t.Rows, simRow(sim.MustRun(p, w, c), p))
		}
	}
	return t
}

// SimAblationStepsAhead compares RInval-V2 against RInval-V3 with injected
// invalidation-server lag (the paper's §IV-C scenario: one server delayed by
// OS scheduling or paging). Without lag V3 ~= V2, matching the paper's
// decision to withhold V3's curves.
func SimAblationStepsAhead(steps []int, threads int, seed uint64) *Table {
	p := sim.DefaultParams()
	p.InvalLagProb = 0.05
	p.InvalLagCycles = 5_000
	w := sim.RBTree(50)
	t := &Table{
		Title: fmt.Sprintf("Ablation: V3 step-ahead window under invalidation-server lag (%d threads, simulated)", threads),
		Note:  "one server stalls 5K cycles on 5% of commits; V2 blocks each time, V3's window absorbs stalls up to ~steps x commit service",
	}
	c := sim.DefaultConfig(sim.RInvalV2, threads)
	c.Seed = seed
	r := simRow(sim.MustRun(p, w, c), p)
	r.Algo = "v2"
	t.Rows = append(t.Rows, r)
	for _, s := range steps {
		c := sim.DefaultConfig(sim.RInvalV3, threads)
		c.StepsAhead = s
		c.Seed = seed
		r := simRow(sim.MustRun(p, w, c), p)
		r.Algo = fmt.Sprintf("v3/steps=%d", s)
		t.Rows = append(t.Rows, r)
	}
	return t
}

// LiveFigure7 runs the real engines on the real tree on this machine.
func LiveFigure7(readPct int, threads []int, dur time.Duration, seed uint64) (*Table, error) {
	o := DefaultRBTreeOpts()
	o.ReadPct = readPct
	o.Duration = clampDuration(dur, 10*time.Millisecond, time.Minute)
	o.Seed = seed
	o.Keys = 16 * 1024 // scaled for CI-class machines
	t := &Table{
		Title: fmt.Sprintf("Figure 7 (%d%% reads): red-black tree throughput, live on this machine", readPct),
		Note:  "live numbers depend on GOMAXPROCS; see sim mode for paper-shape curves",
	}
	for _, a := range figureAlgos {
		for _, n := range threads {
			row, err := RunRBTree(a, n, o)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Sort()
	return t, nil
}

// LiveFigure2 collects the live phase breakdown on the red-black tree.
func LiveFigure2(threads []int, dur time.Duration, seed uint64) (*Table, error) {
	o := DefaultRBTreeOpts()
	o.Duration = clampDuration(dur, 10*time.Millisecond, time.Minute)
	o.Seed = seed
	o.Keys = 16 * 1024
	o.Stats = true
	t := &Table{
		Title: "Figure 2: validation/commit/other breakdown on red-black tree, live",
	}
	for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
		for _, n := range threads {
			row, err := RunRBTree(a, n, o)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Sort()
	return t, nil
}

// LiveFigure8 runs one live STAMP app across engines and thread counts.
func LiveFigure8(app string, threads []int, scale Scale, seed uint64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Figure 8 (%s): execution time, live on this machine", app),
	}
	for _, a := range figureAlgos {
		for _, n := range threads {
			row, err := RunSTAMP(a, app, n, scale, seed)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Sort()
	return t, nil
}

// LiveAblationBloomBits sweeps the signature size for RInval-V2 on the live
// tree: smaller filters mean more false conflicts, hence more spurious
// invalidations and aborts. RInval is used (rather than InvalSTM) because
// its commit round-trip interleaves with readers on any core count, so
// false conflicts actually manifest.
func LiveAblationBloomBits(bits []int, threads int, dur time.Duration, seed uint64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Ablation: bloom filter size (live, rinval-v2, %d threads)", threads),
		Note:  "smaller filters -> more false conflicts -> more aborts",
	}
	for _, b := range bits {
		o := DefaultRBTreeOpts()
		o.Duration = clampDuration(dur, 10*time.Millisecond, time.Minute)
		o.Seed = seed
		o.Keys = 4 * 1024
		o.BloomBits = b
		row, err := RunRBTree(stm.RInvalV2, threads, o)
		if err != nil {
			return nil, err
		}
		row.Algo = fmt.Sprintf("rinval-v2/%db", b)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
