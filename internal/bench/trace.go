package bench

import (
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"sync/atomic"

	"github.com/ssrg-vt/rinval/internal/obs"
	"github.com/ssrg-vt/rinval/stm"
)

// tracePath, when non-empty, makes every live benchmark run with
// Config.Trace set and write a Chrome trace-event file after it quiesces.
// Sweeps overwrite the file per point, so it holds the last point run —
// useful with a single-point invocation (one algo, one thread count).
var tracePath string

// TraceTo directs live benchmark runs to record lifecycle traces into the
// Chrome trace-event file at path ("" disables). Not safe to call
// concurrently with a running benchmark.
func TraceTo(path string) { tracePath = path }

// liveSys is the most recently started benchmark System, exposed to the
// expvar metrics endpoint so `-metrics` shows live counters mid-run.
var liveSys atomic.Pointer[stm.System]

func init() {
	obs.Publish("stm", func() any {
		sys := liveSys.Load()
		if sys == nil {
			return nil
		}
		st := sys.Stats()
		reasons := map[string]uint64{}
		for _, r := range obs.AbortReasons {
			reasons[r.String()] = st.AbortReasons[r]
		}
		return map[string]any{
			"algo":          sys.Algo().String(),
			"commits":       st.Commits,
			"aborts":        st.Aborts,
			"abort_reasons": reasons,
			"self_aborts":   st.SelfAborts,
			"invalidations": st.Invalidations,
			"validations":   st.Validations,
		}
	})
	// The conflict-attribution snapshot, twice: as JSON under /debug/vars
	// (what cmd/stmtop polls) and as the OpenMetrics source behind /metrics.
	obs.Publish("stm_conflict", func() any {
		sys := liveSys.Load()
		if sys == nil {
			return nil
		}
		return sys.ConflictReport()
	})
	// Live latency decomposition for cmd/stmtop's latency panel.
	obs.Publish("stm_latency", func() any {
		sys := liveSys.Load()
		if sys == nil {
			return nil
		}
		return sys.LatencyReport()
	})
	// Windowed telemetry for cmd/stmtop's sparkline panel and the JSON
	// endpoint.
	obs.Publish("stm_timeseries", func() any {
		sys := liveSys.Load()
		if sys == nil {
			return nil
		}
		return sys.TimeSeriesReport()
	})
	obs.PublishTimeSeries(func() *obs.TimeSeriesReport {
		sys := liveSys.Load()
		if sys == nil {
			return nil
		}
		rep := sys.TimeSeriesReport()
		return &rep
	})
	obs.PublishOpenMetrics(func() obs.MetricsPage {
		sys := liveSys.Load()
		if sys == nil {
			return obs.MetricsPage{}
		}
		page := obs.MetricsPage{
			Conflict: sys.ConflictReport(),
			Latency:  sys.LatencyReport(),
			Server:   sys.ServerPhaseHistograms(),
		}
		if rep := sys.TimeSeriesReport(); rep.Enabled {
			page.TimeSeries = &rep
		}
		return page
	})
}

// finishTrace closes sys (idempotent; benchmarks also defer Close) and, when
// TraceTo is active, exports its trace. Closing first quiesces the server
// goroutines so the export reads stable rings.
func finishTrace(sys *stm.System) error {
	liveSys.CompareAndSwap(sys, nil)
	if tracePath == "" {
		return nil
	}
	if err := sys.Close(); err != nil {
		return err
	}
	tr := sys.Tracer()
	if tr == nil {
		return nil
	}
	f, err := os.Create(tracePath)
	if err != nil {
		return fmt.Errorf("bench: trace export: %w", err)
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("bench: trace export: %w", err)
	}
	return f.Close()
}

// clientLabeled runs fn with a pprof goroutine label identifying it as an
// STM client worker, matching the server-side labels the core applies.
func clientLabeled(w int, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("stm-role", fmt.Sprintf("client-%d", w)),
		func(context.Context) { fn() })
}
