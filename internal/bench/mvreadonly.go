package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// MVReadOnlyOpts parameterizes the multi-version read-only sweep: read-ratio x
// clients x Config.Versions, with dedicated reader clients (AtomicallyRO
// only) and writer clients (updates only). Splitting the roles is what makes
// the acceptance numbers observable from Stats alone: every abort on a reader
// thread is a read-only abort, and every read-victim row of the conflict
// matrix belongs to a reader slot.
type MVReadOnlyOpts struct {
	ReadPcts []int // percentage of clients dedicated to reads (default 50,90,99)
	Clients  []int // total client counts (default 8,64)
	Versions []int // Config.Versions values (default 0,4,16; 0 = paper baseline)

	Vars     int           // shared Var pool size (default 256)
	ReadsPer int           // Vars read per RO transaction (default 32)
	Duration time.Duration // wall time per point (default 150ms)
	Seed     uint64
}

func (o *MVReadOnlyOpts) defaults() {
	if len(o.ReadPcts) == 0 {
		o.ReadPcts = []int{50, 90, 99}
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{8, 64}
	}
	if len(o.Versions) == 0 {
		o.Versions = []int{0, 4, 16}
	}
	if o.Vars == 0 {
		o.Vars = 256
	}
	if o.ReadsPer == 0 {
		// Large enough that the per-read saving (no bloom add, no read-set
		// log, no validation exposure) dominates the per-transaction fixed
		// cost on both paths; 8 leaves the snapshot advantage under the
		// acceptance bar on slow CI hosts.
		o.ReadsPer = 32
	}
	if o.Duration == 0 {
		o.Duration = 150 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MVReadOnlyPoint is one (algo, read%, clients, versions) measurement.
type MVReadOnlyPoint struct {
	Algo     string `json:"algo"`
	ReadPct  int    `json:"read_pct"`
	Clients  int    `json:"clients"`
	Versions int    `json:"versions"`
	Readers  int    `json:"readers"`
	Writers  int    `json:"writers"`

	DurationNs int64 `json:"duration_ns"`

	// ROCommits/ROAborts/ROFallbacks are summed over the reader threads only.
	// With Versions > 0 the acceptance criterion is ROAborts == 0: snapshot
	// readers cannot conflict, and the Var pool is sized so lap fallbacks
	// (the one path that could re-expose a reader to dooming) stay at zero.
	ROCommits   uint64 `json:"ro_commits"`
	ROAborts    uint64 `json:"ro_aborts"`
	ROFallbacks uint64 `json:"ro_fallbacks"`
	ROSnapshot  uint64 `json:"ro_snapshot_commits"` // Stats.ROCommits: finished on the snapshot path

	WriterCommits uint64 `json:"writer_commits"`
	WriterAborts  uint64 `json:"writer_aborts"`

	// ReadVictimConflicts sums the conflict-matrix cells whose victim is a
	// reader slot — the "read-victim rows" the sweep must drive to zero.
	ReadVictimConflicts uint64 `json:"read_victim_conflicts"`

	ROKTxPerSec    float64 `json:"ro_ktx_per_sec"`
	TotalKTxPerSec float64 `json:"total_ktx_per_sec"`
	// SpeedupVsV0 is ROKTxPerSec relative to the Versions=0 point of the same
	// (algo, read%, clients) — the >=2x acceptance number at 90%/64.
	SpeedupVsV0 float64 `json:"speedup_vs_v0"`
}

// MVReadOnlyReport is the full sweep, serialized to BENCH_mv_readonly.json.
type MVReadOnlyReport struct {
	Workload string            `json:"workload"`
	Note     string            `json:"note"`
	Points   []MVReadOnlyPoint `json:"points"`
}

// RunMVReadOnly executes the sweep for each engine.
func RunMVReadOnly(algos []stm.Algo, o MVReadOnlyOpts) (*MVReadOnlyReport, error) {
	o.defaults()
	rep := &MVReadOnlyReport{
		Workload: fmt.Sprintf("%d shared vars; readers sum %d vars via AtomicallyRO, writers update 2",
			o.Vars, o.ReadsPer),
		Note: "dedicated reader/writer clients: reader-thread aborts are exactly the " +
			"read-only aborts, and must be 0 at every Versions>0 point",
	}
	for _, algo := range algos {
		for _, pct := range o.ReadPcts {
			for _, clients := range o.Clients {
				base := 0.0
				for _, vers := range o.Versions {
					p, err := runMVReadOnlyPoint(algo, pct, clients, vers, o)
					if err != nil {
						return nil, err
					}
					if vers == 0 {
						base = p.ROKTxPerSec
					}
					if base > 0 {
						p.SpeedupVsV0 = p.ROKTxPerSec / base
					}
					rep.Points = append(rep.Points, p)
				}
			}
		}
	}
	return rep, nil
}

// runMVReadOnlyPoint measures one configuration for a fixed wall duration.
func runMVReadOnlyPoint(algo stm.Algo, pct, clients, versions int, o MVReadOnlyOpts) (MVReadOnlyPoint, error) {
	readers := clients * pct / 100
	if readers < 1 {
		readers = 1
	}
	if readers >= clients {
		readers = clients - 1 // at least one writer, or nothing contends
	}
	writers := clients - readers

	sys, err := stm.New(stm.Config{
		Algo:        algo,
		MaxThreads:  clients,
		Versions:    versions,
		Attribution: true, // the read-victim matrix rows are an acceptance output
	})
	if err != nil {
		return MVReadOnlyPoint{}, err
	}
	ths := make([]*stm.Thread, clients)
	for i := range ths {
		if ths[i], err = sys.Register(); err != nil {
			sys.Close()
			return MVReadOnlyPoint{}, err
		}
	}
	pool := make([]*stm.Var[int], o.Vars)
	for i := range pool {
		pool[i] = stm.NewVar(i)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := o.Seed + uint64(c)*0x9e3779b97f4a7c15
			if c < readers {
				for !stop.Load() {
					rng = rng*6364136223846793005 + 1442695040888963407
					base := int(rng>>33) % len(pool)
					errs[c] = ths[c].AtomicallyRO(func(tx *stm.Tx) error {
						sum := 0
						for k := 0; k < o.ReadsPer; k++ {
							sum += pool[(base+k*7)%len(pool)].Load(tx)
						}
						_ = sum
						return nil
					})
					if errs[c] != nil {
						return
					}
				}
			} else {
				for i := 0; !stop.Load(); i++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					a := int(rng >> 33)
					errs[c] = ths[c].Atomically(func(tx *stm.Tx) error {
						v1, v2 := pool[a%len(pool)], pool[(a+1)%len(pool)]
						v1.Store(tx, v1.Load(tx)+1)
						v2.Store(tx, i)
						return nil
					})
					if errs[c] != nil {
						return
					}
				}
			}
		}()
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	cr := sys.ConflictReport()
	p := MVReadOnlyPoint{
		Algo:       algo.String(),
		ReadPct:    pct,
		Clients:    clients,
		Versions:   versions,
		Readers:    readers,
		Writers:    writers,
		DurationNs: elapsed.Nanoseconds(),
	}
	readerSlot := make(map[int]bool, readers)
	for i, th := range ths {
		st := th.Stats()
		if i < readers {
			readerSlot[th.ID()] = true
			p.ROCommits += st.Commits
			p.ROAborts += st.Aborts
			p.ROFallbacks += st.ROFallbacks
			p.ROSnapshot += st.ROCommits
		} else {
			p.WriterCommits += st.Commits
			p.WriterAborts += st.Aborts
		}
		th.Close()
	}
	if err := sys.Close(); err != nil {
		return MVReadOnlyPoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return MVReadOnlyPoint{}, e
		}
	}
	// Matrix is [committer][victim]: fold every cell whose victim is a reader.
	for _, row := range cr.Matrix {
		for victim, n := range row {
			if readerSlot[victim] {
				p.ReadVictimConflicts += n
			}
		}
	}
	p.ROKTxPerSec = float64(p.ROCommits) / elapsed.Seconds() / 1e3
	p.TotalKTxPerSec = float64(p.ROCommits+p.WriterCommits) / elapsed.Seconds() / 1e3
	return p, nil
}

// WriteJSON serializes the report with stable indentation.
func (r *MVReadOnlyReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format writes a human-readable table.
func (r *MVReadOnlyReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== Multi-version read-only sweep: %s ==\n", r.Workload)
	fmt.Fprintf(w, "%s\n", r.Note)
	fmt.Fprintf(w, "%-12s %5s %7s %4s %12s %9s %9s %9s %10s %8s\n",
		"algo", "read%", "clients", "V", "ro-ktx/s", "ro-abort", "fallback", "rd-victim", "wr-ktx/s", "vs V=0")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12s %5d %7d %4d %12.1f %9d %9d %9d %10.1f %7.2fx\n",
			p.Algo, p.ReadPct, p.Clients, p.Versions, p.ROKTxPerSec,
			p.ROAborts, p.ROFallbacks, p.ReadVictimConflicts,
			float64(p.WriterCommits)/float64(p.DurationNs)*1e6, p.SpeedupVsV0)
	}
	fmt.Fprintln(w)
}
