package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/container/rbtree"
	"github.com/ssrg-vt/rinval/internal/bloom"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// RBTreeOpts parameterizes the live red-black tree micro-benchmark (the
// paper's Figures 2 and 7: 64K elements, 50%/80% reads, a short delay
// between operations).
type RBTreeOpts struct {
	Keys     int           // key range; tree is pre-filled to half occupancy
	ReadPct  int           // percentage of lookups; the rest split insert/delete
	Duration time.Duration // measurement window
	Seed     uint64
	// Stats enables phase timing (needed for breakdown figures; adds
	// per-operation clock reads).
	Stats bool
	// InvalServers/StepsAhead/BloomBits forward to the engine
	// configuration (zero = engine default).
	InvalServers int
	StepsAhead   int
	BloomBits    int
}

// DefaultRBTreeOpts mirrors the paper's micro-benchmark, scaled to run in a
// test-friendly window.
func DefaultRBTreeOpts() RBTreeOpts {
	return RBTreeOpts{
		Keys:     64 * 1024,
		ReadPct:  50,
		Duration: 250 * time.Millisecond,
		Seed:     1,
	}
}

// RunRBTree executes the micro-benchmark on a fresh System and returns the
// measured row.
func RunRBTree(algo stm.Algo, threads int, o RBTreeOpts) (Row, error) {
	if o.Keys < 2 || threads < 1 {
		return Row{}, fmt.Errorf("bench: bad rbtree options")
	}
	cfg := stm.Config{
		Algo:       algo,
		MaxThreads: threads + 1,
		Stats:      o.Stats,
		Seed:       o.Seed,
		Trace:      tracePath != "",
	}
	if o.InvalServers > 0 {
		cfg.InvalServers = o.InvalServers
	} else {
		cfg.InvalServers = min(4, threads+1)
	}
	if o.StepsAhead > 0 {
		cfg.StepsAhead = o.StepsAhead
	}
	if o.BloomBits > 0 {
		cfg.Bloom = bloom.Params{Bits: o.BloomBits, Hashes: 2}
	}
	sys, err := stm.New(cfg)
	if err != nil {
		return Row{}, err
	}
	defer sys.Close()
	liveSys.Store(sys)

	tree := rbtree.New()
	setup := sys.MustRegister()
	fill := stamp.NewRand(o.Seed, 42)
	for i := 0; i < o.Keys/2; i++ {
		k := fill.Intn(o.Keys)
		if err := setup.Atomically(func(tx *stm.Tx) error {
			tree.Insert(tx, k, k)
			return nil
		}); err != nil {
			setup.Close()
			return Row{}, err
		}
	}
	setup.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, threads)
	start := time.Now()
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go clientLabeled(w, func() {
			defer wg.Done()
			th, err := sys.Register()
			if err != nil {
				errs[w] = err
				return
			}
			defer th.Close()
			rng := stamp.NewRand(o.Seed, uint64(w)+1000)
			for !stop.Load() {
				k := rng.Intn(o.Keys)
				op := rng.Intn(100)
				errs[w] = th.Atomically(func(tx *stm.Tx) error {
					switch {
					case op < o.ReadPct:
						tree.Contains(tx, k)
					case op < o.ReadPct+(100-o.ReadPct)/2:
						tree.Insert(tx, k, k)
					default:
						tree.Delete(tx, k)
					}
					return nil
				})
				if errs[w] != nil {
					return
				}
				// The paper inserts a short no-op delay between operations;
				// the loop bookkeeping supplies an equivalent gap.
			}
		})
	}
	// Sleep-based stop keeps the measurement window independent of
	// throughput.
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for _, e := range errs {
		if e != nil {
			return Row{}, e
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		return Row{}, fmt.Errorf("bench: tree corrupted: %w", err)
	}
	if err := finishTrace(sys); err != nil {
		return Row{}, err
	}

	st := sys.Stats()
	row := Row{
		Algo:      algo.String(),
		Threads:   threads,
		Elapsed:   elapsed,
		Commits:   st.Commits,
		Aborts:    st.Aborts,
		KTxPerSec: float64(st.Commits) / elapsed.Seconds() / 1e3,
	}
	if o.Stats {
		row.ReadFrac, row.CommitFrac, row.AbortFrac, row.OtherFrac = breakdown(st, elapsed, threads)
	}
	return row, nil
}

// breakdown converts accumulated phase nanoseconds into fractions of the
// total busy time (threads x wall time), attributing the remainder to the
// paper's "other" block.
func breakdown(st stm.Stats, elapsed time.Duration, threads int) (read, commit, abort, other float64) {
	total := float64(elapsed.Nanoseconds()) * float64(threads)
	if total <= 0 {
		return 0, 0, 0, 0
	}
	read = float64(st.ReadNs) / total
	commit = float64(st.CommitNs) / total
	abort = float64(st.AbortNs) / total
	other = 1 - read - commit - abort
	if other < 0 {
		other = 0
	}
	return read, commit, abort, other
}
