package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// InvalScanOpts parameterizes the two-level invalidation-scan sweep: a fixed
// number of in-flight client threads run disjoint blind writes while the
// slot-array size (Config.MaxThreads) grows, once under the seed flat scan
// and once under the two-level scan (active bitmap + summary signatures).
// The interesting output is the commit-server's per-epoch scan-phase times:
// flat-scan cost grows with MaxThreads (every slot is visited and its filter
// intersected), two-level cost tracks the in-flight count and stays flat.
type InvalScanOpts struct {
	MaxThreads []int // slot-array sizes to sweep (the scan-length axis)
	Clients    int   // in-flight client threads, fixed across the sweep (default 4)
	Iters      int   // committed write transactions per client
	VarsPer    int   // private Vars per client (default 4)
}

// InvalScanPoint is one (maxThreads, scan-mode) measurement on RInvalV1,
// whose commit-server runs both O(MaxThreads) phases the two-level scan
// attacks: the pending-request collection scan (scan_ns) and the inline
// invalidation scan (inval_scan_ns).
type InvalScanPoint struct {
	Algo        string  `json:"algo"`
	MaxThreads  int     `json:"max_threads"`
	Clients     int     `json:"clients"`
	FlatScan    bool    `json:"flat_scan"`
	DurationNs  int64   `json:"duration_ns"`
	Commits     uint64  `json:"commits"`
	Epochs      uint64  `json:"epochs"`
	KTxPerSec   float64 `json:"ktx_per_sec"`
	ScanNsMean  float64 `json:"scan_ns_mean"`       // collection scan per epoch
	ScanNsMax   uint64  `json:"scan_ns_max"`
	InvalNsMean float64 `json:"inval_scan_ns_mean"` // inline invalidation scan per epoch
	InvalNsMax  uint64  `json:"inval_scan_ns_max"`
}

// InvalScanReport is the full sweep, serialized to BENCH_inval_scan.json.
type InvalScanReport struct {
	Workload string           `json:"workload"`
	Clients  int              `json:"clients"`
	Iters    int              `json:"iters_per_client"`
	Points   []InvalScanPoint `json:"points"`
}

// RunInvalScan executes the sweep on the live RInvalV1 engine (the variant
// whose commit-server performs the invalidation scan inline, so both scan
// phases land in the Stats.Server histograms). For every MaxThreads value it
// measures the flat (seed) path first, then the two-level path.
func RunInvalScan(o InvalScanOpts) (*InvalScanReport, error) {
	if o.Iters < 1 {
		return nil, fmt.Errorf("bench: inval-scan iters must be >= 1")
	}
	if o.Clients == 0 {
		o.Clients = 4
	}
	if o.VarsPer == 0 {
		o.VarsPer = 4
	}
	rep := &InvalScanReport{
		Workload: fmt.Sprintf("disjoint blind writes, %d private vars per client, %d in-flight clients",
			o.VarsPer, o.Clients),
		Clients: o.Clients,
		Iters:   o.Iters,
	}
	for _, mt := range o.MaxThreads {
		if mt < o.Clients {
			return nil, fmt.Errorf("bench: MaxThreads %d < %d clients", mt, o.Clients)
		}
		for _, flat := range []bool{true, false} {
			p, err := runInvalScanPoint(mt, flat, o)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, p)
		}
	}
	return rep, nil
}

func runInvalScanPoint(maxThreads int, flat bool, o InvalScanOpts) (InvalScanPoint, error) {
	sys, err := stm.New(stm.Config{
		Algo:       stm.RInvalV1,
		MaxThreads: maxThreads,
		MaxBatch:   8,
		FlatScan:   flat,
		// Phase timing on: the point of the sweep is the commit-server's
		// per-epoch scan histograms.
		Stats: true,
	})
	if err != nil {
		return InvalScanPoint{}, err
	}

	ths := make([]*stm.Thread, o.Clients)
	for i := range ths {
		ths[i], err = sys.Register()
		if err != nil {
			sys.Close()
			return InvalScanPoint{}, err
		}
	}
	vars := make([][]*stm.Var[int], o.Clients)
	for i := range vars {
		vars[i] = make([]*stm.Var[int], o.VarsPer)
		for j := range vars[i] {
			vars[i][j] = stm.NewVar(0)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, o.Clients)
	start := time.Now()
	for w := 0; w < o.Clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := vars[w]
			for i := 0; i < o.Iters; i++ {
				errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
					mine[i%len(mine)].Store(tx, i)
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, th := range ths {
		th.Close()
	}
	if err := sys.Close(); err != nil {
		return InvalScanPoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return InvalScanPoint{}, e
		}
	}

	commits := uint64(o.Clients) * uint64(o.Iters)
	st := sys.Stats() // post-Close: includes the commit-server's histograms
	return InvalScanPoint{
		Algo:        stm.RInvalV1.String(),
		MaxThreads:  maxThreads,
		Clients:     o.Clients,
		FlatScan:    flat,
		DurationNs:  elapsed.Nanoseconds(),
		Commits:     commits,
		Epochs:      st.Epochs,
		KTxPerSec:   float64(commits) / elapsed.Seconds() / 1e3,
		ScanNsMean:  st.Server.ScanNs.Mean(),
		ScanNsMax:   st.Server.ScanNs.Max(),
		InvalNsMean: st.Server.InvalWaitNs.Mean(),
		InvalNsMax:  st.Server.InvalWaitNs.Max(),
	}, nil
}

// WriteJSON serializes the report with stable indentation.
func (r *InvalScanReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Format writes a human-readable table of the sweep.
func (r *InvalScanReport) Format(w io.Writer) {
	fmt.Fprintf(w, "== Invalidation scan: %s (%d tx/client) ==\n", r.Workload, r.Iters)
	fmt.Fprintf(w, "%-10s %11s %9s %12s %13s %14s %15s\n",
		"scan", "maxthreads", "clients", "ktx/s", "scan ns/epoch", "inval ns/epoch", "epochs")
	for _, p := range r.Points {
		mode := "twolevel"
		if p.FlatScan {
			mode = "flat"
		}
		fmt.Fprintf(w, "%-10s %11d %9d %12.1f %13.0f %14.0f %15d\n",
			mode, p.MaxThreads, p.Clients, p.KTxPerSec, p.ScanNsMean, p.InvalNsMean, p.Epochs)
	}
	fmt.Fprintln(w)
}
