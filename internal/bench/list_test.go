package bench

import (
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

func TestRunListSmoke(t *testing.T) {
	o := ListOpts{Keys: 128, ReadPct: 80, Duration: 25 * time.Millisecond, Seed: 1}
	for _, a := range []stm.Algo{stm.NOrec, stm.InvalSTM, stm.RInvalV2} {
		row, err := RunList(a, 2, o)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if row.Commits == 0 {
			t.Fatalf("%v: no commits", a)
		}
	}
}

func TestRunListBadOpts(t *testing.T) {
	if _, err := RunList(stm.NOrec, 1, ListOpts{Keys: 1}); err == nil {
		t.Fatal("keys=1 accepted")
	}
	if _, err := RunList(stm.NOrec, 0, ListOpts{Keys: 64}); err == nil {
		t.Fatal("threads=0 accepted")
	}
}

func TestSimAblationReadSetSizeShape(t *testing.T) {
	tbl := SimAblationReadSetSize([]int{8, 512}, 16, 1)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	get := func(algo string) float64 {
		for _, r := range tbl.Rows {
			if r.Algo == algo {
				return r.KTxPerSec
			}
		}
		t.Fatalf("missing %s", algo)
		return 0
	}
	// The NOrec advantage over InvalSTM must narrow as read sets grow
	// (quadratic validation vs linear invalidation, the paper's §II).
	small := get("norec/reads=8") / get("invalstm/reads=8")
	large := get("norec/reads=512") / get("invalstm/reads=512")
	if large >= small {
		t.Fatalf("validation-cost effect absent: ratio %0.2f -> %0.2f", small, large)
	}
	// RInval-V2 dominates on short transactions (server pipeline).
	if get("rinval-v2/reads=8") <= get("norec/reads=8") {
		t.Fatal("V2 did not lead at small read sets")
	}
}

func TestLiveAblationReadSetSizeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live")
	}
	tbl, err := LiveAblationReadSetSize([]int{32, 64}, 2, 20*time.Millisecond, 1)
	if err != nil || len(tbl.Rows) != 6 {
		t.Fatalf("err %v rows %d", err, len(tbl.Rows))
	}
}
