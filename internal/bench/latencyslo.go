package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"text/tabwriter"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// LatencySLOOpts parameterizes the critical-path latency sweep: for every
// (engine, thread count, shard count) point a contended read-modify-write
// workload runs with Config.Latency on, and the point records the sampled
// phase decomposition — where a transaction's time goes (app work, retry,
// commit-wait) and where the commit-server's epoch time goes. This is the
// observability counterpart of the throughput sweeps: the numbers an SLO
// would be written against.
type LatencySLOOpts struct {
	Threads     []int // client thread counts (default 2,4,8)
	Shards      []int // shard counts; >1 applies to RInval engines only (default 1,4)
	Iters       int   // committed transactions per client
	SampleEvery int   // latency sampling period (default 8)
	Seed        uint64
}

// PhaseQuantiles is one phase's latency quantiles at one sweep point.
type PhaseQuantiles struct {
	Phase string `json:"phase"`
	Count uint64 `json:"count"`
	P50Ns uint64 `json:"p50_ns"`
	P99Ns uint64 `json:"p99_ns"`
	MaxNs uint64 `json:"max_ns"`
}

// LatencySLOPoint is one (engine, threads, shards) measurement.
type LatencySLOPoint struct {
	Algo       string           `json:"algo"`
	Threads    int              `json:"threads"`
	Shards     int              `json:"shards"`
	DurationNs int64            `json:"duration_ns"`
	Commits    uint64           `json:"commits"`
	Sampled    uint64           `json:"sampled_commits"`
	KTxPerSec  float64          `json:"ktx_per_sec"`
	Client     []PhaseQuantiles `json:"client"`
	Server     []PhaseQuantiles `json:"server,omitempty"`
}

// LatencySLOReport is the full sweep, serialized to BENCH_latency_slo.json.
type LatencySLOReport struct {
	Workload    string            `json:"workload"`
	Iters       int               `json:"iters_per_client"`
	SampleEvery int               `json:"sample_every"`
	Points      []LatencySLOPoint `json:"points"`
}

// latencySLOAlgos are the engines the sweep covers: the validation baseline
// plus the three remote-invalidation variants whose server phases the
// decomposition exists to expose.
var latencySLOAlgos = []stm.Algo{stm.NOrec, stm.RInvalV1, stm.RInvalV2, stm.RInvalV3}

// RunLatencySLO executes the sweep. Shard counts above 1 run only on the
// RInval engines (sharding requires a remote engine); every point reuses the
// same seeded workload so engines are compared on identical access patterns.
func RunLatencySLO(o LatencySLOOpts) (*LatencySLOReport, error) {
	if o.Iters < 1 {
		return nil, fmt.Errorf("bench: latencyslo iters must be >= 1")
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{2, 4, 8}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 4}
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	rep := &LatencySLOReport{
		Workload:    "read-modify-write on a shared pool (8 vars per thread), 25% read-only",
		Iters:       o.Iters,
		SampleEvery: o.SampleEvery,
	}
	for _, algo := range latencySLOAlgos {
		remote := algo == stm.RInvalV1 || algo == stm.RInvalV2 || algo == stm.RInvalV3
		for _, th := range o.Threads {
			for _, sh := range o.Shards {
				if sh > 1 && (!remote || sh > th) {
					continue
				}
				p, err := runLatencySLOPoint(algo, th, sh, o)
				if err != nil {
					return nil, err
				}
				rep.Points = append(rep.Points, p)
			}
		}
	}
	return rep, nil
}

func runLatencySLOPoint(algo stm.Algo, threads, shards int, o LatencySLOOpts) (LatencySLOPoint, error) {
	// Default InvalServers (4) can exceed a small thread count; size it to
	// the point, keeping it a multiple of the shard count as sharding
	// requires.
	inv := threads
	if inv > 4 {
		inv = 4
	}
	if shards > 1 {
		inv = (inv / shards) * shards
		if inv < shards {
			inv = shards
		}
	}
	sys, err := stm.New(stm.Config{
		Algo:               algo,
		MaxThreads:         threads,
		Shards:             shards,
		InvalServers:       inv,
		Latency:            true,
		LatencySampleEvery: o.SampleEvery,
	})
	if err != nil {
		return LatencySLOPoint{}, err
	}
	liveSys.Store(sys) // -metrics serves this point's expvar view (stmtop's latency panel)
	pool := make([]*stm.Var[int], threads*8)
	for i := range pool {
		pool[i] = stm.NewVar(0)
	}
	ths := make([]*stm.Thread, threads)
	for i := range ths {
		if ths[i], err = sys.Register(); err != nil {
			sys.Close()
			return LatencySLOPoint{}, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, threads)
	start := time.Now()
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(o.Seed) + int64(w)))
			for i := 0; i < o.Iters; i++ {
				readOnly := rng.Intn(4) == 0
				a, b := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
				errs[w] = ths[w].Atomically(func(tx *stm.Tx) error {
					x := a.Load(tx)
					if !readOnly {
						b.Store(tx, x+1)
					}
					return nil
				})
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	lat := sys.LatencyReport()
	for i := range ths {
		ths[i].Close()
	}
	st := sys.Stats()
	liveSys.CompareAndSwap(sys, nil)
	if err := sys.Close(); err != nil {
		return LatencySLOPoint{}, err
	}
	for _, e := range errs {
		if e != nil {
			return LatencySLOPoint{}, e
		}
	}
	p := LatencySLOPoint{
		Algo:       algo.String(),
		Threads:    threads,
		Shards:     sys.Shards(),
		DurationNs: elapsed.Nanoseconds(),
		Commits:    st.Commits,
		Sampled:    lat.SampledCommits,
		KTxPerSec:  float64(st.Commits) / elapsed.Seconds() / 1e3,
		Client:     phaseQuantiles(lat.Client),
		Server:     phaseQuantiles(lat.Server),
	}
	return p, nil
}

func phaseQuantiles(phases []stm.LatencyPhase) []PhaseQuantiles {
	out := make([]PhaseQuantiles, 0, len(phases))
	for _, ph := range phases {
		out = append(out, PhaseQuantiles{
			Phase: ph.Phase,
			Count: ph.Count,
			P50Ns: ph.P50,
			P99Ns: ph.P99,
			MaxNs: ph.MaxNs,
		})
	}
	return out
}

// WriteJSON serializes the report.
func (r *LatencySLOReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// Format renders the sweep as an aligned table: one row per point, client
// phase p99s spelled out, the dominant server phase summarized.
func (r *LatencySLOReport) Format(w io.Writer) {
	fmt.Fprintf(w, "latency SLO sweep: %s (%d iters/client, 1-in-%d sampling)\n",
		r.Workload, r.Iters, r.SampleEvery)
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "algo\tthreads\tshards\tktx/s\tsampled\ttotal p99\tapp p99\tretry p99\tcommit-wait p99\ttop server phase")
	for _, p := range r.Points {
		row := map[string]uint64{}
		for _, c := range p.Client {
			row[c.Phase] = c.P99Ns
		}
		top := "-"
		var topNs uint64
		for _, s := range p.Server {
			if s.P99Ns >= topNs {
				top, topNs = fmt.Sprintf("%s %s", s.Phase, fmtNs(s.P99Ns)), s.P99Ns
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%d\t%s\t%s\t%s\t%s\t%s\n",
			p.Algo, p.Threads, p.Shards, p.KTxPerSec, p.Sampled,
			fmtNs(row["total"]), fmtNs(row["app"]), fmtNs(row["retry"]),
			fmtNs(row["commit-wait"]), top)
	}
	tw.Flush()
}

// fmtNs renders a nanosecond figure compactly (ns/µs/ms).
func fmtNs(ns uint64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
