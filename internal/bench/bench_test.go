package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

func TestParseThreads(t *testing.T) {
	got, err := ParseThreads("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("got %v err %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "1,-2"} {
		if _, err := ParseThreads(bad); err == nil {
			t.Errorf("ParseThreads(%q) accepted", bad)
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tbl := &Table{
		Title: "test",
		Rows: []Row{
			{Algo: "norec", Threads: 2, KTxPerSec: 12.5, Commits: 100, Aborts: 3},
			{Algo: "rinval-v2", Threads: 4, KTxPerSec: 20, Commits: 200},
		},
	}
	var buf bytes.Buffer
	tbl.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "norec") || !strings.Contains(out, "rinval-v2") {
		t.Fatalf("format missing rows:\n%s", out)
	}
	buf.Reset()
	tbl.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[1], "norec,2,") {
		t.Fatalf("csv wrong:\n%s", buf.String())
	}
}

func TestTableSortAndSeries(t *testing.T) {
	tbl := &Table{Rows: []Row{
		{Algo: "rinval-v1", Threads: 4, KTxPerSec: 3},
		{Algo: "norec", Threads: 8, KTxPerSec: 2},
		{Algo: "norec", Threads: 2, KTxPerSec: 1},
	}}
	tbl.Sort()
	if tbl.Rows[0].Algo != "norec" || tbl.Rows[0].Threads != 2 {
		t.Fatalf("sort wrong: %+v", tbl.Rows)
	}
	s := tbl.Series("norec")
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Fatalf("series %v", s)
	}
}

func TestRunRBTreeLiveSmoke(t *testing.T) {
	o := DefaultRBTreeOpts()
	o.Keys = 512
	o.Duration = 30 * time.Millisecond
	for _, a := range []stm.Algo{stm.NOrec, stm.RInvalV2} {
		row, err := RunRBTree(a, 2, o)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if row.Commits == 0 || row.KTxPerSec <= 0 {
			t.Fatalf("%v: empty result %+v", a, row)
		}
	}
}

func TestRunRBTreeWithStatsBreakdown(t *testing.T) {
	o := DefaultRBTreeOpts()
	o.Keys = 512
	o.Duration = 30 * time.Millisecond
	o.Stats = true
	row, err := RunRBTree(stm.InvalSTM, 2, o)
	if err != nil {
		t.Fatal(err)
	}
	sum := row.ReadFrac + row.CommitFrac + row.AbortFrac + row.OtherFrac
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("breakdown sums to %v (%+v)", sum, row)
	}
}

func TestRunRBTreeBadOpts(t *testing.T) {
	o := DefaultRBTreeOpts()
	o.Keys = 1
	if _, err := RunRBTree(stm.NOrec, 1, o); err == nil {
		t.Fatal("keys=1 accepted")
	}
	o = DefaultRBTreeOpts()
	if _, err := RunRBTree(stm.NOrec, 0, o); err == nil {
		t.Fatal("threads=0 accepted")
	}
}

func TestNewSTAMPRegistryComplete(t *testing.T) {
	for _, app := range STAMPApps {
		w, err := NewSTAMP(app, ScaleSmall, 1)
		if err != nil || w == nil || w.Name() != app {
			t.Fatalf("app %q: %v", app, err)
		}
	}
	if _, err := NewSTAMP("yada", ScaleSmall, 1); err == nil {
		t.Fatal("yada accepted (paper excludes it)")
	}
}

func TestRunSTAMPLiveSmoke(t *testing.T) {
	row, err := RunSTAMP(stm.RInvalV1, "ssca2", 2, ScaleSmall, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Commits == 0 || row.Elapsed == 0 {
		t.Fatalf("row %+v", row)
	}
}

func TestSimFigureGenerators(t *testing.T) {
	threads := []int{2, 8}
	f7 := SimFigure7(50, threads, 1)
	if len(f7.Rows) != len(threads)*4 {
		t.Fatalf("fig7 rows %d", len(f7.Rows))
	}
	f2 := SimFigure2(threads, 1)
	for _, r := range f2.Rows {
		if r.ReadFrac+r.CommitFrac+r.AbortFrac+r.OtherFrac < 0.99 {
			t.Fatalf("fig2 row lacks breakdown: %+v", r)
		}
	}
	f3 := SimFigure3(32, 1)
	if len(f3.Rows) != 7*2 {
		t.Fatalf("fig3 rows %d", len(f3.Rows))
	}
	f8, err := SimFigure8("kmeans", threads, 1)
	if err != nil || len(f8.Rows) != len(threads)*4 {
		t.Fatalf("fig8: %v rows=%d", err, len(f8.Rows))
	}
	if _, err := SimFigure8("nope", threads, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	abl := SimAblationInvalServers([]int{1, 4}, 32, 1)
	if len(abl.Rows) != 2 {
		t.Fatalf("ablation rows %d", len(abl.Rows))
	}
	jit := SimAblationJitter(32, 1)
	if len(jit.Rows) != 6 {
		t.Fatalf("jitter rows %d", len(jit.Rows))
	}
}

func TestSimAblationGenerators(t *testing.T) {
	steps := SimAblationStepsAhead([]int{1, 4}, 32, 1)
	if len(steps.Rows) != 3 { // v2 + two v3 windows
		t.Fatalf("steps rows %d", len(steps.Rows))
	}
	cvf := SimAblationCoarseVsFine([]int{4, 32}, 1)
	if len(cvf.Rows) != 6 {
		t.Fatalf("coarse-vs-fine rows %d", len(cvf.Rows))
	}
	// TL2 must lead the coarse engines at the high point (its raison d'etre).
	var tl2hi, norecHi float64
	for _, r := range cvf.Rows {
		if r.Threads == 32 {
			switch r.Algo {
			case "tl2":
				tl2hi = r.KTxPerSec
			case "norec":
				norecHi = r.KTxPerSec
			}
		}
	}
	if tl2hi <= norecHi {
		t.Fatalf("tl2 %v <= norec %v at 32 threads", tl2hi, norecHi)
	}
}

func TestClampDuration(t *testing.T) {
	lo, hi := 10*time.Millisecond, time.Second
	if clampDuration(time.Millisecond, lo, hi) != lo {
		t.Fatal("low clamp")
	}
	if clampDuration(time.Minute, lo, hi) != hi {
		t.Fatal("high clamp")
	}
	if clampDuration(500*time.Millisecond, lo, hi) != 500*time.Millisecond {
		t.Fatal("pass-through")
	}
}

// TestSimFigure7Shape asserts the headline result on the generated table:
// at 48 threads RInval-V2 leads NOrec and InvalSTM, and InvalSTM trails
// NOrec at low thread counts.
func TestSimFigure7Shape(t *testing.T) {
	tbl := SimFigure7(50, []int{4, 48}, 1)
	get := func(algo string, n int) float64 {
		for _, r := range tbl.Rows {
			if r.Algo == algo && r.Threads == n {
				return r.KTxPerSec
			}
		}
		t.Fatalf("missing %s/%d", algo, n)
		return 0
	}
	if get("rinval-v2", 48) <= get("norec", 48) {
		t.Error("V2 does not lead NOrec at 48 threads")
	}
	if get("rinval-v2", 48) <= get("invalstm", 48) {
		t.Error("V2 does not lead InvalSTM at 48 threads")
	}
	if get("norec", 4) <= get("invalstm", 4) {
		t.Error("NOrec does not lead InvalSTM at 4 threads")
	}
}

func TestLiveFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live figures are slow")
	}
	f7, err := LiveFigure7(50, []int{2}, 20*time.Millisecond, 1)
	if err != nil || len(f7.Rows) != 4 {
		t.Fatalf("live fig7: %v", err)
	}
	f2, err := LiveFigure2([]int{2}, 20*time.Millisecond, 1)
	if err != nil || len(f2.Rows) != 3 {
		t.Fatalf("live fig2: %v", err)
	}
	f8, err := LiveFigure8("ssca2", []int{2}, ScaleSmall, 1)
	if err != nil || len(f8.Rows) != 4 {
		t.Fatalf("live fig8: %v", err)
	}
	abl, err := LiveAblationBloomBits([]int{64, 1024}, 2, 20*time.Millisecond, 1)
	if err != nil || len(abl.Rows) != 2 {
		t.Fatalf("live bloom ablation: %v", err)
	}
}
