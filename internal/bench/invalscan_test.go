package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunInvalScan runs a tiny sweep and checks the report's invariants:
// every MaxThreads point appears in both scan modes, commits are exact
// (conflict-free workload), and the scan-phase histograms were populated
// (one sample per epoch). Timing ratios are asserted only by the checked-in
// full run — they are too noisy for CI.
func TestRunInvalScan(t *testing.T) {
	rep, err := RunInvalScan(InvalScanOpts{MaxThreads: []int{4, 8}, Clients: 2, Iters: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2*2 {
		t.Fatalf("points = %d, want 4 (two modes per MaxThreads value)", len(rep.Points))
	}
	flats := 0
	for _, p := range rep.Points {
		if p.FlatScan {
			flats++
		}
		if p.Commits != uint64(p.Clients)*50 {
			t.Errorf("mt=%d flat=%v: commits = %d, want %d",
				p.MaxThreads, p.FlatScan, p.Commits, p.Clients*50)
		}
		if p.Epochs == 0 {
			t.Errorf("mt=%d flat=%v: no epochs recorded", p.MaxThreads, p.FlatScan)
		}
		if p.ScanNsMean <= 0 {
			t.Errorf("mt=%d flat=%v: empty collection-scan histogram", p.MaxThreads, p.FlatScan)
		}
		if p.InvalNsMean <= 0 {
			t.Errorf("mt=%d flat=%v: empty invalidation-scan histogram", p.MaxThreads, p.FlatScan)
		}
	}
	if flats != 2 {
		t.Fatalf("flat-scan points = %d, want 2", flats)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round InvalScanReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.Points) != len(rep.Points) {
		t.Fatalf("round-trip lost points: %d != %d", len(round.Points), len(rep.Points))
	}

	rep.Format(&buf) // smoke: must not panic
}
