package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/ssrg-vt/rinval/stm"
)

// TestRunShardSweep runs a tiny sweep and checks the report's invariants:
// the sim phase is deterministic and scales single-shard throughput with S,
// the live phase retires exactly the planted commit and cross-shard counts
// (MaxBatch=1: one epoch per commit), and the report round-trips as JSON.
func TestRunShardSweep(t *testing.T) {
	rep, err := RunShardSweep([]stm.Algo{stm.RInvalV1},
		ShardSweepOpts{
			Shards:      []int{1, 4},
			SimThreads:  []int{64},
			CrossFracs:  []float64{0, 0.10},
			LiveShards:  []int{1, 4},
			LiveClients: []int{4},
			Iters:       40,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.SimPoints) != 2*2 || len(rep.LivePoints) != 2*2 {
		t.Fatalf("points = %d sim, %d live; want 4 each", len(rep.SimPoints), len(rep.LivePoints))
	}
	for _, p := range rep.SimPoints {
		if p.Shards == 4 && p.CrossFrac == 0 && p.SpeedupVsS1 < 2 {
			t.Errorf("sim %s S=4: speedup %.2fx < 2x over S=1", p.Algo, p.SpeedupVsS1)
		}
	}
	for _, p := range rep.LivePoints {
		if p.Commits != 4*40 || p.Epochs != p.Commits {
			t.Errorf("live %s S=%d: commits=%d epochs=%d, want 160 each",
				p.Algo, p.Shards, p.Commits, p.Epochs)
		}
		// crossFrac=0.10 plants exactly one cross-shard tx per 10 iterations;
		// at S=1 every footprint is single-stream by definition.
		wantCross := uint64(0)
		if p.Shards > 1 && p.CrossFrac > 0 {
			wantCross = 4 * 40 / 10
		}
		if p.CrossShardCommits != wantCross {
			t.Errorf("live %s S=%d cross=%.2f: cross-shard commits = %d, want %d",
				p.Algo, p.Shards, p.CrossFrac, p.CrossShardCommits, wantCross)
		}
		if p.Shards > 1 {
			var perShard uint64
			for _, s := range p.PerShard {
				perShard += s.Epochs
			}
			// Per-shard epoch counts must account for every epoch: the
			// handshake charges its single combined epoch to the leader.
			if perShard != p.Epochs {
				t.Errorf("live %s S=%d: per-shard epochs sum %d != %d",
					p.Algo, p.Shards, perShard, p.Epochs)
			}
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round ShardSweepReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.SimPoints) != len(rep.SimPoints) || len(round.LivePoints) != len(rep.LivePoints) {
		t.Fatal("round-trip lost points")
	}
}
