package bench

import (
	"fmt"
	"time"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/internal/stamp/bayes"
	"github.com/ssrg-vt/rinval/internal/stamp/genome"
	"github.com/ssrg-vt/rinval/internal/stamp/intruder"
	"github.com/ssrg-vt/rinval/internal/stamp/kmeans"
	"github.com/ssrg-vt/rinval/internal/stamp/labyrinth"
	"github.com/ssrg-vt/rinval/internal/stamp/ssca2"
	"github.com/ssrg-vt/rinval/internal/stamp/vacation"
	"github.com/ssrg-vt/rinval/stm"
)

// Scale selects workload sizing for the live STAMP runs.
type Scale int

const (
	// ScaleSmall finishes in milliseconds — for tests and smoke runs.
	ScaleSmall Scale = iota
	// ScaleDefault is the laptop-scale instance used by the experiment CLI.
	ScaleDefault
	// ScaleLarge is a multi-second instance for soak runs.
	ScaleLarge
)

// STAMPApps lists the live STAMP ports in the paper's presentation order.
var STAMPApps = []string{"kmeans", "ssca2", "labyrinth", "intruder", "genome", "vacation", "bayes"}

// NewSTAMP constructs a fresh single-use workload for app at the given
// scale and seed.
func NewSTAMP(app string, scale Scale, seed uint64) (stamp.Workload, error) {
	small := scale == ScaleSmall
	large := scale == ScaleLarge
	switch app {
	case "kmeans":
		cfg := kmeans.DefaultConfig()
		if small {
			cfg.Points, cfg.Iterations = 240, 2
		} else if large {
			cfg.Points, cfg.Iterations = 8192, 6
		}
		cfg.Seed = seed
		return kmeans.New(cfg), nil
	case "ssca2":
		cfg := ssca2.DefaultConfig()
		if small {
			cfg.Vertices, cfg.Edges = 64, 512
		} else if large {
			cfg.Vertices, cfg.Edges = 4096, 65536
		}
		cfg.Seed = seed
		return ssca2.New(cfg), nil
	case "labyrinth":
		cfg := labyrinth.DefaultConfig()
		if small {
			cfg.Width, cfg.Height, cfg.Paths = 16, 16, 10
		} else if large {
			cfg.Width, cfg.Height, cfg.Paths, cfg.MaxLen = 64, 64, 128, 32
		}
		cfg.Seed = seed
		return labyrinth.New(cfg), nil
	case "intruder":
		cfg := intruder.DefaultConfig()
		if small {
			cfg.Flows = 30
		} else if large {
			cfg.Flows, cfg.Fragments = 1024, 8
		}
		cfg.Seed = seed
		return intruder.New(cfg), nil
	case "genome":
		cfg := genome.DefaultConfig()
		if small {
			cfg.GeneLength = 160
		} else if large {
			cfg.GeneLength, cfg.Copies = 4096, 4
		}
		cfg.Seed = seed
		return genome.New(cfg), nil
	case "vacation":
		cfg := vacation.DefaultConfig()
		if small {
			cfg.Tasks, cfg.Items = 160, 32
		} else if large {
			cfg.Tasks, cfg.Items, cfg.Customers = 8192, 1024, 512
		}
		cfg.Seed = seed
		return vacation.New(cfg), nil
	case "bayes":
		cfg := bayes.DefaultConfig()
		if small {
			cfg.Records, cfg.Proposals = 200, 48
		} else if large {
			cfg.Records, cfg.Proposals, cfg.Vars = 4096, 512, 20
		}
		cfg.Seed = seed
		return bayes.New(cfg), nil
	}
	return nil, fmt.Errorf("bench: unknown STAMP app %q", app)
}

// RunSTAMP executes one live STAMP run on a fresh System and returns the
// measured row. Execution time covers the worker phase, as in STAMP.
func RunSTAMP(algo stm.Algo, app string, threads int, scale Scale, seed uint64) (Row, error) {
	w, err := NewSTAMP(app, scale, seed)
	if err != nil {
		return Row{}, err
	}
	cfg := stm.Config{
		Algo:         algo,
		MaxThreads:   threads + 1,
		InvalServers: min(4, threads+1),
		Seed:         seed,
	}
	sys, err := stm.New(cfg)
	if err != nil {
		return Row{}, err
	}
	defer sys.Close()
	res, err := stamp.Run(sys, w, threads)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Algo:    algo.String(),
		Threads: threads,
		Elapsed: res.Elapsed,
		Commits: res.Stats.Commits,
		Aborts:  res.Stats.Aborts,
	}
	if res.Elapsed > 0 {
		row.KTxPerSec = float64(res.Stats.Commits) / res.Elapsed.Seconds() / 1e3
	}
	return row, nil
}

// clampDuration bounds a user-provided duration to something sane.
func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
