package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// TestRunMVReadOnly smoke-runs a tiny sweep and enforces the report's
// structural invariants: reader threads take zero aborts and zero read-victim
// matrix rows at every Versions>0 point (the abort-free construction), the
// Versions=0 baseline takes no snapshot path at all, and the JSON round-trips.
func TestRunMVReadOnly(t *testing.T) {
	rep, err := RunMVReadOnly([]stm.Algo{stm.InvalSTM},
		MVReadOnlyOpts{
			ReadPcts: []int{50, 90},
			Clients:  []int{4},
			Versions: []int{0, 4},
			Duration: 15 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2*2 {
		t.Fatalf("points = %d, want 4", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Readers+p.Writers != p.Clients || p.Readers < 1 || p.Writers < 1 {
			t.Errorf("%+v: bad reader/writer split", p)
		}
		if p.ROCommits == 0 {
			t.Errorf("%s %d%%/V=%d: readers committed nothing", p.Algo, p.ReadPct, p.Versions)
		}
		if p.Versions > 0 {
			if p.ROAborts != 0 {
				t.Errorf("%s %d%%/V=%d: %d read-only aborts, want 0", p.Algo, p.ReadPct, p.Versions, p.ROAborts)
			}
			if p.ReadVictimConflicts != 0 {
				t.Errorf("%s %d%%/V=%d: %d read-victim conflicts, want 0", p.Algo, p.ReadPct, p.Versions, p.ReadVictimConflicts)
			}
			if p.ROSnapshot == 0 {
				t.Errorf("%s %d%%/V=%d: snapshot path never taken", p.Algo, p.ReadPct, p.Versions)
			}
		} else if p.ROSnapshot != 0 {
			t.Errorf("%s %d%%/V=0: %d snapshot commits at Versions=0", p.Algo, p.ReadPct, p.ROSnapshot)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MVReadOnlyReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("round trip lost points: %d != %d", len(back.Points), len(rep.Points))
	}
	rep.Format(&buf) // must not panic
}
