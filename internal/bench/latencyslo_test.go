package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/ssrg-vt/rinval/stm"
)

func TestRunLatencySLOSmoke(t *testing.T) {
	rep, err := RunLatencySLO(LatencySLOOpts{
		Threads:     []int{2},
		Shards:      []int{1},
		Iters:       300,
		SampleEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(latencySLOAlgos) {
		t.Fatalf("got %d points, want %d", len(rep.Points), len(latencySLOAlgos))
	}
	for _, p := range rep.Points {
		if p.Commits != 2*300 {
			t.Errorf("%s: commits %d, want 600", p.Algo, p.Commits)
		}
		if p.Sampled == 0 {
			t.Errorf("%s: no sampled commits", p.Algo)
		}
		byPhase := map[string]PhaseQuantiles{}
		for _, c := range p.Client {
			byPhase[c.Phase] = c
			if c.Count != p.Sampled {
				t.Errorf("%s: phase %s count %d != sampled %d", p.Algo, c.Phase, c.Count, p.Sampled)
			}
		}
		total, ok := byPhase["total"]
		if !ok || total.P99Ns == 0 {
			t.Errorf("%s: total phase missing or empty: %+v", p.Algo, total)
		}
		if app := byPhase["app"]; app.P99Ns > total.MaxNs {
			t.Errorf("%s: app p99 %d above total max %d", p.Algo, app.P99Ns, total.MaxNs)
		}
		if strings.HasPrefix(p.Algo, "rinval") && len(p.Server) == 0 {
			t.Errorf("%s: no server phases", p.Algo)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back LatencySLOReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) {
		t.Fatalf("round-trip lost points")
	}
	var tbl bytes.Buffer
	rep.Format(&tbl)
	if !strings.Contains(tbl.String(), "total p99") {
		t.Fatalf("table missing header:\n%s", tbl.String())
	}
}

func TestRunLatencySLOSharded(t *testing.T) {
	rep, err := RunLatencySLO(LatencySLOOpts{
		Threads:     []int{4},
		Shards:      []int{2},
		Iters:       200,
		SampleEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shards > 1 is remote-engine-only: NOrec is skipped.
	want := 0
	for _, a := range latencySLOAlgos {
		if a != stm.NOrec {
			want++
		}
	}
	if len(rep.Points) != want {
		t.Fatalf("got %d points, want %d", len(rep.Points), want)
	}
	for _, p := range rep.Points {
		if p.Shards != 2 {
			t.Errorf("%s: shards %d, want 2", p.Algo, p.Shards)
		}
	}
}
