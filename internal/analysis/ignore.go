package analysis

import (
	"go/token"
	"strings"
)

// This file implements the audited suppression annotation:
//
//	//stmlint:ignore <check> <reason>
//
// placed on the flagged line or the line immediately above it. The check
// name must be a registered check (or "all"), and the reason is mandatory —
// an ignore without a reason is itself reported, so every suppression in the
// tree carries its justification. The annotation exists for true negatives a
// checker cannot prove (e.g. an amortized allocation a hot path deliberately
// keeps); weakening a check to admit one call site is never the right fix.

const ignorePrefix = "//stmlint:ignore"

// ignoreKey identifies one suppressed (file, line, check) coordinate.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// ignoreSet records every well-formed ignore annotation in the module.
type ignoreSet map[ignoreKey]bool

// collectIgnores scans all comments of the module. Malformed annotations
// (unknown check, missing reason) are reported as diagnostics of the
// pseudo-check "stmlint" so they fail the lint run instead of silently
// suppressing nothing.
func collectIgnores(m *Module) (ignoreSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, c := range AllChecks() {
		known[c.Name] = true
	}
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) == 0 || (fields[0] != "all" && !known[fields[0]]) {
						bad = append(bad, Diagnostic{Pos: pos, Check: "stmlint",
							Message: "malformed //stmlint:ignore: first word must name a registered check (or \"all\")"})
						continue
					}
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{Pos: pos, Check: "stmlint",
							Message: "//stmlint:ignore " + fields[0] + " requires a reason; suppressions must be audited"})
						continue
					}
					set[ignoreKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return set, bad
}

// suppressed reports whether d is covered by an ignore on its own line or
// the line directly above.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if s[ignoreKey{d.Pos.Filename, line, d.Check}] ||
			s[ignoreKey{d.Pos.Filename, line, "all"}] {
			return true
		}
	}
	return false
}

// posLess orders positions for the deterministic diagnostic sort.
func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
