package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// The lock-order check machine-checks the discipline PR 6's cross-shard
// handshake rests on (DESIGN.md §11): commit-stream locks are acquired in
// ascending shard-index order, released in descending order, released on
// every path out of the function — early returns, panics, and fall-through
// included — and no blocking operation runs while one is held. The
// deadlock-freedom argument is a total order over lock acquisition; a
// refactor that reorders two lockStream calls, leaks a lock on an error
// return, or parks on a channel inside the critical section breaks it in a
// way no unit test reliably reproduces (the deadlock needs the adversarial
// schedule).
//
// The analysis is a forward dataflow pass over each function's CFG. The
// abstract state is the ordered sequence of held stream-lock tokens plus the
// pending deferred releases; every reachable exit (return, panic, falling
// off the end) replays the deferred releases and demands an empty held set.
//
// What is a lock? Any call to a function or method named lockStream /
// unlockStream (the repo has exactly one pair; fixtures define their own).
// Tokens are symbolic:
//
//   - a constant argument yields a ranked token, so ascending/descending
//     order is checked exactly between constants;
//   - the sanctioned mask-iteration idiom
//     `for m := mask; m != 0; m &= m - 1 { ..lockStream(bits.TrailingZeros64(m)).. }`
//     is recognized structurally as an ascending batch acquisition (clearing
//     the lowest set bit strictly ascends); any other loop around lockStream
//     is reported, because its order cannot be proved;
//   - any other argument yields an opaque token keyed by its expression
//     text; opaque tokens are exempt from order comparison (soundness
//     boundary: the checker never guesses an order it cannot prove).
//
// A module function whose body releases locks in a loop and acquires none
// (the unlockStreamsDesc shape) is summarized as a bulk-release helper:
// calling it clears the held set, and the helper itself is not analyzed as a
// client. All other calls are assumed lock-neutral — the check verifies each
// direct lockStream caller is self-balanced rather than tracking lock
// ownership across call boundaries (DESIGN.md §13 spells out the boundary).
//
// Blocking operations while a stream lock is held: channel send/receive,
// a select without a default clause, time.Sleep, sync.Mutex/RWMutex Lock
// and RLock, sync.WaitGroup.Wait, sync.Cond.Wait, and any direct call into
// packages os, net, io, or bufio, plus fmt's writer/stdout printers.
// Spinning (internal/spin) is the sanctioned wait inside the critical
// section and is deliberately absent from the list.
func init() {
	RegisterCheck(&Check{
		Name: "lock-order",
		Doc:  "stream locks: ascending acquire, descending release, released on every exit path, no blocking ops while held",
		Run:  runLockOrder,
	})
}

const (
	lockFnName    = "lockStream"
	unlockFnName  = "unlockStream"
	releaseAllKey = "*"
)

// lockFact is the dataflow state: held lock tokens in acquisition order and
// pending deferred releases in registration order, each encoded as a
// "|"-separated key string so facts are immutable and comparable.
type lockFact struct {
	held   string
	defers string
}

func splitKeys(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "|")
}

func joinKeys(ks []string) string { return strings.Join(ks, "|") }

// rankOf decodes a token's shard rank; ok is false for opaque/batch tokens.
func rankOf(key string) (int, bool) {
	if r, found := strings.CutPrefix(key, "#"); found {
		n, err := strconv.Atoi(r)
		return n, err == nil
	}
	return 0, false
}

func runLockOrder(m *Module, report ReportFunc) {
	lo := &lockOrderChecker{m: m, report: report, reported: make(map[string]bool)}
	lo.summarize()
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lo.checkFunc(p, fd)
			}
		}
	}
}

type lockOrderChecker struct {
	m      *Module
	report ReportFunc
	// bulkRelease marks module functions summarized as "releases every held
	// lock" (unlockStream inside a loop, no acquisitions).
	bulkRelease map[*types.Func]bool
	// reported dedupes diagnostics across block replays.
	reported map[string]bool
}

// summarize classifies every declared function once: does it directly call
// the primitives, and is it a bulk-release helper?
func (lo *lockOrderChecker) summarize() {
	lo.bulkRelease = make(map[*types.Func]bool)
	for _, p := range lo.m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || isLockPrimitive(fd) {
					continue
				}
				fn, _ := p.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				locks, unlocksInLoop := false, false
				inspectLoops(fd.Body, func(call *ast.CallExpr, loop ast.Stmt) {
					switch calleeName(p.Info, call) {
					case lockFnName:
						locks = true
					case unlockFnName:
						if loop != nil {
							unlocksInLoop = true
						}
					}
				})
				if unlocksInLoop && !locks {
					lo.bulkRelease[fn] = true
				}
			}
		}
	}
}

// checkFunc analyzes one client function (one that directly calls a lock
// primitive).
func (lo *lockOrderChecker) checkFunc(p *Package, fd *ast.FuncDecl) {
	if isLockPrimitive(fd) {
		return // the spin-CAS implementation of the primitive itself
	}
	if fn, _ := p.Info.Defs[fd.Name].(*types.Func); fn != nil && lo.bulkRelease[fn] {
		return // releases on behalf of its caller by design
	}
	usesPrimitive := false
	loopOf := make(map[*ast.CallExpr]ast.Stmt)
	inspectLoops(fd.Body, func(call *ast.CallExpr, loop ast.Stmt) {
		switch calleeName(p.Info, call) {
		case lockFnName, unlockFnName:
			usesPrimitive = true
			loopOf[call] = loop
		}
	})
	if !usesPrimitive {
		return
	}

	g := BuildCFG(fd)
	commStmts := make(map[ast.Stmt]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cs := range sel.Body.List {
				if cc, ok := cs.(*ast.CommClause); ok && cc.Comm != nil {
					commStmts[cc.Comm] = true
				}
			}
		}
		return true
	})
	fc := &funcLockChecker{lo: lo, p: p, fd: fd, loopOf: loopOf, commStmts: commStmts}
	flow := Flow{
		Entry:    lockFact{},
		Transfer: func(f Fact, n ast.Node) Fact { return fc.transfer(f.(lockFact), n, nil) },
		Merge: func(a, b Fact) Fact {
			return mergeLockFacts(a.(lockFact), b.(lockFact))
		},
		Equal: func(a, b Fact) bool { return a == b },
	}
	in := Forward(g, flow)

	// Replay every reachable block with its converged entry state, reporting
	// at the exact node positions.
	for _, b := range g.Reachable() {
		entry, ok := in[b]
		if !ok {
			continue
		}
		f := entry.(lockFact)
		exitsToExit := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exitsToExit = true
			}
		}
		explicitExit := false
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				explicitExit = true
				fc.checkExit(f, n.Pos(), "return")
			case *ast.ExprStmt:
				if isPanicCall(n.X) {
					explicitExit = true
					fc.checkExit(f, n.Pos(), "panic")
				}
			}
			f = fc.transfer(f, n, lo.report).(lockFact)
		}
		if exitsToExit && !explicitExit {
			// Falling off the end of the function.
			fc.checkExit(f, fd.Body.Rbrace, "function end")
		}
	}
}

// funcLockChecker carries the per-function context of one analysis.
type funcLockChecker struct {
	lo        *lockOrderChecker
	p         *Package
	fd        *ast.FuncDecl
	loopOf    map[*ast.CallExpr]ast.Stmt
	commStmts map[ast.Stmt]bool // select comm statements (skip blocking check)
}

// reportOnce funnels every diagnostic through the dedupe map (the fixpoint
// and replay passes may both traverse a node; only replay reports).
func (fc *funcLockChecker) reportOnce(report ReportFunc, pos token.Pos, format string, args ...any) {
	if report == nil {
		return // fixpoint pass: state only, no diagnostics
	}
	key := fmt.Sprintf("%d:%s", pos, fmt.Sprintf(format, args...))
	if fc.lo.reported[key] {
		return
	}
	fc.lo.reported[key] = true
	report(pos, format, args...)
}

// transfer applies one leaf node's lock effects. With report == nil it only
// computes the state (fixpoint pass); the replay pass passes the real
// reporter.
func (fc *funcLockChecker) transfer(f lockFact, n ast.Node, report ReportFunc) Fact {
	// Deferred releases register without executing.
	if ds, ok := n.(*ast.DeferStmt); ok {
		if key, kind := fc.releaseKeyOf(ds.Call); kind != "" {
			defers := splitKeys(f.defers)
			f.defers = joinKeys(append(defers, key))
		}
		return f
	}

	held := splitKeys(f.held)

	// Blocking operations while a lock is held.
	if len(held) > 0 {
		fc.checkBlocking(n, held, report)
	}

	// Lock/unlock calls and bulk-release helper calls inside this node, in
	// source order. A SelectStmt node is opaque here: its comm statements and
	// clause bodies appear in their own blocks (CFG convention), so inspecting
	// it would apply their effects twice.
	inspectLeaf(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleeName(fc.p.Info, call) {
		case lockFnName:
			held = fc.acquire(held, call, report)
		case unlockFnName:
			held = fc.release(held, call, report)
		default:
			if fn := calleeFunc(fc.p.Info, call); fn != nil && fc.lo.bulkRelease[fn] {
				held = nil // descending-release helper clears everything
			}
		}
		return true
	})
	f.held = joinKeys(held)
	return f
}

// inspectLeaf inspects one CFG block leaf node under the package's CFG
// conventions: function literals are opaque (they have their own CFG), and a
// SelectStmt node is fully opaque because its comm statements and clause
// bodies are re-emitted in their own blocks.
func inspectLeaf(n ast.Node, f func(ast.Node) bool) {
	if _, ok := n.(*ast.SelectStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x == nil {
			return true
		}
		return f(x)
	})
}

// acquire applies one lockStream call.
func (fc *funcLockChecker) acquire(held []string, call *ast.CallExpr, report ReportFunc) []string {
	key, sanctioned := fc.tokenOf(call)
	if loop := fc.loopOf[call]; loop != nil && !sanctioned {
		fc.reportOnce(report, call.Pos(),
			"stream lock acquired in a loop the checker cannot order; use the ascending-mask idiom (for m := mask; m != 0; m &= m - 1 { lockStream(bits.TrailingZeros64(m)) })")
		// Fall through: still track it so releases balance.
	}
	for _, h := range held {
		if h == key {
			if strings.HasPrefix(key, "loop@") {
				return held // batch re-acquisition on the back edge
			}
			fc.reportOnce(report, call.Pos(), "stream lock %s acquired twice on the same path (self-deadlock)", describeToken(key))
			return held
		}
	}
	if r, ok := rankOf(key); ok {
		for _, h := range held {
			if hr, hok := rankOf(h); hok && hr >= r {
				fc.reportOnce(report, call.Pos(),
					"stream locks acquired out of order: shard %d is locked while already holding shard %d; the handshake requires ascending shard order (DESIGN.md §11)", r, hr)
			}
		}
	}
	return append(append([]string(nil), held...), key)
}

// release applies one unlockStream call.
func (fc *funcLockChecker) release(held []string, call *ast.CallExpr, report ReportFunc) []string {
	key, _ := fc.tokenOf(call)
	if len(held) == 0 {
		fc.reportOnce(report, call.Pos(), "stream lock released but none is held on this path")
		return held
	}
	if held[len(held)-1] == key {
		return held[: len(held)-1 : len(held)-1]
	}
	for i, h := range held {
		if h == key {
			// Releasing below the top of the acquisition stack: out of
			// descending order. Exact when both ranks are known, still a
			// stack-discipline violation otherwise.
			fc.reportOnce(report, call.Pos(),
				"stream lock %s released out of order while %s is still held; release descending (reverse of acquisition)",
				describeToken(key), describeToken(held[len(held)-1]))
			return append(append([]string(nil), held[:i]...), held[i+1:]...)
		}
	}
	if fc.loopOf[call] != nil {
		// An inline mask-iteration release (the unlockStreamsDesc shape,
		// written inline): treat as releasing everything this path holds.
		return nil
	}
	fc.reportOnce(report, call.Pos(),
		"stream lock %s released but was not acquired on this path (held: %s)", describeToken(key), describeHeld(held))
	return held
}

// checkExit verifies the held set is empty at an exit point, after replaying
// the deferred releases LIFO.
func (fc *funcLockChecker) checkExit(f lockFact, pos token.Pos, kind string) {
	held := splitKeys(f.held)
	defers := splitKeys(f.defers)
	for i := len(defers) - 1; i >= 0; i-- {
		key := defers[i]
		if key == releaseAllKey {
			held = nil
			continue
		}
		for j := len(held) - 1; j >= 0; j-- {
			if held[j] == key {
				held = append(append([]string(nil), held[:j]...), held[j+1:]...)
				break
			}
		}
	}
	if len(held) > 0 {
		fc.reportOnce(fc.lo.report, pos,
			"stream lock %s still held at %s; every path out of %s must release it (leaked lock deadlocks the next epoch)",
			describeHeld(held), kind, fc.fd.Name.Name)
	}
}

// releaseKeyOf classifies a deferred call: the key it will release ("" when
// the defer is lock-irrelevant). kind is "one" or "all".
func (fc *funcLockChecker) releaseKeyOf(call *ast.CallExpr) (key, kind string) {
	switch calleeName(fc.p.Info, call) {
	case unlockFnName:
		k, _ := fc.tokenOf(call)
		return k, "one"
	}
	if fn := calleeFunc(fc.p.Info, call); fn != nil && fc.lo.bulkRelease[fn] {
		return releaseAllKey, "all"
	}
	return "", ""
}

// tokenOf derives the symbolic token of a lock/unlock call from its last
// argument (the shard index; methods and plain functions both put it last).
// sanctioned reports that the call sits in a recognized ascending-mask loop.
func (fc *funcLockChecker) tokenOf(call *ast.CallExpr) (key string, sanctioned bool) {
	if len(call.Args) == 0 {
		return "opaque@" + strconv.Itoa(int(call.Pos())), false
	}
	arg := unwrap(call.Args[len(call.Args)-1])
	if tv, ok := fc.p.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return "#" + strconv.FormatInt(v, 10), false
		}
	}
	if loop := fc.loopOf[call]; loop != nil {
		if forStmt, ok := loop.(*ast.ForStmt); ok && isAscendingMaskLoop(fc.p.Info, forStmt, call) {
			return fmt.Sprintf("loop@%d", loop.Pos()), true
		}
		return fmt.Sprintf("loop@%d", loop.Pos()), false
	}
	return exprKey(arg), false
}

// describeToken renders a token for diagnostics.
func describeToken(key string) string {
	if r, ok := rankOf(key); ok {
		return fmt.Sprintf("for shard %d", r)
	}
	if strings.HasPrefix(key, "loop@") {
		return "batch (mask loop)"
	}
	return fmt.Sprintf("(index %s)", key)
}

func describeHeld(held []string) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = describeToken(h)
	}
	return strings.Join(parts, ", ")
}

// checkBlocking reports blocking operations inside node n while locks are
// held. Comm statements of a select clause are skipped: whether they block is
// a property of the select head, which is checked at the SelectStmt node.
func (fc *funcLockChecker) checkBlocking(n ast.Node, held []string, report ReportFunc) {
	blockedMsg := func(pos token.Pos, what string) {
		fc.reportOnce(report, pos,
			"%s while stream lock %s is held; the commit critical section must not block (spin instead)",
			what, describeHeld(held))
	}
	if sel, ok := n.(*ast.SelectStmt); ok {
		if !SelectHasDefault(sel) {
			blockedMsg(sel.Pos(), "blocking select")
		}
		return // clause bodies are separate blocks
	}
	if st, ok := n.(ast.Stmt); ok && fc.commStmts[st] {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			blockedMsg(x.Pos(), "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				blockedMsg(x.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			if what := blockingCall(fc.p.Info, x); what != "" {
				blockedMsg(x.Pos(), what)
			}
		}
		return true
	})
}

// blockingCall classifies a call as blocking ("" when it is not).
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "os", "net", "io", "bufio":
		return fn.Pkg().Path() + "." + fn.Name() + " (I/O)"
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") ||
			strings.HasPrefix(fn.Name(), "Scan") {
			return "fmt." + fn.Name() + " (I/O)"
		}
	case "sync":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return ""
		}
		recv := namedOrigin(sig.Recv().Type())
		if recv == nil {
			if ptr, ok := sig.Recv().Type().Underlying().(*types.Pointer); ok {
				recv = namedOrigin(ptr.Elem())
			}
		}
		if recv == nil {
			return ""
		}
		switch recv.Obj().Name() + "." + fn.Name() {
		case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock", "WaitGroup.Wait", "Cond.Wait":
			return "sync." + recv.Obj().Name() + "." + fn.Name()
		}
	}
	return ""
}

// ---- shared structural helpers ----

// isLockPrimitive reports whether fd declares one of the lock primitives
// themselves.
func isLockPrimitive(fd *ast.FuncDecl) bool {
	return fd.Name.Name == lockFnName || fd.Name.Name == unlockFnName
}

// calleeName resolves a call's function name, or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return ""
}

// inspectLoops walks body invoking fn for every call expression with its
// innermost enclosing for/range statement (nil outside loops). Function
// literals are not descended into.
func inspectLoops(body *ast.BlockStmt, fn func(call *ast.CallExpr, loop ast.Stmt)) {
	var walk func(root ast.Node, loop ast.Stmt)
	walk = func(root ast.Node, loop ast.Stmt) {
		ast.Inspect(root, func(x ast.Node) bool {
			if x == nil || x == root {
				return true
			}
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				walk(x, x)
				return false
			case *ast.RangeStmt:
				walk(x, x)
				return false
			case *ast.CallExpr:
				fn(x, loop)
			}
			return true
		})
	}
	walk(body, nil)
}

// isAscendingMaskLoop recognizes the sanctioned batch-acquisition idiom:
//
//	for m := <mask>; m != 0; m &= m - 1 {
//		... lockStream(bits.TrailingZeros64(m)) ...
//	}
//
// Clearing the lowest set bit each iteration and locking its index visits
// shard indices in strictly ascending order.
func isAscendingMaskLoop(info *types.Info, l *ast.ForStmt, lockCall *ast.CallExpr) bool {
	// Init: m := <expr>, single variable.
	init, ok := l.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return false
	}
	mIdent, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	mObj := info.ObjectOf(mIdent)
	// Cond: m != 0.
	cond, ok := l.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ || !isIdentFor(info, cond.X, mObj) || !isZeroLit(cond.Y) {
		return false
	}
	// Post: m &= m - 1.
	post, ok := l.Post.(*ast.AssignStmt)
	if !ok || post.Tok != token.AND_ASSIGN || len(post.Lhs) != 1 || len(post.Rhs) != 1 {
		return false
	}
	if !isIdentFor(info, post.Lhs[0], mObj) {
		return false
	}
	sub, ok := unwrap(post.Rhs[0]).(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB || !isIdentFor(info, sub.X, mObj) || !isOneLit(sub.Y) {
		return false
	}
	// Lock argument: bits.TrailingZeros64(m) (possibly through a conversion).
	if len(lockCall.Args) == 0 {
		return false
	}
	arg := unwrap(lockCall.Args[len(lockCall.Args)-1])
	for {
		inner, ok := arg.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, inner)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/bits" &&
			strings.HasPrefix(fn.Name(), "TrailingZeros") {
			return len(inner.Args) == 1 && isIdentFor(info, inner.Args[0], mObj)
		}
		// A conversion like int(bits.TrailingZeros64(m)): peel one layer.
		if len(inner.Args) != 1 {
			return false
		}
		arg = unwrap(inner.Args[0])
	}
}

func isIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := unwrap(e).(*ast.Ident)
	return ok && obj != nil && info.ObjectOf(id) == obj
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := unwrap(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

func isOneLit(e ast.Expr) bool {
	bl, ok := unwrap(e).(*ast.BasicLit)
	return ok && bl.Value == "1"
}

// exprKey renders a canonical key for an index expression (best effort;
// distinct syntax means distinct tokens — the documented boundary).
func exprKey(e ast.Expr) string {
	switch e := unwrap(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return fmt.Sprintf("expr@%d", e.Pos())
	}
}

// mergeLockFacts joins two path states. Identical states merge to
// themselves; divergent held sets merge to the union (ordered by the first
// operand, then the second's extras) so a lock held on only one inbound path
// still demands a release downstream. Divergent defer lists keep the longer
// (registration is monotone along a path, so one is a prefix of the other in
// well-formed code).
func mergeLockFacts(a, b lockFact) Fact {
	if a == b {
		return a
	}
	held := splitKeys(a.held)
	haveToken := make(map[string]bool, len(held))
	for _, h := range held {
		haveToken[h] = true
	}
	for _, h := range splitKeys(b.held) {
		if !haveToken[h] {
			held = append(held, h)
			haveToken[h] = true
		}
	}
	defers := a.defers
	if len(splitKeys(b.defers)) > len(splitKeys(a.defers)) {
		defers = b.defers
	}
	return lockFact{held: joinKeys(held), defers: defers}
}
