package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	// Pos locates the violation (file:line:col, file relative to the walk).
	Pos token.Position
	// Check names the check that produced the diagnostic.
	Check string
	// Message explains the violation and, where useful, the conflicting
	// location.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one self-contained invariant checker. Checks register themselves
// in an init function (see the check_*.go files) so cmd/stmlint picks up new
// checks without wiring.
type Check struct {
	// Name is the stable identifier used by -checks and in diagnostics.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run reports every violation in m through report.
	Run func(m *Module, report ReportFunc)
}

// ReportFunc records one diagnostic at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

var registry []*Check

// RegisterCheck adds c to the suite. Called from init functions only.
func RegisterCheck(c *Check) {
	for _, existing := range registry {
		if existing.Name == c.Name {
			panic("analysis: duplicate check " + c.Name)
		}
	}
	registry = append(registry, c)
}

// AllChecks returns the registered checks sorted by name.
func AllChecks() []*Check {
	out := make([]*Check, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SelectChecks resolves a comma-separated name list ("" or "all" selects
// everything).
func SelectChecks(names string) ([]*Check, error) {
	if names == "" || names == "all" {
		return AllChecks(), nil
	}
	byName := make(map[string]*Check)
	for _, c := range registry {
		byName[c.Name] = c
	}
	var out []*Check
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q (have %s)", name, checkNames())
		}
		out = append(out, c)
	}
	return out, nil
}

func checkNames() string {
	var names []string
	for _, c := range AllChecks() {
		names = append(names, c.Name)
	}
	return strings.Join(names, ", ")
}

// Run executes checks over m and returns the diagnostics sorted by position.
// Diagnostics covered by a well-formed `//stmlint:ignore <check> <reason>`
// annotation (same line or the line above) are dropped; malformed ignore
// annotations are themselves diagnostics.
func Run(m *Module, checks []*Check) []Diagnostic {
	ignores, diags := collectIgnores(m)
	for _, c := range checks {
		c := c
		report := func(pos token.Pos, format string, args ...any) {
			d := Diagnostic{
				Pos:     m.Fset.Position(pos),
				Check:   c.Name,
				Message: fmt.Sprintf(format, args...),
			}
			if ignores.suppressed(d) {
				return
			}
			diags = append(diags, d)
		}
		c.Run(m, report)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename || a.Pos.Line != b.Pos.Line || a.Pos.Column != b.Pos.Column {
			return posLess(a.Pos, b.Pos)
		}
		return a.Check < b.Check
	})
	return diags
}

// ---- shared AST/type helpers used by several checks ----

// unwrap strips parentheses.
func unwrap(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// fieldOf resolves e (after stripping parens and element indexing) to the
// struct field it selects, or nil. `s.f`, `s.f[i]`, and `(&s.f[i])`'s inner
// expression all resolve to field f.
func fieldOf(info *types.Info, e ast.Expr) (*types.Var, *ast.SelectorExpr) {
	for {
		e = unwrap(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ix.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	v, _ := s.Obj().(*types.Var)
	return v, sel
}

// isPointer reports whether t is (after unaliasing) a pointer type.
func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// sharedDest reports whether the l-value e may designate memory shared with
// other goroutines, as opposed to a function-private copy. The heuristic:
// an access chain rooted at a local, non-pointer variable and traversing
// only value (struct/array) links stays within a private copy; any pointer
// dereference, slice/map element, or package-level root can reach shared
// memory. This is deliberately conservative in the unknown cases.
func sharedDest(info *types.Info, e ast.Expr) bool {
	e = unwrap(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		return isPointer(v.Type())
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if isPointer(info.TypeOf(e.X)) {
				return true // implicit dereference
			}
			return sharedDest(info, e.X)
		}
		return true // qualified identifier (pkg.Var) or method value
	case *ast.IndexExpr:
		switch info.TypeOf(e.X).Underlying().(type) {
		case *types.Array:
			return sharedDest(info, e.X)
		default:
			return true // slice, map, or pointer-to-array element
		}
	case *ast.StarExpr:
		return true
	case *ast.CompositeLit, *ast.CallExpr, *ast.BasicLit, *ast.FuncLit:
		return false // fresh value
	default:
		return true
	}
}

// namedOrigin returns the origin named type of t (unaliased, with any type
// instantiation stripped), or nil.
func namedOrigin(t types.Type) *types.Named {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	return n.Origin()
}

// pkgNameOf returns the name of the package that defines named type t, or "".
func pkgNameOf(t types.Type) string {
	n := namedOrigin(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name()
}

// funcDirective reports whether fn's doc comment carries the //stm:<name>
// directive.
func funcDirective(fn *ast.FuncDecl, name string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == "//stm:"+name {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the function or method object it
// invokes, or nil (builtins, function-typed variables, type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fe := unwrap(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.ObjectOf(fe).(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.ObjectOf(fe.Sel).(*types.Func)
		return f
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := unwrap(fe.X).(*ast.Ident); ok {
			f, _ := info.ObjectOf(id).(*types.Func)
			return f
		}
	}
	return nil
}
