package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The atomic-publish check guards the STM's publication protocol. A slot (or
// any shared record) is built up with plain stores while it is still private,
// then *published* with one atomic release store — the ALIVE status-word
// store in begin(), the killer-descriptor store before the doom CAS. From
// that instant other goroutines may observe the record, and every subsequent
// access to its atomic state must go through the atomics; a plain store after
// the publication point is a data race that the happens-before edge of the
// publishing store does nothing to excuse.
//
// mixed-access (the flow-insensitive sibling) cannot express this: it either
// flags the benign pre-publication initialization too, or must exempt whole
// patterns. This check is path-sensitive over the CFG: a plain access to an
// atomic field is reported only when a publication of the same base object
// precedes it on some path.
//
// Definitions:
//
//   - An *atomic field* is one whose address is passed to sync/atomic
//     anywhere in the module (the mixed-access rule), or whose type is an
//     atomic wrapper — a named type whose pointer method set includes both
//     Load and Store (internal/padded's types, sync/atomic's value types,
//     and fixture-local equivalents all qualify).
//   - A *publication point* is an atomic release store to an atomic field of
//     base expression X: a Store/Swap/CompareAndSwap (or CAS) wrapper-method
//     call on X.f, or a sync/atomic Store*/Swap*/CompareAndSwap* call taking
//     &X.f. Load and Add do not publish.
//   - After X is published, a plain (non-atomic) read or write of *any*
//     atomic field of X is reported. Before publication, plain access is
//     initialization and is allowed — that is the point of the check.
//
// Soundness boundary (DESIGN.md §13): bases are matched by canonical
// expression text within one function. Publication does not propagate to
// callees, and an alias (`sl := tx.slot`) is a different base. Both limits
// under-approximate; the check never cries wolf on a path where it cannot
// show the publication happened first.
func init() {
	RegisterCheck(&Check{
		Name: "atomic-publish",
		Doc:  "no plain access to an object's atomic fields after the atomic store that publishes it",
		Run:  runAtomicPublish,
	})
}

func runAtomicPublish(m *Module, report ReportFunc) {
	ap := &atomicPublishChecker{
		m:            m,
		report:       report,
		atomicFields: make(map[*types.Var]bool),
		atomicUses:   make(map[*ast.SelectorExpr]bool),
		wrapperCache: make(map[*types.Named]bool),
	}
	ap.collectAtomicFields()
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					ap.checkFunc(p, fd)
				}
			}
		}
	}
}

type atomicPublishChecker struct {
	m      *Module
	report ReportFunc
	// atomicFields marks struct fields that carry atomic state.
	atomicFields map[*types.Var]bool
	// atomicUses marks selector nodes consumed by an atomic operation (the
	// receiver of a wrapper-method call, the &arg of a sync/atomic call) —
	// these are not plain accesses.
	atomicUses map[*ast.SelectorExpr]bool
	// wrapperCache memoizes the atomic-wrapper test per named type.
	wrapperCache map[*types.Named]bool
}

// atomicMethodNames are the wrapper methods treated as atomic operations.
var atomicMethodNames = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "CAS": true, "And": true, "Or": true,
}

// publishingMethod reports whether an atomic operation name is a release
// store (publishes its object) rather than a read or RMW-increment.
func publishingMethod(name string) bool {
	return name == "Store" || name == "Swap" ||
		strings.HasPrefix(name, "CompareAndSwap") || name == "CAS" ||
		strings.HasPrefix(name, "Store") || strings.HasPrefix(name, "Swap")
}

// isAtomicWrapper reports whether t is a named type whose pointer method set
// has both Load and Store — the shape of every atomic box (padded.Uint64,
// atomic.Pointer[T], ...).
func (ap *atomicPublishChecker) isAtomicWrapper(t types.Type) bool {
	n := namedOrigin(t)
	if n == nil {
		return false
	}
	if v, ok := ap.wrapperCache[n]; ok {
		return v
	}
	ms := types.NewMethodSet(types.NewPointer(n))
	hasLoad, hasStore := false, false
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Load":
			hasLoad = true
		case "Store":
			hasStore = true
		}
	}
	ok := hasLoad && hasStore
	ap.wrapperCache[n] = ok
	return ok
}

// collectAtomicFields runs the module-wide pass: which fields are atomic, and
// which selector nodes are atomic uses.
func (ap *atomicPublishChecker) collectAtomicFields() {
	for _, p := range ap.m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				// sync/atomic function taking &X.f.
				if isAtomicCall(p.Info, call) {
					for _, arg := range call.Args {
						u, ok := unwrap(arg).(*ast.UnaryExpr)
						if !ok || u.Op != token.AND {
							continue
						}
						if fld, sel := fieldOf(p.Info, u.X); fld != nil {
							ap.atomicFields[fld] = true
							ap.atomicUses[sel] = true
						}
					}
					return true
				}
				// Wrapper-method call X.f.Store(v).
				if fld, sel := ap.wrapperMethodTarget(p, call); fld != nil {
					ap.atomicFields[fld] = true
					ap.atomicUses[sel] = true
				}
				return true
			})
		}
	}
}

// wrapperMethodTarget resolves call as an atomic-method call on a
// wrapper-typed struct field, returning the field and its selector node
// (nil, nil otherwise).
func (ap *atomicPublishChecker) wrapperMethodTarget(p *Package, call *ast.CallExpr) (*types.Var, *ast.SelectorExpr) {
	fun, ok := unwrap(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicMethodNames[fun.Sel.Name] {
		return nil, nil
	}
	if s, ok := p.Info.Selections[fun]; !ok || s.Kind() != types.MethodVal {
		return nil, nil
	}
	fld, sel := fieldOf(p.Info, fun.X)
	if fld == nil || !ap.isAtomicWrapper(fld.Type()) {
		return nil, nil
	}
	return fld, sel
}

// pubFact is the dataflow state: the canonical base keys published so far on
// this path, sorted and "|"-joined for value equality.
type pubFact string

func (f pubFact) has(key string) bool {
	for _, k := range splitKeys(string(f)) {
		if k == key {
			return true
		}
	}
	return false
}

func (f pubFact) add(key string) pubFact {
	if f.has(key) {
		return f
	}
	ks := append(splitKeys(string(f)), key)
	sort.Strings(ks)
	return pubFact(joinKeys(ks))
}

func (f pubFact) union(g pubFact) pubFact {
	out := f
	for _, k := range splitKeys(string(g)) {
		out = out.add(k)
	}
	return out
}

// checkFunc analyzes one function. Functions with no publication point are
// skipped: the fact never becomes non-empty.
func (ap *atomicPublishChecker) checkFunc(p *Package, fd *ast.FuncDecl) {
	pubPos := make(map[string]token.Pos) // base key -> first publication site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if base, pos := ap.publicationOf(p, call); base != "" {
				if _, seen := pubPos[base]; !seen {
					pubPos[base] = pos
				}
			}
		}
		return true
	})
	if len(pubPos) == 0 {
		return
	}

	g := BuildCFG(fd)
	transfer := func(f Fact, n ast.Node, report ReportFunc) Fact {
		fact := f.(pubFact)
		inspectLeaf(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				if base, _ := ap.publicationOf(p, x); base != "" {
					fact = fact.add(base)
				}
			case *ast.SelectorExpr:
				if ap.atomicUses[x] {
					return true
				}
				s, ok := p.Info.Selections[x]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				fld, _ := s.Obj().(*types.Var)
				// A field is atomic by observed use (pass 1) or by type: a
				// wrapper-typed field is atomic state even before its first
				// atomic call is written.
				if !ap.atomicFields[fld] && !ap.isAtomicWrapper(fld.Type()) {
					return true
				}
				base := exprKey(x.X)
				if fact.has(base) && report != nil {
					first := ap.m.Fset.Position(pubPos[base])
					report(x.Pos(),
						"plain access to atomic field %s.%s after %s was published by the atomic store at %s:%d; post-publication access must be atomic",
						recvTypeName(s.Recv()), fld.Name(), base, shortFile(first.Filename), first.Line)
				}
			}
			return true
		})
		return fact
	}

	in := Forward(g, Flow{
		Entry:    pubFact(""),
		Transfer: func(f Fact, n ast.Node) Fact { return transfer(f, n, nil) },
		Merge:    func(a, b Fact) Fact { return a.(pubFact).union(b.(pubFact)) },
		Equal:    func(a, b Fact) bool { return a == b },
	})
	reported := make(map[token.Pos]bool)
	dedupe := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		ap.report(pos, format, args...)
	}
	for _, b := range g.Reachable() {
		entry, ok := in[b]
		if !ok {
			continue
		}
		f := entry.(pubFact)
		for _, n := range b.Nodes {
			f = transfer(f, n, dedupe).(pubFact)
		}
	}
}

// publicationOf classifies call as a publication point, returning the
// canonical base key and the site ("" when it is not one).
func (ap *atomicPublishChecker) publicationOf(p *Package, call *ast.CallExpr) (string, token.Pos) {
	// sync/atomic StoreX/SwapX/CompareAndSwapX(&X.f, ...).
	if isAtomicCall(p.Info, call) {
		fn := calleeFunc(p.Info, call)
		if fn == nil || !publishingMethod(fn.Name()) {
			return "", token.NoPos
		}
		for _, arg := range call.Args {
			u, ok := unwrap(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			if fld, sel := fieldOf(p.Info, u.X); fld != nil && ap.atomicFields[fld] {
				return exprKey(sel.X), call.Pos()
			}
		}
		return "", token.NoPos
	}
	// Wrapper method X.f.Store(v) / X.f.CompareAndSwap(old, new).
	fun, ok := unwrap(call.Fun).(*ast.SelectorExpr)
	if !ok || !publishingMethod(fun.Sel.Name) {
		return "", token.NoPos
	}
	if fld, sel := ap.wrapperMethodTarget(p, call); fld != nil {
		_ = fld
		return exprKey(sel.X), call.Pos()
	}
	return "", token.NoPos
}
