package analysis

import (
	"go/ast"
	"go/types"
)

// The taxonomy-path check is the path-sensitive successor to abort-taxonomy.
// The older check excuses a conflict exit when a `.reason = ...` assignment
// merely *textually precedes* it in the function — so an assignment inside
// one branch excuses a bare `return false` in a sibling branch that no
// execution path connects it to. This check runs the same conflict-exit
// definitions over the function's CFG with the fact "an abort reason has
// been recorded on every path reaching this point" (merge = AND): a conflict
// exit is clean only when reason recording dominates it.
//
// Scope and exit definitions are shared with abort-taxonomy (packages
// declaring the unexported `engine` interface; conflict exits are
// constant-false returns of implementers' read/commit methods and any
// panic(conflictSignal{})). Recording is an assignment to a `.reason` field
// or a call whose callee — transitively, within the module, via the
// abort-taxonomy may-set summary — performs one. The summary is a
// may-analysis, so a delegating call marks all its successor paths recorded
// even when the callee records only on its failure branch; that
// over-approximation is inherited deliberately (DESIGN.md §13) and keeps the
// delegation idiom (`if !e.revalidate(tx) { return false }`) clean.
func init() {
	RegisterCheck(&Check{
		Name: "taxonomy-path",
		Doc:  "every CFG path into an engine conflict exit must record tx.reason first",
		Run:  runTaxonomyPath,
	})
}

func runTaxonomyPath(m *Module, report ReportFunc) {
	for _, p := range m.Pkgs {
		iface := engineInterface(p)
		if iface == nil {
			continue
		}
		tc := &taxonomyChecker{m: m, p: p, iface: iface, report: report,
			setsReason: make(map[*types.Func]bool)}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkTaxonomyPaths(tc, fd)
			}
		}
	}
}

func checkTaxonomyPaths(tc *taxonomyChecker, fd *ast.FuncDecl) {
	isEngine := tc.isEngineConflictMethod(fd)

	// Only analyze functions that contain a conflict exit at all.
	hasExit := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			if isEngine && tc.isConflictReturn(n) {
				hasExit = true
			}
		case *ast.CallExpr:
			if tc.isConflictPanic(n) {
				hasExit = true
			}
		}
		return !hasExit
	})
	if !hasExit {
		return
	}

	// transfer: once a node records a reason (directly or by delegation),
	// the path is satisfied from there on.
	transfer := func(f Fact, n ast.Node) Fact {
		recorded := f.(bool)
		if recorded {
			return true
		}
		inspectLeaf(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if sel, ok := unwrap(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "reason" {
						recorded = true
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc(tc.p.Info, x); fn != nil &&
					(tc.isEngineIfaceMethod(fn) || tc.fnSetsReason(fn, 0)) {
					recorded = true
				}
			}
			return true
		})
		return recorded
	}

	g := BuildCFG(fd)
	in := Forward(g, Flow{
		Entry:    false,
		Transfer: transfer,
		// A conflict exit needs the reason on EVERY inbound path.
		Merge: func(a, b Fact) Fact { return a.(bool) && b.(bool) },
		Equal: func(a, b Fact) bool { return a == b },
	})

	for _, b := range g.Reachable() {
		entry, ok := in[b]
		if !ok {
			continue
		}
		recorded := entry.(bool)
		for _, n := range b.Nodes {
			// A call inside the exit statement itself (e.g. `return e.fail(tx)`)
			// runs before control leaves, so apply the node's effect first.
			recorded = transfer(recorded, n).(bool)
			if recorded {
				continue
			}
			switch n := n.(type) {
			case *ast.ReturnStmt:
				if isEngine && tc.isConflictReturn(n) {
					tc.report(n.Pos(),
						"conflict exit reachable without tx.reason: a path into this return false in %s.%s records no abort reason",
						recvName(fd), fd.Name.Name)
				}
			case *ast.ExprStmt:
				if call, ok := unwrap(n.X).(*ast.CallExpr); ok && tc.isConflictPanic(call) {
					tc.report(n.Pos(),
						"conflictSignal reachable without tx.reason: a path into this panic in %s records no abort reason",
						fd.Name.Name)
				}
			}
		}
	}
}
