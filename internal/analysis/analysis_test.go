package analysis_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ssrg-vt/rinval/internal/analysis"
)

// TestRegistry pins the check suite: a check whose init registration is
// dropped would otherwise silently stop running everywhere.
func TestRegistry(t *testing.T) {
	want := []string{"abort-taxonomy", "atomic-publish", "hot-path", "hot-path-deep",
		"lock-order", "mixed-access", "padding", "taxonomy-path", "tx-escape"}
	var got []string
	for _, c := range analysis.AllChecks() {
		got = append(got, c.Name)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("registered checks %v, want %v", got, want)
	}
}

// TestFixtures runs each check against its golden corpus. Every fixture is a
// self-contained mini-module under testdata/<check>/<fixture>/; lines that
// must produce a diagnostic carry a `// want <check>` comment, and every
// reported diagnostic must land on such a line.
func TestFixtures(t *testing.T) {
	checkDirs, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, cd := range checkDirs {
		if !cd.IsDir() {
			continue
		}
		checkName := cd.Name()
		selected, err := analysis.SelectChecks(checkName)
		if err != nil {
			t.Fatalf("testdata/%s does not name a registered check: %v", checkName, err)
		}
		fixtures, err := os.ReadDir(filepath.Join("testdata", checkName))
		if err != nil {
			t.Fatal(err)
		}
		for _, fx := range fixtures {
			if !fx.IsDir() {
				continue
			}
			t.Run(checkName+"/"+fx.Name(), func(t *testing.T) {
				dir, err := filepath.Abs(filepath.Join("testdata", checkName, fx.Name()))
				if err != nil {
					t.Fatal(err)
				}
				m, err := analysis.LoadModule(dir)
				if err != nil {
					t.Fatalf("LoadModule: %v", err)
				}
				diags := analysis.Run(m, selected)
				want := collectWants(t, dir, checkName)
				got := make(map[string]bool)
				for _, d := range diags {
					rel, err := filepath.Rel(dir, d.Pos.Filename)
					if err != nil {
						rel = d.Pos.Filename
					}
					key := fmt.Sprintf("%s:%d", rel, d.Pos.Line)
					got[key] = true
					if !want[key] {
						t.Errorf("unexpected diagnostic: %s", d)
					}
				}
				for key := range want {
					if !got[key] {
						t.Errorf("no %s diagnostic at %s (marked `// want %s`)", checkName, key, checkName)
					}
				}
			})
		}
	}
}

// collectWants scans the fixture's Go files for `// want <check>` markers and
// returns the set of "relpath:line" keys expecting a diagnostic.
func collectWants(t *testing.T, dir, checkName string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	marker := "// want " + checkName
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), marker) {
				want[fmt.Sprintf("%s:%d", rel, line)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRepoClean runs the full suite over this repository itself and demands
// zero diagnostics: the invariants the fixtures demonstrate must actually
// hold in the code that claims them.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, d := range analysis.Run(m, analysis.AllChecks()) {
		t.Errorf("repository violates its own invariant: %s", d)
	}
}
