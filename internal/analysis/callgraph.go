package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the module-wide static call graph: one node per function or
// method declared in the module, with an edge per direct (statically
// resolvable) call site. Calls through interfaces, function-typed variables,
// and the builtins are not edges — the resolvable-call boundary every
// interprocedural check in this package documents. Call sites inside
// function literals are attributed to the enclosing declared function:
// a literal runs on the same goroutine unless spawned, and the hot-path
// propagation wants the closure's work charged to its creator.
type CallGraph struct {
	// Callees maps a caller to its unique callees, sorted by position of
	// first call site for determinism.
	Callees map[*types.Func][]CallEdge
}

// CallEdge is one caller->callee relation, positioned at the first call site.
type CallEdge struct {
	Callee *types.Func
	Site   token.Pos
}

// BuildCallGraph walks every declared function body in the module once.
func BuildCallGraph(m *Module) *CallGraph {
	cg := &CallGraph{Callees: make(map[*types.Func][]CallEdge)}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, _ := p.Info.Defs[fd.Name].(*types.Func)
				if caller == nil {
					continue
				}
				seen := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := calleeFunc(p.Info, call)
					if callee == nil || callee == caller || seen[callee] {
						return true
					}
					seen[callee] = true
					cg.Callees[caller] = append(cg.Callees[caller],
						CallEdge{Callee: callee, Site: call.Pos()})
					return true
				})
				sort.Slice(cg.Callees[caller], func(i, j int) bool {
					return cg.Callees[caller][i].Site < cg.Callees[caller][j].Site
				})
			}
		}
	}
	return cg
}
