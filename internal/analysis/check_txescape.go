package analysis

import (
	"go/ast"
	"go/types"
)

// The tx-escape check confines transaction handles to their atomic block.
// A *Tx is only valid inside the Atomically callback that received it: the
// engine re-executes bodies after conflicts, recycles the Tx value between
// attempts, and relies on the owning goroutine being the only one touching
// the read/write sets. A handle that leaks — stored to a global, parked in
// a heap-reachable field, sent on a channel, or captured by a goroutine
// spawned inside the body — can be used after its attempt died, turning an
// aborted snapshot into silent corruption.
//
// Flagged, for any expression whose type is *Tx where Tx is a named type in
// a package called "core" or "stm":
//
//   - assignments whose destination may be shared memory (package-level
//     variables, fields reached through pointers, slice/map elements),
//   - package-level variable declarations initialized with a handle,
//   - channel sends of a handle,
//   - handles passed to a `go` call, and function literals launched by `go`
//     that capture a handle declared outside the literal,
//   - appending a handle to any slice.
//
// Passing a handle *down* a synchronous call (`helper(tx, ...)`) is the
// supported idiom and is not flagged; the check is intra-procedural by
// design.
func init() {
	RegisterCheck(&Check{
		Name: "tx-escape",
		Doc:  "*Tx handles must not outlive their atomic block (no globals, heap fields, channels, or go captures)",
		Run:  runTxEscape,
	})
}

func runTxEscape(m *Module, report ReportFunc) {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if !isTxPtr(p.Info.TypeOf(rhs)) {
							continue
						}
						if len(n.Lhs) != len(n.Rhs) {
							continue // comma-ok / multi-value call forms
						}
						lhs := unwrap(n.Lhs[i])
						if id, ok := lhs.(*ast.Ident); ok {
							// Binding a local variable is the normal idiom
							// (tx := ...); only package-level targets leak.
							obj := p.Info.ObjectOf(id)
							if obj != nil && obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
								report(n.Pos(), "transaction handle stored in package-level variable %s", id.Name)
							}
							continue
						}
						if sharedDest(p.Info, lhs) {
							report(n.Pos(), "transaction handle stored to shared location %s; a *Tx must not outlive its atomic block", exprString(lhs))
						}
					}
				case *ast.GenDecl:
					// Package-level (or shared-by-closure) var initialized
					// with a handle: only package scope is inherently shared,
					// locals are covered by the assignment rule.
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, val := range vs.Values {
							if isTxPtr(p.Info.TypeOf(val)) && isPackageLevel(p.Info, vs) {
								report(val.Pos(), "transaction handle stored in a package-level variable")
							}
						}
						if isPackageLevel(p.Info, vs) && len(vs.Values) == 0 && vs.Type != nil {
							if isTxPtr(p.Info.TypeOf(vs.Type)) {
								report(vs.Pos(), "package-level *Tx variable invites cross-transaction reuse; pass the Tx down instead")
							}
						}
					}
				case *ast.SendStmt:
					if isTxPtr(p.Info.TypeOf(n.Value)) {
						report(n.Pos(), "transaction handle sent on a channel; the receiver may use it after the attempt aborts")
					}
				case *ast.GoStmt:
					checkGoStmt(p.Info, n, report)
				case *ast.CallExpr:
					if id, ok := unwrap(n.Fun).(*ast.Ident); ok {
						if b, ok := p.Info.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
							for _, arg := range n.Args[1:] {
								if isTxPtr(p.Info.TypeOf(arg)) {
									report(arg.Pos(), "transaction handle appended to a slice; a *Tx must not be retained in a collection")
								}
							}
						}
					}
				}
				return true
			})
		}
	}
}

// checkGoStmt flags handles crossing a goroutine boundary: as arguments to
// the spawned call, or as free variables of a spawned function literal.
func checkGoStmt(info *types.Info, g *ast.GoStmt, report ReportFunc) {
	for _, arg := range g.Call.Args {
		if isTxPtr(info.TypeOf(arg)) {
			report(arg.Pos(), "transaction handle passed to a goroutine; transactions are single-goroutine")
		}
	}
	lit, ok := unwrap(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || !isTxPtr(obj.Type()) {
			return true
		}
		// Free variable: declared outside the literal's extent.
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			report(id.Pos(), "goroutine captures transaction handle %q; transactions are single-goroutine", id.Name)
		}
		return true
	})
}

// isTxPtr reports whether t is a pointer to a named type Tx declared in a
// package named "core" or "stm" (the engine core and its public wrapper).
func isTxPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n := namedOrigin(ptr.Elem())
	if n == nil || n.Obj().Name() != "Tx" || n.Obj().Pkg() == nil {
		return false
	}
	name := n.Obj().Pkg().Name()
	return name == "core" || name == "stm"
}

// isPackageLevel reports whether the ValueSpec declares package-scope
// variables.
func isPackageLevel(info *types.Info, vs *ast.ValueSpec) bool {
	for _, name := range vs.Names {
		if obj := info.Defs[name]; obj != nil && obj.Parent() != nil &&
			obj.Parent().Parent() == types.Universe {
			return true
		}
	}
	return false
}

// exprString renders a short source-ish form of an l-value for diagnostics.
func exprString(e ast.Expr) string {
	switch e := unwrap(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "<expr>"
	}
}
