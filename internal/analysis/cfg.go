package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file implements the intraprocedural control-flow graph the dataflow
// checks (lock-order, atomic-publish, taxonomy-path) run over. The builder is
// deliberately self-contained (go/ast only, no x/tools): it decomposes one
// function body into basic blocks connected by the edges Go's statement forms
// induce — branches, loops (including range), switch/type-switch/select,
// labeled break/continue/goto, early returns, and panic exits — while
// recording defer statements so exit-path analyses can replay the deferred
// actions.
//
// Representation choices, which every consumer relies on:
//
//   - Block.Nodes holds *leaf* AST nodes only: simple statements plus the
//     header parts of structured statements (an if condition, a for post
//     statement, a range operand). Nested bodies are never reachable by
//     inspecting a block's nodes, so a transfer function may ast.Inspect a
//     node freely — the only sub-scopes it can encounter are function
//     literals, which have their own CFGs and must be skipped explicitly
//     (the established convention in this package).
//   - A *ast.SelectStmt appears as an opaque node in the block that reaches
//     it (so path-sensitive checks can see that a select happens there);
//     each communication clause additionally contributes its comm statement
//     at the head of its own block.
//   - Return statements and calls to the panic builtin terminate their
//     block with an edge to the synthetic Exit block. Both normal and
//     panicking exits therefore converge on Exit; checks that care about
//     which kind of exit they are looking at test the node itself.
//   - Unreachable code (statements after a return, a break-less `for {}`
//     tail) lands in blocks that are not reachable from Entry; the fixpoint
//     solver simply never visits them.
type CFG struct {
	// Name labels the function for diagnostics (best effort).
	Name string
	// Blocks lists every block, Entry first. Order is construction order and
	// has no semantic meaning beyond determinism.
	Blocks []*Block
	// Entry is the function's entry block.
	Entry *Block
	// Exit is the synthetic exit block every return, panic, and fall-off-end
	// path converges on. It holds no nodes.
	Exit *Block
	// Defers lists every defer statement in the function, in source order.
	// Exit-path analyses replay them in reverse (LIFO) order; conditional
	// defers are replayed unconditionally, a deliberate over-approximation
	// (see DESIGN.md §13).
	Defers []*ast.DeferStmt
}

// Block is one basic block: a maximal run of leaf nodes with single-entry
// control flow, plus its successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// addSucc links b -> s, ignoring duplicates.
func (b *Block) addSucc(s *Block) {
	for _, old := range b.Succs {
		if old == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
}

// Reachable returns the blocks reachable from Entry in a deterministic
// (index) order.
func (g *CFG) Reachable() []*Block {
	seen := make(map[*Block]bool)
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	var out []*Block
	for _, b := range g.Blocks {
		if seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph compactly for tests and debugging:
// "0[2 nodes] -> 1,2; 1[1 nodes] -> 3; ...".
func (g *CFG) String() string {
	var sb strings.Builder
	for i, b := range g.Blocks {
		if i > 0 {
			sb.WriteString("; ")
		}
		var succs []int
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, "%d[%d]->%v", b.Index, len(b.Nodes), succs)
	}
	return sb.String()
}

// BuildCFG constructs the control-flow graph of fd's body. fd must have a
// body. The builder needs no type information: the panic builtin is matched
// by name (shadowing `panic` with a local function would confuse it — a
// documented non-goal).
func BuildCFG(fd *ast.FuncDecl) *CFG {
	return buildCFG(funcName(fd), fd.Body)
}

// BuildLitCFG constructs the graph of a function literal's body.
func BuildLitCFG(lit *ast.FuncLit) *CFG {
	return buildCFG("func literal", lit.Body)
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		return recvName(fd) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func buildCFG(name string, body *ast.BlockStmt) *CFG {
	g := &CFG{Name: name}
	b := &cfgBuilder{g: g, labels: make(map[string]*labelInfo)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock() // index 1, by convention
	b.cur = g.Entry
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	if b.cur != nil {
		b.cur.addSucc(g.Exit)
	}
	return g
}

// loopFrame tracks the jump targets of the innermost enclosing breakable /
// continuable construct.
type loopFrame struct {
	label      string // "" for unlabeled constructs
	breakTo    *Block
	continueTo *Block // nil for switch/select (continue skips them)
}

// labelInfo resolves a goto label: the block the label names, created on
// first reference (definition or goto, whichever parses first in our walk).
type labelInfo struct {
	block *Block
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block // nil while the walker is in dead code
	loops  []loopFrame
	labels map[string]*labelInfo
	// pendingLabel carries a just-seen label so the following For/Range/
	// Switch/Select registers it as its own.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock makes blk the current block; a nil cur (dead code) stays dead
// only if blk has no other predecessors — the builder always switches, and
// reachability filtering handles dead blocks.
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// emit appends a leaf node to the current block, materializing a dead block
// for unreachable code so later labels can still attach.
func (b *cfgBuilder) emit(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable; never linked from Entry
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jump ends the current block with an edge to target and enters dead code.
func (b *cfgBuilder) jump(target *Block) {
	if b.cur != nil {
		b.cur.addSucc(target)
	}
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li.block
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.EmptyStmt:
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.cur.addSucc(lb)
		}
		b.startBlock(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.emit(s.Init)
		b.emit(s.Tag)
		b.switchBody(s.Body)
	case *ast.TypeSwitchStmt:
		b.emit(s.Init)
		b.emit(s.Assign)
		b.switchBody(s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.emit(s)
	case *ast.ExprStmt:
		b.emit(s)
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}
	default:
		// Assign, IncDec, Decl, Send, Go, ... — leaf statements.
		b.emit(s)
	}
}

// branch handles break/continue/goto/fallthrough. Fallthrough is resolved by
// switchBody (it needs the next clause), so it is a no-op here.
func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		b.jump(b.labelBlock(s.Label.Name))
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if s.Label == nil || fr.label == s.Label.Name {
				b.jump(fr.breakTo)
				return
			}
		}
		b.cur = nil // malformed; treat as dead
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			fr := b.loops[i]
			if fr.continueTo == nil {
				continue // switch/select frames are transparent to continue
			}
			if s.Label == nil || fr.label == s.Label.Name {
				b.jump(fr.continueTo)
				return
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// handled structurally in switchBody
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.emit(s.Init)
	b.emit(s.Cond)
	head := b.cur
	join := b.newBlock()

	thenB := b.newBlock()
	if head != nil {
		head.addSucc(thenB)
	}
	b.startBlock(thenB)
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(join)
	}

	if s.Else != nil {
		elseB := b.newBlock()
		if head != nil {
			head.addSucc(elseB)
		}
		b.startBlock(elseB)
		b.stmt(s.Else)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
	} else if head != nil {
		head.addSucc(join)
	}
	b.startBlock(join)
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	b.emit(s.Init)

	head := b.newBlock() // evaluates the condition each iteration
	if b.cur != nil {
		b.cur.addSucc(head)
	}
	b.startBlock(head)
	b.emit(s.Cond)

	exit := b.newBlock()
	post := b.newBlock() // continue target; holds the post statement
	if s.Cond != nil {
		head.addSucc(exit) // condition may fail
	}

	body := b.newBlock()
	head.addSucc(body)
	b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, continueTo: post})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(post)
	}
	b.loops = b.loops[:len(b.loops)-1]

	b.startBlock(post)
	b.emit(s.Post)
	post.addSucc(head) // back edge
	b.startBlock(exit)
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""

	head := b.newBlock()
	if b.cur != nil {
		b.cur.addSucc(head)
	}
	b.startBlock(head)
	b.emit(s.X) // the ranged operand is evaluated at the head

	exit := b.newBlock()
	head.addSucc(exit) // the range may be empty / exhausted

	body := b.newBlock()
	head.addSucc(body)
	b.loops = append(b.loops, loopFrame{label: label, breakTo: exit, continueTo: head})
	b.startBlock(body)
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.cur.addSucc(head) // back edge
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(exit)
}

// switchBody lowers the clause list of a switch or type switch: one block per
// clause, all fed from the current (header) block, with fallthrough edges to
// the next clause and a default-less switch flowing straight to the join.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	head := b.cur
	join := b.newBlock()

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		if head != nil {
			head.addSucc(blocks[i])
		}
	}
	hasDefault := false
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join})
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		b.startBlock(blocks[i])
		for _, e := range cc.List {
			b.emit(e) // case expressions are evaluated in the clause block
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			if b.cur != nil {
				b.cur.addSucc(blocks[i+1])
				b.cur = nil
			}
		}
		if b.cur != nil {
			b.cur.addSucc(join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if head != nil && !hasDefault {
		head.addSucc(join) // no clause may match
	}
	b.startBlock(join)
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	// The select itself is visible as an opaque node where it blocks.
	b.emit(s)
	head := b.cur
	join := b.newBlock()
	b.loops = append(b.loops, loopFrame{label: label, breakTo: join})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		if head != nil {
			head.addSucc(blk)
		}
		b.startBlock(blk)
		b.emit(cc.Comm)
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	// A select with no clauses (`select {}`) blocks forever: join then has no
	// incoming edge and everything after stays unreachable, which is exact.
	b.startBlock(join)
}

// isPanicCall matches a direct call to the panic builtin (by name).
func isPanicCall(e ast.Expr) bool {
	call, ok := unwrap(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unwrap(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// SelectHasDefault reports whether a select statement has a default clause
// (making it non-blocking).
func SelectHasDefault(s *ast.SelectStmt) bool {
	for _, cs := range s.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
