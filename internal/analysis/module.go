// Package analysis implements stmlint: a stdlib-only static analyzer that
// machine-checks the concurrency invariants RInval's correctness rests on.
//
// The STM's opacity argument (DESIGN.md) assumes a memory-access discipline
// that neither go vet nor the race detector can prove ahead of time: every
// shared counter accessed only through sync/atomic, every spin target alone
// on its cache line, every transaction handle confined to its atomic block,
// every abort classified, every annotated fast path free of slow calls. Each
// of those conventions is a Check here; cmd/stmlint runs them over the whole
// module and reports violations as file:line diagnostics.
//
// The loader below is deliberately dependency-free (go/ast + go/types +
// go/importer only, matching the repo's no-dependency rule): it discovers the
// module's packages from go.mod, parses them, topologically sorts them by
// their intra-module imports, and type-checks each one, resolving standard
// library imports through the compiler's export data (falling back to
// type-checking the standard library from source where export data is
// unavailable).
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed module.
type Package struct {
	// Path is the package's import path (module path + relative directory).
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables for Files.
	Info *types.Info
}

// Module is a fully loaded and type-checked module: the unit every Check
// runs over.
type Module struct {
	// Fset maps every AST node of every package to its position.
	Fset *token.FileSet
	// Path is the module path declared in go.mod.
	Path string
	// Dir is the module root (the directory containing go.mod).
	Dir string
	// Pkgs lists the module's packages in dependency (topological) order.
	Pkgs []*Package
	// FuncDecls resolves a function object to its declaration, across all
	// packages — the hook checks use for shallow inter-procedural questions
	// ("does this callee assign tx.reason?").
	FuncDecls map[*types.Func]*ast.FuncDecl

	sizes types.Sizes
}

// Sizes returns the target size model used for padding computations.
func (m *Module) Sizes() types.Sizes { return m.sizes }

// PkgForPos returns the module package whose sources contain pos, or nil.
func (m *Module) PkgForPos(pos token.Pos) *Package {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if f.Pos() <= pos && pos < f.End() {
				return p
			}
		}
	}
	return nil
}

// LoadModule parses and type-checks the module rooted at dir (which must
// contain a go.mod). Test files (_test.go) are not analyzed: the invariants
// guard the production concurrency paths, and test packages routinely break
// conventions on purpose.
func LoadModule(dir string) (*Module, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readGoMod(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}

	m := &Module{
		Fset:      token.NewFileSet(),
		Path:      modPath,
		Dir:       dir,
		FuncDecls: make(map[*types.Func]*ast.FuncDecl),
	}
	m.sizes = types.SizesFor("gc", runtime.GOARCH)
	if m.sizes == nil {
		m.sizes = types.SizesFor("gc", "amd64")
	}

	dirs, err := packageDirs(dir)
	if err != nil {
		return nil, err
	}
	pkgs := make(map[string]*Package)
	for _, d := range dirs {
		p, err := m.parseDir(d)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs[p.Path] = p
		}
	}

	order, err := topoSort(m.Path, pkgs)
	if err != nil {
		return nil, err
	}

	im := &moduleImporter{
		fset:  m.Fset,
		mod:   m.Path,
		local: make(map[string]*types.Package),
		std:   make(map[string]*types.Package),
	}
	for _, p := range order {
		if err := m.typeCheck(p, im, goVersion); err != nil {
			return nil, err
		}
		im.local[p.Path] = p.Types
		m.Pkgs = append(m.Pkgs, p)
	}
	return m, nil
}

// readGoMod extracts the module path and go directive from a go.mod file.
func readGoMod(path string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", "", fmt.Errorf("analysis: module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if p, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(p), `"`)
		}
		if v, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(v)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("analysis: no module directive in %s", path)
	}
	return modPath, goVersion, nil
}

// packageDirs walks the module tree collecting directories that contain Go
// sources, skipping testdata, vendor, hidden, and underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// isSourceFile reports whether name is a non-test Go source the analyzer
// should load.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// parseDir parses one package directory. Returns nil when the directory
// holds no loadable sources.
func (m *Module) parseDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(m.Dir, dir)
	if err != nil {
		return nil, err
	}
	path := m.Path
	if rel != "." {
		path = m.Path + "/" + filepath.ToSlash(rel)
	}

	p := &Package{Path: path, Dir: dir}
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		if len(p.Files) > 0 && f.Name.Name != p.Files[0].Name.Name {
			return nil, fmt.Errorf("analysis: %s: package name %q conflicts with %q",
				filepath.Join(dir, name), f.Name.Name, p.Files[0].Name.Name)
		}
		p.Files = append(p.Files, f)
	}
	return p, nil
}

// topoSort orders packages so every intra-module import precedes its
// importer.
func topoSort(modPath string, pkgs map[string]*Package) ([]*Package, error) {
	const (
		white = iota // unvisited
		gray         // on the current DFS path (cycle witness)
		black        // done
	)
	color := make(map[string]int)
	var order []*Package
	var visit func(path string) error
	visit = func(path string) error {
		switch color[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		color[path] = gray
		p := pkgs[path]
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				dep := strings.Trim(imp.Path.Value, `"`)
				if _, ok := pkgs[dep]; ok && dep != path {
					if err := visit(dep); err != nil {
						return err
					}
				} else if dep != path && (dep == modPath || strings.HasPrefix(dep, modPath+"/")) {
					return fmt.Errorf("analysis: %s imports %s, which has no loadable sources", path, dep)
				}
			}
		}
		color[path] = black
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(pkgs))
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one package and records its object tables.
func (m *Module) typeCheck(p *Package, im types.Importer, goVersion string) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var errs []error
	conf := types.Config{
		Importer:  im,
		Sizes:     m.sizes,
		GoVersion: goVersion,
		Error:     func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(p.Path, m.Fset, p.Files, info)
	if len(errs) > 0 {
		return fmt.Errorf("analysis: type-check %s: %v (and %d more)", p.Path, errs[0], len(errs)-1)
	}
	p.Types = tpkg
	p.Info = info

	for ident, obj := range info.Defs {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		// Walk up from the name to its FuncDecl.
		for _, f := range p.Files {
			if f.Pos() <= ident.Pos() && ident.Pos() < f.End() {
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name == ident {
						m.FuncDecls[fn] = fd
					}
				}
			}
		}
	}
	return nil
}

// moduleImporter resolves imports during type-checking: module-internal
// paths come from the already-checked packages, everything else from the
// compiler's export data with a from-source fallback.
type moduleImporter struct {
	fset   *token.FileSet
	mod    string
	local  map[string]*types.Package
	std    map[string]*types.Package
	gc     types.Importer
	source types.Importer
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.local[path]; ok {
		return p, nil
	}
	if path == im.mod || strings.HasPrefix(path, im.mod+"/") {
		return nil, fmt.Errorf("analysis: module package %q not loaded before its importer", path)
	}
	if p, ok := im.std[path]; ok {
		return p, nil
	}
	if im.gc == nil {
		im.gc = importer.Default()
	}
	p, gcErr := im.gc.Import(path)
	if gcErr == nil {
		im.std[path] = p
		return p, nil
	}
	if im.source == nil {
		im.source = importer.ForCompiler(im.fset, "source", nil)
	}
	p, srcErr := im.source.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("analysis: import %q: %v; source fallback: %v", path, gcErr, srcErr)
	}
	im.std[path] = p
	return p, nil
}
