// Leaked locks: an early error return and a panic that exit the function
// with a stream lock still held, deadlocking the next epoch's handshake.
package locks

func lockStream(i int)   {}
func unlockStream(i int) {}

func leakyEarlyReturn(conflict bool) bool {
	lockStream(1)
	if conflict {
		return false // want lock-order
	}
	unlockStream(1)
	return true
}

func leakyPanic(broken bool) {
	lockStream(3)
	if broken {
		panic("invariant") // want lock-order
	}
	unlockStream(3)
}
