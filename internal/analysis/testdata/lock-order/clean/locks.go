// The disciplined shapes: ascending constant acquisition with descending
// release, the sanctioned ascending-mask batch idiom paired with a bulk
// release helper, and a deferred release covering every exit path.
package locks

import "math/bits"

func lockStream(i int)   {}
func unlockStream(i int) {}

// unlockStreamsDesc is the bulk-release helper shape: unlockStream in a
// loop, no acquisitions. Callers discharge their whole held set through it.
func unlockStreamsDesc(mask uint64) {
	for mask != 0 {
		i := 63 - bits.LeadingZeros64(mask)
		unlockStream(i)
		mask &^= 1 << uint(i)
	}
}

func pairAscending() {
	lockStream(0)
	lockStream(1)
	work()
	unlockStream(1)
	unlockStream(0)
}

func maskBatch(touched uint64) {
	for m := touched; m != 0; m &= m - 1 {
		lockStream(bits.TrailingZeros64(m))
	}
	work()
	unlockStreamsDesc(touched)
}

func deferredRelease(i int, fail bool) bool {
	lockStream(i)
	defer unlockStream(i)
	if fail {
		return false // released by the defer
	}
	work()
	return true
}

func work() {}
