// The planted deadlock: two clients acquiring the same pair of stream locks
// in opposite orders is the classic ABBA hang, and a release below the top
// of the acquisition stack breaks the descending-release half of the
// handshake contract.
package locks

func lockStream(i int)   {}
func unlockStream(i int) {}

func badAcquireOrder() {
	lockStream(2)
	lockStream(1) // want lock-order
	unlockStream(1)
	unlockStream(2)
}

func badReleaseOrder() {
	lockStream(1)
	lockStream(2)
	unlockStream(1) // want lock-order
	unlockStream(2)
}
