// Blocking inside the critical section, and a batch acquisition whose order
// the checker cannot prove: parking while holding a stream lock stalls every
// committer behind this shard, and an arbitrary loop over lockStream gives
// no ascending-order guarantee.
package locks

import "time"

func lockStream(i int)   {}
func unlockStream(i int) {}

func sendWhileHeld(ch chan int) {
	lockStream(0)
	ch <- 1 // want lock-order
	unlockStream(0)
}

func sleepWhileHeld() {
	lockStream(0)
	time.Sleep(time.Millisecond) // want lock-order
	unlockStream(0)
}

func unprovableLoopOrder(ids []int) {
	for _, i := range ids {
		lockStream(i) // want lock-order
	}
	for _, i := range ids {
		unlockStream(i)
	}
	// The release loop does not provably discharge the batch either: on the
	// path where ids is empty the acquired set (whatever it was) survives to
	// the function end.
} // want lock-order
