// A plain load of a field that is updated atomically: the classic racy
// fast-path read.
package counter

import "sync/atomic"

type Counter struct {
	hits uint64
}

func (c *Counter) Inc() { atomic.AddUint64(&c.hits, 1) }

func (c *Counter) Read() uint64 {
	return c.hits // want mixed-access
}
