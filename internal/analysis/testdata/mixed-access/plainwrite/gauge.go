// A plain store to a field that is read atomically elsewhere.
package gauge

import "sync/atomic"

type Gauge struct {
	level uint64
}

func (g *Gauge) Level() uint64 { return atomic.LoadUint64(&g.level) }

func (g *Gauge) Reset() {
	g.level = 0 // want mixed-access
}
