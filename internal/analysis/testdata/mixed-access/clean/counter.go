// A field accessed only through sync/atomic, plus the sanctioned snapshot
// idiom: copies rooted at a local value cannot race with the shared original.
package counter

import "sync/atomic"

type Counter struct {
	hits uint64
	name string
}

func (c *Counter) Inc() { atomic.AddUint64(&c.hits, 1) }

func (c *Counter) Snapshot() Counter {
	return Counter{hits: atomic.LoadUint64(&c.hits), name: c.name}
}

func report(c Counter) uint64 {
	return c.hits // private copy: exempt
}
