// Every path into a conflict exit records its reason first: directly in the
// failing branch, or by delegating to a helper that records on its own
// failure path (the may-set summary keeps the delegation idiom clean).
package eng

type Tx struct {
	reason int
}

type conflictSignal struct{}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if staleEpoch() {
		tx.reason = 1
		return 0, false
	}
	if !e.revalidate(tx) {
		return 0, false // revalidate recorded the reason
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	if doomed() {
		tx.reason = 2
		return false
	}
	return true
}

func (e *impl) revalidate(tx *Tx) bool {
	if doomed() {
		tx.reason = 3
		return false
	}
	return true
}

func raise(tx *Tx) {
	tx.reason = 4
	panic(conflictSignal{})
}

func staleEpoch() bool { return false }

func doomed() bool { return false }
