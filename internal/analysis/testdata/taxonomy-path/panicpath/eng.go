// A conflictSignal raised with the reason recorded on only one of the two
// inbound paths: the skip-branch reaches the panic with whatever reason the
// previous attempt left behind.
package eng

type Tx struct {
	reason int
}

type conflictSignal struct{}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if doomed() {
		tx.reason = 1
		return 0, false
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	if doomed() {
		tx.reason = 2
		return false
	}
	return true
}

func scanAbort(tx *Tx, sampled bool) {
	if sampled {
		tx.reason = 3
	}
	panic(conflictSignal{}) // want taxonomy-path
}

func doomed() bool { return false }
