// The case the textual abort-taxonomy heuristic is blind to: a reason
// assignment in an earlier branch textually precedes the second conflict
// exit, but no execution path connects them — a transaction failing only the
// doom check aborts with a stale reason.
package eng

type Tx struct {
	reason int
}

type conflictSignal struct{}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if staleEpoch() {
		tx.reason = 1
		return 0, false
	}
	if doomed() {
		return 0, false // want taxonomy-path
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	tx.reason = 2
	return false
}

var _ = conflictSignal{}

func staleEpoch() bool { return false }

func doomed() bool { return false }
