// A read-only snapshot fallback beside a real conflict exit. The check
// matches conflict exits by the panic argument's type name: raising
// conflictSignal without recording tx.reason is a taxonomy hole, while
// raising roFallbackSignal is not a conflict abort at all — the snapshot
// reader re-runs on the regular path and no reason applies — so the fallback
// panic needs no recording and must stay clean.
package eng

type Tx struct {
	reason int
}

type conflictSignal struct{}

type roFallbackSignal struct{}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if doomed() {
		tx.reason = 1
		return 0, false
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	if doomed() {
		return false // want taxonomy-path
	}
	return true
}

// loadSnapshot is the RO hot-path read: a missing version is a fallback, not
// a conflict, so the panic carries roFallbackSignal and records nothing.
func loadSnapshot(tx *Tx, ok bool) int {
	if !ok {
		panic(roFallbackSignal{})
	}
	return 1
}

func doomed() bool { return false }
