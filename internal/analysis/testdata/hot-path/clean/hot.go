// Atomic operations and the gated clock-variable idiom are sanctioned on
// the hot path.
package hot

import (
	"sync/atomic"
	"time"
)

var clock func() time.Time = time.Now

// read is the fast path: one atomic load, clock reads only through the
// indirection.
//stm:hotpath
func read(p *uint64, timing bool) uint64 {
	if timing {
		_ = clock()
	}
	return atomic.LoadUint64(p)
}
