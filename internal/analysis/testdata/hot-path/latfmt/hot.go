// A latency probe that builds string-keyed phase rows inline: the map
// allocation and the fmt call both belong in the report path, not on the
// sampled commit path.
package hot

import "fmt"

var sink map[string]int64

//stm:hotpath
func record(phase int, ns int64) {
	row := map[string]int64{"ns": ns}                // want hot-path
	sink[fmt.Sprintf("phase-%d", phase)] = row["ns"] // want hot-path
}
