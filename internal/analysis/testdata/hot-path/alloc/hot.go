// Allocation and formatting on an annotated hot path.
package hot

import "fmt"

//stm:hotpath
func build(n int) map[int]int {
	m := make(map[int]int, n) // want hot-path
	return m
}

//stm:hotpath
func describe(v int) string {
	return fmt.Sprintf("%d", v) // want hot-path
}
