// The conflict-attribution record shape: nil-gated receiver, atomic counter
// adds into a preallocated matrix, single-writer reservoir stores. Nothing
// here allocates, formats, or locks, so the hot-path check stays silent.
package hot

import "sync/atomic"

type attribution struct {
	cells []uint64
	seen  uint64
	ids   [8]uint64
}

//stm:hotpath
func (a *attribution) recordAbort(committer, victim int, ns uint64) {
	if a == nil {
		return
	}
	atomic.AddUint64(&a.cells[committer*8+victim], 1)
	atomic.AddUint64(&a.cells[victim], ns)
}

//stm:hotpath
func (a *attribution) offerVar(id uint64) {
	if a == nil {
		return
	}
	n := atomic.LoadUint64(&a.seen)
	if n < uint64(len(a.ids)) {
		atomic.StoreUint64(&a.ids[n], id)
	}
	atomic.AddUint64(&a.seen, 1)
}
