// The sanctioned latency-decomposition shape: a nil-receiver no-op cell,
// clock reads through the package's indirection variable, phase durations
// recorded into a fixed array indexed by an integer phase — no maps, no
// formatting, no locks anywhere near the sampled path.
package hot

import (
	"sync/atomic"
	"time"
)

var nanotime func() int64 = func() int64 { return time.Now().UnixNano() }

type cell struct {
	seq    uint64
	phases [4]uint64
}

// Sample is the 1-in-N gate; a nil cell means latency is off.
//
//stm:hotpath
func (c *cell) Sample() bool {
	if c == nil {
		return false
	}
	c.seq++
	return c.seq%64 == 0
}

// Record lands one phase duration; nil-safe so call sites need no branch.
//
//stm:hotpath
func (c *cell) Record(phase int, ns int64) {
	if c == nil || ns < 0 {
		return
	}
	atomic.AddUint64(&c.phases[phase], uint64(ns))
}

// commit is the instrumented fast path: the clock is read only when the
// sample gate fired, and only through the nanotime indirection.
//
//stm:hotpath
func commit(c *cell, on bool, t0 int64) {
	if on {
		now := nanotime()
		c.Record(0, now-t0)
	}
}
