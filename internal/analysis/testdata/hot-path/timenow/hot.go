// Direct clock reads and lock acquisition on an annotated hot path.
package hot

import (
	"sync"
	"time"
)

var mu sync.Mutex

//stm:hotpath
func read() int64 {
	return time.Now().UnixNano() // want hot-path
}

//stm:hotpath
func commit(f func()) {
	mu.Lock() // want hot-path
	f()
	mu.Unlock() // want hot-path
}
