// The sharded commit-stream shape: an owner-word spin lock, shard-mask
// peeling with bit tricks, and ascending-order multi-stream acquisition.
// All of it is atomics and integer arithmetic, so the hot-path check stays
// silent — this is the discipline the real handshake follows.
package hot

import (
	"math/bits"
	"sync/atomic"
)

type stream struct {
	owner atomic.Uint32
	ts    atomic.Uint64
}

var streams [8]stream

//stm:hotpath
func lockStream(j int) {
	for !streams[j].owner.CompareAndSwap(0, 1) {
	}
}

//stm:hotpath
func unlockStream(j int) { streams[j].owner.Store(0) }

// lockTouched acquires every stream in the mask in ascending index order
// (the handshake's deadlock-freedom argument).
//stm:hotpath
func lockTouched(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		lockStream(bits.TrailingZeros64(m))
	}
}

//stm:hotpath
func unlockTouchedDesc(mask uint64) {
	for m := mask; m != 0; {
		j := bits.Len64(m) - 1
		m &^= 1 << uint(j)
		unlockStream(j)
	}
}
