// The multi-version snapshot-read shape: a version resolve and a ring GC
// sweep on the annotated hot path. The clean functions stay within the
// allowed vocabulary (atomics, slice indexing, arithmetic); the instrumented
// variants reach for a clock and a map and are flagged.
package hot

import (
	"sync/atomic"
	"time"
)

type box struct {
	v     any
	epoch uint64
}

type ring struct {
	n     uint64
	w     atomic.Uint64
	slots []atomic.Pointer[box]
}

//stm:hotpath
func versionAt(r *ring, e uint64) (any, bool) {
	w := r.w.Load()
	if w == 0 {
		return nil, false
	}
	lo := uint64(0)
	if w > r.n {
		lo = w - r.n
	}
	for j := w - 1; ; j-- {
		b := r.slots[j%r.n].Load()
		if b == nil {
			return nil, false
		}
		if b.epoch <= e {
			if r.w.Load() >= j+r.n {
				return nil, false
			}
			return b.v, true
		}
		if j == lo {
			return nil, false
		}
	}
}

//stm:hotpath
func sweep(r *ring, floor uint64) {
	w := r.w.Load()
	lo := uint64(0)
	if w > r.n {
		lo = w - r.n
	}
	keep := lo
	for j := w - 1; ; j-- {
		if b := r.slots[j%r.n].Load(); b != nil && b.epoch <= floor {
			keep = j
			break
		}
		if j == lo {
			break
		}
	}
	for j := lo; j < keep; j++ {
		r.slots[j%r.n].Store(nil)
	}
}

//stm:hotpath
func timedResolve(r *ring, e uint64) (any, bool) {
	t0 := time.Now() // want hot-path
	v, ok := versionAt(r, e)
	_ = time.Since(t0) // want hot-path
	return v, ok
}

//stm:hotpath
func memoizedResolve(r *ring, e uint64) any {
	cache := map[uint64]any{} // want hot-path
	if v, ok := versionAt(r, e); ok {
		cache[e] = v
	}
	return cache[e]
}
