// The tempting-but-wrong attribution record: building a labeled map per
// abort and formatting the var name on the record path. Both belong in the
// report/snapshot layer, not on the abort path the victim executes.
package hot

import "fmt"

type attribution struct {
	names map[string]uint64
}

//stm:hotpath
func (a *attribution) recordAbort(committer, victim int) {
	cell := map[string]int{"committer": committer} // want hot-path
	cell["victim"] = victim
	a.names[fmt.Sprintf("slot-%d", victim)]++ // want hot-path
}

//stm:hotpath
func (a *attribution) offerVar(id uint64) {
	labels := make(map[uint64]string, 1) // want hot-path
	labels[id] = "hot"
}
