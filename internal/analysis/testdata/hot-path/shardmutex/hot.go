// The tempting-but-wrong cross-shard handshake: guarding each commit
// stream with a sync.Mutex and labeling epochs with fmt on the server's
// critical path. The stream lock must be the owner-word spin lock (a
// blocked server goroutine would stall every client spinning on its
// stream), and labels belong in the report layer.
package hot

import (
	"fmt"
	"sync"
)

type stream struct {
	mu sync.Mutex
	ts uint64
}

var streams [8]stream

//stm:hotpath
func lockStream(j int) {
	streams[j].mu.Lock() // want hot-path
}

//stm:hotpath
func epochLabel(shard int, ts uint64) string {
	return fmt.Sprintf("shard%d@%d", shard, ts) // want hot-path
}
