// A latency probe that reads the clock directly: the vdso call lands on
// every transaction, sampled or not, which is exactly the overhead the
// gated-clock idiom exists to avoid.
package hot

import "time"

type cell struct {
	phases [4]int64
}

//stm:hotpath
func commit(c *cell, t0 time.Time) {
	c.phases[0] += time.Since(t0).Nanoseconds() // want hot-path
}

//stm:hotpath
func begin() time.Time {
	return time.Now() // want hot-path
}
