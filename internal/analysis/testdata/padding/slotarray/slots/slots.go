// The cell itself is fine, but the per-slot struct wrapping it picks up a
// 4-byte tail, so adjacent slice elements shift off line boundaries.
package slots

import "example.com/fix/padded"

type slot struct { // want padding
	state padded.Uint64
	owner int32
}

var table []slot

func Get(i int) uint64 { return table[i].state.Get() }
