// Two broken cells: one whose total size is not a line multiple, one whose
// payloads lack isolation padding.
package padded

const CacheLineSize = 64

type Uint64 struct { // want padding
	_ [CacheLineSize - 8]byte
	v uint64
	_ [CacheLineSize - 8]byte
}

type Pair struct {
	a uint64 // want padding
	b uint64 // want padding
	_ [2*CacheLineSize - 16]byte
}

func (p *Uint64) Get() uint64 { return p.v }

func (p *Pair) Sum() uint64 { return p.a + p.b }
