// A correctly laid-out cell: lead pad = line - sizeof(payload), trail pad =
// a full line, total two lines.
package padded

const CacheLineSize = 64

type Uint64 struct {
	_ [CacheLineSize - 8]byte
	v uint64
	_ [CacheLineSize]byte
}

func (p *Uint64) Get() uint64 { return p.v }
