// A per-slot struct whose size is a whole number of cache lines, used as a
// slice element.
package slots

import "example.com/fix/padded"

type slot struct {
	state padded.Uint64
}

var table []slot

func Get(i int) uint64 { return table[i].state.Get() }
