// Handles crossing a goroutine boundary: captured by a spawned literal, or
// sent on a channel.
package use

import "example.com/fix/core"

func Spawn(tx *core.Tx, ch chan *core.Tx) {
	go func() {
		_ = tx.Load() // want tx-escape
	}()
	ch <- tx // want tx-escape
}
