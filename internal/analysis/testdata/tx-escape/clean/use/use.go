// Passing the handle down synchronous calls and binding locals is the
// supported idiom.
package use

import "example.com/fix/core"

func helper(tx *core.Tx) int { return tx.Load() }

func Run(tx *core.Tx) int {
	t := tx
	return helper(t)
}
