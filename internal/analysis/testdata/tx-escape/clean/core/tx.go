package core

type Tx struct {
	n int
}

func (tx *Tx) Load() int { return tx.n }
