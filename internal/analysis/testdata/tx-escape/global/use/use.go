// Parking a handle in a package-level variable lets it outlive its attempt.
package use

import "example.com/fix/core"

var current *core.Tx // want tx-escape

func Stash(tx *core.Tx) {
	current = tx // want tx-escape
}
