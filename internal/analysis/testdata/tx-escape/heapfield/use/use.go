// Handles stored into heap-reachable locations: a field behind a pointer,
// or a slice.
package use

import "example.com/fix/core"

type holder struct {
	tx *core.Tx
}

var retained []*core.Tx

func Stash(h *holder, tx *core.Tx) {
	h.tx = tx // want tx-escape
	retained = append(retained, tx) // want tx-escape
}
