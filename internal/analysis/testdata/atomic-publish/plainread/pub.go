// A plain read (struct copy) of atomic state after the object was published
// by a CAS: the copy tears against concurrent atomic stores.
package pub

import "sync/atomic"

type Box struct{ v uint64 }

func (b *Box) Load() uint64             { return atomic.LoadUint64(&b.v) }
func (b *Box) Store(x uint64)           { atomic.StoreUint64(&b.v, x) }
func (b *Box) CAS(old, new uint64) bool { return atomic.CompareAndSwapUint64(&b.v, old, new) }

type slot struct {
	status Box
	killer Box
}

func doomThenSnapshot(s *slot) uint64 {
	if s.status.CAS(1, 2) { // publication
		snapshot := s.killer // want atomic-publish
		return snapshot.v
	}
	return 0
}
