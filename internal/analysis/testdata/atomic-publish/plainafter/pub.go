// Plain stores after the publication point: the release store made the
// object visible, so the later plain writes race with every reader.
package pub

import "sync/atomic"

type Box struct{ v uint64 }

func (b *Box) Load() uint64   { return atomic.LoadUint64(&b.v) }
func (b *Box) Store(x uint64) { atomic.StoreUint64(&b.v, x) }

type slot struct {
	status Box
	killer Box
}

func wrapperStoreThenPlain(s *slot) {
	s.status.Store(1) // publication
	s.killer = Box{}  // want atomic-publish
}

type rec struct {
	state uint64
}

func rawStoreThenPlain(r *rec) {
	r.state = 0 // initialization: allowed
	atomic.StoreUint64(&r.state, 1)
	if atomic.LoadUint64(&r.state) == 1 {
		r.state = 9 // want atomic-publish
	}
}
