// The sanctioned lifecycle: build the slot up with plain stores while it is
// private, publish it with one atomic release store, and touch its atomic
// state only atomically from then on.
package pub

import "sync/atomic"

// Box is the wrapper shape (pointer method set has Load and Store), like
// internal/padded's types.
type Box struct{ v uint64 }

func (b *Box) Load() uint64             { return atomic.LoadUint64(&b.v) }
func (b *Box) Store(x uint64)           { atomic.StoreUint64(&b.v, x) }
func (b *Box) CAS(old, new uint64) bool { return atomic.CompareAndSwapUint64(&b.v, old, new) }

type slot struct {
	status Box
	killer Box
}

func initAndPublish(s *slot) {
	s.status = Box{} // plain initialization before publication is the point
	s.killer = Box{}
	s.status.Store(1) // publication: the slot is visible from here on
	_ = s.killer.Load()
	s.status.Store(2)
}
