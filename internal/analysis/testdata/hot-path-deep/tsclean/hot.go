// The windowed-telemetry split done right: the sampler goroutine reads the
// wall clock freely — it is not reachable from any hot-path root — while the
// transaction path touches only the engine's nil-guarded accessor. Zero
// diagnostics expected.
package hot

import "time"

type engine struct {
	on       bool
	interval time.Duration
}

// enabled is the hot-path-facing accessor: a branch on a field, nothing more.
func (e *engine) enabled() bool { return e != nil && e.on }

//stm:hotpath
func commit(e *engine) int {
	if e.enabled() {
		return 1
	}
	return 0
}

// sampleLoop is the cold sampler: unannotated and never called from a
// hot-path root, so its clock reads are fine.
func sampleLoop(e *engine, push func(int64)) {
	for i := 0; i < 3; i++ {
		push(time.Now().UnixNano())
		time.Sleep(e.interval)
	}
}
