// An audited suppression: the helper's map build is a deliberate amortized
// cost, recorded with a reasoned //stmlint:ignore instead of un-annotating
// the root or weakening the check.
package hot

//stm:hotpath
func commit() { rebuild() }

func rebuild() {
	//stmlint:ignore hot-path-deep amortized one-time index build; repaid by O(1) lookups
	m := make(map[int]int)
	m[1] = 1
	_ = m
}
