// A hot root whose helpers stay within the rules; the fmt call lives in a
// function the hot paths never reach.
package hot

import "fmt"

//stm:hotpath
func read() uint64 { return index(7) }

func index(i uint64) uint64 { return mix(i) * 2 }

func mix(i uint64) uint64 { return i ^ (i >> 33) }

func report() { fmt.Println(read()) } // cold caller: not reachable FROM a root
