// The windowed-telemetry split done wrong: the hot path calls what looks
// like a cheap telemetry accessor, but the accessor takes its own timestamp,
// putting a clock read on the transaction critical path two calls below the
// annotated frontier.
package hot

import "time"

type engine struct {
	windowEnd int64
}

// windowAge looks like a field read but stamps the clock.
func (e *engine) windowAge() int64 { return stampNow() - e.windowEnd }

func stampNow() int64 {
	return time.Now().UnixNano() // want hot-path-deep
}

//stm:hotpath
func commit(e *engine) int {
	if e.windowAge() > 0 {
		return 1
	}
	return 0
}
