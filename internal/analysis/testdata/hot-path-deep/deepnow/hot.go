// A clock read two calls below the annotated frontier: the lexical hot-path
// check cannot see it, the transitive one must.
package hot

import "time"

//stm:hotpath
func read() int64 { return stamp() }

func stamp() int64 { return tick() }

func tick() int64 {
	return time.Now().UnixNano() // want hot-path-deep
}
