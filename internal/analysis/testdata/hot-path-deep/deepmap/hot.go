// A map allocation and a mutex acquisition hiding in helpers of an
// annotated commit path.
package hot

import "sync"

var mu sync.Mutex

//stm:hotpath
func commit() {
	rebuild()
	guard()
}

func rebuild() {
	m := make(map[int]int) // want hot-path-deep
	m[1] = 1
	_ = m
}

func guard() {
	mu.Lock()   // want hot-path-deep
	mu.Unlock() // want hot-path-deep
}
