// A conflict exit that forgets the reason: the abort is misattributed to
// whatever the previous attempt left behind.
package eng

type Tx struct {
	reason int
}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if conflicted() {
		return 0, false // want abort-taxonomy
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	tx.reason = 1
	return conflictedCommit()
}

func conflicted() bool { return false }

func conflictedCommit() bool { return true }
