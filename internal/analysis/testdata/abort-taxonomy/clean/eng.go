// Conflict exits that record a reason directly, or delegate to a helper
// that does.
package eng

type Tx struct {
	reason int
}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if conflicted() {
		tx.reason = 1
		return 0, false
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	ok := e.validate(tx)
	if !ok {
		return false
	}
	return true
}

func (e *impl) validate(tx *Tx) bool {
	if conflicted() {
		tx.reason = 2
		return false
	}
	return true
}

func conflicted() bool { return false }
