// The long-jump abort path (panic(conflictSignal{})) also needs a reason
// recorded first.
package eng

type Tx struct {
	reason int
}

type conflictSignal struct{}

type engine interface {
	read(tx *Tx) (int, bool)
	commit(tx *Tx) bool
}

type impl struct{}

func (e *impl) read(tx *Tx) (int, bool) {
	if conflicted() {
		panic(conflictSignal{}) // want abort-taxonomy
	}
	return 1, true
}

func (e *impl) commit(tx *Tx) bool {
	tx.reason = 1
	return false
}

func conflicted() bool { return false }
