package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// The abort-taxonomy check keeps the observability invariant from PR 2 true
// by construction: Stats.AbortReasons must sum to Stats.Aborts, which holds
// only if every path that fails a transaction attempt first records *why*.
// The abort bookkeeping in tx.go charges AbortReasons[tx.reason]
// unconditionally, so an engine conflict path that forgets to set tx.reason
// silently misattributes the abort to whatever reason the previous attempt
// left behind — a bug no test catches unless it asserts the exact taxonomy.
//
// Scope: packages that declare an (unexported) `engine` interface with
// `read` and `commit` methods. For every concrete type implementing it, the
// check examines the conflict exits of those two methods:
//
//   - a `return` whose final result is the constant false (read's !ok,
//     commit's failure), and
//   - any `panic(conflictSignal{})` in the package.
//
// An exit is satisfied when a `<x>.reason = ...` assignment precedes it in
// the function, or when it is governed by a condition derived from a call
// whose callee (transitively, within the module) assigns a reason — the
// delegation idiom (`if !ok { return false }` after revalidate). Calls
// through the engine interface itself are trusted: each implementation is
// checked on its own.
func init() {
	RegisterCheck(&Check{
		Name: "abort-taxonomy",
		Doc:  "every engine conflict path must set tx.reason before failing the attempt",
		Run:  runTaxonomy,
	})
}

func runTaxonomy(m *Module, report ReportFunc) {
	for _, p := range m.Pkgs {
		iface := engineInterface(p)
		if iface == nil {
			continue
		}
		tc := &taxonomyChecker{m: m, p: p, iface: iface, report: report}
		tc.run()
	}
}

// engineInterface finds the package's unexported engine contract: an
// interface type named "engine" with read and commit methods.
func engineInterface(p *Package) *types.Interface {
	tn, ok := p.Types.Scope().Lookup("engine").(*types.TypeName)
	if !ok {
		return nil
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	hasRead, hasCommit := false, false
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "read":
			hasRead = true
		case "commit":
			hasCommit = true
		}
	}
	if !hasRead || !hasCommit {
		return nil
	}
	return iface
}

type taxonomyChecker struct {
	m      *Module
	p      *Package
	iface  *types.Interface
	report ReportFunc

	// setsReason memoizes "does this function (transitively) assign a
	// .reason field".
	setsReason map[*types.Func]bool
}

func (tc *taxonomyChecker) run() {
	tc.setsReason = make(map[*types.Func]bool)
	for _, f := range tc.p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isEngineMethod := tc.isEngineConflictMethod(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // closures have their own control flow
				}
				switch n := n.(type) {
				case *ast.ReturnStmt:
					if isEngineMethod && tc.isConflictReturn(n) && !tc.excused(fd, n.Pos(), n) {
						tc.report(n.Pos(), "conflict exit without setting tx.reason: %s.%s returns false but no abort reason was recorded on this path",
							recvName(fd), fd.Name.Name)
					}
				case *ast.CallExpr:
					if tc.isConflictPanic(n) && !tc.excused(fd, n.Pos(), n) {
						tc.report(n.Pos(), "conflictSignal raised without setting tx.reason in %s", fd.Name.Name)
					}
				}
				return true
			})
		}
	}
}

// isEngineConflictMethod reports whether fd is the read or commit method of
// a type implementing the engine interface.
func (tc *taxonomyChecker) isEngineConflictMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	if fd.Name.Name != "read" && fd.Name.Name != "commit" {
		return false
	}
	rt := tc.p.Info.TypeOf(fd.Recv.List[0].Type)
	if rt == nil {
		return false
	}
	return types.Implements(rt, tc.iface) ||
		types.Implements(types.NewPointer(rt), tc.iface)
}

// isConflictReturn reports whether ret's final result is constant false.
func (tc *taxonomyChecker) isConflictReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	tv, ok := tc.p.Info.Types[last]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
}

// isConflictPanic matches panic(conflictSignal{...}).
func (tc *taxonomyChecker) isConflictPanic(call *ast.CallExpr) bool {
	id, ok := unwrap(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return false
	}
	if b, ok := tc.p.Info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "panic" {
		return false
	}
	n := namedOrigin(tc.p.Info.TypeOf(call.Args[0]))
	return n != nil && n.Obj().Name() == "conflictSignal"
}

// excused reports whether the conflict exit at pos is preceded by a reason
// assignment in fd, or governed by a delegating condition.
func (tc *taxonomyChecker) excused(fd *ast.FuncDecl, pos token.Pos, exit ast.Node) bool {
	// (1) A textually preceding `<x>.reason = ...` in the same function: the
	// reason is recorded before control can reach the exit.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel, ok := unwrap(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "reason" {
				found = true
			}
		}
		return true
	})
	if found {
		return true
	}
	// (2) Delegation: the exit is inside an if whose condition came from a
	// call that sets the reason itself.
	ifStmt := enclosingIf(fd.Body, exit)
	if ifStmt == nil {
		return false
	}
	for _, id := range condIdents(ifStmt.Cond) {
		if tc.assignedFromReasonSettingCall(fd, id) {
			return true
		}
	}
	return false
}

// enclosingIf finds the innermost if statement containing node.
func enclosingIf(body *ast.BlockStmt, node ast.Node) *ast.IfStmt {
	var best *ast.IfStmt
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if ok && ifs.Pos() <= node.Pos() && node.End() <= ifs.End() {
			best = ifs
		}
		return true
	})
	return best
}

// condIdents collects the identifiers appearing in a condition expression.
func condIdents(e ast.Expr) []*ast.Ident {
	var ids []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

// assignedFromReasonSettingCall reports whether id is assigned within fd
// from a call whose callee records an abort reason. Interface calls to the
// engine's own read/commit are trusted (each implementation is verified
// separately).
func (tc *taxonomyChecker) assignedFromReasonSettingCall(fd *ast.FuncDecl, id *ast.Ident) bool {
	obj := tc.p.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	result := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		assignsID := false
		for _, lhs := range as.Lhs {
			if lid, ok := unwrap(lhs).(*ast.Ident); ok && tc.p.Info.ObjectOf(lid) == obj {
				assignsID = true
			}
		}
		if !assignsID {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := unwrap(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(tc.p.Info, call)
			if fn == nil {
				continue
			}
			if tc.isEngineIfaceMethod(fn) || tc.fnSetsReason(fn, 0) {
				result = true
			}
		}
		return true
	})
	return result
}

// isEngineIfaceMethod reports whether fn is the read or commit method of
// the engine interface itself (a dynamic dispatch site).
func (tc *taxonomyChecker) isEngineIfaceMethod(fn *types.Func) bool {
	if fn.Name() != "read" && fn.Name() != "commit" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isIface := sig.Recv().Type().Underlying().(*types.Interface)
	return isIface
}

// fnSetsReason reports (memoized, depth-capped) whether fn's body assigns a
// .reason field, directly or through module-internal callees.
func (tc *taxonomyChecker) fnSetsReason(fn *types.Func, depth int) bool {
	if depth > 3 {
		return false
	}
	if v, ok := tc.setsReason[fn]; ok {
		return v
	}
	tc.setsReason[fn] = false // cycle guard
	decl, ok := tc.m.FuncDecls[fn]
	if !ok || decl.Body == nil {
		return false
	}
	declPkg := tc.m.PkgForPos(decl.Pos())
	if declPkg == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := unwrap(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "reason" {
					found = true
				}
			}
		case *ast.CallExpr:
			if callee := calleeFunc(declPkg.Info, n); callee != nil && callee != fn {
				if tc.fnSetsReason(callee, depth+1) {
					found = true
				}
			}
		}
		return true
	})
	tc.setsReason[fn] = found
	return found
}

// recvName renders the receiver type name of a method declaration.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
