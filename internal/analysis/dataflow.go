package analysis

import "go/ast"

// This file implements the small forward-dataflow framework the
// path-sensitive checks share. A check supplies a Flow — an abstract entry
// state, a per-node transfer function, and a merge — and Forward computes
// the fixpoint of block-entry states over a CFG with a classic worklist
// iteration. Facts are treated as immutable values: a transfer function that
// changes the state must return a fresh fact, never mutate its argument, or
// the memoized block states would be silently corrupted.
//
// Termination is the check's responsibility: its lattice must have finite
// height (every fact domain used here is a finite set keyed by program
// points, or a boolean), and Merge/Transfer must be monotone. The solver
// additionally hard-caps iterations as a defense against a non-monotone
// check bug, returning the (possibly unconverged) state rather than hanging
// the linter.

// Fact is one abstract state. Concrete types are check-private.
type Fact any

// Flow defines a forward dataflow problem over a CFG.
type Flow struct {
	// Entry is the state on function entry.
	Entry Fact
	// Transfer applies one leaf node's effect to the incoming state.
	Transfer func(f Fact, n ast.Node) Fact
	// Merge combines the states of two predecessors at a join point.
	Merge func(a, b Fact) Fact
	// Equal reports whether two facts are the same state (convergence test).
	Equal func(a, b Fact) bool
}

// Forward computes the entry state of every reachable block. Blocks
// unreachable from Entry are absent from the result.
func Forward(g *CFG, fl Flow) map[*Block]Fact {
	in := make(map[*Block]Fact)
	in[g.Entry] = fl.Entry

	reach := g.Reachable()
	// Worklist seeded in block order; bounded to defend against a
	// non-monotone transfer (2^10 visits per block is far beyond any lattice
	// used here).
	work := append([]*Block(nil), reach...)
	budget := 1024 * len(g.Blocks)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		st, ok := in[b]
		if !ok {
			continue
		}
		out := transferBlock(st, b, fl.Transfer)
		for _, s := range b.Succs {
			old, seen := in[s]
			var merged Fact
			if !seen {
				merged = out
			} else {
				merged = fl.Merge(old, out)
			}
			if !seen || !fl.Equal(old, merged) {
				in[s] = merged
				work = append(work, s)
			}
		}
	}
	return in
}

// transferBlock folds the transfer function over a block's nodes.
func transferBlock(f Fact, b *Block, transfer func(Fact, ast.Node) Fact) Fact {
	for _, n := range b.Nodes {
		f = transfer(f, n)
	}
	return f
}

// ReplayBlock re-runs the transfer function over one block starting from its
// converged entry state, invoking visit with the state *before* each node.
// Checks use it to report diagnostics at specific nodes with the exact
// abstract state that reaches them.
func ReplayBlock(entry Fact, b *Block, transfer func(Fact, ast.Node) Fact, visit func(f Fact, n ast.Node)) {
	f := entry
	for _, n := range b.Nodes {
		visit(f, n)
		f = transfer(f, n)
	}
}
