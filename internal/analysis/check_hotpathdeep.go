package analysis

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The hot-path-deep check closes the loophole hot-path deliberately leaves
// open: hot-path is lexical, so an annotated fast path stays clean while a
// helper it calls quietly grows a time.Now or a map allocation. This check
// propagates `//stm:hotpath` through the module call graph — every function
// reachable from an annotated root via direct calls is *transitively hot* —
// and applies the same banned-operation rules (time.Now/Since, fmt, map
// allocation, sync mutexes) to the transitive bodies. Diagnostics carry the
// call chain from the annotated root so the reader sees why an innocuous
// helper is on the critical path.
//
// Directly annotated bodies are not re-checked (hot-path owns them). The
// reachable set follows only statically resolvable calls into functions
// declared in this module (the call-graph boundary): calls through interfaces
// or function-typed variables — including the config-gated clock variable,
// the sanctioned slow-call escape hatch — do not propagate hotness.
//
// Deliberate hot-path costs (e.g. the write-set's amortized map build) are
// suppressed with an audited `//stmlint:ignore hot-path-deep <reason>`
// rather than by un-annotating the root.
func init() {
	RegisterCheck(&Check{
		Name: "hot-path-deep",
		Doc:  "functions transitively reachable from //stm:hotpath roots must obey the hot-path rules",
		Run:  runHotPathDeep,
	})
}

func runHotPathDeep(m *Module, report ReportFunc) {
	cg := BuildCallGraph(m)

	annotated := make(map[*types.Func]bool)
	var roots []*types.Func
	for fn, fd := range m.FuncDecls {
		if fd.Body != nil && funcDirective(fd, "hotpath") {
			annotated[fn] = true
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		return m.FuncDecls[roots[i]].Pos() < m.FuncDecls[roots[j]].Pos()
	})

	// BFS from the annotated roots; parent edges reconstruct the shortest
	// hot call chain for diagnostics.
	parent := make(map[*types.Func]*types.Func)
	seen := make(map[*types.Func]bool)
	var order []*types.Func // reached functions in BFS (deterministic) order
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cg.Callees[cur] {
			fd := m.FuncDecls[e.Callee]
			if fd == nil || fd.Body == nil || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			parent[e.Callee] = cur
			order = append(order, e.Callee)
			queue = append(queue, e.Callee)
		}
	}

	for _, fn := range order {
		if annotated[fn] {
			continue // hot-path already checks the annotated body itself
		}
		fd := m.FuncDecls[fn]
		p := m.PkgForPos(fd.Pos())
		if p == nil {
			continue
		}
		chain := hotChain(m, fn, parent)
		chained := func(pos token.Pos, format string, args ...any) {
			report(pos, format+" (hot via %s)", append(args, chain)...)
		}
		checkHotBody(p, fd, chained)
	}
}

// hotChain renders the call chain root -> ... -> fn that makes fn hot.
func hotChain(m *Module, fn *types.Func, parent map[*types.Func]*types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, funcName(m.FuncDecls[f]))
		if parent[f] == nil {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}
