package analysis

import (
	"go/ast"
	"go/types"
)

// The hot-path hygiene check guards the paper's central claim: RInval wins
// by keeping the transaction critical path down to loads, stores, and
// cache-local spins. A read or commit fast path that quietly grows a
// time.Now (vdso call), an fmt call (interface boxing + reflection), a map
// allocation, or a mutex acquisition loses the constant factors the whole
// design pays for. Those regressions arrive innocently — a debug print, a
// convenient map, a "just this once" lock — and survive review because they
// are syntactically unremarkable.
//
// Functions opt in with a `//stm:hotpath` directive in their doc comment.
// The check is lexical (the annotated function's own body, including its
// function literals): it does not chase calls, so helpers like writeSet.put
// — whose amortized map build is a deliberate design decision — stay
// un-annotated, while the annotated frontier (engine read/commit, the
// invalidation scans, the commit-server epoch loop) is kept clean. Clock
// reads behind a config gate go through the package's clock variable
// (core.realClock), which the check deliberately does not resolve: an
// indirect, gated clock is the sanctioned pattern.
//
// Banned inside an annotated function:
//
//   - time.Now / time.Since (direct calls),
//   - any call into package fmt,
//   - map allocation: make(map...), map literals, or new(map...),
//   - sync.Mutex / sync.RWMutex acquisition or release.
func init() {
	RegisterCheck(&Check{
		Name: "hot-path",
		Doc:  "//stm:hotpath functions must avoid time.Now, fmt, map allocation, and mutexes",
		Run:  runHotPath,
	})
}

func runHotPath(m *Module, report ReportFunc) {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcDirective(fd, "hotpath") {
					continue
				}
				checkHotBody(p, fd, report)
			}
		}
	}
}

func checkHotBody(p *Package, fd *ast.FuncDecl, report ReportFunc) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n, name, report)
		case *ast.CompositeLit:
			if isMapType(p.Info.TypeOf(n)) {
				report(n.Pos(), "map literal allocated in hot path %s", name)
			}
		}
		return true
	})
}

func checkHotCall(p *Package, call *ast.CallExpr, name string, report ReportFunc) {
	// Builtin allocation of maps: make(map...) / new(map...).
	if id, ok := unwrap(call.Fun).(*ast.Ident); ok {
		if b, ok := p.Info.ObjectOf(id).(*types.Builtin); ok {
			if (b.Name() == "make" || b.Name() == "new") && len(call.Args) > 0 &&
				isMapType(p.Info.TypeOf(call.Args[0])) {
				report(call.Pos(), "map allocated with %s in hot path %s", b.Name(), name)
			}
			return
		}
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return // function-typed variables (e.g. the gated clock) are sanctioned
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			report(call.Pos(), "time.%s in hot path %s; route clock reads through a config-gated clock variable", fn.Name(), name)
		}
	case "fmt":
		report(call.Pos(), "fmt.%s in hot path %s; formatting allocates and boxes", fn.Name(), name)
	case "sync":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		recv := namedOrigin(sig.Recv().Type())
		if recv == nil {
			if ptr, ok := sig.Recv().Type().Underlying().(*types.Pointer); ok {
				recv = namedOrigin(ptr.Elem())
			}
		}
		if recv == nil {
			return
		}
		switch recv.Obj().Name() {
		case "Mutex", "RWMutex":
			switch fn.Name() {
			case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
				report(call.Pos(), "%s.%s in hot path %s; the fast paths must stay lock-free", recv.Obj().Name(), fn.Name(), name)
			}
		}
	}
}

// isMapType reports whether t is (or its type expression denotes) a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
