package analysis

import (
	"go/constant"
	"go/types"
)

// The padding check proves the cache-line geometry the RInval protocol's
// performance argument assumes. Clients spin on per-slot mailboxes; the
// whole point of the requests array (paper Figure 5) is that a server's
// store to one client's line never invalidates the line another client is
// spinning on. That only holds if
//
//   - every cell type in internal/padded is a whole number of cache lines,
//     so arrays of cells keep successive cells on distinct lines, and
//   - each cell's payload field has enough padding on both sides that no
//     mutable neighbor can land on the payload's line at any allocation
//     alignment (lead/trail >= line − sizeof(payload), since the payload's
//     own alignment quantizes where line boundaries can fall), and
//   - every struct embedding padded cells that is used as a slice/array
//     element (the per-slot structs of slot.go) is itself a multiple of the
//     line size, so the padding survives array indexing.
//
// Sizes come from go/types.Sizes for the gc compiler on the current
// GOARCH — the same layout algorithm the compiler uses — so a padding
// regression fails the lint before it ever reaches a benchmark.
func init() {
	RegisterCheck(&Check{
		Name: "padding",
		Doc:  "cache-padded cells and per-slot structs must be whole cache lines with isolated payloads",
		Run:  runPadding,
	})
}

func runPadding(m *Module, report ReportFunc) {
	line := int64(64)
	// Honor the padded package's own CacheLineSize constant if present.
	for _, p := range m.Pkgs {
		if p.Types.Name() != "padded" {
			continue
		}
		if c, ok := p.Types.Scope().Lookup("CacheLineSize").(*types.Const); ok {
			if v, exact := constInt64(c); exact {
				line = v
			}
		}
	}

	// Rule 1: every named struct in a package named "padded".
	for _, p := range m.Pkgs {
		if p.Types.Name() != "padded" {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			inst, ok := instantiateForSizing(named)
			if !ok {
				continue
			}
			checkPaddedStruct(m, report, tn, inst, st, line)
		}
	}

	// Rule 2: structs embedding padded cells, used as slice/array elements.
	reported := make(map[*types.TypeName]bool)
	for _, p := range m.Pkgs {
		for _, tv := range p.Info.Types {
			var elem types.Type
			switch u := tv.Type.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				elem = u.Elem()
			default:
				continue
			}
			named := namedOrigin(elem)
			if named == nil || named.Obj().Pkg() == nil || !isModulePkg(m, named.Obj().Pkg()) {
				continue
			}
			if reported[named.Obj()] || named.Obj().Pkg().Name() == "padded" {
				continue // padded's own types are covered by rule 1
			}
			if _, ok := elem.Underlying().(*types.Struct); !ok {
				continue
			}
			if !containsPaddedCell(elem, make(map[types.Type]bool)) {
				continue
			}
			size, ok := sizeOf(m.Sizes(), elem)
			if !ok {
				continue
			}
			if size%line != 0 {
				reported[named.Obj()] = true
				report(named.Obj().Pos(),
					"%s embeds cache-padded cells and is used as an array element, but its size %d is not a multiple of %d (false sharing between adjacent elements)",
					named.Obj().Name(), size, line)
			}
		}
	}
}

// checkPaddedStruct applies the whole-line and payload-isolation rules to
// one padded cell type.
func checkPaddedStruct(m *Module, report ReportFunc, tn *types.TypeName, inst types.Type, decl *types.Struct, line int64) {
	size, ok := sizeOf(m.Sizes(), inst)
	if !ok {
		return
	}
	if size%line != 0 {
		report(tn.Pos(), "padded type %s is %d bytes, not a multiple of the %d-byte cache line",
			tn.Name(), size, line)
	}
	st, ok := inst.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offsets := offsetsOf(m.Sizes(), fields)
	if offsets == nil {
		return
	}
	for i, f := range fields {
		if f.Name() == "_" {
			continue // padding
		}
		fsize, ok := sizeOf(m.Sizes(), f.Type())
		if !ok || fsize > line {
			continue
		}
		need := line - fsize
		lead := offsets[i]
		trail := size - (offsets[i] + fsize)
		// decl.Field(i) keeps the declared (possibly generic) field for the
		// diagnostic position.
		pos := tn.Pos()
		if i < decl.NumFields() {
			pos = decl.Field(i).Pos()
		}
		if lead < need {
			report(pos, "field %s of padded type %s has %d bytes of leading padding, need >= %d to guarantee an exclusive cache line",
				f.Name(), tn.Name(), lead, need)
		}
		if trail < need {
			report(pos, "field %s of padded type %s has %d bytes of trailing padding, need >= %d to guarantee an exclusive cache line",
				f.Name(), tn.Name(), trail, need)
		}
	}
}

// containsPaddedCell reports whether t's inline layout (struct fields and
// array elements, not pointers) includes a type from a package named
// "padded".
func containsPaddedCell(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n := namedOrigin(t); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "padded" {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsPaddedCell(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsPaddedCell(u.Elem(), seen)
	}
	return false
}

// instantiateForSizing makes a generic padded cell concrete (type arguments
// do not affect its layout: parameters appear only under pointers).
func instantiateForSizing(named *types.Named) (types.Type, bool) {
	tp := named.TypeParams()
	if tp.Len() == 0 {
		return named, true
	}
	targs := make([]types.Type, tp.Len())
	for i := range targs {
		targs[i] = types.NewStruct(nil, nil)
	}
	inst, err := types.Instantiate(nil, named, targs, false)
	if err != nil {
		return nil, false
	}
	return inst, true
}

// sizeOf computes the layout size of t, absorbing panics from types the
// size model cannot handle.
func sizeOf(sizes types.Sizes, t types.Type) (size int64, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return sizes.Sizeof(t), true
}

// offsetsOf computes struct field offsets, absorbing size-model panics.
func offsetsOf(sizes types.Sizes, fields []*types.Var) (offsets []int64) {
	defer func() {
		if recover() != nil {
			offsets = nil
		}
	}()
	return sizes.Offsetsof(fields)
}

// isModulePkg reports whether pkg is one of the module's own packages.
func isModulePkg(m *Module, pkg *types.Package) bool {
	return pkg.Path() == m.Path || len(pkg.Path()) > len(m.Path) &&
		pkg.Path()[:len(m.Path)+1] == m.Path+"/"
}

// constInt64 extracts an int64 constant value.
func constInt64(c *types.Const) (int64, bool) {
	v := c.Val()
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}
