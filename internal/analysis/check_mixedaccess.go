package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The mixed-access check enforces the single most fragile convention in the
// STM: a struct field that is accessed through sync/atomic anywhere must be
// accessed through sync/atomic everywhere it can alias shared memory. A
// plain load racing an atomic add is the race class that has bitten NOrec
// and TL2 ports repeatedly — it is invisible to go vet, and the race
// detector only sees it on schedules that actually interleave the two sites.
//
// Heuristics, stated explicitly:
//
//   - A field counts as "atomic" when its address (or an element's address,
//     for array fields) is passed to a sync/atomic Load/Store/Add/Swap/
//     CompareAndSwap function anywhere in the module.
//   - Plain accesses are reported only in packages that themselves contain
//     an atomic access to the field: the shared live instances are confined
//     to those packages, while other packages receive snapshots by value.
//   - Accesses that provably target a function-private copy (an access chain
//     rooted at a local non-pointer variable, traversing only struct/array
//     value links) are exempt — a copy cannot race with the shared original.
//   - Ranging over (or taking len/cap of) an array-typed field reads only
//     its compile-time length and is exempt.
func init() {
	RegisterCheck(&Check{
		Name: "mixed-access",
		Doc:  "fields accessed through sync/atomic must not also be read or written plainly",
		Run:  runMixedAccess,
	})
}

func runMixedAccess(m *Module, report ReportFunc) {
	type fieldInfo struct {
		firstAtomic token.Pos
		pkgs        map[*Package]bool
	}
	atomicFields := make(map[*types.Var]*fieldInfo)
	atomicSels := make(map[*ast.SelectorExpr]bool) // selector nodes consumed by atomic calls
	lenSels := make(map[*ast.SelectorExpr]bool)    // selectors whose only use is static length

	// Pass 1: collect atomically accessed fields and the benign
	// length-only uses.
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isAtomicCall(p.Info, n) {
						for _, arg := range n.Args {
							u, ok := unwrap(arg).(*ast.UnaryExpr)
							if !ok || u.Op != token.AND {
								continue
							}
							fld, sel := fieldOf(p.Info, u.X)
							if fld == nil {
								continue
							}
							fi := atomicFields[fld]
							if fi == nil {
								fi = &fieldInfo{firstAtomic: sel.Pos(), pkgs: make(map[*Package]bool)}
								atomicFields[fld] = fi
							}
							fi.pkgs[p] = true
							atomicSels[sel] = true
						}
					}
					if isLenOrCap(p.Info, n) && len(n.Args) == 1 {
						if sel, ok := unwrap(n.Args[0]).(*ast.SelectorExpr); ok && isArrayExpr(p.Info, sel) {
							lenSels[sel] = true
						}
					}
				case *ast.RangeStmt:
					if sel, ok := unwrap(n.X).(*ast.SelectorExpr); ok && isArrayExpr(p.Info, sel) {
						lenSels[sel] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: report plain accesses to those fields in the packages that
	// hold the shared instances.
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSels[sel] || lenSels[sel] {
					return true
				}
				s, ok := p.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				fld, _ := s.Obj().(*types.Var)
				fi := atomicFields[fld]
				if fi == nil || !fi.pkgs[p] {
					return true
				}
				if !sharedDest(p.Info, sel) {
					return true // access confined to a private copy
				}
				first := m.Fset.Position(fi.firstAtomic)
				report(sel.Pos(), "field %s.%s is accessed with sync/atomic at %s:%d but plainly here",
					recvTypeName(s.Recv()), fld.Name(), shortFile(first.Filename), first.Line)
				return true
			})
		}
	}
}

// isAtomicCall reports whether call invokes a pointer-taking sync/atomic
// function (LoadUint64, AddUint64, CompareAndSwapUint32, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isLenOrCap reports whether call is the builtin len or cap.
func isLenOrCap(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unwrap(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.ObjectOf(id).(*types.Builtin)
	return ok && (b.Name() == "len" || b.Name() == "cap")
}

// isArrayExpr reports whether e has a (fixed-size) array type.
func isArrayExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Array)
	return ok
}

// recvTypeName renders the receiver type of a field selection compactly.
func recvTypeName(t types.Type) string {
	if n := namedOrigin(t); n != nil {
		return n.Obj().Name()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return recvTypeName(p.Elem())
	}
	return t.String()
}

// shortFile trims a path to its last two segments for readable diagnostics.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
