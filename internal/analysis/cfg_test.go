package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses a single function declaration from src (a complete file
// body without the package clause) and returns its CFG.
func parseFunc(t *testing.T, src string) (*CFG, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd), fd
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// pathExists reports whether to is reachable from from.
func pathExists(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// countNodes totals the leaf nodes over the reachable blocks.
func countNodes(g *CFG) int {
	n := 0
	for _, b := range g.Reachable() {
		n += len(b.Nodes)
	}
	return n
}

func TestCFGStraightLine(t *testing.T) {
	g, _ := parseFunc(t, `func f() { a := 1; b := 2; _ = a; _ = b }`)
	if len(g.Reachable()) != 2 { // entry + exit
		t.Fatalf("straight-line function should be entry+exit, got %s", g)
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must fall through to exit: %s", g)
	}
	if countNodes(g) != 4 {
		t.Fatalf("want 4 leaf nodes, got %d (%s)", countNodes(g), g)
	}
}

func TestCFGBranch(t *testing.T) {
	g, _ := parseFunc(t, `func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	// entry(cond) -> then -> join, entry -> else -> join, join(return) -> exit
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head should have two successors, got %s", g)
	}
	join := g.Entry.Succs[0].Succs[0]
	if g.Entry.Succs[1].Succs[0] != join {
		t.Fatalf("both arms must meet at one join: %s", g)
	}
	if !pathExists(g.Entry, g.Exit) {
		t.Fatalf("exit unreachable: %s", g)
	}
}

func TestCFGBranchWithoutElse(t *testing.T) {
	g, _ := parseFunc(t, `func f(c bool) {
	if c {
		println(1)
	}
	println(2)
}`)
	// The head must have an edge around the then-arm.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if-without-else head needs then+join successors: %s", g)
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g, fd := parseFunc(t, `func f(c bool) int {
	if c {
		return 1
	}
	return 2
}`)
	_ = fd
	// Both returns edge directly to exit; nothing follows the then-return.
	returns := 0
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returns++
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Fatalf("return block must edge only to exit: %s", g)
				}
			}
		}
	}
	if returns != 2 {
		t.Fatalf("want 2 reachable returns, got %d (%s)", returns, g)
	}
}

func TestCFGDeadCodeAfterReturn(t *testing.T) {
	g, _ := parseFunc(t, `func f() int {
	return 1
	println("dead")
}`)
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						t.Fatalf("statement after return must be unreachable: %s", g)
					}
				}
			}
		}
	}
}

func TestCFGLoop(t *testing.T) {
	g, _ := parseFunc(t, `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	// There must be a back edge: some reachable block reaches a block that
	// also reaches it.
	backEdge := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s != b && pathExists(s, b) {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Fatalf("loop must produce a back edge: %s", g)
	}
	if !pathExists(g.Entry, g.Exit) {
		t.Fatalf("loop exit path missing: %s", g)
	}
}

func TestCFGInfiniteLoopNoExit(t *testing.T) {
	g, _ := parseFunc(t, `func f() {
	for {
		println(1)
	}
}`)
	if pathExists(g.Entry, g.Exit) {
		t.Fatalf("break-less for{} must not reach exit: %s", g)
	}
}

func TestCFGLoopBreakContinue(t *testing.T) {
	g, _ := parseFunc(t, `func f(n int) {
	for i := 0; i < n; i++ {
		if i == 2 {
			continue
		}
		if i == 5 {
			break
		}
		println(i)
	}
	println("after")
}`)
	if !pathExists(g.Entry, g.Exit) {
		t.Fatalf("break must open a path to exit: %s", g)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g, _ := parseFunc(t, `func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i*j > 10 {
				break outer
			}
		}
	}
	println("done")
}`)
	if !pathExists(g.Entry, g.Exit) {
		t.Fatalf("labeled break must reach the code after the outer loop: %s", g)
	}
}

func TestCFGRange(t *testing.T) {
	g, _ := parseFunc(t, `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}`)
	backEdge := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s != b && pathExists(s, b) {
				backEdge = true
			}
		}
	}
	if !backEdge || !pathExists(g.Entry, g.Exit) {
		t.Fatalf("range loop needs a back edge and an exit path: %s", g)
	}
}

func TestCFGDefer(t *testing.T) {
	g, _ := parseFunc(t, `func f(c bool) {
	defer println("always")
	if c {
		defer println("sometimes")
		return
	}
	println("fallthrough")
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("want both defer statements recorded in order, got %d", len(g.Defers))
	}
	// Defer statements also appear as block nodes so path-sensitive checks
	// see where they were registered.
	deferNodes := 0
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferNodes++
			}
		}
	}
	if deferNodes != 2 {
		t.Fatalf("want 2 reachable defer nodes, got %d (%s)", deferNodes, g)
	}
}

func TestCFGPanicEdge(t *testing.T) {
	g, _ := parseFunc(t, `func f(c bool) {
	if c {
		panic("boom")
	}
	println("alive")
}`)
	panicBlocks := 0
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok || !isPanicCall(es.X) {
				continue
			}
			panicBlocks++
			if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
				t.Fatalf("panic block must edge only to exit: %s", g)
			}
		}
	}
	if panicBlocks != 1 {
		t.Fatalf("want 1 panic block, got %d (%s)", panicBlocks, g)
	}
}

func TestCFGSwitch(t *testing.T) {
	g, _ := parseFunc(t, `func f(x int) int {
	switch x {
	case 1:
		return 10
	case 2:
		return 20
	default:
		return 30
	}
}`)
	// All three clauses return; with a default, the header cannot skip to the
	// join, so the only paths to exit run through returns.
	if !pathExists(g.Entry, g.Exit) {
		t.Fatalf("switch returns must reach exit: %s", g)
	}
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("switch head must fan out to each clause: %s", g)
	}
}

func TestCFGSwitchNoDefault(t *testing.T) {
	g, _ := parseFunc(t, `func f(x int) {
	switch x {
	case 1:
		println(1)
	}
	println("after")
}`)
	// Without a default, the header must have a bypass edge to the join.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("default-less switch head must also edge to the join: %s", g)
	}
}

func TestCFGSelect(t *testing.T) {
	g, _ := parseFunc(t, `func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case <-b:
		return 0
	}
}`)
	found := false
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				found = true
				if len(b.Succs) != 2 {
					t.Fatalf("select head must fan out per clause: %s", g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("select statement must appear as an opaque node: %s", g)
	}
}

func TestCFGGoto(t *testing.T) {
	g, _ := parseFunc(t, `func f(n int) {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	println("done")
}`)
	backEdge := false
	for _, b := range g.Reachable() {
		for _, s := range b.Succs {
			if s != b && pathExists(s, b) {
				backEdge = true
			}
		}
	}
	if !backEdge || !pathExists(g.Entry, g.Exit) {
		t.Fatalf("goto loop needs a back edge and an exit path: %s", g)
	}
}

func TestCFGFuncLitNotInlined(t *testing.T) {
	g, _ := parseFunc(t, `func f() {
	g := func() { panic("inner") }
	g()
}`)
	// The literal's panic must not terminate the outer function's block.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("function literal body must stay opaque to the outer CFG: %s", g)
	}
}

func TestCFGSelectHasDefault(t *testing.T) {
	_, fd := parseFunc(t, `func f(a chan int) {
	select {
	case <-a:
	default:
	}
}`)
	var sel *ast.SelectStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectStmt); ok {
			sel = s
		}
		return true
	})
	if sel == nil || !SelectHasDefault(sel) {
		t.Fatal("default clause not detected")
	}
}
