package bloom

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var testParams = Params{Bits: 256, Hashes: 3}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Bits: 0, Hashes: 1},
		{Bits: 63, Hashes: 1},
		{Bits: 96, Hashes: 1},   // multiple of 32, not power of two
		{Bits: 1000, Hashes: 2}, // not power of two
		{Bits: 128, Hashes: 0},
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFilter(%+v) did not panic", p)
				}
			}()
			NewFilter(p)
		}()
	}
	good := []Params{{Bits: 64, Hashes: 1}, {Bits: 1024, Hashes: 4}, DefaultParams}
	for _, p := range good {
		if NewFilter(p) == nil || NewAtomic(p) == nil {
			t.Errorf("valid params %+v rejected", p)
		}
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{Bits: 128, Hashes: 2}
	if p.Words() != 2 {
		t.Fatalf("Words %d", p.Words())
	}
	if NewFilter(p).Params() != p || NewAtomic(p).Params() != p {
		t.Fatal("Params accessor mismatch")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := NewFilter(testParams)
	for id := uint64(0); id < 500; id++ {
		f.Add(id * 2654435761)
	}
	for id := uint64(0); id < 500; id++ {
		if !f.MayContain(id * 2654435761) {
			t.Fatalf("false negative for %d", id)
		}
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	err := quick.Check(func(ids []uint64) bool {
		f := NewFilter(testParams)
		for _, id := range ids {
			f.Add(id)
		}
		for _, id := range ids {
			if !f.MayContain(id) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClearAndEmpty(t *testing.T) {
	f := NewFilter(testParams)
	if !f.Empty() {
		t.Fatal("fresh filter not empty")
	}
	f.Add(7)
	if f.Empty() || f.PopCount() == 0 {
		t.Fatal("Add left filter empty")
	}
	f.Clear()
	if !f.Empty() || f.PopCount() != 0 {
		t.Fatal("Clear did not empty filter")
	}
}

func TestIntersects(t *testing.T) {
	a, b := NewFilter(testParams), NewFilter(testParams)
	a.Add(1)
	b.Add(2)
	// With 256 bits and 2 elements a collision is astronomically unlikely
	// for these fixed ids; assert the expected outcome deterministically.
	if a.Intersects(b) {
		t.Fatal("disjoint singletons intersect")
	}
	b.Add(1)
	if !a.Intersects(b) {
		t.Fatal("shared element not detected")
	}
}

func TestQuickIntersectsSharedElement(t *testing.T) {
	// Property: if the two filters share an element, Intersects must be true.
	err := quick.Check(func(xs, ys []uint64, shared uint64) bool {
		a, b := NewFilter(testParams), NewFilter(testParams)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		a.Add(shared)
		b.Add(shared)
		return a.Intersects(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := NewFilter(testParams)
	for i := uint64(0); i < 20; i++ {
		a.Add(i)
	}
	c := a.Clone()
	for i := uint64(0); i < 20; i++ {
		if !c.MayContain(i) {
			t.Fatal("clone lost element")
		}
	}
	c.Add(999)
	// Clone must be independent: a very unlikely to contain 999 unless
	// collision; instead verify words differ via PopCount monotonicity.
	if c.PopCount() < a.PopCount() {
		t.Fatal("clone popcount shrank")
	}
	d := NewFilter(testParams)
	d.CopyFrom(a)
	if d.PopCount() != a.PopCount() {
		t.Fatal("CopyFrom not exact")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	p := Params{Bits: 1024, Hashes: 2}
	f := NewFilter(p)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Theoretical rate for n=64, m=1024, k=2 is ~1.4%; allow generous slack.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestAtomicBasics(t *testing.T) {
	a := NewAtomic(testParams)
	a.Add(42)
	if !a.MayContain(42) {
		t.Fatal("atomic false negative")
	}
	g := NewFilter(testParams)
	g.Add(42)
	if !a.IntersectsFilter(g) {
		t.Fatal("atomic intersect missed shared element")
	}
	g2 := NewFilter(testParams)
	g2.Add(77)
	if a.IntersectsFilter(g2) {
		t.Fatal("atomic intersect false on disjoint singletons")
	}
	a.Clear()
	if a.MayContain(42) {
		t.Fatal("Clear did not remove element")
	}
}

func TestAtomicSnapshot(t *testing.T) {
	a := NewAtomic(testParams)
	for i := uint64(0); i < 30; i++ {
		a.Add(i)
	}
	snap := NewFilter(testParams)
	a.Snapshot(snap)
	for i := uint64(0); i < 30; i++ {
		if !snap.MayContain(i) {
			t.Fatal("snapshot lost element")
		}
	}
}

// TestAtomicConcurrentAddIntersect exercises the invalidation-server pattern:
// one goroutine adds read-set bits while others intersect. The invariant is
// that once Add(id) returns, every subsequent intersect against a filter
// containing id must succeed.
func TestAtomicConcurrentAddIntersect(t *testing.T) {
	a := NewAtomic(testParams)
	const n = 200
	var wg sync.WaitGroup
	added := make(chan uint64, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			a.Add(i)
			added <- i
		}
		close(added)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := NewFilter(testParams)
			for id := range added {
				g.Clear()
				g.Add(id)
				if !a.IntersectsFilter(g) {
					t.Errorf("intersect missed id %d published before", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPositionsDeterministicAndDistinct(t *testing.T) {
	p := Params{Bits: 1024, Hashes: 4}
	var buf1, buf2 [8]uint
	a := p.positions(123, buf1[:0])
	b := p.positions(123, buf2[:0])
	if len(a) != p.Hashes || len(b) != p.Hashes {
		t.Fatalf("got %d positions want %d", len(a), p.Hashes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("positions not deterministic")
		}
		if a[i] >= uint(p.Bits) {
			t.Fatalf("position %d out of range", a[i])
		}
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := NewFilter(DefaultParams)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkAtomicAdd(b *testing.B) {
	f := NewAtomic(DefaultParams)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkIntersect(b *testing.B) {
	a := NewAtomic(DefaultParams)
	g := NewFilter(DefaultParams)
	for i := uint64(0); i < 32; i++ {
		a.Add(i)
		g.Add(i + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectsFilter(g)
	}
}
