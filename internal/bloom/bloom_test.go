package bloom

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

var testParams = Params{Bits: 256, Hashes: 3}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Bits: 0, Hashes: 1},
		{Bits: 63, Hashes: 1},
		{Bits: 96, Hashes: 1},   // multiple of 32, not power of two
		{Bits: 1000, Hashes: 2}, // not power of two
		{Bits: 128, Hashes: 0},
	}
	for _, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFilter(%+v) did not panic", p)
				}
			}()
			NewFilter(p)
		}()
	}
	good := []Params{{Bits: 64, Hashes: 1}, {Bits: 1024, Hashes: 4}, DefaultParams}
	for _, p := range good {
		if NewFilter(p) == nil || NewAtomic(p) == nil {
			t.Errorf("valid params %+v rejected", p)
		}
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{Bits: 128, Hashes: 2}
	if p.Words() != 2 {
		t.Fatalf("Words %d", p.Words())
	}
	if NewFilter(p).Params() != p || NewAtomic(p).Params() != p {
		t.Fatal("Params accessor mismatch")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	f := NewFilter(testParams)
	for id := uint64(0); id < 500; id++ {
		f.Add(id * 2654435761)
	}
	for id := uint64(0); id < 500; id++ {
		if !f.MayContain(id * 2654435761) {
			t.Fatalf("false negative for %d", id)
		}
	}
}

func TestQuickNoFalseNegatives(t *testing.T) {
	err := quick.Check(func(ids []uint64) bool {
		f := NewFilter(testParams)
		for _, id := range ids {
			f.Add(id)
		}
		for _, id := range ids {
			if !f.MayContain(id) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestClearAndEmpty(t *testing.T) {
	f := NewFilter(testParams)
	if !f.Empty() {
		t.Fatal("fresh filter not empty")
	}
	f.Add(7)
	if f.Empty() || f.PopCount() == 0 {
		t.Fatal("Add left filter empty")
	}
	f.Clear()
	if !f.Empty() || f.PopCount() != 0 {
		t.Fatal("Clear did not empty filter")
	}
}

func TestIntersects(t *testing.T) {
	a, b := NewFilter(testParams), NewFilter(testParams)
	a.Add(1)
	b.Add(2)
	// With 256 bits and 2 elements a collision is astronomically unlikely
	// for these fixed ids; assert the expected outcome deterministically.
	if a.Intersects(b) {
		t.Fatal("disjoint singletons intersect")
	}
	b.Add(1)
	if !a.Intersects(b) {
		t.Fatal("shared element not detected")
	}
}

func TestQuickIntersectsSharedElement(t *testing.T) {
	// Property: if the two filters share an element, Intersects must be true.
	err := quick.Check(func(xs, ys []uint64, shared uint64) bool {
		a, b := NewFilter(testParams), NewFilter(testParams)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		a.Add(shared)
		b.Add(shared)
		return a.Intersects(b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	a := NewFilter(testParams)
	for i := uint64(0); i < 20; i++ {
		a.Add(i)
	}
	c := a.Clone()
	for i := uint64(0); i < 20; i++ {
		if !c.MayContain(i) {
			t.Fatal("clone lost element")
		}
	}
	c.Add(999)
	// Clone must be independent: a very unlikely to contain 999 unless
	// collision; instead verify words differ via PopCount monotonicity.
	if c.PopCount() < a.PopCount() {
		t.Fatal("clone popcount shrank")
	}
	d := NewFilter(testParams)
	d.CopyFrom(a)
	if d.PopCount() != a.PopCount() {
		t.Fatal("CopyFrom not exact")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	p := Params{Bits: 1024, Hashes: 2}
	f := NewFilter(p)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		f.Add(rng.Uint64())
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain(rng.Uint64()) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// Theoretical rate for n=64, m=1024, k=2 is ~1.4%; allow generous slack.
	if rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestAtomicBasics(t *testing.T) {
	a := NewAtomic(testParams)
	a.Add(42)
	if !a.MayContain(42) {
		t.Fatal("atomic false negative")
	}
	g := NewFilter(testParams)
	g.Add(42)
	if !a.IntersectsFilter(g) {
		t.Fatal("atomic intersect missed shared element")
	}
	g2 := NewFilter(testParams)
	g2.Add(77)
	if a.IntersectsFilter(g2) {
		t.Fatal("atomic intersect false on disjoint singletons")
	}
	a.Clear()
	if a.MayContain(42) {
		t.Fatal("Clear did not remove element")
	}
}

func TestAtomicSnapshot(t *testing.T) {
	a := NewAtomic(testParams)
	for i := uint64(0); i < 30; i++ {
		a.Add(i)
	}
	snap := NewFilter(testParams)
	a.Snapshot(snap)
	for i := uint64(0); i < 30; i++ {
		if !snap.MayContain(i) {
			t.Fatal("snapshot lost element")
		}
	}
}

// TestAtomicConcurrentAddIntersect exercises the invalidation-server pattern:
// one goroutine adds read-set bits while others intersect. The invariant is
// that once Add(id) returns, every subsequent intersect against a filter
// containing id must succeed.
func TestAtomicConcurrentAddIntersect(t *testing.T) {
	a := NewAtomic(testParams)
	const n = 200
	var wg sync.WaitGroup
	added := make(chan uint64, n)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i++ {
			a.Add(i)
			added <- i
		}
		close(added)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := NewFilter(testParams)
			for id := range added {
				g.Clear()
				g.Add(id)
				if !a.IntersectsFilter(g) {
					t.Errorf("intersect missed id %d published before", id)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPositionsDeterministicAndDistinct(t *testing.T) {
	p := Params{Bits: 1024, Hashes: 4}
	var buf1, buf2 [8]uint
	a := p.positions(123, buf1[:0])
	b := p.positions(123, buf2[:0])
	if len(a) != p.Hashes || len(b) != p.Hashes {
		t.Fatalf("got %d positions want %d", len(a), p.Hashes)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("positions not deterministic")
		}
		if a[i] >= uint(p.Bits) {
			t.Fatalf("position %d out of range", a[i])
		}
	}
}

func BenchmarkFilterAdd(b *testing.B) {
	f := NewFilter(DefaultParams)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkAtomicAdd(b *testing.B) {
	f := NewAtomic(DefaultParams)
	for i := 0; i < b.N; i++ {
		f.Add(uint64(i))
	}
}

func BenchmarkIntersect(b *testing.B) {
	a := NewAtomic(DefaultParams)
	g := NewFilter(DefaultParams)
	for i := uint64(0); i < 32; i++ {
		a.Add(i)
		g.Add(i + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectsFilter(g)
	}
}

// foldWords is the reference summary: the OR of all filter words folded onto
// 64 bits. The tests below compare the maintained summaries against it so
// they do not depend on (or trust) the incremental bookkeeping under test.
func foldWords(words []uint64) uint64 {
	var s uint64
	for _, w := range words {
		s |= w
	}
	return s
}

// wordsIntersect is the reference full intersection, bypassing the summary
// fast path inside Filter.Intersects.
func wordsIntersect(a, b []uint64) bool {
	for i := range a {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// TestSummaryIsExactFoldOnFilter: through Add/Clear/CopyFrom/UnionWith/Clone
// the single-owner filter's summary stays exactly the column-fold of its
// words.
func TestSummaryIsExactFoldOnFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := NewFilter(testParams)
	g := NewFilter(testParams)
	for step := 0; step < 2000; step++ {
		switch rng.Intn(10) {
		case 0:
			f.Clear()
		case 1:
			g.Clear()
		case 2:
			f.UnionWith(g)
		case 3:
			g.CopyFrom(f)
		case 4:
			f = g.Clone()
		default:
			f.Add(rng.Uint64())
			g.Add(rng.Uint64())
		}
		for name, x := range map[string]*Filter{"f": f, "g": g} {
			if x.Summary() != foldWords(x.words) {
				t.Fatalf("step %d: %s summary %x != fold %x", step, name, x.Summary(), foldWords(x.words))
			}
		}
	}
}

// TestSummaryNeverFalseNegative is the two-level safety property: for random
// add-sets, a summary miss implies a full-intersection miss, on both the
// plain Filter and the Atomic read filter. (The converse — summary hit with
// a full miss — is allowed and expected; the summary is conservative.)
func TestSummaryNeverFalseNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		f := NewFilter(testParams)
		a := NewAtomic(testParams)
		w := NewFilter(testParams) // the "write filter" both are tested against
		for i, n := 0, rng.Intn(20); i < n; i++ {
			id := rng.Uint64()
			f.Add(id)
			a.Add(id)
		}
		for i, n := 0, rng.Intn(20); i < n; i++ {
			w.Add(rng.Uint64())
		}
		snap := NewFilter(testParams)
		a.Snapshot(snap)
		if f.Summary()&w.Summary() == 0 && wordsIntersect(f.words, w.words) {
			t.Fatalf("trial %d: Filter summary miss but words intersect", trial)
		}
		if !a.SummaryIntersects(w.Summary()) && a.IntersectsFilter(w) {
			t.Fatalf("trial %d: Atomic summary miss but full intersect hits", trial)
		}
		if snap.Summary() != foldWords(snap.words) {
			// Quiescent snapshot: summary must equal the fold exactly.
			t.Fatalf("trial %d: snapshot summary %x != fold %x", trial, snap.Summary(), foldWords(snap.words))
		}
		// Intersects' summary fast path must agree with the word-level truth.
		if f.Intersects(w) != wordsIntersect(f.words, w.words) {
			t.Fatalf("trial %d: Intersects disagrees with word-level intersection", trial)
		}
	}
}

// TestAtomicSummarySupersetUnderConcurrentAdds: while an owner adds bits,
// concurrent observers must never catch a word bit whose summary bit is
// missing — the invariant the two-level scan's safety rests on (Atomic.Add
// orders the summary OR before the word OR). The owner never Clears here:
// the STM owner only clears between transactions, when no scan against the
// current incarnation can be in flight, so the concurrent invariant is the
// Add-only one and it is strict.
func TestAtomicSummarySupersetUnderConcurrentAdds(t *testing.T) {
	a := NewAtomic(testParams)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.Add(rng.Uint64())
		}
	}()
	for trial := 0; trial < 5000; trial++ {
		// Words first, summary second: every bit in the fold was published
		// after its summary bit, so the later summary load must cover it.
		var fold uint64
		for i := range a.words {
			fold |= a.words[i].Load()
		}
		if sum := a.Summary(); fold&^sum != 0 {
			t.Fatalf("trial %d: word fold %x not covered by summary %x", trial, fold, sum)
		}
	}
	close(stop)
	wg.Wait()

	// Clear is owner-only and quiescent; after it both levels are empty.
	a.Clear()
	snap := NewFilter(testParams)
	a.Snapshot(snap)
	if a.Summary() != 0 || !snap.Empty() {
		t.Fatal("Clear left summary or word bits behind")
	}
}
