// Package bloom implements the fixed-size bloom filters that InvalSTM and
// RInval use as read/write-set signatures.
//
// Invalidation compares the committer's write signature against every
// in-flight transaction's read signature in O(filter words) time, independent
// of the actual set sizes — the property the paper relies on to make
// invalidation constant time per transaction (§II). Filters trade precision
// for that speed: a bit collision manifests as a false conflict and a
// spurious abort, never as a missed conflict.
//
// Two variants are provided. Filter is a plain, single-owner filter for write
// sets (built privately, published by value at commit time). Atomic is a
// concurrently readable filter for read sets: the owning transaction adds
// bits while invalidation servers intersect against it, so its words are
// atomics and Add uses a release-ordered OR — a reader that observes the bit
// also observes everything the adder did before setting it.
//
// Both variants additionally maintain a 64-bit summary signature: every set
// bit at position b also sets summary bit b&63. The summary is a strict
// column-fold of the filter words, so two filters whose summaries are
// disjoint cannot share a set bit — an invalidation scan can reject a
// non-conflicting read set with one word load + AND instead of touching all
// filter words (two cache lines at the default 1024-bit geometry). The fold
// is conservative the same way the filter is: a summary hit commits the scan
// to the full intersection, a summary miss is proof of no conflict.
package bloom

import "sync/atomic"

// Params fixes a filter geometry. All filters that are intersected with each
// other must share the same Params.
type Params struct {
	Bits   int // number of bits; must be a power of two and a multiple of 64
	Hashes int // number of bits set per element (k)
}

// DefaultParams matches the configuration used by the benchmark harness:
// 1024 bits x 2 hashes keeps the per-slot signature to two cache lines and
// the false-conflict rate below 1% for read sets up to ~64 elements.
var DefaultParams = Params{Bits: 1024, Hashes: 2}

// valid reports whether p is a usable geometry.
func (p Params) valid() bool {
	return p.Bits >= 64 && p.Bits%64 == 0 && (p.Bits&(p.Bits-1)) == 0 && p.Hashes >= 1
}

// Words returns the number of 64-bit words backing a filter with geometry p.
func (p Params) Words() int { return p.Bits / 64 }

// splitmix64 is the finalizer of the SplitMix64 generator; it is a strong,
// cheap 64-bit mixer used to derive bit positions from element identities.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// positions computes the k bit positions for id using double hashing
// (Kirsch-Mitzenmacher): pos_i = h1 + i*h2 mod Bits.
func (p Params) positions(id uint64, out []uint) []uint {
	h1 := splitmix64(id)
	h2 := splitmix64(h1) | 1 // odd, so all positions are distinct mod 2^k
	mask := uint64(p.Bits - 1)
	out = out[:0]
	for i := 0; i < p.Hashes; i++ {
		out = append(out, uint(h1&mask))
		h1 += h2
	}
	return out
}

// Filter is a single-owner bloom filter. It is not safe for concurrent use;
// use Atomic for filters read by other threads.
type Filter struct {
	p     Params
	sum   uint64 // summary signature: OR-fold of words onto 64 bits
	words []uint64
	pos   []uint // scratch, avoids per-Add allocation
}

// NewFilter returns an empty filter with geometry p. It panics on an invalid
// geometry: filter parameters are fixed at system construction, so a bad
// geometry is a programming error, not a runtime condition.
func NewFilter(p Params) *Filter {
	if !p.valid() {
		panic("bloom: invalid Params")
	}
	return &Filter{p: p, words: make([]uint64, p.Words()), pos: make([]uint, 0, p.Hashes)}
}

// Params returns the filter geometry.
func (f *Filter) Params() Params { return f.p }

// Add inserts id into the filter.
func (f *Filter) Add(id uint64) {
	f.pos = f.p.positions(id, f.pos)
	for _, b := range f.pos {
		f.words[b>>6] |= 1 << (b & 63)
		f.sum |= 1 << (b & 63)
	}
}

// MayContain reports whether id may have been added (false positives
// possible, false negatives impossible).
func (f *Filter) MayContain(id uint64) bool {
	f.pos = f.p.positions(id, f.pos)
	for _, b := range f.pos {
		if f.words[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (f *Filter) Clear() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.sum = 0
}

// Empty reports whether no bits are set.
func (f *Filter) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether f and g share at least one set bit. Both filters
// must have the same geometry.
func (f *Filter) Intersects(g *Filter) bool {
	if f.sum&g.sum == 0 {
		// Summaries are supersets of the word fold: disjoint summaries prove
		// disjoint filters without touching the word arrays.
		return false
	}
	for i, w := range f.words {
		if w&g.words[i] != 0 {
			return true
		}
	}
	return false
}

// CopyFrom makes f an exact copy of g (same geometry required).
func (f *Filter) CopyFrom(g *Filter) {
	copy(f.words, g.words)
	f.sum = g.sum
}

// UnionWith adds every element of g to f (same geometry required). Group
// commit uses it to merge a batch's write signatures into one filter that a
// single invalidation scan can test against.
func (f *Filter) UnionWith(g *Filter) {
	for i, w := range g.words {
		f.words[i] |= w
	}
	f.sum |= g.sum
}

// UnionAtomic adds every element currently in a to f (same geometry
// required). Like Atomic.Snapshot but accumulating, so a batch's read
// signatures can be folded into one compatibility filter without a scratch
// copy per member.
func (f *Filter) UnionAtomic(a *Atomic) {
	for i := range a.words {
		f.words[i] |= a.words[i].Load()
	}
	// Atomic.Add publishes the summary bit before the word bit, so loading
	// the summary after the words keeps f.sum a superset of f.words' fold
	// even against a concurrent Add.
	f.sum |= a.sum.Load()
}

// Summary returns the 64-bit summary signature. Disjoint summaries imply
// disjoint filters; see the package comment.
//
//stm:hotpath
func (f *Filter) Summary() uint64 { return f.sum }

// Clone returns an independent copy of f.
func (f *Filter) Clone() *Filter {
	c := NewFilter(f.p)
	c.CopyFrom(f)
	return c
}

// PopCount returns the number of set bits — used by tests and by the
// false-conflict ablation to estimate filter load.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Atomic is a bloom filter whose owner adds bits while other threads
// concurrently intersect against it or reset it is observed. The owner is the
// only writer of bits (via Add) and the only caller of Clear; invalidation
// servers only read.
type Atomic struct {
	p Params
	// sum is the summary signature. It lives in the Atomic header next to
	// the read-only geometry and slice header, so a scanner's summary-miss
	// path touches exactly one cache line. Invariant: sum is always a
	// superset of the column-fold of words — Add sets the summary bit before
	// the word bits, so no observer can see a word bit whose summary bit is
	// missing.
	sum   atomic.Uint64
	words []atomic.Uint64
}

// NewAtomic returns an empty concurrent filter with geometry p.
func NewAtomic(p Params) *Atomic {
	if !p.valid() {
		panic("bloom: invalid Params")
	}
	return &Atomic{p: p, words: make([]atomic.Uint64, p.Words())}
}

// Params returns the filter geometry.
func (a *Atomic) Params() Params { return a.p }

// Add inserts id. The atomic OR publishes the bit with release semantics:
// once an invalidation server observes the bit, it also observes the read
// that the bit describes. The summary bit is set first so a scanner that
// observes a word bit always observes its summary bit too.
func (a *Atomic) Add(id uint64) {
	var posBuf [8]uint
	pos := a.p.positions(id, posBuf[:0])
	for _, b := range pos {
		bit := uint64(1) << (b & 63)
		if a.sum.Load()&bit == 0 { // avoid write traffic for already-set bits
			a.sum.Or(bit)
		}
		w := &a.words[b>>6]
		if w.Load()&bit == 0 {
			w.Or(bit)
		}
	}
}

// Clear removes all elements. Only the owner may call it, between
// transactions (never while a commit that could observe the filter is in
// flight against the owner's current epoch). The words are cleared before
// the summary for the same invariant Add preserves: sum covers words at
// every intermediate point.
func (a *Atomic) Clear() {
	for i := range a.words {
		a.words[i].Store(0)
	}
	a.sum.Store(0)
}

// IntersectsFilter reports whether a and the plain filter g share a set bit.
// Safe to call concurrently with the owner's Add.
func (a *Atomic) IntersectsFilter(g *Filter) bool {
	for i := range a.words {
		if a.words[i].Load()&g.words[i] != 0 {
			return true
		}
	}
	return false
}

// SummaryIntersects reports whether a's summary signature shares a bit with
// sum. A false result proves a full IntersectsFilter against any filter with
// summary sum would also be false; a true result decides nothing. Safe to
// call concurrently with the owner's Add — this is the invalidation scan's
// level-1 rejection test, one atomic load + AND.
//
//stm:hotpath
func (a *Atomic) SummaryIntersects(sum uint64) bool {
	return a.sum.Load()&sum != 0
}

// Summary returns the current summary signature.
//
//stm:hotpath
func (a *Atomic) Summary() uint64 { return a.sum.Load() }

// MayContain reports whether id may have been added.
func (a *Atomic) MayContain(id uint64) bool {
	var posBuf [8]uint
	pos := a.p.positions(id, posBuf[:0])
	for _, b := range pos {
		if a.words[b>>6].Load()&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Snapshot copies the current contents into dst (same geometry required).
func (a *Atomic) Snapshot(dst *Filter) {
	for i := range a.words {
		dst.words[i] = a.words[i].Load()
	}
	// After the words, as in UnionAtomic: the summary stays a superset of
	// the fold of the copied words.
	dst.sum = a.sum.Load()
}
