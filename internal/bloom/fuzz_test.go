package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzNoFalseNegatives feeds arbitrary byte strings interpreted as element
// id lists and asserts the fundamental bloom property: an added element is
// always reported as possibly present, in both the plain and atomic
// variants, and the atomic filter always intersects a plain filter sharing
// an element.
func FuzzNoFalseNegatives(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := Params{Bits: 256, Hashes: 2}
		plain := NewFilter(p)
		atomic := NewAtomic(p)
		var ids []uint64
		for len(data) >= 8 {
			id := binary.LittleEndian.Uint64(data)
			data = data[8:]
			ids = append(ids, id)
			plain.Add(id)
			atomic.Add(id)
		}
		for _, id := range ids {
			if !plain.MayContain(id) {
				t.Fatalf("plain false negative for %d", id)
			}
			if !atomic.MayContain(id) {
				t.Fatalf("atomic false negative for %d", id)
			}
			single := NewFilter(p)
			single.Add(id)
			if !plain.Intersects(single) {
				t.Fatalf("plain intersect missed %d", id)
			}
			if !atomic.IntersectsFilter(single) {
				t.Fatalf("atomic intersect missed %d", id)
			}
		}
		// Snapshot must be equivalent to the plain filter built the same way.
		snap := NewFilter(p)
		atomic.Snapshot(snap)
		for _, id := range ids {
			if !snap.MayContain(id) {
				t.Fatalf("snapshot lost %d", id)
			}
		}
	})
}
