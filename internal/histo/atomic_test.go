package histo

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// TestQuantileBucketBoundaries pins the nearest-rank semantics at exact
// bucket edges: with samples on both sides of a power-of-two boundary, the
// quantile must land in the bucket holding the rank-ceil(q*n) sample.
func TestQuantileBucketBoundaries(t *testing.T) {
	var h Histogram
	// 4 samples in bucket [4,8), 4 in bucket [8,16).
	for _, v := range []uint64{4, 5, 6, 7, 8, 9, 10, 15} {
		h.Record(v)
	}
	cases := []struct {
		q      float64
		bucket int // expected bits.Len64 of the result
	}{
		{0.5, 3},   // rank ceil(0.5*8)=4 -> value 7 -> bucket 3
		{0.51, 4},  // rank 5 -> value 8 -> bucket 4
		{0.125, 3}, // rank 1 -> value 4
		{1.0, 4},   // rank 8 -> value 15
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if bits.Len64(got) != c.bucket {
			t.Errorf("Quantile(%v) = %d, want bucket %d (got bucket %d)",
				c.q, got, c.bucket, bits.Len64(got))
		}
	}
	// Three-sample median: nearest-rank must pick the middle sample's
	// bucket, not the first (the old truncating rank selected rank 1).
	var m Histogram
	for _, v := range []uint64{2, 100, 5000} {
		m.Record(v)
	}
	if got := m.Quantile(0.5); bits.Len64(got) != bits.Len64(100) {
		t.Errorf("median of {2,100,5000} = %d, want within bucket of 100", got)
	}
}

// TestQuantileOracle is the sorted-slice property test: for random sample
// sets and random q, Quantile must land in the same power-of-two bucket as
// the exact nearest-rank value from a sorted copy.
func TestQuantileOracle(t *testing.T) {
	f := func(vals []uint32, qRaw uint16) bool {
		if len(vals) == 0 {
			return true
		}
		q := float64(qRaw%1000+1) / 1000 // (0, 1]
		var h Histogram
		sorted := make([]uint64, len(vals))
		for i, v := range vals {
			h.Record(uint64(v))
			sorted[i] = uint64(v)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		rank := int(float64(len(sorted))*q + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		exact := sorted[rank-1]
		got := h.Quantile(q)
		// Same bucket as the oracle (clamping keeps it there: min/max of a
		// histogram whose clamp fires live in the selected bucket).
		return bits.Len64(got) == bits.Len64(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeMinMaxOracle: Merge across histograms with arbitrary, differing
// min/max must preserve the global min and max exactly — checked against a
// sorted-slice oracle over the combined samples, in both merge directions.
func TestMergeMinMaxOracle(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		var a, b Histogram
		all := make([]uint64, 0, len(xs)+len(ys))
		for _, x := range xs {
			a.Record(uint64(x))
			all = append(all, uint64(x))
		}
		for _, y := range ys {
			b.Record(uint64(y))
			all = append(all, uint64(y))
		}
		ab, ba := a, b
		ab.Merge(&b)
		ba.Merge(&a)
		if len(all) == 0 {
			return ab.Count() == 0 && ba.Count() == 0
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		wantMin, wantMax := all[0], all[len(all)-1]
		return ab.Min() == wantMin && ab.Max() == wantMax &&
			ba.Min() == wantMin && ba.Max() == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicMatchesPlain(t *testing.T) {
	var a Atomic
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 20))
		a.Record(v)
		h.Record(v)
	}
	snap := a.Snapshot()
	if snap.Count() != h.Count() || snap.Sum() != h.Sum() ||
		snap.Min() != h.Min() || snap.Max() != h.Max() {
		t.Fatalf("snapshot %v != plain %v", snap.String(), h.String())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if snap.Quantile(q) != h.Quantile(q) {
			t.Fatalf("Quantile(%v): snapshot %d != plain %d", q, snap.Quantile(q), h.Quantile(q))
		}
	}
	if a.Count() != h.Count() {
		t.Fatal("Count mismatch")
	}
}

// TestAtomicConcurrentSnapshot runs one writer against many snapshotters
// under the race detector; every snapshot must be internally sane (bucket
// sum covers count as of the count read, quantiles within [min, max]).
func TestAtomicConcurrentSnapshot(t *testing.T) {
	var a Atomic
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 200000; i++ {
			a.Record(uint64(rng.Intn(1<<16)) + 1)
		}
		close(done)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				s := a.Snapshot()
				if s.Count() == 0 {
					continue
				}
				p99 := s.Quantile(0.99)
				if p99 < s.Min() || p99 > s.Max() {
					t.Errorf("p99 %d outside [%d, %d]", p99, s.Min(), s.Max())
					return
				}
			}
		}()
	}
	wg.Wait()
	final := a.Snapshot()
	if final.Count() != 200000 {
		t.Fatalf("final count %d", final.Count())
	}
}

func TestDelta(t *testing.T) {
	var a Atomic
	for _, v := range []uint64{10, 20, 30} {
		a.Record(v)
	}
	prev := a.Snapshot()
	for _, v := range []uint64{100, 200, 3000} {
		a.Record(v)
	}
	cur := a.Snapshot()
	d := Delta(&cur, &prev)
	if d.Count() != 3 {
		t.Fatalf("delta count %d", d.Count())
	}
	if d.Sum() != 3300 {
		t.Fatalf("delta sum %d", d.Sum())
	}
	// Window min/max are bucket bounds: 100 is in [64,128), 3000 in [2048,4096).
	if d.Min() != 64 || d.Max() != 4095 {
		t.Fatalf("delta min/max %d/%d", d.Min(), d.Max())
	}
	if p := d.Quantile(0.5); p < 64 || p > 255 {
		t.Fatalf("windowed median %d outside [64,255]", p)
	}
	// Empty window.
	e := Delta(&cur, &cur)
	if e.Count() != 0 || e.Quantile(0.99) != 0 {
		t.Fatal("empty delta not empty")
	}
	// Delta from the zero snapshot reproduces counts and sum.
	var zero Histogram
	full := Delta(&cur, &zero)
	if full.Count() != 6 || full.Sum() != cur.Sum() {
		t.Fatalf("full delta %v", full.String())
	}
}

func BenchmarkAtomicRecord(b *testing.B) {
	var h Atomic
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}
