package histo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if h.String() != "histo{empty}" {
		t.Fatalf("String %q", h.String())
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(1000)
	if h.Count() != 1 || h.Sum() != 1000 || h.Min() != 1000 || h.Max() != 1000 {
		t.Fatalf("%+v", h)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) = %d (clamping to min/max failed)", q, got)
		}
	}
}

func TestZeroSample(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(0)
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("zeros mishandled")
	}
}

func TestQuantileWithinFactorOfTwo(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(1_000_000)) + 1
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if got < exact/2 || got > exact*2 {
			t.Fatalf("Quantile(%v) = %d, exact %d (outside 2x)", q, got, exact)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileClampsArgs(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Record(50)
	if h.Quantile(-1) == 0 && h.Quantile(2) == 0 {
		t.Fatal("out-of-range q mishandled")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Fatal("q>1 not clamped")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := uint64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := uint64(1000); i <= 1100; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 201 {
		t.Fatalf("count %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 1100 {
		t.Fatalf("min/max %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 201 {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 201 || empty.Min() != 1 {
		t.Fatal("merge into empty broken")
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		var a, b, c Histogram
		for _, x := range xs {
			a.Record(uint64(x))
			c.Record(uint64(x))
		}
		for _, y := range ys {
			b.Record(uint64(y))
			c.Record(uint64(y))
		}
		a.Merge(&b)
		if a.Count() != c.Count() || a.Sum() != c.Sum() || a.Min() != c.Min() || a.Max() != c.Max() {
			return false
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if a.Quantile(q) != c.Quantile(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(7)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestStringNonEmpty(t *testing.T) {
	var h Histogram
	for i := uint64(1); i < 100; i++ {
		h.Record(i * 37)
	}
	s := h.String()
	if s == "" || s == "histo{empty}" {
		t.Fatalf("String %q", s)
	}
}

func TestBucketMid(t *testing.T) {
	if bucketMid(0) != 0 {
		t.Fatal("bucket 0")
	}
	if bucketMid(1) != 1 {
		t.Fatalf("bucket 1 mid %d", bucketMid(1))
	}
	if bucketMid(11) != 1536 { // [1024, 2048) -> 1536
		t.Fatalf("bucket 11 mid %d", bucketMid(11))
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}
