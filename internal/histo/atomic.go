package histo

import (
	"math/bits"
	"sync/atomic"
)

// Atomic is the concurrent-snapshot variant of Histogram: the same
// power-of-two bucket layout, recorded with single-writer atomics so a
// reporting goroutine may snapshot it while the owner is still recording.
// The discipline mirrors the rest of the observability substrate (obs
// attribution counters, core Stats): exactly one goroutine calls Record,
// any number call Snapshot, and every mutable word is accessed atomically —
// plain atomic add/store, no CAS loops needed.
//
// A Snapshot taken mid-record is not a single instant (each word is read
// individually), but every word is monotone under the single writer, so the
// result is always a state the histogram passed through field-by-field; at
// quiescence it is exact.
type Atomic struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Record adds one sample. Only the owning goroutine may call it.
//
//stm:hotpath
func (h *Atomic) Record(v uint64) {
	atomic.AddUint64(&h.buckets[bits.Len64(v)], 1)
	atomic.AddUint64(&h.sum, v)
	// Single-writer: load-compare-store replaces a CAS loop. count is bumped
	// last so a snapshot that already sees the new count also sees the
	// sample's bucket and sum.
	if c := atomic.LoadUint64(&h.count); c == 0 || v < atomic.LoadUint64(&h.min) {
		atomic.StoreUint64(&h.min, v)
	}
	if v > atomic.LoadUint64(&h.max) {
		atomic.StoreUint64(&h.max, v)
	}
	atomic.AddUint64(&h.count, 1)
}

// Count returns the number of recorded samples.
func (h *Atomic) Count() uint64 { return atomic.LoadUint64(&h.count) }

// Snapshot returns the current state as a plain Histogram, safe to call
// while the owner records.
func (h *Atomic) Snapshot() Histogram {
	var out Histogram
	out.count = atomic.LoadUint64(&h.count)
	out.sum = atomic.LoadUint64(&h.sum)
	out.min = atomic.LoadUint64(&h.min)
	out.max = atomic.LoadUint64(&h.max)
	for i := range h.buckets {
		out.buckets[i] = atomic.LoadUint64(&h.buckets[i])
	}
	return out
}

// Delta returns the window between two snapshots of the same histogram:
// a Histogram holding only the samples recorded after prev was taken.
// Cumulative state cannot recover the window's exact min/max, so they are
// set to the tightest power-of-two bounds the occupied buckets imply —
// which is also what keeps Quantile's clamp honest on the window.
func Delta(cur, prev *Histogram) Histogram {
	var out Histogram
	first, last := -1, -1
	for i := range cur.buckets {
		if cur.buckets[i] <= prev.buckets[i] {
			continue
		}
		n := cur.buckets[i] - prev.buckets[i]
		out.buckets[i] = n
		out.count += n
		if first < 0 {
			first = i
		}
		last = i
	}
	if out.count == 0 {
		return out
	}
	if cur.sum > prev.sum {
		out.sum = cur.sum - prev.sum
	}
	if first > 0 {
		out.min = uint64(1) << (first - 1)
	}
	if last > 0 {
		out.max = uint64(1)<<last - 1
	}
	return out
}
