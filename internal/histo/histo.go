// Package histo provides a small log-scaled histogram for latency
// measurements. The benchmark harness records per-transaction latencies with
// it to expose the *distribution* behind the throughput numbers: remote
// commit trades a longer per-commit round trip for immunity to shared-lock
// convoys, which shows up as a tighter tail, not a better median.
//
// Buckets are powers of two (one per bit length), so Record is two
// instructions and quantiles are exact to within a factor of two — ample for
// comparing engines orders of magnitude apart.
package histo

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// numBuckets covers the full uint64 range: bucket i holds values with bit
// length i (value 0 goes to bucket 0).
const numBuckets = 65

// Histogram accumulates non-negative integer samples (typically
// nanoseconds). The zero value is ready to use. Not safe for concurrent
// use; give each worker its own and Merge.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample, or 0 when empty.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest sample, or 0 when empty.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the
// geometric midpoint of the bucket containing the nearest-rank sample,
// clamped to [Min, Max]. The rank is ceil(q*count) — the standard
// nearest-rank definition — so q=0.5 over three samples selects the middle
// one, not the first (truncation used to bias every mid-bucket quantile one
// sample low). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			est := bucketMid(i)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
	}
	return h.max
}

// bucketMid returns the geometric midpoint of bucket i: values in bucket i
// have bit length i, i.e. lie in [2^(i-1), 2^i).
func bucketMid(i int) uint64 {
	if i == 0 {
		return 0
	}
	lo := uint64(1) << (i - 1)
	return lo + lo/2
}

// Bucket is one exported histogram bin: Count samples whose values lie in
// [Lo, Hi]. The bounds are the power-of-two bucket edges.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// NonEmptyBuckets returns the occupied bins in increasing value order — the
// machine-readable form benchmark JSON reports embed (e.g. the group-commit
// batch-size distribution).
func (h *Histogram) NonEmptyBuckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		var lo, hi uint64
		if i > 0 {
			lo = uint64(1) << (i - 1)
			hi = lo<<1 - 1
		}
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// CountAbove returns the number of samples whose bucket lies entirely above
// v — every sample whose bit length exceeds v's. Samples sharing v's bucket
// are excluded (they may be at or below v), so the result is a conservative
// lower bound on samples strictly greater than v, off by at most one
// power-of-two bucket. The SLO burn-rate evaluation uses it as the
// "requests over objective" numerator.
func (h *Histogram) CountAbove(v uint64) uint64 {
	var n uint64
	for i := bits.Len64(v) + 1; i < numBuckets; i++ {
		n += h.buckets[i]
	}
	return n
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histo{empty}"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "histo{n=%d mean=%.0f p50=%d p90=%d p99=%d max=%d}",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
	return sb.String()
}
