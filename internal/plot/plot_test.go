package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "Figure 7(a)",
		XLabel: "threads",
		YLabel: "K tx/s",
		Series: []Series{
			{Name: "norec", X: []float64{2, 4, 8}, Y: []float64{800, 1600, 3000}},
			{Name: "rinval-v2", X: []float64{2, 4, 8}, Y: []float64{810, 1550, 2700}},
		},
	}
}

func TestRenderWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{"norec", "rinval-v2", "Figure 7(a)", "threads", "K tx/s", "<path", "<circle"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
}

func TestRenderErrors(t *testing.T) {
	cases := []*Chart{
		{Title: "empty"},
		{Series: []Series{{Name: "m", X: []float64{1, 2}, Y: []float64{1}}}},
		{Series: []Series{{Name: "e"}}},
		{Series: []Series{{Name: "u", X: []float64{2, 1}, Y: []float64{1, 2}}}},
	}
	for i, c := range cases {
		var buf bytes.Buffer
		if err := c.Render(&buf); err == nil {
			t.Errorf("case %d: bad chart accepted", i)
		}
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Single point and constant-zero series must not divide by zero.
	c := &Chart{
		Title: "degenerate",
		Series: []Series{
			{Name: "p", X: []float64{5}, Y: []float64{0}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Fatal("degenerate chart produced NaN/Inf coordinates")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape: %q", escape(`a<b>&"c"`))
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		2:         "2",
		2.5:       "2.5",
		12000:     "12K",
		3_400_000: "3.4M",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q want %q", v, got, want)
		}
	}
}
