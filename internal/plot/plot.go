// Package plot renders benchmark tables as standalone SVG line charts, so
// the harness can emit the paper's figures as images, not just text tables.
// It is a deliberately small chart writer (axes, series with markers,
// legend, linear scales) with no dependencies.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one line on the chart.
type Series struct {
	Name string
	X, Y []float64 // same length, X ascending
}

// Chart is one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// palette cycles through distinguishable stroke colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

// geometry constants (pixels).
const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 150
	marginT = 50
	marginB = 55
)

// Render writes the chart as a self-contained SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at zero, as in the paper
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has mismatched lengths", s.Name)
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
		if !sort.Float64sAreSorted(s.X) {
			return fmt.Errorf("plot: series %q x values not ascending", s.Name)
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	if maxX <= minX {
		maxX = minX + 1
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(height-marginB) - (y-minY)/(maxY-minY)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+int(plotW/2), height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+int(plotH/2), marginT+int(plotH/2), escape(c.YLabel))

	// Y ticks (5 divisions).
	for i := 0; i <= 5; i++ {
		v := minY + (maxY-minY)*float64(i)/5
		y := py(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+3, fmtTick(v))
	}
	// X ticks at each distinct sample of the first series.
	for _, x := range c.Series[0].X {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(x), height-marginB+14, fmtTick(x))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 18*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+10, ly, width-marginR+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR+40, ly+4, escape(s.Name))
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtTick renders an axis value compactly.
func fmtTick(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fK", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
