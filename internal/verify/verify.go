// Package verify stress-checks an engine's safety properties: opacity
// (consistent snapshots inside every transaction body, even doomed ones),
// atomicity (conservation of transferred quantities), and structural
// integrity of a transactional red-black tree under a concurrent mixed
// workload. cmd/rinval-verify wraps it as a CLI; the test suite uses it as
// one more adversarial pass over every engine.
package verify

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/container/rbtree"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Options configures a verification run.
type Options struct {
	Threads  int           // concurrent workers per check (>= 2)
	Duration time.Duration // wall time per check
	Seed     uint64
}

// Report summarizes the evidence gathered.
type Report struct {
	Snapshots uint64 // consistent multi-var snapshots observed
	Audits    uint64 // conserved-total audits performed
	TreeOps   uint64 // red-black tree operations executed
	Commits   uint64
	Aborts    uint64
}

// Engine runs all checks against one engine and returns the first safety
// violation found.
func Engine(algo stm.Algo, o Options) (Report, error) {
	if o.Threads < 2 {
		o.Threads = 2
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	var rep Report
	if err := checkOpacity(algo, o, &rep); err != nil {
		return rep, fmt.Errorf("opacity: %w", err)
	}
	if err := checkConservation(algo, o, &rep); err != nil {
		return rep, fmt.Errorf("conservation: %w", err)
	}
	if err := checkTree(algo, o, &rep); err != nil {
		return rep, fmt.Errorf("rbtree: %w", err)
	}
	return rep, nil
}

func newSystem(algo stm.Algo, o Options) (*stm.System, error) {
	return stm.New(stm.Config{
		Algo:         algo,
		MaxThreads:   o.Threads + 1,
		InvalServers: min(4, o.Threads+1),
		Seed:         o.Seed,
	})
}

// checkOpacity: writers keep an array of vars all-equal; readers assert
// equality inside the body. Any observed mix of old and new values is an
// opacity violation.
func checkOpacity(algo stm.Algo, o Options, rep *Report) error {
	sys, err := newSystem(algo, o)
	if err != nil {
		return err
	}
	defer sys.Close()
	const n = 6
	vars := make([]*stm.Var[int], n)
	for i := range vars {
		vars[i] = stm.NewVar(0)
	}
	var stop atomic.Bool
	var violations atomic.Int64
	var snapshots atomic.Uint64
	var wg sync.WaitGroup
	writers := o.Threads / 2
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for !stop.Load() {
				_ = th.Atomically(func(tx *stm.Tx) error {
					v0 := vars[0].Load(tx)
					for _, v := range vars {
						v.Store(tx, v0+1)
					}
					return nil
				})
			}
		}()
	}
	for r := writers; r < o.Threads; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			for !stop.Load() {
				_ = th.Atomically(func(tx *stm.Tx) error {
					first := vars[0].Load(tx)
					for _, v := range vars[1:] {
						if v.Load(tx) != first {
							violations.Add(1)
							return nil
						}
					}
					return nil
				})
				snapshots.Add(1)
			}
		}()
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	rep.Snapshots += snapshots.Load()
	if v := violations.Load(); v != 0 {
		return fmt.Errorf("%d inconsistent snapshots observed", v)
	}
	final := vars[0].Peek()
	for i, v := range vars {
		if v.Peek() != final {
			return fmt.Errorf("final state diverged at var %d", i)
		}
	}
	return nil
}

// checkConservation: random transfers between accounts; auditors sum all
// accounts transactionally and at the end quiescently.
func checkConservation(algo stm.Algo, o Options, rep *Report) error {
	sys, err := newSystem(algo, o)
	if err != nil {
		return err
	}
	defer sys.Close()
	const accounts, initial = 12, 500
	accs := make([]*stm.Var[int], accounts)
	for i := range accs {
		accs[i] = stm.NewVar(initial)
	}
	var stop atomic.Bool
	var badAudits atomic.Int64
	var audits atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < o.Threads-1; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			rng := stamp.NewRand(o.Seed, uint64(w)+40)
			for !stop.Load() {
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				amt := rng.Intn(40)
				_ = th.Atomically(func(tx *stm.Tx) error {
					accs[from].Store(tx, accs[from].Load(tx)-amt)
					accs[to].Store(tx, accs[to].Load(tx)+amt)
					return nil
				})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		th := sys.MustRegister()
		defer th.Close()
		for !stop.Load() {
			total := 0
			_ = th.Atomically(func(tx *stm.Tx) error {
				total = 0
				for _, a := range accs {
					total += a.Load(tx)
				}
				return nil
			})
			if total != accounts*initial {
				badAudits.Add(1)
			}
			audits.Add(1)
		}
	}()
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	rep.Audits += audits.Load()
	st := sys.Stats()
	rep.Commits += st.Commits
	rep.Aborts += st.Aborts
	if v := badAudits.Load(); v != 0 {
		return fmt.Errorf("%d audits saw a wrong total", v)
	}
	total := 0
	for _, a := range accs {
		total += a.Peek()
	}
	if total != accounts*initial {
		return fmt.Errorf("final total %d != %d", total, accounts*initial)
	}
	return nil
}

// checkTree: mixed insert/delete/lookup traffic, then full invariant check.
func checkTree(algo stm.Algo, o Options, rep *Report) error {
	sys, err := newSystem(algo, o)
	if err != nil {
		return err
	}
	defer sys.Close()
	tree := rbtree.New()
	const keyRange = 512
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < o.Threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := sys.MustRegister()
			defer th.Close()
			rng := stamp.NewRand(o.Seed, uint64(w)+90)
			for !stop.Load() {
				k := rng.Intn(keyRange)
				switch rng.Intn(3) {
				case 0:
					_ = th.Atomically(func(tx *stm.Tx) error { tree.Insert(tx, k, k); return nil })
				case 1:
					_ = th.Atomically(func(tx *stm.Tx) error { tree.Delete(tx, k); return nil })
				default:
					_ = th.Atomically(func(tx *stm.Tx) error { tree.Contains(tx, k); return nil })
				}
				ops.Add(1)
			}
		}()
	}
	time.Sleep(o.Duration)
	stop.Store(true)
	wg.Wait()
	rep.TreeOps += ops.Load()
	st := sys.Stats()
	rep.Commits += st.Commits
	rep.Aborts += st.Aborts
	return tree.CheckInvariants()
}
