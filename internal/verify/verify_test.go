package verify

import (
	"testing"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

func TestEngineAllAlgos(t *testing.T) {
	for _, a := range stm.Algos {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			rep, err := Engine(a, Options{Threads: 4, Duration: 60 * time.Millisecond, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Snapshots == 0 || rep.Audits == 0 || rep.TreeOps == 0 {
				t.Fatalf("no evidence gathered: %+v", rep)
			}
			if rep.Commits == 0 {
				t.Fatalf("no commits: %+v", rep)
			}
		})
	}
}

func TestOptionsDefaults(t *testing.T) {
	// Degenerate options must be normalized, not crash.
	rep, err := Engine(stm.NOrec, Options{Threads: 0, Duration: 0, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshots == 0 {
		t.Fatal("defaults produced no work")
	}
}
