package stamp_test

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/bench"
	"github.com/ssrg-vt/rinval/stm"
)

// benchApp runs one STAMP app per iteration at small scale under the given
// engine — per-application microbenchmarks complementing the root-level
// figure benchmarks.
func benchApp(b *testing.B, app string, algo stm.Algo) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		row, err := bench.RunSTAMP(algo, app, 2, bench.ScaleSmall, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(row.KTxPerSec, "ktx/s")
		}
	}
}

func BenchmarkKmeansNOrec(b *testing.B)      { benchApp(b, "kmeans", stm.NOrec) }
func BenchmarkKmeansRInvalV2(b *testing.B)   { benchApp(b, "kmeans", stm.RInvalV2) }
func BenchmarkSsca2NOrec(b *testing.B)       { benchApp(b, "ssca2", stm.NOrec) }
func BenchmarkSsca2RInvalV2(b *testing.B)    { benchApp(b, "ssca2", stm.RInvalV2) }
func BenchmarkLabyrinthNOrec(b *testing.B)   { benchApp(b, "labyrinth", stm.NOrec) }
func BenchmarkIntruderNOrec(b *testing.B)    { benchApp(b, "intruder", stm.NOrec) }
func BenchmarkGenomeNOrec(b *testing.B)      { benchApp(b, "genome", stm.NOrec) }
func BenchmarkGenomeRInvalV2(b *testing.B)   { benchApp(b, "genome", stm.RInvalV2) }
func BenchmarkVacationNOrec(b *testing.B)    { benchApp(b, "vacation", stm.NOrec) }
func BenchmarkVacationInvalSTM(b *testing.B) { benchApp(b, "vacation", stm.InvalSTM) }
func BenchmarkBayesNOrec(b *testing.B)       { benchApp(b, "bayes", stm.NOrec) }
