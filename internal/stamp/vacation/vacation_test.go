package vacation

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{
		Items: 32, InitialStock: 4, Customers: 16,
		Tasks: 160, QueryWindow: 3, ReservePct: 80, Seed: 5,
	}
}

func TestVacationSingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(smallConfig())
	res, err := stamp.Run(sys, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits == 0 {
		t.Fatal("no commits recorded")
	}
	// Reservations must actually have happened at 80% reserve mix.
	total := 0
	for rel := 0; rel < numRelations; rel++ {
		total += b.reservedTotal[rel].Peek()
	}
	if total == 0 {
		t.Fatal("no reservations made")
	}
}

func TestVacationAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVacationCancelHeavyMix(t *testing.T) {
	cfg := smallConfig()
	cfg.ReservePct = 30 // most tasks cancel or update
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(cfg), 4); err != nil {
		t.Fatal(err)
	}
}

func TestVacationBadConfig(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(Config{Items: 0}), 1); err == nil {
		t.Fatal("zero items accepted")
	}
}

func TestValidateCatchesImbalance(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(smallConfig())
	if _, err := stamp.Run(sys, b, 1); err != nil {
		t.Fatal(err)
	}
	// Steal a unit of stock behind the system's back.
	th := sys.MustRegister()
	defer th.Close()
	_ = th.Atomically(func(tx *stm.Tx) error {
		v, _ := b.relations[relCar].Get(tx, 0)
		b.relations[relCar].Insert(tx, 0, v+1)
		return nil
	})
	if err := b.Validate(); err == nil {
		t.Fatal("validation missed stock imbalance")
	}
}
