// Package vacation ports STAMP's vacation: an in-memory travel reservation
// database. Four relations (cars, flights, rooms keyed by item id, plus a
// customer directory) are kept in transactional red-black trees; client
// tasks run multi-step transactions — query a window of items across
// relations, reserve the best-priced ones for a customer, occasionally
// cancel a customer or update inventory. Transactions are read-mostly and
// touch many tree nodes, which is why the paper's Figure 8(f) shows NOrec
// ahead of the invalidation family here, with RInval closing most of the
// gap relative to InvalSTM.
package vacation

import (
	"fmt"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/container/rbtree"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Relation identifiers.
const (
	relCar = iota
	relFlight
	relRoom
	numRelations
)

// Config sizes the workload.
type Config struct {
	Items        int    // items per relation
	InitialStock int    // units available per item
	Customers    int    // customer directory size
	Tasks        int    // total client tasks
	QueryWindow  int    // items examined per reservation query
	ReservePct   int    // % of tasks that are reservations (rest split between cancel/update)
	Seed         uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{
		Items: 128, InitialStock: 8, Customers: 64,
		Tasks: 512, QueryWindow: 4, ReservePct: 80, Seed: 1,
	}
}

// Bench is one vacation instance. Single-use.
type Bench struct {
	cfg Config

	// relations[r] maps item id -> remaining stock.
	relations [numRelations]*rbtree.Tree
	// customers maps customer id -> reservation list (relation*Items+item).
	customers *ds.Map[int, []int]
	// reservedTotal counts successful reservations per relation.
	reservedTotal [numRelations]*stm.Var[int]
	// driftVars tracks the net inventory adjustment per relation made by
	// updateInventory tasks, so Validate can balance the books.
	driftVars [numRelations]*stm.Var[int]
	cancelled *stm.Var[int] // units returned by cancellations
}

// New returns a bench for cfg.
func New(cfg Config) *Bench { return &Bench{cfg: cfg} }

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "vacation" }

// Init populates the relations and the customer directory.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.Items < 1 || b.cfg.Customers < 1 || b.cfg.QueryWindow < 1 {
		return fmt.Errorf("vacation: bad config %+v", b.cfg)
	}
	b.customers = ds.NewMap[int, []int](64, ds.HashInt)
	for r := 0; r < numRelations; r++ {
		b.relations[r] = rbtree.New()
		b.reservedTotal[r] = stm.NewVar(0)
		b.driftVars[r] = stm.NewVar(0)
	}
	b.cancelled = stm.NewVar(0)
	return th.Atomically(func(tx *stm.Tx) error {
		for r := 0; r < numRelations; r++ {
			for item := 0; item < b.cfg.Items; item++ {
				b.relations[r].Insert(tx, item, b.cfg.InitialStock)
			}
		}
		for c := 0; c < b.cfg.Customers; c++ {
			b.customers.Put(tx, c, nil)
		}
		return nil
	})
}

// Worker runs this worker's share of the task stream.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	r := stamp.NewRand(b.cfg.Seed, uint64(id)+100)
	chunk := (b.cfg.Tasks + n - 1) / n
	lo := min(id*chunk, b.cfg.Tasks)
	hi := min(lo+chunk, b.cfg.Tasks)
	for t := lo; t < hi; t++ {
		kind := r.Intn(100)
		var err error
		switch {
		case kind < b.cfg.ReservePct:
			err = b.makeReservation(th, r)
		case kind < b.cfg.ReservePct+(100-b.cfg.ReservePct)/2:
			err = b.cancelCustomer(th, r)
		default:
			err = b.updateInventory(th, r)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// makeReservation is STAMP's MAKE_RESERVATION: for each relation, scan a
// window of item ids for the one with most stock, then reserve one unit of
// each found item for a random customer — all in one transaction.
func (b *Bench) makeReservation(th *stm.Thread, r *stamp.Rand) error {
	cust := r.Intn(b.cfg.Customers)
	window := make([]int, b.cfg.QueryWindow)
	for i := range window {
		window[i] = r.Intn(b.cfg.Items)
	}
	return th.Atomically(func(tx *stm.Tx) error {
		var picks [numRelations]int
		for rel := 0; rel < numRelations; rel++ {
			best, bestStock := -1, 0
			for _, item := range window {
				if stock, ok := b.relations[rel].Get(tx, item); ok && stock > bestStock {
					best, bestStock = item, stock
				}
			}
			picks[rel] = best
		}
		resv, ok := b.customers.Get(tx, cust)
		if !ok {
			return nil // customer cancelled concurrently
		}
		changed := false
		for rel, item := range picks {
			if item < 0 {
				continue
			}
			stock, _ := b.relations[rel].Get(tx, item)
			if stock <= 0 {
				continue
			}
			b.relations[rel].Insert(tx, item, stock-1) // update stock
			next := make([]int, len(resv)+1)
			copy(next, resv)
			next[len(resv)] = rel*b.cfg.Items + item
			resv = next
			b.reservedTotal[rel].Store(tx, b.reservedTotal[rel].Load(tx)+1)
			changed = true
		}
		if changed {
			b.customers.Put(tx, cust, resv)
		}
		return nil
	})
}

// cancelCustomer is STAMP's DELETE_CUSTOMER: release all of a customer's
// reservations back to inventory and empty the record.
func (b *Bench) cancelCustomer(th *stm.Thread, r *stamp.Rand) error {
	cust := r.Intn(b.cfg.Customers)
	return th.Atomically(func(tx *stm.Tx) error {
		resv, ok := b.customers.Get(tx, cust)
		if !ok || len(resv) == 0 {
			return nil
		}
		for _, enc := range resv {
			rel, item := enc/b.cfg.Items, enc%b.cfg.Items
			stock, _ := b.relations[rel].Get(tx, item)
			b.relations[rel].Insert(tx, item, stock+1)
			b.reservedTotal[rel].Store(tx, b.reservedTotal[rel].Load(tx)-1)
			b.cancelled.Store(tx, b.cancelled.Load(tx)+1)
		}
		b.customers.Put(tx, cust, nil)
		return nil
	})
}

// updateInventory is STAMP's UPDATE_TABLES: add or remove stock on a random
// item of a random relation (never below zero reserved-consistency).
func (b *Bench) updateInventory(th *stm.Thread, r *stamp.Rand) error {
	rel := r.Intn(numRelations)
	item := r.Intn(b.cfg.Items)
	delta := 1 + r.Intn(3)
	if r.Intn(2) == 0 {
		delta = -delta
	}
	return th.Atomically(func(tx *stm.Tx) error {
		stock, ok := b.relations[rel].Get(tx, item)
		if !ok {
			return nil
		}
		next := stock + delta
		if next < 0 {
			next = 0
		}
		b.relations[rel].Insert(tx, item, next)
		// Track net stock drift so Validate can account for it.
		b.stockDrift(tx, rel, next-stock)
		return nil
	})
}

// stockDrift records an inventory adjustment for Validate's accounting.
func (b *Bench) stockDrift(tx *stm.Tx, rel, delta int) {
	b.driftVars[rel].Store(tx, b.driftVars[rel].Load(tx)+delta)
}

// Validate checks conservation per relation:
//
//	current stock + outstanding reservations == initial stock + drift.
//
// It also cross-checks outstanding reservations against the customer
// directory and the red-black tree invariants.
func (b *Bench) Validate() error {
	outstanding := make([]int, numRelations)
	b.customers.ForEachQuiescent(func(_ int, resv []int) {
		for _, enc := range resv {
			outstanding[enc/b.cfg.Items]++
		}
	})
	for rel := 0; rel < numRelations; rel++ {
		if err := b.relations[rel].CheckInvariants(); err != nil {
			return fmt.Errorf("vacation: relation %d tree: %w", rel, err)
		}
		if got := b.reservedTotal[rel].Peek(); got != outstanding[rel] {
			return fmt.Errorf("vacation: relation %d reserved counter %d != directory %d",
				rel, got, outstanding[rel])
		}
		stock := 0
		tree := b.relations[rel]
		for _, k := range tree.Keys() {
			v, ok := tree.GetQuiescent(k)
			if !ok {
				return fmt.Errorf("vacation: relation %d lost item %d", rel, k)
			}
			if v < 0 {
				return fmt.Errorf("vacation: relation %d item %d stock %d < 0", rel, k, v)
			}
			stock += v
		}
		want := b.cfg.Items*b.cfg.InitialStock + b.driftVars[rel].Peek() - outstanding[rel]
		if stock != want {
			return fmt.Errorf("vacation: relation %d stock %d != expected %d", rel, stock, want)
		}
	}
	return nil
}
