// Package bayes ports STAMP's bayes: Bayesian network structure learning by
// hill climbing. Workers repeatedly propose an edge (parent -> child),
// score it against the data set (a long, purely computational scan — the
// dominant cost), and, if the score improves, insert the edge transactionally
// after re-checking acyclicity against the shared adjacency state. Like
// labyrinth, almost all time is non-transactional, so every STM algorithm
// performs about the same (the paper shows bayes "behaves the same as
// labyrinth" and omits its Figure 8 plot; we reproduce it for Figure 3).
package bayes

import (
	"fmt"
	"math"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	Vars       int    // network variables
	Records    int    // data records
	Proposals  int    // total edge proposals to evaluate
	MaxParents int    // cap on in-degree
	Seed       uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{Vars: 12, Records: 512, Proposals: 96, MaxParents: 3, Seed: 1}
}

// Bench is one bayes instance. Single-use.
type Bench struct {
	cfg  Config
	data [][]bool // records x vars, generated from a hidden chain structure

	// parents[v] holds v's parent set (immutable snapshot per update).
	parents []*stm.Var[[]int]
	edges   *stm.Var[int] // accepted edge count
}

// New generates binary records from a hidden chain v0 -> v1 -> ... so real
// dependencies exist for the scorer to find.
func New(cfg Config) *Bench {
	r := stamp.NewRand(cfg.Seed, 0xbae5)
	b := &Bench{cfg: cfg}
	b.data = make([][]bool, cfg.Records)
	for i := range b.data {
		rec := make([]bool, cfg.Vars)
		rec[0] = r.Intn(2) == 0
		for v := 1; v < cfg.Vars; v++ {
			// Each variable copies its predecessor with 85% probability.
			if r.Intn(100) < 85 {
				rec[v] = rec[v-1]
			} else {
				rec[v] = r.Intn(2) == 0
			}
		}
		b.data[i] = rec
	}
	return b
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "bayes" }

// Init creates the empty network.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.Vars < 2 || b.cfg.Records < 1 {
		return fmt.Errorf("bayes: bad config %+v", b.cfg)
	}
	b.parents = make([]*stm.Var[[]int], b.cfg.Vars)
	for v := range b.parents {
		b.parents[v] = stm.NewVar[[]int](nil)
	}
	b.edges = stm.NewVar(0)
	return nil
}

// score computes the mutual-information-like gain of adding parent -> child
// over the full data set: a deliberately heavy, pure computation.
func (b *Bench) score(parent, child int) float64 {
	var n11, n10, n01, n00 float64
	for _, rec := range b.data {
		p, c := rec[parent], rec[child]
		switch {
		case p && c:
			n11++
		case p && !c:
			n10++
		case !p && c:
			n01++
		default:
			n00++
		}
	}
	n := float64(len(b.data))
	mi := 0.0
	for _, cell := range [...][3]float64{
		{n11, n11 + n10, n11 + n01},
		{n10, n11 + n10, n10 + n00},
		{n01, n01 + n00, n11 + n01},
		{n00, n01 + n00, n10 + n00},
	} {
		nij, ni, nj := cell[0], cell[1], cell[2]
		if nij > 0 && ni > 0 && nj > 0 {
			mi += (nij / n) * math.Log((nij*n)/(ni*nj))
		}
	}
	return mi
}

// Worker evaluates this worker's share of proposals.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	r := stamp.NewRand(b.cfg.Seed, uint64(id)+31)
	chunk := (b.cfg.Proposals + n - 1) / n
	lo := min(id*chunk, b.cfg.Proposals)
	hi := min(lo+chunk, b.cfg.Proposals)
	const threshold = 0.05 // minimum gain to accept an edge
	for i := lo; i < hi; i++ {
		parent := r.Intn(b.cfg.Vars)
		child := r.Intn(b.cfg.Vars)
		if parent == child {
			continue
		}
		if b.score(parent, child) < threshold { // heavy non-transactional scan
			continue
		}
		if err := th.Atomically(func(tx *stm.Tx) error {
			ps := b.parents[child].Load(tx)
			if len(ps) >= b.cfg.MaxParents {
				return nil
			}
			for _, p := range ps {
				if p == parent {
					return nil // already present
				}
			}
			if b.ancestorOf(tx, parent, child) {
				return nil // child already reaches parent: edge closes a cycle
			}
			next := make([]int, len(ps)+1)
			copy(next, ps)
			next[len(ps)] = parent
			b.parents[child].Store(tx, next)
			b.edges.Store(tx, b.edges.Load(tx)+1)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// ancestorOf reports whether anc is an ancestor of (or equal to) node,
// walking parent lists transactionally. Adding the edge parent->child closes
// a cycle exactly when a forward path child ->* parent already exists, i.e.
// when child is an ancestor of parent — so Worker asks
// ancestorOf(node=parent, anc=child).
func (b *Bench) ancestorOf(tx *stm.Tx, node, anc int) bool {
	seen := make([]bool, b.cfg.Vars)
	stack := []int{node}
	seen[node] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == anc {
			return true
		}
		for _, p := range b.parents[v].Load(tx) {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// Validate checks the learned network is acyclic, respects MaxParents, and
// that the edge counter matches the adjacency state. It also checks the
// scorer found at least one of the planted chain dependencies.
func (b *Bench) Validate() error {
	count := 0
	for v := range b.parents {
		ps := b.parents[v].Peek()
		if len(ps) > b.cfg.MaxParents {
			return fmt.Errorf("bayes: node %d has %d parents (max %d)", v, len(ps), b.cfg.MaxParents)
		}
		count += len(ps)
	}
	if got := b.edges.Peek(); got != count {
		return fmt.Errorf("bayes: edge counter %d != adjacency count %d", got, count)
	}
	if count == 0 {
		return fmt.Errorf("bayes: learned nothing from strongly dependent data")
	}
	// Cycle check via repeated leaf elimination (Kahn on parent lists).
	indeg := make([]int, b.cfg.Vars) // number of parents still unremoved
	children := make([][]int, b.cfg.Vars)
	for v := range b.parents {
		for _, p := range b.parents[v].Peek() {
			indeg[v]++
			children[p] = append(children[p], v)
		}
	}
	var queue []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	removed := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if removed != b.cfg.Vars {
		return fmt.Errorf("bayes: learned network contains a cycle")
	}
	return nil
}
