package bayes

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{Vars: 8, Records: 200, Proposals: 48, MaxParents: 2, Seed: 9}
}

func TestScoreFindsPlantedDependency(t *testing.T) {
	b := New(smallConfig())
	// Adjacent chain variables are strongly dependent; distant ones barely.
	strong := b.score(0, 1)
	if strong < 0.05 {
		t.Fatalf("adjacent score %v too low", strong)
	}
	self := b.score(3, 3)
	if self < strong {
		t.Logf("self MI %v (diagonal), strong %v", self, strong)
	}
}

func TestBayesSingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(smallConfig())
	if _, err := stamp.Run(sys, b, 1); err != nil {
		t.Fatal(err)
	}
	if b.edges.Peek() == 0 {
		t.Fatal("no edges learned")
	}
}

func TestBayesAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBayesRespectsMaxParents(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxParents = 1
	cfg.Proposals = 200
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2})
	defer sys.Close()
	b := New(cfg)
	if _, err := stamp.Run(sys, b, 4); err != nil {
		t.Fatal(err)
	}
	for v := range b.parents {
		if len(b.parents[v].Peek()) > 1 {
			t.Fatalf("node %d exceeded MaxParents", v)
		}
	}
}

func TestBayesBadConfig(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(Config{Vars: 1, Records: 10, Proposals: 1, MaxParents: 1, Seed: 1}), 1); err == nil {
		t.Fatal("single-variable config accepted")
	}
}

func TestValidateCatchesCycle(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(smallConfig())
	if _, err := stamp.Run(sys, b, 1); err != nil {
		t.Fatal(err)
	}
	// Manufacture a cycle quiescently: 0 -> 1 and 1 -> 0.
	p0 := b.parents[0].Peek()
	p1 := b.parents[1].Peek()
	b.parents[0].Set(append(append([]int(nil), p0...), 1))
	b.parents[1].Set(append(append([]int(nil), p1...), 0))
	b.edges.Set(b.edges.Peek() + 2)
	if err := b.Validate(); err == nil {
		t.Fatal("validation missed cycle")
	}
}
