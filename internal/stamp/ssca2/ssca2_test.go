package ssca2

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{Vertices: 64, Edges: 600, MaxWeight: 5, Seed: 9}
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := New(smallConfig()), New(smallConfig())
	if len(a.edges) != len(b.edges) {
		t.Fatal("edge counts differ")
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatal("generation not deterministic")
		}
	}
	for _, e := range a.edges {
		if e.from < 0 || e.from >= 64 || e.to < 0 || e.to >= 64 {
			t.Fatalf("edge endpoint out of range: %+v", e)
		}
		if e.weight < 1 || e.weight > 5 {
			t.Fatalf("weight out of range: %+v", e)
		}
	}
}

func TestSsca2SingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	res, err := stamp.Run(sys, New(smallConfig()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Commits < 600 {
		t.Fatalf("commits %d", res.Stats.Commits)
	}
}

func TestSsca2AllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSsca2BadConfig(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(Config{Vertices: 0, Edges: 0, MaxWeight: 1, Seed: 1}), 1); err == nil {
		t.Fatal("zero-vertex config accepted")
	}
}
