// Package ssca2 ports STAMP's ssca2 kernel 1 (graph construction): workers
// insert a large batch of directed weighted edges into per-vertex adjacency
// lists. Transactions are very short (one adjacency read-modify-write plus a
// degree counter), so per-transaction overhead — lock handoff, CAS traffic,
// commit latency — dominates, which is exactly the regime where the paper
// shows RInval beating both NOrec and InvalSTM from 24 threads up
// (Figure 8b).
package ssca2

import (
	"fmt"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	Vertices  int    // graph order
	Edges     int    // number of directed edges to insert
	MaxWeight int    // weights drawn from [1, MaxWeight]
	Seed      uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{Vertices: 512, Edges: 4096, MaxWeight: 8, Seed: 1}
}

// edge is one generated insertion.
type edge struct {
	from, to, weight int
}

// Bench is one ssca2 instance. Single-use.
type Bench struct {
	cfg   Config
	edges []edge

	adj       []*stm.Var[[]Arc] // adjacency lists, copy-on-write
	outDegree []*stm.Var[int]
	total     *stm.Var[int] // global edge counter (hot, like STAMP's)
}

// Arc is one stored adjacency entry.
type Arc struct {
	To, Weight int
}

// New generates the edge batch deterministically. Edges are generated with a
// power-law-ish skew (STAMP's R-MAT): low-numbered vertices receive more
// edges, concentrating contention.
func New(cfg Config) *Bench {
	r := stamp.NewRand(cfg.Seed, 0x55ca2)
	b := &Bench{cfg: cfg}
	b.edges = make([]edge, cfg.Edges)
	for i := range b.edges {
		// Skewed endpoint selection: min of two uniforms biases low ids.
		u := min(r.Intn(cfg.Vertices), r.Intn(cfg.Vertices))
		v := r.Intn(cfg.Vertices)
		b.edges[i] = edge{from: u, to: v, weight: 1 + r.Intn(cfg.MaxWeight)}
	}
	return b
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "ssca2" }

// Init allocates the empty adjacency structure.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.Vertices < 1 {
		return fmt.Errorf("ssca2: no vertices")
	}
	b.adj = make([]*stm.Var[[]Arc], b.cfg.Vertices)
	b.outDegree = make([]*stm.Var[int], b.cfg.Vertices)
	for i := range b.adj {
		b.adj[i] = stm.NewVar[[]Arc](nil)
		b.outDegree[i] = stm.NewVar(0)
	}
	b.total = stm.NewVar(0)
	return nil
}

// Worker inserts this worker's slice of the edge batch, one edge per
// transaction.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	chunk := (len(b.edges) + n - 1) / n
	lo := min(id*chunk, len(b.edges))
	hi := min(lo+chunk, len(b.edges))
	for _, e := range b.edges[lo:hi] {
		e := e
		if err := th.Atomically(func(tx *stm.Tx) error {
			av := b.adj[e.from]
			old := av.Load(tx)
			next := make([]Arc, len(old)+1)
			copy(next, old)
			next[len(old)] = Arc{To: e.to, Weight: e.weight}
			av.Store(tx, next)
			b.outDegree[e.from].Store(tx, b.outDegree[e.from].Load(tx)+1)
			b.total.Store(tx, b.total.Load(tx)+1)
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// Validate recounts the adjacency lists against the generated batch.
func (b *Bench) Validate() error {
	if got := b.total.Peek(); got != len(b.edges) {
		return fmt.Errorf("ssca2: total counter %d != %d edges", got, len(b.edges))
	}
	perVertex := make([]int, b.cfg.Vertices)
	weightSum := 0
	for _, e := range b.edges {
		perVertex[e.from]++
		weightSum += e.weight
	}
	storedWeight := 0
	for v := range b.adj {
		arcs := b.adj[v].Peek()
		if len(arcs) != perVertex[v] {
			return fmt.Errorf("ssca2: vertex %d has %d arcs, want %d", v, len(arcs), perVertex[v])
		}
		if d := b.outDegree[v].Peek(); d != perVertex[v] {
			return fmt.Errorf("ssca2: vertex %d degree %d, want %d", v, d, perVertex[v])
		}
		for _, a := range arcs {
			if a.To < 0 || a.To >= b.cfg.Vertices {
				return fmt.Errorf("ssca2: arc to out-of-range vertex %d", a.To)
			}
			storedWeight += a.Weight
		}
	}
	if storedWeight != weightSum {
		return fmt.Errorf("ssca2: stored weight %d != generated %d", storedWeight, weightSum)
	}
	return nil
}
