// Package labyrinth ports STAMP's labyrinth: maze routing in a 2-D grid.
// Each transaction claims a whole shortest path between a source and a
// destination: it reads a snapshot of the grid (large read set), runs a BFS
// over the snapshot (long computation inside the transaction — the dominant
// "other"/non-commit time in the paper's Figure 3), and writes ownership of
// every path cell. Conflicts arise only when two concurrent routes cross.
// Because transactional work is a small fraction of total time, all STM
// algorithms perform about the same here — the paper's Figure 8(c).
package labyrinth

import (
	"fmt"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	Width, Height int
	Paths         int    // routing tasks
	MaxLen        int    // max manhattan distance between endpoints
	Seed          uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{Width: 24, Height: 24, Paths: 24, MaxLen: 16, Seed: 1}
}

// task is one routing request.
type task struct {
	id              int
	sx, sy, tx2, ty int
}

// Bench is one labyrinth instance. Single-use.
type Bench struct {
	cfg   Config
	tasks []task

	grid  []*stm.Var[int] // 0 = free, else owning path id
	queue *ds.Queue[task]
	done  *stm.Var[int] // routed count
	fail  *stm.Var[int] // unroutable count
}

// New generates routing tasks with distinct endpoints.
func New(cfg Config) *Bench {
	r := stamp.NewRand(cfg.Seed, 0x1ab1)
	b := &Bench{cfg: cfg}
	used := map[int]bool{}
	pick := func() (int, int) {
		for {
			x, y := r.Intn(cfg.Width), r.Intn(cfg.Height)
			if !used[y*cfg.Width+x] {
				used[y*cfg.Width+x] = true
				return x, y
			}
		}
	}
	for i := 0; i < cfg.Paths; i++ {
		if len(used)+2 > cfg.Width*cfg.Height {
			// Grid exhausted: stop generating. Init rejects such configs,
			// but generation itself must terminate.
			break
		}
		sx, sy := pick()
		var tx, ty int
		for try := 0; ; try++ {
			tx, ty = pick()
			// Accept any endpoint after enough rejections so generation
			// terminates even on congested grids.
			if abs(tx-sx)+abs(ty-sy) <= cfg.MaxLen || try > 1000 {
				break
			}
			used[ty*cfg.Width+tx] = false
		}
		b.tasks = append(b.tasks, task{id: i + 1, sx: sx, sy: sy, tx2: tx, ty: ty})
	}
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "labyrinth" }

// Init builds the empty grid and fills the task queue.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.Width*b.cfg.Height < 2*b.cfg.Paths {
		return fmt.Errorf("labyrinth: grid too small for %d paths", b.cfg.Paths)
	}
	b.grid = make([]*stm.Var[int], b.cfg.Width*b.cfg.Height)
	for i := range b.grid {
		b.grid[i] = stm.NewVar(0)
	}
	b.queue = ds.NewQueue[task]()
	b.done = stm.NewVar(0)
	b.fail = stm.NewVar(0)
	return th.Atomically(func(tx *stm.Tx) error {
		for _, t := range b.tasks {
			b.queue.Enqueue(tx, t)
		}
		return nil
	})
}

// Worker pops tasks and routes them until the queue drains.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	for {
		var t task
		var ok bool
		if err := th.Atomically(func(tx *stm.Tx) error {
			t, ok = b.queue.Dequeue(tx)
			return nil
		}); err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := b.route(th, t); err != nil {
			return err
		}
	}
}

// route claims a shortest free path for t in one transaction: snapshot-read
// the grid region, BFS over the snapshot, write ownership of the path cells.
// If the snapshot changed under us the transaction retries automatically; if
// no path exists in the current snapshot the task is counted as failed (as
// STAMP does when the maze is congested).
func (b *Bench) route(th *stm.Thread, t task) error {
	w, h := b.cfg.Width, b.cfg.Height
	return th.Atomically(func(tx *stm.Tx) error {
		// Snapshot read: the whole grid enters the read set (big read set,
		// like STAMP's grid copy step).
		occ := make([]bool, w*h)
		for i, cell := range b.grid {
			occ[i] = cell.Load(tx) != 0
		}
		// BFS on the private snapshot — pure computation inside the tx.
		const unseen = -1
		prev := make([]int, w*h)
		for i := range prev {
			prev[i] = unseen
		}
		src := t.sy*w + t.sx
		dst := t.ty*w + t.tx2
		if occ[src] || occ[dst] {
			// Another route ran through one of our endpoints: unroutable.
			b.fail.Store(tx, b.fail.Load(tx)+1)
			return nil
		}
		prev[src] = src
		frontier := []int{src}
		found := false
		for len(frontier) > 0 && !found {
			var next []int
			for _, c := range frontier {
				cx, cy := c%w, c/w
				for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					nx, ny := cx+d[0], cy+d[1]
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					nc := ny*w + nx
					if prev[nc] != unseen || (occ[nc] && nc != dst) {
						continue
					}
					prev[nc] = c
					if nc == dst {
						found = true
						break
					}
					next = append(next, nc)
				}
			}
			frontier = next
		}
		if !found || occ[dst] {
			b.fail.Store(tx, b.fail.Load(tx)+1)
			return nil
		}
		// Write-claim the path.
		for c := dst; ; c = prev[c] {
			b.grid[c].Store(tx, t.id)
			if c == src {
				break
			}
		}
		b.done.Store(tx, b.done.Load(tx)+1)
		return nil
	})
}

// Validate rebuilds path ownership from the grid: every routed task's
// endpoints must be owned by it and connected through its own cells; cells
// owned by unknown ids are an error; done+fail must cover all tasks.
func (b *Bench) Validate() error {
	w, h := b.cfg.Width, b.cfg.Height
	routed := b.done.Peek()
	failed := b.fail.Peek()
	if routed+failed != b.cfg.Paths {
		return fmt.Errorf("labyrinth: routed %d + failed %d != %d tasks", routed, failed, b.cfg.Paths)
	}
	owner := make(map[int][]int)
	for i, cell := range b.grid {
		if id := cell.Peek(); id != 0 {
			if id < 1 || id > b.cfg.Paths {
				return fmt.Errorf("labyrinth: cell %d owned by unknown id %d", i, id)
			}
			owner[id] = append(owner[id], i)
		}
	}
	if len(owner) != routed {
		return fmt.Errorf("labyrinth: %d ids own cells, %d tasks routed", len(owner), routed)
	}
	for _, t := range b.tasks {
		cells, ok := owner[t.id]
		if !ok {
			continue // failed task
		}
		set := map[int]bool{}
		for _, c := range cells {
			set[c] = true
		}
		src := t.sy*w + t.sx
		dst := t.ty*w + t.tx2
		if !set[src] || !set[dst] {
			return fmt.Errorf("labyrinth: path %d does not own its endpoints", t.id)
		}
		// Connectivity over the task's own cells.
		seen := map[int]bool{src: true}
		stack := []int{src}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cx, cy := c%w, c/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				nc := ny*w + nx
				if set[nc] && !seen[nc] {
					seen[nc] = true
					stack = append(stack, nc)
				}
			}
		}
		if !seen[dst] {
			return fmt.Errorf("labyrinth: path %d endpoints not connected", t.id)
		}
	}
	return nil
}
