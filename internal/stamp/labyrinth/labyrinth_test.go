package labyrinth

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{Width: 16, Height: 16, Paths: 10, MaxLen: 10, Seed: 5}
}

func TestGenerationDistinctEndpoints(t *testing.T) {
	b := New(smallConfig())
	if len(b.tasks) != 10 {
		t.Fatalf("%d tasks", len(b.tasks))
	}
	seen := map[[2]int]bool{}
	for _, tk := range b.tasks {
		for _, pt := range [][2]int{{tk.sx, tk.sy}, {tk.tx2, tk.ty}} {
			if seen[pt] {
				t.Fatalf("endpoint %v reused", pt)
			}
			seen[pt] = true
		}
	}
}

func TestLabyrinthSingleThreadRoutesEverything(t *testing.T) {
	// With one thread and a sparse grid every task should route.
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(Config{Width: 20, Height: 20, Paths: 4, MaxLen: 8, Seed: 2})
	if _, err := stamp.Run(sys, b, 1); err != nil {
		t.Fatal(err)
	}
	if b.done.Peek() != 4 || b.fail.Peek() != 0 {
		t.Fatalf("done=%d fail=%d", b.done.Peek(), b.fail.Peek())
	}
}

func TestLabyrinthAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			b := New(smallConfig())
			if _, err := stamp.Run(sys, b, 4); err != nil {
				t.Fatal(err)
			}
			// Congestion may fail some tasks; at least one must route on
			// this sparse grid.
			if b.done.Peek() == 0 {
				t.Fatal("nothing routed")
			}
		})
	}
}

func TestLabyrinthTooSmallGrid(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(Config{Width: 3, Height: 3, Paths: 8, MaxLen: 4, Seed: 1})
	if _, err := stamp.Run(sys, b, 1); err == nil {
		t.Fatal("oversubscribed grid accepted")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(Config{Width: 20, Height: 20, Paths: 3, MaxLen: 8, Seed: 4})
	if _, err := stamp.Run(sys, b, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt: orphan cell owned by a bogus id.
	b.grid[0].Set(999)
	if err := b.Validate(); err == nil {
		t.Fatal("validation missed bogus owner")
	}
}
