// Package genome ports STAMP's genome: gene sequencing from overlapping
// segments. Phase 1 deduplicates the segment pool through a shared
// transactional hash set; phase 2 matches segments by maximal overlap,
// linking each segment to its unique successor, from which the original gene
// is reconstructed. Both phases are read-dominated (lookups vastly outnumber
// insertions), which is why the paper finds validation-based NOrec ahead of
// all invalidation algorithms here and why aborts (doomed readers re-running
// their whole read set) dominate InvalSTM's time (Figures 3 and 8e).
package genome

import (
	"fmt"
	"strings"
	"sync"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	GeneLength int    // nucleotides in the hidden gene
	SegmentLen int    // window length
	Copies     int    // duplicate factor for the segment pool
	Seed       uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{GeneLength: 512, SegmentLen: 16, Copies: 3, Seed: 1}
}

// Bench is one genome instance. Single-use.
type Bench struct {
	cfg  Config
	gene string
	pool []string // shuffled segment pool with duplicates

	unique *ds.Map[string, bool]   // phase 1: dedup set
	starts *ds.Map[string, string] // phase 2: (L-1)-prefix -> segment
	next   *ds.Map[string, string] // phase 2: segment -> successor segment
	phase  *stamp.Barrier
	once   sync.Once // builds the barrier from the first worker's count
}

// New generates a gene whose (SegmentLen-1)-grams are unique — retrying
// deterministically until that holds — then derives the duplicated, shuffled
// segment pool of every sliding window.
func New(cfg Config) *Bench {
	b := &Bench{cfg: cfg}
	alphabet := "acgt"
	for attempt := uint64(0); ; attempt++ {
		r := stamp.NewRand(cfg.Seed+attempt, 0x6e0)
		var sb strings.Builder
		for i := 0; i < cfg.GeneLength; i++ {
			sb.WriteByte(alphabet[r.Intn(4)])
		}
		gene := sb.String()
		if uniqueGrams(gene, cfg.SegmentLen-1) {
			b.gene = gene
			break
		}
	}
	r := stamp.NewRand(cfg.Seed, 0x6e1)
	for c := 0; c < cfg.Copies; c++ {
		for i := 0; i+cfg.SegmentLen <= len(b.gene); i++ {
			b.pool = append(b.pool, b.gene[i:i+cfg.SegmentLen])
		}
	}
	stamp.Shuffle(r, b.pool)
	return b
}

// uniqueGrams reports whether every k-gram of s occurs exactly once.
func uniqueGrams(s string, k int) bool {
	seen := map[string]bool{}
	for i := 0; i+k <= len(s); i++ {
		g := s[i : i+k]
		if seen[g] {
			return false
		}
		seen[g] = true
	}
	return true
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "genome" }

// Init allocates the shared tables.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.SegmentLen < 2 || b.cfg.GeneLength < b.cfg.SegmentLen {
		return fmt.Errorf("genome: bad segment/gene lengths")
	}
	b.unique = ds.NewMap[string, bool](128, ds.HashString)
	b.starts = ds.NewMap[string, string](128, ds.HashString)
	b.next = ds.NewMap[string, string](128, ds.HashString)
	return nil
}

// Worker runs the two phases, separated by a barrier.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	// Workload.Init does not know the worker count, so the first worker to
	// arrive builds the phase barrier.
	b.once.Do(func() { b.phase = stamp.NewBarrier(n) })

	// Phase 1: deduplicate my slice of the pool.
	chunk := (len(b.pool) + n - 1) / n
	lo := min(id*chunk, len(b.pool))
	hi := min(lo+chunk, len(b.pool))
	for _, seg := range b.pool[lo:hi] {
		seg := seg
		if err := th.Atomically(func(tx *stm.Tx) error {
			// Read-dominated: most segments are already present.
			if !b.unique.Contains(tx, seg) {
				b.unique.Put(tx, seg, true)
				b.starts.Put(tx, seg[:len(seg)-1], seg)
			}
			return nil
		}); err != nil {
			return err
		}
	}

	b.phase.Await(nil)

	// Phase 2: link each unique segment to its successor by (L-1)-overlap.
	// Partition the unique segments by hash of the segment string.
	var uniques []string
	b.unique.ForEachQuiescent(func(k string, _ bool) {
		if int(ds.HashString(k)%uint64(n)) == id {
			uniques = append(uniques, k)
		}
	})
	for _, seg := range uniques {
		seg := seg
		if err := th.Atomically(func(tx *stm.Tx) error {
			succ, ok := b.starts.Get(tx, seg[1:]) // suffix == successor prefix
			if ok {
				b.next.Put(tx, seg, succ)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	b.phase.Await(nil)
	return nil
}

// Validate walks the successor chain from the gene's first segment and
// compares the reconstruction against the hidden gene, and checks the dedup
// set is exactly the distinct window set.
func (b *Bench) Validate() error {
	L := b.cfg.SegmentLen
	wantUnique := len(b.gene) - L + 1
	gotUnique := 0
	b.unique.ForEachQuiescent(func(string, bool) { gotUnique++ })
	if gotUnique != wantUnique {
		return fmt.Errorf("genome: %d unique segments, want %d", gotUnique, wantUnique)
	}
	// Reconstruct.
	nextMap := map[string]string{}
	b.next.ForEachQuiescent(func(k, v string) { nextMap[k] = v })
	cur := b.gene[:L]
	var sb strings.Builder
	sb.WriteString(cur)
	for i := 0; i < wantUnique-1; i++ {
		succ, ok := nextMap[cur]
		if !ok {
			return fmt.Errorf("genome: chain broken after %d segments", i)
		}
		sb.WriteByte(succ[L-1])
		cur = succ
	}
	if sb.String() != b.gene {
		return fmt.Errorf("genome: reconstruction mismatch")
	}
	return nil
}
