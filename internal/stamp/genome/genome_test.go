package genome

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{GeneLength: 160, SegmentLen: 12, Copies: 2, Seed: 3}
}

func TestGenerationUniqueGrams(t *testing.T) {
	b := New(smallConfig())
	if len(b.gene) != 160 {
		t.Fatalf("gene length %d", len(b.gene))
	}
	if !uniqueGrams(b.gene, smallConfig().SegmentLen-1) {
		t.Fatal("generated gene has duplicate (L-1)-grams")
	}
	wantPool := (160 - 12 + 1) * 2
	if len(b.pool) != wantPool {
		t.Fatalf("pool %d want %d", len(b.pool), wantPool)
	}
}

func TestUniqueGrams(t *testing.T) {
	if !uniqueGrams("abcdef", 3) {
		t.Fatal("abcdef should have unique 3-grams")
	}
	if uniqueGrams("abcabc", 3) {
		t.Fatal("abcabc has duplicate 3-grams")
	}
}

func TestGenomeSingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(smallConfig()), 1); err != nil {
		t.Fatal(err)
	}
}

func TestGenomeAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGenomeBadConfig(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := &Bench{cfg: Config{GeneLength: 4, SegmentLen: 8, Copies: 1, Seed: 1}}
	if _, err := stamp.Run(sys, b, 1); err == nil {
		t.Fatal("segment longer than gene accepted")
	}
}

func TestGenomeReconstructionDetectsCorruption(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	b := New(smallConfig())
	if _, err := stamp.Run(sys, b, 2); err != nil {
		t.Fatal(err)
	}
	// Break one successor link; Validate must notice.
	var someKey string
	b.next.ForEachQuiescent(func(k, v string) {
		if someKey == "" {
			someKey = k
		}
	})
	th := sys.MustRegister()
	defer th.Close()
	_ = th.Atomically(func(tx *stm.Tx) error {
		b.next.Delete(tx, someKey)
		return nil
	})
	if err := b.Validate(); err == nil {
		t.Fatal("validation missed broken chain")
	}
}
