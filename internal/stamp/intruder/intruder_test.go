package intruder

import (
	"strings"
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{Flows: 30, Fragments: 3, PayloadLen: 8, AttackPct: 40, Seed: 11}
}

func TestGenerationGroundTruth(t *testing.T) {
	b := New(smallConfig())
	if len(b.packets) != 30*3 {
		t.Fatalf("%d packets", len(b.packets))
	}
	// Reassemble offline and compare against the ground truth map.
	flows := map[int][]string{}
	for _, p := range b.packets {
		if flows[p.flow] == nil {
			flows[p.flow] = make([]string, p.total)
		}
		flows[p.flow][p.index] = p.payload
	}
	for f, parts := range flows {
		full := strings.Join(parts, "")
		if strings.Contains(full, signature) != b.attacks[f] {
			t.Fatalf("flow %d ground truth mismatch", f)
		}
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, b := New(smallConfig()), New(smallConfig())
	for i := range a.packets {
		if a.packets[i] != b.packets[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestIntruderSingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(smallConfig()), 1); err != nil {
		t.Fatal(err)
	}
}

func TestIntruderAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestIntruderNoAttacks(t *testing.T) {
	cfg := smallConfig()
	cfg.AttackPct = 0
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV1, MaxThreads: 4})
	defer sys.Close()
	b := New(cfg)
	if _, err := stamp.Run(sys, b, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.detected.KeysQuiescent(); len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
}

func TestIntruderAllAttacks(t *testing.T) {
	cfg := smallConfig()
	cfg.AttackPct = 100
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV3, MaxThreads: 4, InvalServers: 2})
	defer sys.Close()
	b := New(cfg)
	if _, err := stamp.Run(sys, b, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.detected.KeysQuiescent(); len(got) != cfg.Flows {
		t.Fatalf("detected %d of %d", len(got), cfg.Flows)
	}
}

func TestIntruderBadConfig(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	cfg := Config{Flows: 2, Fragments: 1, PayloadLen: 4, AttackPct: 0, Seed: 1}
	if _, err := stamp.Run(sys, New(cfg), 1); err == nil {
		t.Fatal("payload shorter than signature accepted")
	}
}
