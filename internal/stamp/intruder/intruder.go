// Package intruder ports STAMP's intruder: network intrusion detection over
// fragmented flows. Workers transactionally pop packets from a shared
// capture queue, assemble fragments in a shared session map, and — once a
// flow completes — scan the reassembled payload for attack signatures
// (non-transactional) and record detections. The mix of a hot queue, a
// medium-contention map, and modest non-transactional work gives intruder
// its commit-heavy profile (paper Figures 3 and 8d).
package intruder

import (
	"fmt"
	"sort"
	"strings"

	"github.com/ssrg-vt/rinval/container/ds"
	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	Flows      int    // number of sessions
	Fragments  int    // fragments per flow
	PayloadLen int    // bytes per fragment
	AttackPct  int    // percentage of flows carrying the signature
	Seed       uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config {
	return Config{Flows: 96, Fragments: 4, PayloadLen: 16, AttackPct: 30, Seed: 1}
}

// signature is the attack marker injected into malicious flows.
const signature = "ATTACK!"

// packet is one captured fragment.
type packet struct {
	flow    int
	index   int
	total   int
	payload string
}

// session accumulates a flow's fragments (immutable snapshots in the map).
type session struct {
	got      int
	payloads []string // indexed by fragment number; "" = missing
}

// Bench is one intruder instance. Single-use.
type Bench struct {
	cfg     Config
	packets []packet
	attacks map[int]bool // ground truth

	capture  *ds.Queue[packet]
	sessions *ds.Map[int, session]
	detected *ds.List // flow ids flagged as attacks
	finished *stm.Var[int]
}

// New generates the shuffled packet capture deterministically.
func New(cfg Config) *Bench {
	r := stamp.NewRand(cfg.Seed, 0x1d7)
	b := &Bench{cfg: cfg, attacks: map[int]bool{}}
	letters := "abcdefghijklmnop"
	for f := 0; f < cfg.Flows; f++ {
		attack := r.Intn(100) < cfg.AttackPct
		b.attacks[f] = attack
		// Build the whole payload, then split into fragments.
		var sb strings.Builder
		for sb.Len() < cfg.Fragments*cfg.PayloadLen {
			sb.WriteByte(letters[r.Intn(len(letters))])
		}
		payload := sb.String()[:cfg.Fragments*cfg.PayloadLen]
		if attack && len(payload) > len(signature) {
			// Inject the signature across a fragment boundary when possible,
			// so detection requires reassembly. (Too-short payloads are
			// rejected by Init; generation itself must not panic on them.)
			pos := r.Intn(len(payload) - len(signature))
			payload = payload[:pos] + signature + payload[pos+len(signature):]
		}
		for i := 0; i < cfg.Fragments; i++ {
			b.packets = append(b.packets, packet{
				flow:    f,
				index:   i,
				total:   cfg.Fragments,
				payload: payload[i*cfg.PayloadLen : (i+1)*cfg.PayloadLen],
			})
		}
	}
	stamp.Shuffle(r, b.packets)
	return b
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "intruder" }

// Init fills the capture queue.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.PayloadLen*b.cfg.Fragments <= len(signature) {
		return fmt.Errorf("intruder: payload too short for signature")
	}
	b.capture = ds.NewQueue[packet]()
	b.sessions = ds.NewMap[int, session](64, ds.HashInt)
	b.detected = ds.NewList()
	b.finished = stm.NewVar(0)
	return th.Atomically(func(tx *stm.Tx) error {
		for _, p := range b.packets {
			b.capture.Enqueue(tx, p)
		}
		return nil
	})
}

// Worker processes packets until the capture queue drains.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	for {
		var p packet
		var ok bool
		// Tx 1: capture.
		if err := th.Atomically(func(tx *stm.Tx) error {
			p, ok = b.capture.Dequeue(tx)
			return nil
		}); err != nil {
			return err
		}
		if !ok {
			return nil
		}
		// Tx 2: reassembly step; returns the full payload when complete.
		var complete string
		if err := th.Atomically(func(tx *stm.Tx) error {
			complete = ""
			s, exists := b.sessions.Get(tx, p.flow)
			if !exists {
				s = session{payloads: make([]string, p.total)}
			} else {
				// Copy-on-write: never mutate a stored snapshot.
				cp := make([]string, len(s.payloads))
				copy(cp, s.payloads)
				s = session{got: s.got, payloads: cp}
			}
			if s.payloads[p.index] != "" {
				return fmt.Errorf("intruder: duplicate fragment %d of flow %d", p.index, p.flow)
			}
			s.payloads[p.index] = p.payload
			s.got++
			if s.got == p.total {
				b.sessions.Delete(tx, p.flow)
				complete = strings.Join(s.payloads, "")
			} else {
				b.sessions.Put(tx, p.flow, s)
			}
			return nil
		}); err != nil {
			return err
		}
		if complete == "" {
			continue
		}
		// Non-transactional: signature scan of the reassembled flow.
		isAttack := strings.Contains(complete, signature)
		// Tx 3: record the outcome.
		if err := th.Atomically(func(tx *stm.Tx) error {
			if isAttack {
				b.detected.Insert(tx, p.flow, 1)
			}
			b.finished.Store(tx, b.finished.Load(tx)+1)
			return nil
		}); err != nil {
			return err
		}
	}
}

// Validate compares detections against the generation-time ground truth.
func (b *Bench) Validate() error {
	if got := b.finished.Peek(); got != b.cfg.Flows {
		return fmt.Errorf("intruder: %d flows finished, want %d", got, b.cfg.Flows)
	}
	leftover := 0
	b.sessions.ForEachQuiescent(func(int, session) { leftover++ })
	if leftover != 0 {
		return fmt.Errorf("intruder: %d incomplete sessions left", leftover)
	}
	got := b.detected.KeysQuiescent()
	var want []int
	for f, a := range b.attacks {
		if a {
			want = append(want, f)
		}
	}
	sort.Ints(want)
	if len(got) != len(want) {
		return fmt.Errorf("intruder: detected %d attacks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("intruder: detection mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
	return nil
}
