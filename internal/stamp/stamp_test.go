package stamp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/ssrg-vt/rinval/stm"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(42, 0)
	b := NewRand(42, 0)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(42, 1)
	d := NewRand(43, 0)
	a2 := NewRand(42, 0)
	sawDiffStream, sawDiffSeed := false, false
	for i := 0; i < 20; i++ {
		v := a2.Uint64()
		if v != c.Uint64() {
			sawDiffStream = true
		}
		if v != d.Uint64() {
			sawDiffSeed = true
		}
	}
	if !sawDiffStream || !sawDiffSeed {
		t.Fatal("streams/seeds not independent")
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(7, 7)
	for i := 0; i < 1000; i++ {
		n := 1 + i%17
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
	f := r.Float64()
	if f < 0 || f >= 1 {
		t.Fatalf("Float64 = %v", f)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandPerm(t *testing.T) {
	r := NewRand(1, 2)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad perm %v", p)
		}
		seen[v] = true
	}
	s := []string{"a", "b", "c", "d", "e"}
	Shuffle(r, s)
	if len(s) != 5 {
		t.Fatal("shuffle changed length")
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties, phases = 4, 10
	b := NewBarrier(parties)
	var counter atomic.Int64
	var lastArriver atomic.Int64
	var actionRuns atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				counter.Add(1)
				last := b.Await(func() {
					actionRuns.Add(1)
					// The action runs while every party is blocked: all
					// parties have arrived for phase ph.
					if got := counter.Load(); got != int64((ph+1)*parties) {
						t.Errorf("phase %d: counter %d", ph, got)
					}
				})
				if last {
					lastArriver.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if lastArriver.Load() != phases || actionRuns.Load() != phases {
		t.Fatalf("last-arriver %d, actions %d, want %d each",
			lastArriver.Load(), actionRuns.Load(), phases)
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewBarrier(0)
}

// fakeWorkload tracks harness behaviour.
type fakeWorkload struct {
	initCalls   atomic.Int64
	workerCalls atomic.Int64
	validated   atomic.Int64
	failInit    bool
	failWorker  bool
	failValid   bool
}

func (f *fakeWorkload) Name() string { return "fake" }
func (f *fakeWorkload) Init(th *stm.Thread) error {
	f.initCalls.Add(1)
	if f.failInit {
		return errors.New("init boom")
	}
	return nil
}
func (f *fakeWorkload) Worker(th *stm.Thread, id, n int) error {
	f.workerCalls.Add(1)
	if f.failWorker && id == 1 {
		return errors.New("worker boom")
	}
	v := stm.NewVar(0)
	return th.Atomically(func(tx *stm.Tx) error {
		v.Store(tx, id)
		return nil
	})
}
func (f *fakeWorkload) Validate() error {
	f.validated.Add(1)
	if f.failValid {
		return errors.New("validate boom")
	}
	return nil
}

func TestRunHarness(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2})
	defer sys.Close()

	w := &fakeWorkload{}
	res, err := Run(sys, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.initCalls.Load() != 1 || w.workerCalls.Load() != 3 || w.validated.Load() != 1 {
		t.Fatalf("calls: init=%d worker=%d valid=%d",
			w.initCalls.Load(), w.workerCalls.Load(), w.validated.Load())
	}
	if res.App != "fake" || res.Threads != 3 || res.Algo != "rinval-v2" {
		t.Fatalf("result %+v", res)
	}
	if res.Stats.Commits == 0 {
		t.Fatal("stats not collected")
	}

	if _, err := Run(sys, &fakeWorkload{failInit: true}, 2); err == nil {
		t.Fatal("init failure not propagated")
	}
	if _, err := Run(sys, &fakeWorkload{failWorker: true}, 2); err == nil {
		t.Fatal("worker failure not propagated")
	}
	if _, err := Run(sys, &fakeWorkload{failValid: true}, 2); err == nil {
		t.Fatal("validate failure not propagated")
	}
	if _, err := Run(sys, &fakeWorkload{}, 0); err == nil {
		t.Fatal("threads=0 accepted")
	}
}
