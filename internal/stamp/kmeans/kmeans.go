// Package kmeans ports STAMP's kmeans: iterative K-means clustering where
// point-to-centroid assignment is parallel, non-transactional floating-point
// work and the per-cluster accumulator updates are short, high-contention
// transactions. In the paper's characterization (Figure 3) kmeans spends a
// large fraction of its time in commit, which is why InvalSTM's serialized
// commit+invalidation hurts it and RInval recovers the loss (Figure 8a).
package kmeans

import (
	"fmt"
	"math"
	"sync"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

// Config sizes the workload.
type Config struct {
	Points     int    // number of input points
	Dims       int    // dimensionality
	Clusters   int    // K
	Iterations int    // fixed iteration count (STAMP uses a convergence bound)
	Seed       uint64 // input generation seed
}

// DefaultConfig is a laptop-scale instance preserving STAMP's shape
// (many points, few clusters => contended accumulators).
func DefaultConfig() Config {
	return Config{Points: 1024, Dims: 8, Clusters: 8, Iterations: 3, Seed: 1}
}

// acc is one cluster's accumulator for the current iteration: immutable
// snapshot semantics (transactions replace the whole value).
type acc struct {
	count int
	sum   []float64
}

// Bench is one kmeans instance. Single-use.
type Bench struct {
	cfg     Config
	points  [][]float64
	trueCtr [][]float64 // generation centers, for validation bounds

	centers [][]float64     // read non-transactionally; rewritten at barriers
	accs    []*stm.Var[acc] // transactional accumulators
	barrier *stamp.Barrier
	once    sync.Once

	lo, hi float64 // data bounding box for validation
}

// New generates the input deterministically from cfg.
func New(cfg Config) *Bench {
	r := stamp.NewRand(cfg.Seed, 0xbeef)
	b := &Bench{cfg: cfg, lo: math.Inf(1), hi: math.Inf(-1)}
	b.trueCtr = make([][]float64, cfg.Clusters)
	for c := range b.trueCtr {
		ctr := make([]float64, cfg.Dims)
		for d := range ctr {
			ctr[d] = 10 * r.Float64() * float64(c+1)
		}
		b.trueCtr[c] = ctr
	}
	b.points = make([][]float64, cfg.Points)
	for i := range b.points {
		c := b.trueCtr[r.Intn(cfg.Clusters)]
		p := make([]float64, cfg.Dims)
		for d := range p {
			p[d] = c[d] + (r.Float64() - 0.5) // tight noise: stable assignment
			b.lo = math.Min(b.lo, p[d])
			b.hi = math.Max(b.hi, p[d])
		}
		b.points[i] = p
	}
	return b
}

// Name implements stamp.Workload.
func (b *Bench) Name() string { return "kmeans" }

// Init seeds the centers with the first K points (standard Forgy start) and
// creates the accumulators.
func (b *Bench) Init(th *stm.Thread) error {
	if b.cfg.Clusters > b.cfg.Points {
		return fmt.Errorf("kmeans: more clusters than points")
	}
	b.centers = make([][]float64, b.cfg.Clusters)
	for c := range b.centers {
		b.centers[c] = append([]float64(nil), b.points[c]...)
	}
	b.accs = make([]*stm.Var[acc], b.cfg.Clusters)
	for c := range b.accs {
		b.accs[c] = stm.NewVar(acc{sum: make([]float64, b.cfg.Dims)})
	}
	return nil
}

// nearest returns the index of the center closest to p (squared distance).
func (b *Bench) nearest(p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, ctr := range b.centers {
		d := 0.0
		for i := range p {
			diff := p[i] - ctr[i]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Worker implements stamp.Workload: each iteration, assign my chunk of
// points (non-transactional math), fold each point into its cluster's
// accumulator (one short transaction per point), then synchronize; the last
// arriver recomputes the centers quiescently.
func (b *Bench) Worker(th *stm.Thread, id, n int) error {
	b.once.Do(func() { b.barrier = stamp.NewBarrier(n) })
	chunk := (len(b.points) + n - 1) / n
	lo := min(id*chunk, len(b.points))
	hi := min(lo+chunk, len(b.points))

	for iter := 0; iter < b.cfg.Iterations; iter++ {
		for _, p := range b.points[lo:hi] {
			c := b.nearest(p) // non-transactional work
			av := b.accs[c]
			if err := th.Atomically(func(tx *stm.Tx) error {
				cur := av.Load(tx)
				next := acc{count: cur.count + 1, sum: make([]float64, len(cur.sum))}
				for d := range cur.sum {
					next.sum[d] = cur.sum[d] + p[d]
				}
				av.Store(tx, next)
				return nil
			}); err != nil {
				return err
			}
		}
		last := iter == b.cfg.Iterations-1
		b.barrier.Await(func() {
			// All workers are blocked here: quiescent center update.
			for c, av := range b.accs {
				a := av.Peek()
				if a.count > 0 {
					ctr := make([]float64, b.cfg.Dims)
					for d := range ctr {
						ctr[d] = a.sum[d] / float64(a.count)
					}
					b.centers[c] = ctr
				}
				if !last {
					av.Set(acc{sum: make([]float64, b.cfg.Dims)})
				}
			}
		})
	}
	return nil
}

// Validate checks that the final iteration's membership accounts for every
// point exactly once and that every centroid lies inside the data bounding
// box, and cross-checks the result against a sequential reference run.
func (b *Bench) Validate() error {
	total := 0
	for _, av := range b.accs {
		total += av.Peek().count
	}
	if total != b.cfg.Points {
		return fmt.Errorf("kmeans: final membership %d != %d points", total, b.cfg.Points)
	}
	for c, ctr := range b.centers {
		for d, v := range ctr {
			if math.IsNaN(v) || v < b.lo-1e-9 || v > b.hi+1e-9 {
				return fmt.Errorf("kmeans: center %d dim %d = %v outside data range [%v,%v]", c, d, v, b.lo, b.hi)
			}
		}
	}
	ref := b.sequentialReference()
	for c := range ref {
		for d := range ref[c] {
			if diff := math.Abs(ref[c][d] - b.centers[c][d]); diff > 1e-6 {
				return fmt.Errorf("kmeans: center %d dim %d diverges from sequential reference by %v", c, d, diff)
			}
		}
	}
	return nil
}

// sequentialReference recomputes the same fixed-iteration Lloyd's algorithm
// without any STM involvement.
func (b *Bench) sequentialReference() [][]float64 {
	centers := make([][]float64, b.cfg.Clusters)
	for c := range centers {
		centers[c] = append([]float64(nil), b.points[c]...)
	}
	for iter := 0; iter < b.cfg.Iterations; iter++ {
		counts := make([]int, b.cfg.Clusters)
		sums := make([][]float64, b.cfg.Clusters)
		for c := range sums {
			sums[c] = make([]float64, b.cfg.Dims)
		}
		for _, p := range b.points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				d := 0.0
				for i := range p {
					diff := p[i] - ctr[i]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = c, d
				}
			}
			counts[best]++
			for i := range p {
				sums[best][i] += p[i]
			}
		}
		for c := range centers {
			if counts[c] > 0 {
				ctr := make([]float64, b.cfg.Dims)
				for d := range ctr {
					ctr[d] = sums[c][d] / float64(counts[c])
				}
				centers[c] = ctr
			}
		}
	}
	return centers
}
