package kmeans

import (
	"testing"

	"github.com/ssrg-vt/rinval/internal/stamp"
	"github.com/ssrg-vt/rinval/stm"
)

func smallConfig() Config {
	return Config{Points: 240, Dims: 4, Clusters: 5, Iterations: 3, Seed: 7}
}

func TestSequentialReferenceDeterministic(t *testing.T) {
	a := New(smallConfig()).sequentialReference()
	b := New(smallConfig()).sequentialReference()
	for c := range a {
		for d := range a[c] {
			if a[c][d] != b[c][d] {
				t.Fatal("reference not deterministic")
			}
		}
	}
}

func TestKmeansSingleThread(t *testing.T) {
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	res, err := stamp.Run(sys, New(smallConfig()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "kmeans" || res.Stats.Commits == 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestKmeansAllEnginesConcurrent(t *testing.T) {
	for _, algo := range stm.Algos {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			sys := stm.MustNew(stm.Config{Algo: algo, MaxThreads: 8, InvalServers: 2})
			defer sys.Close()
			if _, err := stamp.Run(sys, New(smallConfig()), 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKmeansUnevenChunks(t *testing.T) {
	// Points not divisible by workers: the last chunk is short; every point
	// must still be clustered exactly once (Validate checks membership).
	cfg := smallConfig()
	cfg.Points = 241
	sys := stm.MustNew(stm.Config{Algo: stm.RInvalV2, MaxThreads: 8, InvalServers: 2})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(cfg), 3); err != nil {
		t.Fatal(err)
	}
}

func TestKmeansMoreWorkersThanPoints(t *testing.T) {
	cfg := Config{Points: 6, Dims: 2, Clusters: 2, Iterations: 2, Seed: 3}
	sys := stm.MustNew(stm.Config{Algo: stm.InvalSTM, MaxThreads: 12})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(cfg), 8); err != nil {
		t.Fatal(err)
	}
}

func TestKmeansRejectsBadConfig(t *testing.T) {
	cfg := Config{Points: 2, Dims: 2, Clusters: 5, Iterations: 1, Seed: 1}
	sys := stm.MustNew(stm.Config{Algo: stm.NOrec, MaxThreads: 4})
	defer sys.Close()
	if _, err := stamp.Run(sys, New(cfg), 1); err == nil {
		t.Fatal("clusters > points accepted")
	}
}
