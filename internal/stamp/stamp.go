// Package stamp provides the shared infrastructure for the STAMP benchmark
// ports (Minh et al., IISWC 2008) used in the paper's Figures 3 and 8:
// deterministic pseudo-random generation, a cyclic barrier for phased
// workloads, and a harness that runs a workload across N worker goroutines
// on one stm.System and validates the result.
//
// The ports are self-contained Go reimplementations driving the same
// transactional patterns as the C originals (transaction lengths, read/write
// set shapes, contention, non-transactional fractions); inputs are generated
// deterministically from a seed so every engine processes the identical
// workload.
package stamp

import (
	"fmt"
	"sync"
	"time"

	"github.com/ssrg-vt/rinval/stm"
)

// Workload is one STAMP application instance: generated input plus the
// transactional state it populates. A Workload is single-use — create a
// fresh one per run.
type Workload interface {
	// Name returns the STAMP application name (e.g. "kmeans").
	Name() string
	// Init builds the initial shared state, running transactions on th.
	Init(th *stm.Thread) error
	// Worker executes worker id's share (of n workers total) to completion.
	// It is called concurrently, once per worker, each with its own thread.
	Worker(th *stm.Thread, id, n int) error
	// Validate checks the final state quiescently, after all workers return.
	Validate() error
}

// Result reports one workload execution.
type Result struct {
	App     string
	Algo    string
	Threads int
	Elapsed time.Duration // Worker phase only (Init excluded), as in STAMP
	Stats   stm.Stats
}

// Run initializes w, executes it on threads workers, validates, and reports.
func Run(sys *stm.System, w Workload, threads int) (Result, error) {
	res := Result{App: w.Name(), Algo: sys.Algo().String(), Threads: threads}
	if threads < 1 {
		return res, fmt.Errorf("stamp: threads %d < 1", threads)
	}
	initTh, err := sys.Register()
	if err != nil {
		return res, err
	}
	err = w.Init(initTh)
	initTh.Close()
	if err != nil {
		return res, fmt.Errorf("stamp %s init: %w", w.Name(), err)
	}

	errs := make([]error, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			th, err := sys.Register()
			if err != nil {
				errs[i] = err
				return
			}
			defer th.Close()
			errs[i] = w.Worker(th, i, threads)
		}()
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, e := range errs {
		if e != nil {
			return res, fmt.Errorf("stamp %s worker: %w", w.Name(), e)
		}
	}
	if err := w.Validate(); err != nil {
		return res, fmt.Errorf("stamp %s validate: %w", w.Name(), err)
	}
	res.Stats = sys.Stats()
	return res, nil
}

// Rand is a deterministic SplitMix64 PRNG. Each worker derives its own
// stream from (seed, worker id) so runs are reproducible regardless of
// scheduling.
type Rand struct {
	state uint64
}

// NewRand returns a generator for the given stream.
func NewRand(seed, stream uint64) *Rand {
	return &Rand{state: seed*0x9e3779b97f4a7c15 + stream*0xbf58476d1ce4e5b9 + 1}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stamp: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes s in place.
func Shuffle[T any](r *Rand, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Barrier is a reusable (cyclic) synchronization barrier for phased
// workloads (kmeans iterations). It blocks goroutines on a condition
// variable rather than spinning, so it is safe at GOMAXPROCS=1.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("stamp: barrier parties < 1")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Await blocks until all parties have called Await for the current phase.
// The last arriver first runs action (if non-nil) and only then releases the
// others: while action runs, every other party is blocked, so action may
// safely perform quiescent (non-transactional) maintenance of shared state —
// kmeans uses this to recompute centroids between iterations. Await returns
// true on exactly one participant per phase (the last arriver).
func (b *Barrier) Await(action func()) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		if action != nil {
			action()
		}
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return true
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	return false
}
