// Package padded provides cache-line-padded primitive cells.
//
// The RInval protocol replaces spinning on shared locks with spinning on
// per-thread mailboxes. For that substitution to pay off, every mailbox field
// that a client spins on must live on its own cache line, so that a server's
// store to one client's slot does not invalidate the line another client is
// spinning on. The types here wrap the sync/atomic primitives with enough
// padding to guarantee exclusive cache-line residency regardless of how the
// enclosing struct packs them.
package padded

import "sync/atomic"

// CacheLineSize is the assumed coherency granule in bytes. 64 is correct for
// every x86-64 and most ARM server parts; on machines with 128-byte lines
// (e.g. Apple M-series E-cores pairs) padding to 64 still removes the worst
// false sharing and only halves the safety margin.
const CacheLineSize = 64

// Every cell type below follows the same layout contract, machine-checked by
// stmlint's padding check and the size table in sizeof_test.go:
//
//   - the leading pad is CacheLineSize - sizeof(payload), so that at any
//     allocation alignment (the payload's own alignment quantizes where line
//     boundaries can fall) no mutable neighbor before the cell shares the
//     payload's line;
//   - the trailing pad is a full CacheLineSize, which both isolates the
//     payload from following neighbors and rounds the cell to a whole number
//     of cache lines, so arrays of cells (and per-slot structs embedding
//     them) keep successive payloads on distinct lines.

// Uint64 is an atomic uint64 alone on its cache line.
type Uint64 struct {
	_ [CacheLineSize - 8]byte
	v atomic.Uint64
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *Uint64) Load() uint64 { return p.v.Load() }

// Store atomically stores val.
func (p *Uint64) Store(val uint64) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *Uint64) Add(delta uint64) uint64 { return p.v.Add(delta) }

// CompareAndSwap executes the compare-and-swap for the cell.
func (p *Uint64) CompareAndSwap(old, new uint64) bool { return p.v.CompareAndSwap(old, new) }

// Or atomically ORs mask into the value and returns the old value.
func (p *Uint64) Or(mask uint64) uint64 { return p.v.Or(mask) }

// And atomically ANDs the value with mask and returns the old value.
func (p *Uint64) And(mask uint64) uint64 { return p.v.And(mask) }

// Uint32 is an atomic uint32 alone on its cache line.
type Uint32 struct {
	_ [CacheLineSize - 4]byte
	v atomic.Uint32
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *Uint32) Load() uint32 { return p.v.Load() }

// Store atomically stores val.
func (p *Uint32) Store(val uint32) { p.v.Store(val) }

// Add atomically adds delta and returns the new value.
func (p *Uint32) Add(delta uint32) uint32 { return p.v.Add(delta) }

// CompareAndSwap executes the compare-and-swap for the cell.
func (p *Uint32) CompareAndSwap(old, new uint32) bool { return p.v.CompareAndSwap(old, new) }

// Bool is an atomic boolean alone on its cache line.
type Bool struct {
	_ [CacheLineSize - 4]byte
	v atomic.Uint32
	_ [CacheLineSize]byte
}

// Load atomically loads the value.
func (p *Bool) Load() bool { return p.v.Load() != 0 }

// Store atomically stores val.
func (p *Bool) Store(val bool) {
	if val {
		p.v.Store(1)
	} else {
		p.v.Store(0)
	}
}

// Pointer is an atomic pointer to T alone on its cache line.
type Pointer[T any] struct {
	_ [CacheLineSize - 8]byte
	v atomic.Pointer[T]
	_ [CacheLineSize]byte
}

// Load atomically loads the pointer.
func (p *Pointer[T]) Load() *T { return p.v.Load() }

// Store atomically stores ptr.
func (p *Pointer[T]) Store(ptr *T) { p.v.Store(ptr) }

// Swap atomically swaps in ptr and returns the previous pointer.
func (p *Pointer[T]) Swap(ptr *T) *T { return p.v.Swap(ptr) }

// CompareAndSwap executes the compare-and-swap for the cell.
func (p *Pointer[T]) CompareAndSwap(old, new *T) bool { return p.v.CompareAndSwap(old, new) }
