package padded

import (
	"testing"
	"unsafe"
)

// Compile-time layout assertions: a negative array length is a compile
// error, so these declarations fail the build (not just the test run) the
// moment a cell stops filling a whole number of cache lines or its payload
// drifts off the intended offset. The runtime table below repeats the checks
// with readable failure messages.
const (
	_uint64Cells  = unsafe.Sizeof(Uint64{}) / CacheLineSize
	_uint32Cells  = unsafe.Sizeof(Uint32{}) / CacheLineSize
	_boolCells    = unsafe.Sizeof(Bool{}) / CacheLineSize
	_pointerCells = unsafe.Sizeof(Pointer[int]{}) / CacheLineSize
)

var (
	_ [unsafe.Sizeof(Uint64{}) % CacheLineSize]struct{}       = [0]struct{}{}
	_ [unsafe.Sizeof(Uint32{}) % CacheLineSize]struct{}       = [0]struct{}{}
	_ [unsafe.Sizeof(Bool{}) % CacheLineSize]struct{}         = [0]struct{}{}
	_ [unsafe.Sizeof(Pointer[int]{}) % CacheLineSize]struct{} = [0]struct{}{}
)

// TestCellSizes pins the exact layout contract of every padded cell: the
// whole cell is a multiple of CacheLineSize, and the payload begins exactly
// one line into the cell (lead pad = CacheLineSize - sizeof(payload)), so
// that no allocation alignment can place a mutable neighbor on the payload's
// line in either direction.
func TestCellSizes(t *testing.T) {
	var (
		u64 Uint64
		u32 Uint32
		b   Bool
		p   Pointer[int]
	)
	cases := []struct {
		name        string
		size        uintptr
		payloadOff  uintptr
		payloadSize uintptr
	}{
		{"Uint64", unsafe.Sizeof(u64), unsafe.Offsetof(u64.v), unsafe.Sizeof(u64.v)},
		{"Uint32", unsafe.Sizeof(u32), unsafe.Offsetof(u32.v), unsafe.Sizeof(u32.v)},
		{"Bool", unsafe.Sizeof(b), unsafe.Offsetof(b.v), unsafe.Sizeof(b.v)},
		{"Pointer[int]", unsafe.Sizeof(p), unsafe.Offsetof(p.v), unsafe.Sizeof(p.v)},
	}
	for _, c := range cases {
		if c.size%CacheLineSize != 0 {
			t.Errorf("%s: size %d is not a multiple of the %d-byte cache line", c.name, c.size, CacheLineSize)
		}
		if c.size != 2*CacheLineSize {
			t.Errorf("%s: size %d, want exactly two cache lines (%d)", c.name, c.size, 2*CacheLineSize)
		}
		if want := uintptr(CacheLineSize) - c.payloadSize; c.payloadOff != want {
			t.Errorf("%s: payload at offset %d, want %d (lead pad = line - sizeof(payload))", c.name, c.payloadOff, want)
		}
		if c.payloadOff+c.payloadSize != CacheLineSize {
			t.Errorf("%s: payload ends at %d, want it flush against the first line boundary (%d)",
				c.name, c.payloadOff+c.payloadSize, CacheLineSize)
		}
	}
}

// TestArrayElementIsolation checks the property the trailing pad buys:
// consecutive cells in an array keep their payloads at least a full cache
// line apart, so a server storing into one slot's cell never invalidates the
// line a neighbor spins on.
func TestArrayElementIsolation(t *testing.T) {
	var arr [2]Uint32
	d := uintptr(unsafe.Pointer(&arr[1].v)) - uintptr(unsafe.Pointer(&arr[0].v))
	if d < CacheLineSize {
		t.Fatalf("adjacent payloads %d bytes apart, want >= %d", d, CacheLineSize)
	}
	if d%CacheLineSize != 0 {
		t.Fatalf("payload stride %d is not line-aligned", d)
	}
}
