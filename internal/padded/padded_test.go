package padded

import (
	"sync"
	"testing"
	"unsafe"
)

// The layout contract itself (exact sizes and payload offsets) is pinned in
// sizeof_test.go; the tests here cover the cells' atomic operations.

func TestHotWordsOnDistinctLines(t *testing.T) {
	var arr [4]Uint64
	for i := 0; i < 3; i++ {
		a := uintptr(unsafe.Pointer(&arr[i].v))
		b := uintptr(unsafe.Pointer(&arr[i+1].v))
		if b-a < CacheLineSize {
			t.Errorf("adjacent hot words %d apart, want >= %d", b-a, CacheLineSize)
		}
	}
}

func TestUint64Ops(t *testing.T) {
	var c Uint64
	if c.Load() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Store(41)
	if got := c.Add(1); got != 42 {
		t.Fatalf("Add: got %d want 42", got)
	}
	if !c.CompareAndSwap(42, 7) {
		t.Fatal("CAS(42,7) failed")
	}
	if c.CompareAndSwap(42, 9) {
		t.Fatal("CAS(42,9) succeeded on stale expectation")
	}
	if c.Load() != 7 {
		t.Fatalf("final value %d want 7", c.Load())
	}
}

func TestUint32Ops(t *testing.T) {
	var c Uint32
	c.Store(1)
	if got := c.Add(2); got != 3 {
		t.Fatalf("Add: got %d want 3", got)
	}
	if !c.CompareAndSwap(3, 5) || c.Load() != 5 {
		t.Fatal("CAS path broken")
	}
}

func TestBool(t *testing.T) {
	var b Bool
	if b.Load() {
		t.Fatal("zero value true")
	}
	b.Store(true)
	if !b.Load() {
		t.Fatal("Store(true) lost")
	}
	b.Store(false)
	if b.Load() {
		t.Fatal("Store(false) lost")
	}
}

func TestPointer(t *testing.T) {
	var p Pointer[int]
	x, y := 1, 2
	if p.Load() != nil {
		t.Fatal("zero value non-nil")
	}
	p.Store(&x)
	if p.Load() != &x {
		t.Fatal("Store lost")
	}
	if old := p.Swap(&y); old != &x {
		t.Fatal("Swap returned wrong old pointer")
	}
	if !p.CompareAndSwap(&y, nil) || p.Load() != nil {
		t.Fatal("CAS path broken")
	}
}

func TestUint64ConcurrentAdd(t *testing.T) {
	var c Uint64
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("lost updates: got %d want %d", c.Load(), workers*per)
	}
}
