// Package obs is the low-overhead observability substrate for the STM
// engines: per-actor, cache-padded, fixed-capacity event ring buffers that
// record transaction lifecycle events with nanosecond timestamps and zero
// allocation on the hot path, plus exporters that turn the rings into a
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing) or an
// aligned text summary.
//
// The package is deliberately engine-agnostic: it defines the event
// vocabulary (Kind), the abort taxonomy (AbortReason), and the recording
// machinery; internal/core decides where the events come from. Tracing is an
// opt-in (core's Config.Trace); when off, every recording call is made on a
// nil *Ring and compiles down to an inlined nil check — no clock read, no
// store, no branch misprediction on the transaction hot path.
//
// Concurrency model: each Ring has exactly one writer (the client thread or
// server goroutine it belongs to) storing flat uint64 words with
// single-writer atomics. The exporters read exact contents after the
// writers quiesce (post System.Close); the flight recorder may Snapshot a
// live ring at any time — concurrent snapshots can tear across an event but
// never race.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ssrg-vt/rinval/internal/padded"
)

// AbortReason classifies why a transaction attempt did not commit. The first
// NumConflictReasons values are conflict aborts and sum to the engines'
// Aborts counter; AbortExplicit counts user aborts (the transaction function
// returned an error), which the engines track separately.
type AbortReason uint8

const (
	// AbortInvalidated: doomed by a committer's invalidation pass (the
	// INVALIDATED status flag was observed on a read or at commit request).
	AbortInvalidated AbortReason = iota
	// AbortValidation: a value- or version-based validation failed (NOrec
	// read-set revalidation, TL2 version check).
	AbortValidation
	// AbortSelf: a CMReaderBiased writer aborted itself to spare readers.
	AbortSelf
	// AbortLocked: a per-location lock could not be acquired in time (TL2
	// bounded lock spinning, on read or at commit).
	AbortLocked
	// NumConflictReasons bounds the conflict-abort reasons above.
	NumConflictReasons
	// AbortExplicit: the user function returned an error (not a conflict;
	// excluded from the Aborts counter).
	AbortExplicit = NumConflictReasons
	// NumAbortReasons bounds the whole taxonomy, for counter arrays.
	NumAbortReasons = AbortExplicit + 1
)

// String returns the stable lowercase reason name used in exports.
func (r AbortReason) String() string {
	switch r {
	case AbortInvalidated:
		return "invalidated"
	case AbortValidation:
		return "validation"
	case AbortSelf:
		return "self"
	case AbortLocked:
		return "locked"
	case AbortExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// AbortReasons lists the full taxonomy in counter-array order.
var AbortReasons = []AbortReason{
	AbortInvalidated, AbortValidation, AbortSelf, AbortLocked, AbortExplicit,
}

// Kind identifies a lifecycle event. Span kinds carry a duration; instant
// kinds mark a point; counter kinds carry a sampled value in Arg.
type Kind uint8

const (
	// KBegin (instant, client): a transaction attempt started. Arg = 1-based
	// attempt number.
	KBegin Kind = iota
	// KTx (span, client): one whole transaction attempt, begin to outcome.
	// Arg = Outcome* code.
	KTx
	// KReadWait (span, client): a read blocked — odd global timestamp,
	// invalidation-server lag, or a held TL2 lock. Arg = Var id.
	KReadWait
	// KValidate (span, client): a NOrec full read-set revalidation. Arg =
	// read-set entries compared.
	KValidate
	// KCommitReq (instant, client): a commit request was published to the
	// commit-server's requests array.
	KCommitReq
	// KCommit (span, client): the commit routine — inline critical section
	// or the full server round trip.
	KCommit
	// KAbort (instant, client): a conflict or user abort. Arg = AbortReason.
	KAbort
	// KEpoch (span, commit-server): one group-commit epoch. Arg = batch size.
	KEpoch
	// KScan (span, commit-server): the batch-collection scan over the
	// requests array. Arg = pending requests observed.
	KScan
	// KInvalWait (span, commit-server): waiting for invalidation-servers to
	// come within the lag budget (V2/V3), or the inline invalidation scan
	// (V1). Arg = transactions doomed (V1 only).
	KInvalWait
	// KWriteBack (span, commit-server): publishing the batch's write sets.
	KWriteBack
	// KReply (span, commit-server): replying COMMITTED to the batch members.
	KReply
	// KInvalScan (span, invalidation-server): processing one commit
	// descriptor against this server's partition. Arg = transactions doomed.
	KInvalScan
	// KInval (instant, any invalidator): one victim doomed. Arg = victim
	// slot index.
	KInval
	// KQueueDepth (counter, commit-server): pending commit requests observed
	// by an epoch's collection scan. Arg = depth.
	KQueueDepth
	// KStepAhead (counter, commit-server): commits the V3 server is running
	// ahead of the slowest invalidation-server. Arg = occupancy.
	KStepAhead
	numKinds
)

// Outcome codes carried in a KTx span's Arg.
const (
	OutcomeCommit    uint64 = 0 // the attempt committed
	OutcomeAbort     uint64 = 1 // conflict abort; the KAbort instant has the reason
	OutcomeUserAbort uint64 = 2 // the user function returned an error
)

// String returns the event name used as the Chrome trace event name.
func (k Kind) String() string {
	switch k {
	case KBegin:
		return "begin"
	case KTx:
		return "tx"
	case KReadWait:
		return "read-wait"
	case KValidate:
		return "validate"
	case KCommitReq:
		return "commit-request"
	case KCommit:
		return "commit"
	case KAbort:
		return "abort"
	case KEpoch:
		return "epoch"
	case KScan:
		return "scan"
	case KInvalWait:
		return "inval-wait"
	case KWriteBack:
		return "write-back"
	case KReply:
		return "reply"
	case KInvalScan:
		return "inval-scan"
	case KInval:
		return "invalidate"
	case KQueueDepth:
		return "queue-depth"
	case KStepAhead:
		return "step-ahead"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// isCounter reports whether k exports as a Chrome counter ("C") event.
func (k Kind) isCounter() bool { return k == KQueueDepth || k == KStepAhead }

// base is the package-wide time origin: every event timestamp is nanoseconds
// since process start, so rings created at different times share one axis.
var base = time.Now()

// Now returns the current trace timestamp (nanoseconds since process start,
// monotonic). Safe to call from any goroutine; costs one clock read.
//
//stmlint:ignore hot-path-deep Now IS the trace clock; hot callers reach it only behind the attribution/tracing enable gates
func Now() int64 { return int64(time.Since(base)) }

// Event is one recorded lifecycle event. 32 bytes, so a default-capacity
// ring is 128 KiB and Record touches a single cache line most of the time.
type Event struct {
	TS   int64  // start time, ns since process start
	Dur  int64  // span duration in ns; 0 for instants and counters
	Kind Kind   // what happened
	Arg  uint64 // kind-specific payload (reason, batch size, victim, ...)
}

// Ring is a fixed-capacity single-writer event buffer. Once full it
// overwrites oldest-first, so a long run keeps the most recent window — the
// part a trace viewer is usually pointed at. All recording methods are
// nil-receiver-safe no-ops, which is how disabled tracing costs nothing:
// the caller holds a nil *Ring and the calls vanish into a nil check.
//
// Storage is flat uint64 words (eventWords per event) written with
// single-writer atomics, so the flight recorder may Snapshot a ring while
// its owner is mid-transaction: a concurrent snapshot can tear across
// events (an old event half-overwritten by a new one) but never races. The
// post-Close exporters still see exact contents, as before.
type Ring struct {
	_     [padded.CacheLineSize]byte
	pos   uint64 // total events ever written; head = pos mod cap
	mask  uint64 // capacity-1 (capacity is a power of two)
	words []uint64
	_     [padded.CacheLineSize]byte
}

// eventWords is the flat-storage footprint of one Event: TS, Dur, Kind, Arg.
const eventWords = 4

// newRing returns a ring holding the capacity rounded up to a power of two.
func newRing(capacity int) *Ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), words: make([]uint64, n*eventWords)}
}

// cap returns the ring's event capacity.
func (r *Ring) capacity() uint64 { return r.mask + 1 }

// eventAt loads the event stored at absolute position p (mod capacity).
func (r *Ring) eventAt(p uint64) Event {
	i := (p & r.mask) * eventWords
	return Event{
		TS:   int64(atomic.LoadUint64(&r.words[i])),
		Dur:  int64(atomic.LoadUint64(&r.words[i+1])),
		Kind: Kind(atomic.LoadUint64(&r.words[i+2])),
		Arg:  atomic.LoadUint64(&r.words[i+3]),
	}
}

// Now returns the current trace timestamp, or 0 on a nil ring — so span
// starts can be captured unconditionally without a clock read when tracing
// is off.
func (r *Ring) Now() int64 {
	if r == nil {
		return 0
	}
	return Now()
}

// record appends one event. Zero allocation: the words slice is
// preallocated and the writes are in-place atomic stores (single writer, so
// plain atomic stores suffice — no CAS). pos is bumped last so a concurrent
// snapshot that observes the new position also observes the event's words.
func (r *Ring) record(ts, dur int64, k Kind, arg uint64) {
	p := atomic.LoadUint64(&r.pos)
	i := (p & r.mask) * eventWords
	atomic.StoreUint64(&r.words[i], uint64(ts))
	atomic.StoreUint64(&r.words[i+1], uint64(dur))
	atomic.StoreUint64(&r.words[i+2], uint64(k))
	atomic.StoreUint64(&r.words[i+3], arg)
	atomic.StoreUint64(&r.pos, p+1)
}

// Instant records a point event at the current time.
func (r *Ring) Instant(k Kind, arg uint64) {
	if r == nil {
		return
	}
	r.record(Now(), 0, k, arg)
}

// InstantAt records a point event at ts (a value from Now) — for call sites
// that already read the clock.
func (r *Ring) InstantAt(k Kind, ts int64, arg uint64) {
	if r == nil {
		return
	}
	r.record(ts, 0, k, arg)
}

// Span records a duration event that started at start (a value from Now)
// and ends now.
func (r *Ring) Span(k Kind, start int64, arg uint64) {
	if r == nil {
		return
	}
	r.record(start, Now()-start, k, arg)
}

// SpanAt records a duration event with explicit bounds — for call sites
// that already read the clock for phase histograms.
func (r *Ring) SpanAt(k Kind, start, end int64, arg uint64) {
	if r == nil {
		return
	}
	r.record(start, end-start, k, arg)
}

// Counter records a sampled value at the current time.
func (r *Ring) Counter(k Kind, val uint64) {
	if r == nil {
		return
	}
	r.record(Now(), 0, k, val)
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if pos := atomic.LoadUint64(&r.pos); pos < r.capacity() {
		return int(pos)
	}
	return int(r.capacity())
}

// Dropped returns how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if pos := atomic.LoadUint64(&r.pos); pos >= r.capacity() {
		return pos - r.capacity()
	}
	return 0
}

// Snapshot returns the retained events oldest-first. Safe to call while the
// writer runs (the flight recorder does): events written concurrently may
// appear torn or be missed, but the read is race-free; after the writer
// quiesces the snapshot is exact.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	pos := atomic.LoadUint64(&r.pos)
	n := pos
	if n > r.capacity() {
		n = r.capacity()
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := pos - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.eventAt(start+i))
	}
	return out
}

// DefaultRingEvents is the per-actor ring capacity used when the
// configuration leaves it unset.
const DefaultRingEvents = 4096

// Tracer owns one ring per actor (client thread, commit-server,
// invalidation-server). Actors are registered up front by the System; the
// recording hot path never touches the Tracer, only its rings.
type Tracer struct {
	perActor int
	names    []string
	rings    []*Ring
}

// NewTracer returns a tracer whose actors each get a ring of eventsPerActor
// capacity (rounded up to a power of two; DefaultRingEvents when <= 0).
func NewTracer(eventsPerActor int) *Tracer {
	if eventsPerActor <= 0 {
		eventsPerActor = DefaultRingEvents
	}
	return &Tracer{perActor: eventsPerActor}
}

// AddActor registers a named track and returns its ring. Not safe for
// concurrent use; call during System construction only.
func (t *Tracer) AddActor(name string) *Ring {
	r := newRing(t.perActor)
	t.names = append(t.names, name)
	t.rings = append(t.rings, r)
	return r
}

// Actors returns the number of registered tracks.
func (t *Tracer) Actors() int { return len(t.rings) }

// ActorName returns track i's name.
func (t *Tracer) ActorName(i int) string { return t.names[i] }

// Ring returns track i's ring.
func (t *Tracer) Ring(i int) *Ring { return t.rings[i] }

// Events returns the total events retained across all rings.
func (t *Tracer) Events() int {
	n := 0
	for _, r := range t.rings {
		n += r.Len()
	}
	return n
}
