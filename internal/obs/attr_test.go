package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestNilAttributionIsNoOp(t *testing.T) {
	var a *Attribution
	// None of these may panic or record anything.
	a.RecordAbort(0, 0, AbortInvalidated, 100, 5)
	a.RecordAbort(a.Unknown(), 3, AbortValidation, 1, 1)
	a.OfferVar(2, 42)
	a.RecordFPCheck(1, true)
	rep := a.Report(ReportMeta{Commits: 7})
	if rep.Enabled {
		t.Fatal("nil attribution reported Enabled")
	}
	if rep.Commits != 7 {
		t.Fatalf("Commits = %d, want 7 (meta passthrough)", rep.Commits)
	}
	if rep.Matrix != nil || rep.HotVars != nil {
		t.Fatal("nil attribution reported contents")
	}
}

func TestConflictMatrixRecordAndSnapshot(t *testing.T) {
	m := NewConflictMatrix(4)
	if m.Unknown() != 4 {
		t.Fatalf("Unknown() = %d, want 4", m.Unknown())
	}
	m.Record(1, 0) // committer 1 doomed victim 0
	m.Record(1, 0)
	m.Record(3, 2)
	m.Record(m.Unknown(), 2)
	snap := m.Snapshot()
	if len(snap) != 5 || len(snap[0]) != 4 {
		t.Fatalf("snapshot dims %dx%d, want 5x4", len(snap), len(snap[0]))
	}
	want := map[[2]int]uint64{{1, 0}: 2, {3, 2}: 1, {4, 2}: 1}
	for c := range snap {
		for v := range snap[c] {
			if snap[c][v] != want[[2]int{c, v}] {
				t.Errorf("matrix[%d][%d] = %d, want %d", c, v, snap[c][v], want[[2]int{c, v}])
			}
		}
	}
}

func TestConflictMatrixRowsAreCacheLinePadded(t *testing.T) {
	m := NewConflictMatrix(3)
	if m.stride%8 != 0 {
		t.Fatalf("stride %d words is not a cache-line multiple", m.stride)
	}
	if m.stride < 4 {
		t.Fatalf("stride %d words cannot hold %d committers", m.stride, 4)
	}
}

func TestReservoirSmallSampleIsExact(t *testing.T) {
	r := newReservoir(8, 1)
	for i := uint64(0); i < 5; i++ {
		r.Offer(i * 10)
	}
	got := r.sample(nil)
	if len(got) != 5 {
		t.Fatalf("retained %d, want 5", len(got))
	}
	for i, id := range got {
		if id != uint64(i*10) {
			t.Fatalf("sample[%d] = %d", i, id)
		}
	}
}

func TestReservoirIsUniformish(t *testing.T) {
	// Offer ids 0..999 into a 100-slot reservoir; every retained id must be
	// in range and the sample must not be just the first 100 (proof that
	// replacement happens) nor have duplicates beyond what offers contained.
	r := newReservoir(100, 42)
	for i := uint64(0); i < 1000; i++ {
		r.Offer(i)
	}
	got := r.sample(nil)
	if len(got) != 100 {
		t.Fatalf("retained %d, want 100", len(got))
	}
	beyond := 0
	for _, id := range got {
		if id >= 1000 {
			t.Fatalf("sampled id %d never offered", id)
		}
		if id >= 100 {
			beyond++
		}
	}
	if beyond == 0 {
		t.Fatal("reservoir never replaced an initial element over 1000 offers")
	}
}

func TestAttributionReportInvariants(t *testing.T) {
	a := NewAttribution(2, 16, 1)
	a.RecordAbort(1, 0, AbortInvalidated, 100, 3) // real committer
	a.RecordAbort(0, 1, AbortInvalidated, 200, 4)
	a.RecordAbort(a.Unknown(), 0, AbortValidation, 50, 2) // unknown row
	a.OfferVar(0, 7)
	a.OfferVar(0, 7)
	a.OfferVar(1, 9)
	a.RecordFPCheck(0, true)
	a.RecordFPCheck(1, false)

	var meta ReportMeta
	meta.Commits = 10
	meta.Aborts = 3
	meta.AbortReasons[AbortInvalidated] = 2
	meta.AbortReasons[AbortValidation] = 1
	meta.FilterBits = 1024
	meta.TopK = 4
	meta.NameOf = func(id uint64) string {
		if id == 7 {
			return "counter"
		}
		return ""
	}
	rep := a.Report(meta)

	if !rep.Enabled || rep.Slots != 2 {
		t.Fatalf("Enabled=%v Slots=%d", rep.Enabled, rep.Slots)
	}
	if rep.InvalidationAborts != 2 {
		t.Fatalf("InvalidationAborts = %d, want 2 (validation abort must not enter the matrix)", rep.InvalidationAborts)
	}
	if rep.InvalidationAborts != meta.AbortReasons[AbortInvalidated] {
		t.Fatal("matrix real-row sum does not match taxonomy invalidation count")
	}
	if rep.WastedNs["invalidated"] != 300 || rep.WastedNs["validation"] != 50 {
		t.Fatalf("WastedNs = %v", rep.WastedNs)
	}
	if rep.WastedOps["invalidated"] != 7 || rep.WastedOps["validation"] != 2 {
		t.Fatalf("WastedOps = %v", rep.WastedOps)
	}
	if rep.FP.Sampled != 2 || rep.FP.FalsePositive != 1 || rep.FP.Rate != 0.5 {
		t.Fatalf("FP = %+v", rep.FP)
	}
	if rep.HotVarSamples != 3 || len(rep.HotVars) != 2 {
		t.Fatalf("HotVars = %+v (samples %d)", rep.HotVars, rep.HotVarSamples)
	}
	if rep.HotVars[0].ID != 7 || rep.HotVars[0].Samples != 2 || rep.HotVars[0].Name != "counter" {
		t.Fatalf("top hot var %+v", rep.HotVars[0])
	}
	if got := rep.TopKShare(1); got < 0.66 || got > 0.67 {
		t.Fatalf("TopKShare(1) = %v, want 2/3", got)
	}

	// The report must round-trip through JSON (it is served by expvar).
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ConflictReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.InvalidationAborts != rep.InvalidationAborts || back.FP != rep.FP {
		t.Fatal("report did not survive a JSON round trip")
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	a := NewAttribution(2, 16, 1)
	a.RecordAbort(1, 0, AbortInvalidated, 100, 3)
	a.RecordAbort(a.Unknown(), 1, AbortInvalidated, 10, 1) // killer lost: unknown row
	a.OfferVar(0, 5)
	a.RecordFPCheck(0, false)
	var meta ReportMeta
	meta.Commits = 4
	meta.AbortReasons[AbortInvalidated] = 2
	meta.FilterBits = 1024
	rep := a.Report(meta)

	var sb strings.Builder
	rep.WriteOpenMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE stm_commits counter",
		"stm_commits_total 4",
		`stm_aborts_total{reason="invalidated"} 2`,
		"stm_attribution_enabled 1",
		`stm_conflicts_total{committer="1",victim="0"} 1`,
		`stm_conflicts_total{committer="unknown",victim="1"} 1`,
		"stm_bloom_fp_checks_total 1",
		`stm_bloom_fp_total{filter_bits="1024"} 0`,
		`stm_wasted_ns_total{reason="invalidated"} 110`,
		`stm_hot_var_samples{var="var-5"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be name{labels} value — a cheap validity
	// check for the text format.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed metric line %q", line)
		}
	}
}

// TestPublishReplacesSource is the regression test for the stale-System bug:
// before the indirection fix, the first Publish under a name kept serving its
// snapshot forever, so every System after the first was invisible on
// /debug/vars.
func TestPublishReplacesSource(t *testing.T) {
	Publish("obs-replace-test", func() any { return "first" })
	Publish("obs-replace-test", func() any { return "second" })
	v := expvar.Get("obs-replace-test")
	if v == nil {
		t.Fatal("name not registered")
	}
	if got := v.String(); got != `"second"` {
		t.Fatalf("expvar serves %s, want \"second\" (stale snapshot bug)", got)
	}
}

func TestServeMetricsOpenMetricsEndpoint(t *testing.T) {
	a := NewAttribution(2, 16, 1)
	a.RecordAbort(0, 1, AbortInvalidated, 10, 1)
	PublishOpenMetrics(func() MetricsPage {
		var meta ReportMeta
		meta.Commits = 1
		meta.AbortReasons[AbortInvalidated] = 1
		return MetricsPage{Conflict: a.Report(meta)}
	})
	addr, shutdown, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"stm_commits_total 1",
		`stm_conflicts_total{committer="0",victim="1"} 1`,
		"# EOF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "# EOF") {
		t.Error("/metrics exposition does not end with # EOF")
	}
}

// BenchmarkAttributionOverhead compares the record sequence one conflict
// abort executes (wasted-work + matrix + hot-var offer) against the same
// sequence on a nil *Attribution, which is what Config.Attribution=false
// executes. The nil case must be within noise of free (≤2 ns/op, 0 allocs).
func BenchmarkAttributionOverhead(b *testing.B) {
	abort := func(a *Attribution, i int) {
		a.RecordAbort(1, 0, AbortInvalidated, uint64(i), 4)
		a.OfferVar(0, uint64(i))
	}
	b.Run("disabled", func(b *testing.B) {
		var a *Attribution
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			abort(a, i)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		a := NewAttribution(8, reservoirCap, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			abort(a, i)
		}
	})
}
