package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestLatencyRecorderNilSafe(t *testing.T) {
	var l *LatencyRecorder
	if l.Client(0) != nil || l.Server(0) != nil || l.SampleEvery() != 0 {
		t.Fatal("nil recorder not inert")
	}
	var c *LatCell
	if c.Sample() {
		t.Fatal("nil cell samples")
	}
	c.Record(LatApp, 10) // must not panic
	rep := l.Report()
	if rep.Enabled || len(rep.Client) != 0 {
		t.Fatalf("nil report %+v", rep)
	}
}

func TestLatencySampling(t *testing.T) {
	l := NewLatencyRecorder(1, 0, 4)
	c := l.Client(0)
	n := 0
	for i := 0; i < 100; i++ {
		if c.Sample() {
			n++
		}
	}
	if n != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4", n)
	}
	if every := NewLatencyRecorder(1, 1, 0).Client(0).every; every != 1 {
		t.Fatalf("sampleEvery floor broken: %d", every)
	}
}

func TestLatencyReportMerges(t *testing.T) {
	l := NewLatencyRecorder(3, 2, 1)
	for i := 0; i < 3; i++ {
		c := l.Client(i)
		c.Record(LatApp, int64(100*(i+1)))
		c.Record(LatRetry, 0)
		c.Record(LatCommitWait, 50)
		c.Record(LatTotal, int64(100*(i+1))+50)
	}
	l.Server(0).Record(LatCollect, 10)
	l.Server(1).Record(LatCollect, 30)
	l.Server(1).Record(LatReply, 5)
	rep := l.Report()
	if !rep.Enabled || rep.SampleEvery != 1 {
		t.Fatalf("header %+v", rep)
	}
	if rep.SampledCommits != 3 {
		t.Fatalf("sampled commits %d", rep.SampledCommits)
	}
	byName := map[string]LatencyPhase{}
	for _, p := range append(append([]LatencyPhase{}, rep.Client...), rep.Server...) {
		byName[p.Phase] = p
	}
	if byName["app"].Count != 3 || byName["app"].MaxNs != 300 {
		t.Fatalf("app phase %+v", byName["app"])
	}
	if byName["collect"].Count != 2 || byName["collect"].SumNs != 40 {
		t.Fatalf("collect phase %+v", byName["collect"])
	}
	if _, ok := byName["lock-wait"]; ok {
		t.Fatal("empty cross-shard phase should be elided")
	}
	// Negative durations clamp rather than corrupt the histogram.
	l.Client(0).Record(LatApp, -5)
	if h := l.ClientPhaseHistogram(LatApp); h.Count() != 4 || h.Min() != 0 {
		t.Fatalf("negative clamp: %s", h.String())
	}
}

// TestLatencyReportConcurrent hammers cells from their owners while Report
// runs — the race detector is the assertion.
func TestLatencyReportConcurrent(t *testing.T) {
	l := NewLatencyRecorder(4, 2, 2)
	var clients, reporter sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func(c *LatCell) {
			defer clients.Done()
			for j := 0; j < 50000; j++ {
				if c.Sample() {
					c.Record(LatApp, int64(j))
					c.Record(LatTotal, int64(j)+10)
				}
			}
		}(l.Client(i))
	}
	reporter.Add(1)
	go func() {
		defer reporter.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rep := l.Report()
			for _, p := range rep.Client {
				if p.Count > 0 && p.P99 < p.P50 {
					t.Errorf("phase %s: p99 %d < p50 %d", p.Phase, p.P99, p.P50)
					return
				}
			}
		}
	}()
	clients.Wait()
	close(stop)
	reporter.Wait()
	rep := l.Report()
	if rep.SampledCommits != 4*25000 {
		t.Fatalf("sampled commits %d", rep.SampledCommits)
	}
}

func TestWriteOpenMetricsHistogramCumulative(t *testing.T) {
	l := NewLatencyRecorder(1, 0, 1)
	c := l.Client(0)
	for _, v := range []int64{3, 5, 100, 2000} {
		c.Record(LatApp, v)
	}
	h := l.ClientPhaseHistogram(LatApp)
	var sb strings.Builder
	WriteOpenMetricsHistogram(&sb, "x_ns", `k="v"`, &h)
	out := sb.String()
	for _, want := range []string{
		`x_ns_bucket{k="v",le="3"} 1`,
		`x_ns_bucket{k="v",le="7"} 2`,
		`x_ns_bucket{k="v",le="127"} 3`,
		`x_ns_bucket{k="v",le="2047"} 4`,
		`x_ns_bucket{k="v",le="+Inf"} 4`,
		`x_ns_count{k="v"} 4`,
		`x_ns_sum{k="v"} 2108`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMetricsPageWritesAllSections(t *testing.T) {
	l := NewLatencyRecorder(1, 1, 1)
	l.Client(0).Record(LatTotal, 123)
	l.Server(0).Record(LatCollect, 9)
	var sh NamedHistogram
	sh.Name = "stm_server_phase_ns"
	sh.Labels = `shard="0",phase="scan"`
	srvHist := l.ClientPhaseHistogram(LatTotal)
	sh.Hist = srvHist
	page := MetricsPage{Latency: l.Report(), Server: []NamedHistogram{sh}}
	var sb strings.Builder
	page.WriteOpenMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"stm_latency_enabled 1",
		"stm_latency_sampled_commits_total 1",
		"# TYPE stm_latency_ns histogram",
		`stm_latency_ns_bucket{phase="total",side="client",le="+Inf"} 1`,
		`stm_latency_ns_bucket{phase="collect",side="server",le="+Inf"} 1`,
		"# TYPE stm_server_phase_ns histogram",
		`stm_server_phase_ns_count{shard="0",phase="scan"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAnomalyDetector(t *testing.T) {
	d := NewAnomalyDetector(3, 0.5)
	// Warmup + stable baseline: no trigger.
	for i := 0; i < 6; i++ {
		if r := d.Observe(1000, 0.05); r != "" {
			t.Fatalf("stable tick %d tripped: %s", i, r)
		}
	}
	if r := d.Observe(10000, 0.05); !strings.Contains(r, "p99 spike") {
		t.Fatalf("p99 spike not detected: %q", r)
	}
	d2 := NewAnomalyDetector(100, 0.3) // p99 factor too high to trip
	for i := 0; i < 6; i++ {
		d2.Observe(1000, 0.05)
	}
	if r := d2.Observe(1000, 0.9); !strings.Contains(r, "abort-rate spike") {
		t.Fatalf("abort spike not detected: %q", r)
	}
	// Defaults applied for non-positive thresholds.
	d3 := NewAnomalyDetector(0, 0)
	if d3.P99Factor != 3 || d3.AbortRate != 0.5 {
		t.Fatalf("defaults %+v", d3)
	}
	// Warmup period never trips even on wild input.
	d4 := NewAnomalyDetector(2, 0.1)
	for i := 0; i < detectorWarmup; i++ {
		if r := d4.Observe(1e9, 1.0); r != "" {
			t.Fatalf("warmup tick tripped: %s", r)
		}
	}
}

func TestFlightBundleWriteFile(t *testing.T) {
	tr := NewTracer(8)
	r := tr.AddActor("client-0")
	r.Instant(KBegin, 1)
	r.SpanAt(KTx, 10, 50, OutcomeCommit)
	l := NewLatencyRecorder(1, 0, 1)
	l.Client(0).Record(LatTotal, 40)
	b := &FlightBundle{
		Reason:    "test trigger",
		UnixNanos: 1234567890,
		Latency:   l.Report(),
		Conflict:  ConflictReport{Commits: 7},
		Trace:     SnapshotTracer(tr),
		Stacks:    AllStacks(),
	}
	dir := filepath.Join(t.TempDir(), "flight")
	path, err := b.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "flight-1234567890.json" {
		t.Fatalf("path %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got FlightBundle
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("bundle not parseable: %v", err)
	}
	if got.Reason != "test trigger" || got.Conflict.Commits != 7 {
		t.Fatalf("round trip %+v", got)
	}
	if len(got.Trace) != 1 || got.Trace[0].Actor != "client-0" || len(got.Trace[0].Events) != 2 {
		t.Fatalf("trace section %+v", got.Trace)
	}
	if got.Latency.SampledCommits != 1 {
		t.Fatalf("latency section %+v", got.Latency)
	}
	if !strings.Contains(got.Stacks, "goroutine") {
		t.Fatal("stacks section empty")
	}
	// No temp files left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries", len(entries))
	}
}

// TestRingConcurrentSnapshot: a live writer plus snapshotters — the
// atomic-word storage must be race-free (run under -race) and snapshots
// must stay within capacity.
func TestRingConcurrentSnapshot(t *testing.T) {
	r := newRing(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100000; i++ {
			r.InstantAt(KBegin, int64(i), uint64(i))
		}
		close(done)
	}()
	for k := 0; k < 3; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if s := r.Snapshot(); len(s) > 64 {
					t.Errorf("snapshot len %d", len(s))
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 || r.Dropped() != 100000-64 {
		t.Fatalf("final len %d dropped %d", r.Len(), r.Dropped())
	}
}
