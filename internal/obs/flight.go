// Flight recorder: the obs half of the anomaly-triggered post-mortem dump.
// core runs a rolling detector off the latency recorder's windowed p99 and
// the abort-rate window; when a tick trips a threshold (or a commit-server
// stalls), it assembles a FlightBundle — trace-ring snapshots, the conflict
// report, the latency report, goroutine stacks — and writes it atomically
// to a timestamped JSON file, so "why was it slow at 3am" has an artifact
// instead of a reproduction request.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// AnomalyDetector tracks EWMAs of the windowed p99 latency and abort rate
// and flags ticks that spike past configurable multiples of the baseline.
// Not safe for concurrent use; the flight-recorder goroutine owns it.
type AnomalyDetector struct {
	// P99Factor trips when the window's p99 exceeds factor × EWMA(p99).
	P99Factor float64
	// AbortRate trips when the window's abort rate exceeds both this
	// absolute threshold and 2 × EWMA(rate) — the EWMA guard keeps a
	// steadily contended workload from dumping every tick.
	AbortRate float64
	// Alpha is the EWMA smoothing weight of the newest observation.
	Alpha float64

	ewmaP99  float64
	ewmaRate float64
	ticks    int
}

// detectorWarmup ticks establish the baseline before anything can trip.
const detectorWarmup = 3

// NewAnomalyDetector returns a detector with the given thresholds
// (non-positive values fall back to 3× p99 and 0.5 abort rate).
func NewAnomalyDetector(p99Factor, abortRate float64) *AnomalyDetector {
	if p99Factor <= 0 {
		p99Factor = 3
	}
	if abortRate <= 0 {
		abortRate = 0.5
	}
	return &AnomalyDetector{P99Factor: p99Factor, AbortRate: abortRate, Alpha: 0.3}
}

// Observe feeds one window (p99 in ns, abort rate in [0,1]) and returns a
// non-empty reason if the window is anomalous against the EWMA baseline.
// A non-positive p99 means the window carried no latency signal (e.g. too
// few sampled transactions): the p99 check and its EWMA update are skipped
// so empty windows don't dilute the baseline. The baselines are updated
// after the check, from anomalous windows too — a sustained new plateau
// stops re-triggering once the EWMA catches up.
func (d *AnomalyDetector) Observe(p99 float64, abortRate float64) string {
	reason := ""
	if d.ticks >= detectorWarmup {
		switch {
		case p99 > 0 && d.ewmaP99 > 0 && p99 > d.P99Factor*d.ewmaP99:
			reason = fmt.Sprintf("p99 spike: %.0fns > %.1fx ewma %.0fns", p99, d.P99Factor, d.ewmaP99)
		case abortRate > d.AbortRate && abortRate > 2*d.ewmaRate:
			reason = fmt.Sprintf("abort-rate spike: %.2f > %.2f (ewma %.2f)", abortRate, d.AbortRate, d.ewmaRate)
		}
	}
	d.ticks++
	if p99 > 0 {
		d.ewmaP99 = d.Alpha*p99 + (1-d.Alpha)*d.ewmaP99
	}
	d.ewmaRate = d.Alpha*abortRate + (1-d.Alpha)*d.ewmaRate
	return reason
}

// ActorTrace is one trace ring's snapshot in a flight bundle.
type ActorTrace struct {
	Actor   string  `json:"actor"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// FlightBundle is the post-mortem artifact: everything the observability
// layer knows at the moment an anomaly trips, in one parseable file.
type FlightBundle struct {
	Reason    string         `json:"reason"`
	UnixNanos int64          `json:"unix_nanos"`
	Latency   LatencyReport  `json:"latency"`
	Conflict  ConflictReport `json:"conflict"`
	// TimeSeries is the windowed-telemetry report at dump time (nil when
	// Config.TimeSeries is off). When the dump was triggered by an SLO
	// burn-rate alert, its Alerts tail carries the window that tripped it.
	TimeSeries *TimeSeriesReport `json:"timeseries,omitempty"`
	Trace      []ActorTrace      `json:"trace"`
	Stacks     string            `json:"stacks"`
}

// SnapshotTracer captures every ring of t into ActorTraces. Safe while
// writers run (rings are atomic-word storage). Nil tracer -> nil.
func SnapshotTracer(t *Tracer) []ActorTrace {
	if t == nil {
		return nil
	}
	out := make([]ActorTrace, 0, t.Actors())
	for i := 0; i < t.Actors(); i++ {
		r := t.Ring(i)
		out = append(out, ActorTrace{Actor: t.ActorName(i), Dropped: r.Dropped(), Events: r.Snapshot()})
	}
	return out
}

// AllStacks returns every goroutine's stack, the way an aborting runtime
// would print them. Grows the buffer until runtime.Stack fits.
func AllStacks() string {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

// WriteFile writes the bundle to dir as flight-<unixnanos>.json, atomically
// (temp file + rename), creating dir if needed. Returns the final path.
func (b *FlightBundle) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: flight dir: %w", err)
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return "", fmt.Errorf("obs: flight marshal: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("flight-%d.json", b.UnixNanos))
	tmp, err := os.CreateTemp(dir, ".flight-*.tmp")
	if err != nil {
		return "", fmt.Errorf("obs: flight temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("obs: flight write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("obs: flight close: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("obs: flight rename: %w", err)
	}
	return final, nil
}
