// Critical-path latency decomposition. Config.Latency samples 1-in-N
// transactions (N = Config.LatencySampleEvery) and splits each sampled
// commit's wall-clock time into the phases the paper's critical-path
// argument is about: app work, retry/wasted time, commit-enqueue wait on the
// client side; batch-collect, invalidation scan, inval-wait, write-back,
// reply (plus cross-shard lock-wait and drain when Shards > 1) on the server
// side. Phases are recorded into cache-padded per-actor histo.Atomic cells —
// one writer per cell, concurrent snapshots — so a live LatencyReport and
// the flight recorder can read while transactions run, race-free.
//
// The same nil-receiver discipline as the rest of the package applies: when
// Config.Latency is off core holds a nil *LatencyRecorder, every cell
// pointer is nil, and each record site costs one predictable nil/bool check
// — no clock read (BenchmarkLatencyOverhead pins this at ≤ 2 ns, 0 allocs).
package obs

import (
	"fmt"
	"io"
	"sort"

	"github.com/ssrg-vt/rinval/internal/histo"
	"github.com/ssrg-vt/rinval/internal/padded"
)

// LatPhase identifies one critical-path phase.
type LatPhase uint8

const (
	// Client-side phases: recorded once per sampled committed transaction,
	// so each client phase histogram's count equals the sampled-commit count
	// and App+Retry+CommitWait <= Total by construction.

	// LatApp: the user function body of the attempt that committed.
	LatApp LatPhase = iota
	// LatRetry: wasted time — every failed attempt of the sampled
	// transaction, user-function time and backoff included.
	LatRetry
	// LatCommitWait: the engine commit call of the committing attempt; for
	// remote engines this is publish-request -> reply spin, i.e. the full
	// commit-server round trip seen by the client.
	LatCommitWait
	// LatTotal: the whole Atomically call, begin of first attempt to commit.
	LatTotal

	// Server-side phases: recorded once per epoch (commit-server) or per
	// descriptor (invalidation-server) whenever Latency is on — epochs are
	// orders of magnitude rarer than transactions, so they are not sampled.

	// LatCollect: the batch-collection scan over pending commit requests.
	LatCollect
	// LatScan: invalidation scan work — the commit-server's inline
	// invalidation pass (V1) or an invalidation-server's partition scan of
	// one commit descriptor (V2/V3).
	LatScan
	// LatInvalWait: commit-server waiting for invalidation-servers to come
	// within the lag budget.
	LatInvalWait
	// LatWriteBack: publishing the batch's write sets.
	LatWriteBack
	// LatReply: replying COMMITTED to the batch members.
	LatReply
	// LatLockWait: cross-shard handshake — acquiring the touched streams'
	// locks in ascending order (Shards > 1 only).
	LatLockWait
	// LatDrain: cross-shard handshake — draining the touched streams'
	// invalidation backlogs before the combined epoch (Shards > 1 only).
	LatDrain

	// NumLatPhases bounds the phase enum, for cell arrays.
	NumLatPhases
)

// String returns the stable phase name used in reports and metric labels.
func (p LatPhase) String() string {
	switch p {
	case LatApp:
		return "app"
	case LatRetry:
		return "retry"
	case LatCommitWait:
		return "commit-wait"
	case LatTotal:
		return "total"
	case LatCollect:
		return "collect"
	case LatScan:
		return "scan"
	case LatInvalWait:
		return "inval-wait"
	case LatWriteBack:
		return "write-back"
	case LatReply:
		return "reply"
	case LatLockWait:
		return "lock-wait"
	case LatDrain:
		return "drain"
	default:
		return fmt.Sprintf("LatPhase(%d)", int(p))
	}
}

// clientPhases and serverPhases list each side's phases in report order.
var (
	clientPhases = []LatPhase{LatApp, LatRetry, LatCommitWait, LatTotal}
	serverPhases = []LatPhase{LatCollect, LatScan, LatInvalWait, LatWriteBack, LatReply, LatLockWait, LatDrain}
)

// LatCell is one actor's phase histograms. Exactly one goroutine records
// into a cell (the client thread or server goroutine it belongs to); any
// goroutine may snapshot. The leading/trailing pads keep neighbouring cells'
// hot words off shared cache lines. All methods are nil-receiver-safe no-ops
// so disabled latency costs a nil check at each record site.
type LatCell struct {
	_      [padded.CacheLineSize]byte
	seq    uint64 // owner-only sampling counter (clients)
	every  uint64
	phases [NumLatPhases]histo.Atomic
	_      [padded.CacheLineSize]byte
}

// Sample advances the owner's 1-in-N counter and reports whether the next
// transaction is sampled. Owner-only; plain arithmetic, no clock read.
//
//stm:hotpath
func (c *LatCell) Sample() bool {
	if c == nil {
		return false
	}
	c.seq++
	return c.seq%c.every == 0
}

// Record adds one phase duration (ns; negative clamps to 0).
//
//stm:hotpath
func (c *LatCell) Record(p LatPhase, ns int64) {
	if c == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	c.phases[p].Record(uint64(ns))
}

// CommitSample records all four client phases of one sampled committed
// transaction in a single call — one call site under the commit path's
// sampled branch keeps the unsampled path's codegen lean.
//
//stm:hotpath
func (c *LatCell) CommitSample(app, commitWait, retry, total int64) {
	c.Record(LatApp, app)
	c.Record(LatCommitWait, commitWait)
	c.Record(LatRetry, retry)
	c.Record(LatTotal, total)
}

// LatencyRecorder owns the latency cells for one System: one per client
// slot and one per server goroutine (commit-servers first, then
// invalidation-servers). Constructed up front; the hot path only ever
// touches individual cells.
type LatencyRecorder struct {
	sampleEvery uint64
	clients     []LatCell
	servers     []LatCell
}

// NewLatencyRecorder sizes a recorder for clients client slots and servers
// server goroutines, sampling 1 in sampleEvery transactions (min 1).
func NewLatencyRecorder(clients, servers, sampleEvery int) *LatencyRecorder {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	l := &LatencyRecorder{
		sampleEvery: uint64(sampleEvery),
		clients:     make([]LatCell, clients),
		servers:     make([]LatCell, servers),
	}
	for i := range l.clients {
		l.clients[i].every = l.sampleEvery
	}
	for i := range l.servers {
		l.servers[i].every = 1 // servers record every epoch
	}
	return l
}

// Client returns client slot i's cell, or nil on a nil recorder.
func (l *LatencyRecorder) Client(i int) *LatCell {
	if l == nil {
		return nil
	}
	return &l.clients[i]
}

// Server returns server goroutine i's cell, or nil on a nil recorder.
func (l *LatencyRecorder) Server(i int) *LatCell {
	if l == nil {
		return nil
	}
	return &l.servers[i]
}

// SampleEvery returns the sampling period (0 on a nil recorder).
func (l *LatencyRecorder) SampleEvery() int {
	if l == nil {
		return 0
	}
	return int(l.sampleEvery)
}

// LatencyPhase is one phase's merged distribution in a LatencyReport.
type LatencyPhase struct {
	Phase  string         `json:"phase"`
	Count  uint64         `json:"count"`
	SumNs  uint64         `json:"sum_ns"`
	MeanNs float64        `json:"mean_ns"`
	P50    uint64         `json:"p50_ns"`
	P90    uint64         `json:"p90_ns"`
	P99    uint64         `json:"p99_ns"`
	P999   uint64         `json:"p999_ns"`
	MaxNs  uint64         `json:"max_ns"`
	Bucket []histo.Bucket `json:"buckets,omitempty"`
}

// LatencyReport is the merged, point-in-time critical-path decomposition —
// safe to build while transactions run.
type LatencyReport struct {
	Enabled        bool           `json:"enabled"`
	SampleEvery    int            `json:"sample_every"`
	SampledCommits uint64         `json:"sampled_commits"` // count of the client "total" phase
	Client         []LatencyPhase `json:"client"`
	Server         []LatencyPhase `json:"server"`
}

// phaseStats turns a merged histogram into its report row.
func phaseStats(p LatPhase, h *histo.Histogram) LatencyPhase {
	return LatencyPhase{
		Phase:  p.String(),
		Count:  h.Count(),
		SumNs:  h.Sum(),
		MeanNs: h.Mean(),
		P50:    h.Quantile(0.5),
		P90:    h.Quantile(0.9),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		MaxNs:  h.Max(),
		Bucket: h.NonEmptyBuckets(),
	}
}

// mergePhase folds phase p across cells into one histogram.
func mergePhase(cells []LatCell, p LatPhase) histo.Histogram {
	var out histo.Histogram
	for i := range cells {
		s := cells[i].phases[p].Snapshot()
		out.Merge(&s)
	}
	return out
}

// Report merges every cell into per-phase distributions. Nil-safe: a nil
// recorder reports Enabled=false with no phases.
func (l *LatencyRecorder) Report() LatencyReport {
	if l == nil {
		return LatencyReport{}
	}
	rep := LatencyReport{Enabled: true, SampleEvery: int(l.sampleEvery)}
	for _, p := range clientPhases {
		h := mergePhase(l.clients, p)
		if p == LatTotal {
			rep.SampledCommits = h.Count()
		}
		rep.Client = append(rep.Client, phaseStats(p, &h))
	}
	for _, p := range serverPhases {
		h := mergePhase(l.servers, p)
		if h.Count() == 0 {
			// Elide phases the running configuration never records: the
			// cross-shard handshake phases on single-shard systems, the lag
			// wait on V1 (whose inline scan is "scan"), the scan on engines
			// without invalidation-servers, everything on non-RInval engines.
			continue
		}
		rep.Server = append(rep.Server, phaseStats(p, &h))
	}
	return rep
}

// ClientPhaseHistogram merges one client phase across all cells — the churn
// test's reconciliation hook.
func (l *LatencyRecorder) ClientPhaseHistogram(p LatPhase) histo.Histogram {
	if l == nil {
		return histo.Histogram{}
	}
	return mergePhase(l.clients, p)
}

// NamedHistogram pairs a histogram with the metric name and label set it is
// exported under — the unit /metrics uses for every histogram-typed series
// (latency phases and the commit-server phase histograms alike).
type NamedHistogram struct {
	Name   string // metric family, e.g. "stm_latency_ns"
	Labels string // rendered label pairs without braces, e.g. `phase="app",side="client"`
	Hist   histo.Histogram
}

// WriteOpenMetricsHistogram renders h as one OpenMetrics histogram child
// with cumulative le buckets (the power-of-two bucket upper bounds, then
// +Inf), plus the _count and _sum series. The caller writes the # TYPE line
// once per family.
func WriteOpenMetricsHistogram(w io.Writer, name, labels string, h *histo.Histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for _, b := range h.NonEmptyBuckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, b.Hi, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
		fmt.Fprintf(w, "%s_sum %d\n", name, h.Sum())
		return
	}
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum())
}

// WriteOpenMetrics renders the report's phase histograms as the
// stm_latency_ns family with phase/side labels.
func (r *LatencyReport) WriteOpenMetrics(w io.Writer) {
	family(w, "stm_latency_enabled", "gauge", "Whether the critical-path latency decomposition is collecting.")
	fmt.Fprintf(w, "stm_latency_enabled %d\n", b2i(r.Enabled))
	if !r.Enabled {
		return
	}
	family(w, "stm_latency_sampled_commits", "counter", "Committed transactions sampled by the latency decomposition.")
	fmt.Fprintf(w, "stm_latency_sampled_commits_total %d\n", r.SampledCommits)
	family(w, "stm_latency_ns", "histogram", "Critical-path phase durations by phase and side, in nanoseconds.")
	writeSide := func(side string, phases []LatencyPhase) {
		for _, p := range phases {
			labels := fmt.Sprintf("phase=%q,side=%q", p.Phase, side)
			// Cumulative buckets come straight from the report row; the raw
			// histogram is not retained in the JSON form.
			var cum uint64
			for _, b := range p.Bucket {
				cum += b.Count
				fmt.Fprintf(w, "stm_latency_ns_bucket{%s,le=\"%d\"} %d\n", labels, b.Hi, cum)
			}
			fmt.Fprintf(w, "stm_latency_ns_bucket{%s,le=\"+Inf\"} %d\n", labels, p.Count)
			fmt.Fprintf(w, "stm_latency_ns_count{%s} %d\n", labels, p.Count)
			fmt.Fprintf(w, "stm_latency_ns_sum{%s} %d\n", labels, p.SumNs)
		}
	}
	writeSide("client", r.Client)
	writeSide("server", r.Server)
}

// SortPhases orders report rows by descending p99 — what the stmtop panel
// and the SLO bench use to put the dominant phase first.
func SortPhases(phases []LatencyPhase) {
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].P99 > phases[j].P99 })
}
